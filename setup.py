"""Setup shim: allows `python setup.py develop` on hosts without the
`wheel` package (PEP 660 editable installs need it)."""
from setuptools import setup

setup()
