"""Smoke tests: every example script must run to completion.

Executed in-process (runpy) with stdout captured, so the examples in
the README cannot silently rot.
"""

import pathlib
import runpy

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"

EXPECTED_MARKERS = {
    "quickstart.py": "platform3",
    "static_analysis_tour.py": "verdict: reject",
    "safety_audit.py": "Every cell matches Table 1",
    "mobile_energy.py": "mW",
    "ddos_defense.py": "reverse proxies deployed",
    "operator_console.py": "Billing after a month",
    "wide_area_cdn.py": "geolocation spread",
}


@pytest.mark.parametrize("script", sorted(EXPECTED_MARKERS))
def test_example_runs(script, capsys):
    path = EXAMPLES_DIR / script
    assert path.exists(), path
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert EXPECTED_MARKERS[script] in out


def test_every_example_has_a_smoke_test():
    scripts = {p.name for p in EXAMPLES_DIR.glob("*.py")}
    assert scripts == set(EXPECTED_MARKERS), (
        "examples and smoke tests out of sync"
    )
