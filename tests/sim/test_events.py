"""Tests for the discrete-event loop."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import SimulationError
from repro.sim.events import EventLoop


class TestScheduling:
    def test_events_fire_in_time_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(3.0, lambda: fired.append(3))
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(2.0, lambda: fired.append(2))
        loop.run()
        assert fired == [1, 2, 3]

    def test_ties_break_in_scheduling_order(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append("a"))
        loop.schedule(1.0, lambda: fired.append("b"))
        loop.run()
        assert fired == ["a", "b"]

    def test_schedule_at_absolute(self):
        loop = EventLoop(start=10.0)
        seen = []
        loop.schedule_at(12.0, lambda: seen.append(loop.now))
        loop.run()
        assert seen == [12.0]

    def test_past_scheduling_rejected(self):
        loop = EventLoop(start=10.0)
        with pytest.raises(SimulationError):
            loop.schedule(-1.0, lambda: None)
        with pytest.raises(SimulationError):
            loop.schedule_at(9.0, lambda: None)

    def test_run_until_stops_and_advances(self):
        loop = EventLoop()
        fired = []
        loop.schedule(1.0, lambda: fired.append(1))
        loop.schedule(5.0, lambda: fired.append(5))
        loop.run_until(3.0)
        assert fired == [1]
        assert loop.now == 3.0
        loop.run_until(10.0)
        assert fired == [1, 5]

    def test_cancel(self):
        loop = EventLoop()
        fired = []
        event = loop.schedule(1.0, lambda: fired.append(1))
        event.cancel()
        loop.run()
        assert fired == []

    def test_events_may_schedule_events(self):
        loop = EventLoop()
        fired = []

        def chain():
            fired.append(loop.now)
            if len(fired) < 3:
                loop.schedule(1.0, chain)

        loop.schedule(1.0, chain)
        loop.run()
        assert fired == [1.0, 2.0, 3.0]

    def test_pending_and_next_event_time(self):
        loop = EventLoop()
        e = loop.schedule(4.0, lambda: None)
        assert loop.pending() == 1
        assert loop.next_event_time() == 4.0
        e.cancel()
        assert loop.next_event_time() is None

    def test_run_max_events(self):
        loop = EventLoop()
        fired = []
        for i in range(5):
            loop.schedule(float(i + 1), lambda i=i: fired.append(i))
        loop.run(max_events=2)
        assert len(fired) == 2


@given(st.lists(st.floats(min_value=0.0, max_value=100.0),
                min_size=1, max_size=30))
def test_firing_order_is_sorted(delays):
    loop = EventLoop()
    fired = []
    for d in delays:
        loop.schedule(d, lambda d=d: fired.append(d))
    loop.run()
    assert fired == sorted(fired)
    assert loop.fired == len(delays)
