"""Tests for the packet-level congestion-control simulator, including
cross-validation against the analytic Figure 14 models."""

import pytest

from repro.sim.cc import (
    simulate_aimd,
    simulate_sctp_over_tcp,
    simulate_sctp_over_udp,
)
from repro.sim.tcp import sctp_over_udp_goodput

LINK = dict(capacity_bps=100e6, rtt_s=0.02)


def averaged(fn, loss, seeds=6, **kw):
    results = [
        fn(loss=loss, seed=seed, duration_s=120.0, **LINK, **kw)
        for seed in range(seeds)
    ]
    return sum(r.goodput_bps for r in results) / len(results)


class TestAimd:
    def test_lossless_fills_the_pipe(self):
        result = simulate_aimd(loss=0.0, seed=1, **LINK)
        assert result.goodput_bps > 0.9 * 100e6
        assert result.loss_events == 0 and result.timeouts == 0

    def test_goodput_decreases_with_loss(self):
        rates = [
            averaged(simulate_aimd, loss)
            for loss in (0.005, 0.01, 0.03, 0.08)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_deterministic_per_seed(self):
        a = simulate_aimd(loss=0.02, seed=7, **LINK)
        b = simulate_aimd(loss=0.02, seed=7, **LINK)
        assert a == b

    def test_loss_events_counted(self):
        result = simulate_aimd(loss=0.05, seed=3, **LINK)
        assert result.loss_events > 0

    def test_duration_respected(self):
        result = simulate_aimd(
            loss=0.01, seed=1, duration_s=30.0, **LINK
        )
        assert 30.0 <= result.duration_s < 35.0


class TestTunnelComparison:
    """Empirical Figure 14: same ordering as the analytic model."""

    @pytest.mark.parametrize("loss", [0.01, 0.02, 0.03, 0.05])
    def test_tcp_tunnel_clearly_worse(self, loss):
        udp = averaged(simulate_sctp_over_udp, loss)
        tcp = averaged(simulate_sctp_over_tcp, loss)
        assert udp / tcp >= 1.5

    def test_gap_widens_with_loss(self):
        ratios = []
        for loss in (0.01, 0.03, 0.05):
            udp = averaged(simulate_sctp_over_udp, loss)
            tcp = averaged(simulate_sctp_over_tcp, loss)
            ratios.append(udp / tcp)
        assert ratios == sorted(ratios)

    def test_both_fine_without_loss(self):
        udp = simulate_sctp_over_udp(loss=0.0, seed=1, **LINK)
        tcp = simulate_sctp_over_tcp(loss=0.0, seed=1, **LINK)
        assert udp.goodput_bps > 0.9 * 100e6
        assert tcp.goodput_bps > 0.9 * 100e6


class TestCrossValidation:
    """The analytic Padhye series and the empirical simulation must
    agree within a small constant factor."""

    @pytest.mark.parametrize("loss", [0.01, 0.02, 0.05])
    def test_udp_tunnel_matches_analytic(self, loss):
        empirical = averaged(simulate_sctp_over_udp, loss)
        analytic = sctp_over_udp_goodput(100e6, 0.02, loss)
        assert 0.4 <= empirical / analytic <= 2.5, (
            empirical, analytic,
        )
