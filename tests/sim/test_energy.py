"""Tests for the radio energy model (Figure 13)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.energy import (
    RRC_PARAMS_3G,
    RadioEnergyModel,
    download_energy_mj,
    download_power_mw,
)


@pytest.fixture(scope="module")
def model():
    return RadioEnergyModel()


class TestAveragePower:
    def test_idle_when_no_deliveries(self, model):
        assert model.average_power_mw([], 3600) == pytest.approx(
            RRC_PARAMS_3G.idle_mw
        )

    def test_bounded_by_state_powers(self, model):
        power = model.average_power_mw([(10.0, 5)], 60.0)
        assert RRC_PARAMS_3G.idle_mw < power < RRC_PARAMS_3G.dch_mw

    def test_overlapping_bursts_merge(self, model):
        # Two deliveries inside one radio-awake window must not cost
        # more than the merged awake time.
        separate = model.average_power_mw([(10.0, 1), (100.0, 1)], 200.0)
        merged = model.average_power_mw([(10.0, 1), (11.0, 1)], 200.0)
        assert merged < separate

    def test_window_must_be_positive(self, model):
        with pytest.raises(ValueError):
            model.average_power_mw([], 0)


class TestFigure13:
    def test_endpoints_match_paper(self, model):
        at_30 = model.batched_push_power_mw(30, 30)
        at_240 = model.batched_push_power_mw(30, 240)
        # Paper: ~240 mW at 30 s, ~140 mW at 240 s.
        assert at_30 == pytest.approx(240, abs=15)
        assert at_240 == pytest.approx(140, abs=15)

    def test_power_decreases_with_batching(self, model):
        powers = [
            model.batched_push_power_mw(30, interval)
            for interval in (30, 60, 120, 240)
        ]
        assert powers == sorted(powers, reverse=True)

    @given(st.floats(min_value=30.0, max_value=600.0))
    def test_batching_never_worse_than_unbatched(self, model, interval):
        batched = model.batched_push_power_mw(30, interval)
        unbatched = model.batched_push_power_mw(30, 30)
        assert batched <= unbatched + 1e-6

    def test_interval_below_message_rate_clamped(self, model):
        a = model.batched_push_power_mw(30, 10)
        b = model.batched_push_power_mw(30, 30)
        assert a == pytest.approx(b)


class TestAwakeFraction:
    def test_zero_when_silent(self, model):
        assert model.radio_awake_fraction([], 100.0) == 0.0

    def test_increases_with_traffic(self, model):
        sparse = model.radio_awake_fraction([(10.0, 1)], 600.0)
        dense = model.radio_awake_fraction(
            [(t, 1) for t in range(10, 600, 30)], 600.0
        )
        assert dense > sparse


class TestLteParameters:
    """Batching generalizes across radio generations."""

    def test_lte_batching_still_helps(self):
        from repro.sim.energy import RRC_PARAMS_LTE

        lte = RadioEnergyModel(RRC_PARAMS_LTE)
        powers = [
            lte.batched_push_power_mw(30, interval)
            for interval in (30, 60, 120, 240)
        ]
        assert powers == sorted(powers, reverse=True)
        assert powers[0] > powers[-1]

    def test_lte_tails_shorter_so_gap_smaller(self):
        from repro.sim.energy import RRC_PARAMS_LTE

        def relative_saving(model):
            worst = model.batched_push_power_mw(30, 30)
            best = model.batched_push_power_mw(30, 240)
            return (worst - best) / worst

        g3 = RadioEnergyModel(RRC_PARAMS_3G)
        lte = RadioEnergyModel(RRC_PARAMS_LTE)
        assert relative_saving(lte) < relative_saving(g3)


class TestHttpVsHttps:
    """Section 8: HTTPS costs ~15% more energy at 8 Mb/s."""

    def test_paper_numbers(self):
        http = download_power_mw(8e6, https=False)
        https = download_power_mw(8e6, https=True)
        assert http == pytest.approx(570)
        assert https == pytest.approx(650)
        assert (https - http) / http == pytest.approx(0.14, abs=0.02)

    def test_energy_scales_with_size(self):
        small = download_energy_mj(1_000_000, 8e6)
        large = download_energy_mj(2_000_000, 8e6)
        assert large == pytest.approx(2 * small)
