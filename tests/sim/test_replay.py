"""Tests for trace replay through the concrete dataplane."""

import pytest

from repro.click import Runtime, ShardedRuntime, parse_config
from repro.common.errors import SimulationError
from repro.sim import (
    ReplayStats,
    flow_packets,
    replay_trace,
    replay_trace_sharded,
    shard_flows,
    trace_packets,
)
from repro.sim.replay import CLIENT_BASE, SERVER_BASE
from repro.sim.traces import Flow

FORWARDER = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow tcp, allow udp)
        -> out;
"""


def make_flows(n):
    return [
        Flow(start=0.0, duration=1.0, client=i % 7, server=i % 5,
             sport=40000 + i, dport=80)
        for i in range(n)
    ]


class TestPacketSynthesis:
    def test_flow_packets_clone_the_template(self):
        (flow,) = make_flows(1)
        packets = flow_packets(flow, 4, length=128)
        assert len(packets) == 4
        assert len({p.uid for p in packets}) == 4
        for p in packets:
            assert p["ip_src"] == CLIENT_BASE + flow.client
            assert p["ip_dst"] == SERVER_BASE + flow.server
            assert p["tp_src"] == flow.sport
            assert p["tp_dst"] == flow.dport
            assert p.length == 128

    def test_trace_packets_are_flow_major(self):
        flows = make_flows(3)
        packets = trace_packets(flows, packets_per_flow=2)
        assert len(packets) == 6
        assert [p["tp_src"] for p in packets] == [
            40000, 40000, 40001, 40001, 40002, 40002,
        ]


class TestReplay:
    def test_batch_and_scalar_replays_agree(self):
        flows = make_flows(40)
        stats = {}
        for mode in ("scalar", "batch"):
            runtime = Runtime(parse_config(FORWARDER))
            stats[mode] = replay_trace(
                runtime, flows, mode=mode, packets_per_flow=3,
                batch_size=32,
            )
        scalar, batch = stats["scalar"], stats["batch"]
        assert scalar.packets == batch.packets == 120
        assert scalar.egress == batch.egress == 120
        assert scalar.dropped == batch.dropped == 0
        assert scalar.flows == batch.flows == 40
        assert scalar.mode == "scalar" and batch.mode == "batch"

    def test_stats_fields_and_rate(self):
        runtime = Runtime(parse_config(FORWARDER))
        stats = replay_trace(runtime, make_flows(5), packets_per_flow=2)
        assert isinstance(stats, ReplayStats)
        assert stats.packets == 10
        assert stats.wall_seconds >= 0
        assert stats.packets_per_second > 0

    def test_deltas_measured_across_reuse(self):
        runtime = Runtime(parse_config(FORWARDER))
        first = replay_trace(runtime, make_flows(3), packets_per_flow=2)
        second = replay_trace(runtime, make_flows(4), packets_per_flow=2)
        assert first.egress == 6
        assert second.egress == 8  # not cumulative

    def test_explicit_entry(self):
        runtime = Runtime(parse_config(FORWARDER))
        stats = replay_trace(
            runtime, make_flows(2), entry="src", packets_per_flow=1
        )
        assert stats.egress == 2

    def test_bad_mode_raises(self):
        runtime = Runtime(parse_config(FORWARDER))
        with pytest.raises(SimulationError):
            replay_trace(runtime, make_flows(1), mode="vectorized")

    def test_sourceless_config_raises(self):
        # A two-element ring: every element has an input, so the
        # configuration has no source to default to.
        runtime = Runtime(parse_config(
            "a :: SetIPTTL(32); b :: SetIPTTL(32); a -> b; b -> a;"
        ))
        with pytest.raises(SimulationError):
            replay_trace(runtime, make_flows(1))


class TestShardedReplay:
    def _flows(self, n=60):
        return [
            Flow(start=0.0, duration=1.0, client=i, server=i % 9,
                 sport=40000 + i, dport=80)
            for i in range(n)
        ]

    def test_shard_flows_agrees_with_packet_hashing(self):
        flows = self._flows()
        groups = shard_flows(flows, 4)
        assert sorted(f.sport for g in groups for f in g) == \
            sorted(f.sport for f in flows)
        for shard, group in enumerate(groups):
            for flow in group:
                (packet,) = flow_packets(flow, 1)
                assert packet.flow_hash() % 4 == shard

    def test_shard_flows_spreads(self):
        groups = shard_flows(self._flows(200), 4)
        assert all(len(g) > 0 for g in groups)

    @pytest.mark.parametrize("executor", ["serial", "process"])
    def test_totals_match_single_process(self, executor):
        flows = self._flows()
        baseline = Runtime(parse_config(FORWARDER))
        single = replay_trace(baseline, flows, packets_per_flow=3)
        with ShardedRuntime(
            parse_config(FORWARDER), shards=4, executor=executor,
        ) as sharded:
            stats = replay_trace_sharded(sharded, flows, packets_per_flow=3)
        assert stats.mode == "sharded"
        assert stats.flows == single.flows
        assert stats.packets == single.packets
        assert stats.egress == single.egress
        assert stats.dropped == single.dropped
        assert stats.packets_per_second > 0

    def test_full_collect_retrieves_egress_permutation(self):
        flows = self._flows(20)
        baseline = Runtime(parse_config(FORWARDER))
        replay_trace(baseline, flows, packets_per_flow=2)
        expected = sorted(
            (r.packet["ip_src"], r.packet["tp_src"])
            for r in baseline.take_output()
        )
        with ShardedRuntime(parse_config(FORWARDER), shards=4) as sharded:
            replay_trace_sharded(
                sharded, flows, packets_per_flow=2, full=True
            )
            observed = sorted(
                (r.packet["ip_src"], r.packet["tp_src"])
                for r in sharded.take_output()
            )
        assert observed == expected

    def test_sourceless_config_raises(self):
        config = parse_config(
            "a :: SetIPTTL(32); b :: SetIPTTL(32); a -> b; b -> a;"
        )
        with ShardedRuntime(config, shards=2) as sharded:
            with pytest.raises(SimulationError):
                replay_trace_sharded(sharded, self._flows(1))

    def test_fallback_config_still_replays(self):
        config = parse_config(
            "src :: FromNetfront(); out :: ToNetfront();"
            " src -> RateLimiter(1e9, 1e9) -> out;"
        )
        flows = self._flows(10)
        with ShardedRuntime(config, shards=4) as sharded:
            assert sharded.fallback_reason is not None
            stats = replay_trace_sharded(sharded, flows, packets_per_flow=2)
        assert stats.egress == 20
