"""Tests for TCP models, links, HTTP server, and the MAWI workload."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.events import EventLoop
from repro.sim.http import HttpServer, transfer_time_s
from repro.sim.links import Link
from repro.sim.tcp import (
    padhye_throughput_bps,
    sctp_over_tcp_goodput,
    sctp_over_udp_goodput,
    tcp_throughput,
)
from repro.sim.traces import TraceConfig, generate_trace, trace_statistics


class TestPadhye:
    def test_zero_loss_is_infinite(self):
        assert padhye_throughput_bps(0, 0.02) == math.inf

    def test_decreasing_in_loss(self):
        rates = [
            padhye_throughput_bps(p, 0.02)
            for p in (0.001, 0.01, 0.05, 0.2)
        ]
        assert rates == sorted(rates, reverse=True)

    def test_decreasing_in_rtt(self):
        fast = padhye_throughput_bps(0.01, 0.01)
        slow = padhye_throughput_bps(0.01, 0.1)
        assert fast > slow

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            padhye_throughput_bps(1.5, 0.02)
        with pytest.raises(ValueError):
            padhye_throughput_bps(0.01, 0)

    def test_capacity_caps_lossless(self):
        assert tcp_throughput(100e6, 0.02, 0.0) == 100e6


class TestFigure14:
    def test_zero_loss_near_capacity(self):
        udp = sctp_over_udp_goodput(100e6, 0.02, 0.0)
        tcp = sctp_over_tcp_goodput(100e6, 0.02, 0.0)
        assert udp > 95e6 and tcp > 93e6
        assert udp > tcp  # smaller tunnel overhead

    @pytest.mark.parametrize("loss", [0.01, 0.02, 0.03, 0.04, 0.05])
    def test_udp_beats_tcp_by_2_to_5x(self, loss):
        udp = sctp_over_udp_goodput(100e6, 0.02, loss)
        tcp = sctp_over_tcp_goodput(100e6, 0.02, loss)
        assert 2.0 <= udp / tcp <= 6.0

    def test_ratio_grows_with_loss(self):
        ratios = []
        for loss in (0.01, 0.03, 0.05):
            udp = sctp_over_udp_goodput(100e6, 0.02, loss)
            tcp = sctp_over_tcp_goodput(100e6, 0.02, loss)
            ratios.append(udp / tcp)
        assert ratios == sorted(ratios)

    @given(st.floats(min_value=0.001, max_value=0.2))
    def test_tcp_tunnel_never_beats_udp(self, loss):
        udp = sctp_over_udp_goodput(100e6, 0.02, loss)
        tcp = sctp_over_tcp_goodput(100e6, 0.02, loss)
        assert tcp <= udp


class TestLink:
    def test_latency_math(self):
        link = Link(8e6, delay_s=0.01)
        assert link.transmit_time(1000) == pytest.approx(0.001)
        assert link.one_way_latency(1000) == pytest.approx(0.011)
        assert link.rtt_s == pytest.approx(0.02)

    def test_lossless_delivery(self):
        link = Link(8e6, loss=0.0)
        assert link.deliver(100) is not None

    def test_loss_statistics(self):
        link = Link(8e6, loss=0.3, seed=1)
        outcomes = [link.deliver(100) for _ in range(5000)]
        observed = sum(1 for o in outcomes if o is None) / 5000
        assert observed == pytest.approx(0.3, abs=0.03)
        assert link.observed_loss() == pytest.approx(observed)

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            Link(0)
        with pytest.raises(ValueError):
            Link(1e6, loss=1.0)


class TestHttpServer:
    def test_slots_fill_and_reject(self):
        loop = EventLoop()
        server = HttpServer(loop, max_connections=2, service_time_s=10)
        assert server.try_open()
        assert server.try_open()
        assert not server.try_open()
        assert server.rejected == 1

    def test_completions_counted(self):
        loop = EventLoop()
        server = HttpServer(loop, max_connections=10,
                            service_time_s=0.1)
        for _ in range(5):
            server.try_open()
        loop.run()
        assert server.served == 5
        assert server.active == 0

    def test_attack_connections_not_served(self):
        loop = EventLoop()
        server = HttpServer(loop, max_connections=10)
        server.try_open(hold_s=50.0)
        loop.run()
        assert server.served == 0

    def test_served_per_second_binning(self):
        loop = EventLoop()
        server = HttpServer(loop, max_connections=100,
                            service_time_s=0.5)
        for _ in range(4):
            server.try_open()
        loop.run()
        series = server.served_per_second(1.0, 2.0)
        assert series[0] == pytest.approx(4.0)

    def test_transfer_time_helper(self):
        assert transfer_time_s(1000, 8000, rtt_s=0.01) == pytest.approx(
            1.02
        )
        with pytest.raises(ValueError):
            transfer_time_s(1000, 0)


class TestMawiTraces:
    """Section 6: the workload must land in the paper's ranges."""

    @pytest.fixture(scope="class")
    def stats(self):
        return trace_statistics(generate_trace())

    def test_active_connections_in_range(self, stats):
        assert 1600 <= stats.max_active_connections <= 4000
        assert stats.min_active_connections >= 1000

    def test_active_clients_in_range(self, stats):
        assert 400 <= stats.max_active_clients <= 840
        assert stats.min_active_clients >= 300

    def test_deterministic_by_seed(self):
        a = generate_trace(seed=5)
        b = generate_trace(seed=5)
        c = generate_trace(seed=6)
        assert a == b
        assert a != c

    def test_flows_fit_window(self):
        config = TraceConfig(window_s=100.0, arrival_rate=50.0)
        for flow in generate_trace(config, seed=1):
            assert 0 <= flow.start
            assert flow.start + flow.duration <= config.window_s

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=1, max_value=1000))
    def test_any_seed_stays_plausible(self, seed):
        config = TraceConfig(window_s=300.0)
        stats = trace_statistics(
            generate_trace(config, seed=seed), window_s=300.0
        )
        assert stats.max_active_connections > 500
