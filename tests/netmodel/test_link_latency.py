"""Tests for per-link propagation latency in the forwarding plane."""

import pytest

from repro.click import Packet, UDP
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.netmodel import Network
from repro.netmodel.forwarding import ForwardingPlane


def latency_network():
    net = Network("latency")
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_host("server", "203.0.113.1")
    net.link("internet", "r1", latency_s=0.010)
    net.link("r1", "r2", latency_s=0.005)
    net.link("r2", "server", latency_s=0.002)
    net.compute_routes()
    return net


class TestLatencyAccumulation:
    def test_delivery_time_sums_path_latencies(self):
        plane = ForwardingPlane(latency_network())
        deliveries = plane.send("internet", Packet(
            ip_src=parse_ip("8.8.8.8"),
            ip_dst=parse_ip("203.0.113.1"),
            ip_proto=UDP,
        ))
        assert len(deliveries) == 1
        assert deliveries[0].time == pytest.approx(0.017)

    def test_send_at_offsets_latency(self):
        plane = ForwardingPlane(latency_network())
        deliveries = plane.send("internet", Packet(
            ip_dst=parse_ip("203.0.113.1"), ip_proto=UDP,
        ), at=5.0)
        assert deliveries[0].time == pytest.approx(5.017)

    def test_zero_latency_by_default(self):
        net = Network()
        net.add_internet()
        net.add_router("r")
        net.add_host("h", "203.0.113.1")
        net.link("internet", "r")
        net.link("r", "h")
        net.compute_routes()
        plane = ForwardingPlane(net)
        deliveries = plane.send("internet", Packet(
            ip_dst=parse_ip("203.0.113.1"),
        ))
        assert deliveries[0].time == 0.0

    def test_link_latency_query(self):
        net = latency_network()
        assert net.link_latency("r1", "r2") == pytest.approx(0.005)
        with pytest.raises(ConfigError):
            net.link_latency("internet", "server")

    def test_latency_through_module(self):
        from repro.click import parse_config

        net = Network("modlat")
        net.add_internet()
        net.add_router("r")
        net.add_client_subnet("clients", "172.16.0.0/16")
        net.add_platform("p", "192.0.2.0/24")
        net.link("internet", "r", latency_s=0.010)
        net.link("r", "clients", latency_s=0.003)
        net.link("r", "p", latency_s=0.001)
        platform = net.node("p")
        address = platform.allocate_address()
        platform.deploy("mod", address, parse_config("""
            src :: FromNetfront();
            out :: ToNetfront();
            src -> IPRewriter(pattern - - 172.16.0.5 - 0 0) -> out;
        """))
        net.compute_routes()
        plane = ForwardingPlane(net)
        deliveries = plane.send("internet", Packet(
            ip_dst=address, ip_proto=UDP,
        ))
        # internet->r (10) + r->p (1) + p->r (1) + r->clients (3).
        assert deliveries[0].time == pytest.approx(0.015)
