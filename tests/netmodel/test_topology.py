"""Tests for the topology graph and route computation."""

import pytest

from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.netmodel import Network
from repro.netmodel.examples import figure3_network, linear_network


class TestConstruction:
    def test_duplicate_node_rejected(self):
        net = Network()
        net.add_router("r")
        with pytest.raises(ConfigError):
            net.add_router("r")

    def test_host_must_be_slash_32(self):
        net = Network()
        with pytest.raises(ConfigError):
            net.add_host("h", "10.0.0.0/8")

    def test_link_auto_ports(self):
        net = Network()
        net.add_router("a")
        net.add_router("b")
        net.add_router("c")
        net.link("a", "b")
        link = net.link("a", "c")
        assert link.a_port == 1  # port 0 already taken

    def test_link_explicit_port_conflict(self):
        net = Network()
        net.add_router("a")
        net.add_router("b")
        net.add_router("c")
        net.link("a", "b", a_port=0)
        with pytest.raises(ConfigError):
            net.link("a", "c", a_port=0)

    def test_unknown_node_in_link(self):
        net = Network()
        net.add_router("a")
        with pytest.raises(ConfigError):
            net.link("a", "ghost")

    def test_owned_addresses(self):
        net = Network()
        host = net.add_host("h", "1.2.3.4")
        subnet = net.add_client_subnet("c", "10.0.0.0/8")
        platform = net.add_platform("p", "192.0.2.0/24")
        assert parse_ip("1.2.3.4") in host.owned_addresses()
        assert parse_ip("10.255.0.1") in subnet.owned_addresses()
        assert parse_ip("192.0.2.200") in platform.owned_addresses()


class TestPlatformAddresses:
    def test_allocation_skips_network_address(self):
        net = Network()
        p = net.add_platform("p", "192.0.2.0/24")
        first = p.allocate_address()
        assert first == parse_ip("192.0.2.1")
        assert p.allocate_address() == parse_ip("192.0.2.2")

    def test_deploy_and_undeploy(self):
        net = Network()
        p = net.add_platform("p", "192.0.2.0/24")
        addr = p.allocate_address()
        p.deploy("m", addr, object())
        assert p.module_address("m") == addr
        with pytest.raises(ConfigError):
            p.deploy("m", addr, object())
        p.undeploy("m")
        assert "m" not in p.modules


class TestRouteComputation:
    def test_linear_chain_routes(self):
        net = linear_network(2, with_platform=False)
        # r0 must know how to reach the clients through the chain.
        r0 = net.node("r0")
        out = r0.table.lookup(parse_ip("172.16.15.133"))
        assert out is not None
        # And the internet via its direct link.
        assert r0.table.lookup(parse_ip("8.8.8.8")) is not None

    def test_figure3_routes(self):
        net = figure3_network()
        r1 = net.node("r1")
        # Client traffic leaves r1 toward the firewall.
        client_port = r1.table.lookup(parse_ip("172.16.15.133"))
        peer, _ = r1.ports[client_port]
        assert peer == "fw"
        # platform3 is directly attached.
        p3_port = r1.table.lookup(parse_ip("192.0.2.7"))
        assert r1.ports[p3_port][0] == "platform3"

    def test_recompute_after_change(self):
        net = figure3_network()
        r2 = net.node("r2")
        before = len(r2.table)
        net.add_host("newhost", "203.0.113.9")
        net.link("r2", "newhost")
        net.compute_routes()
        assert len(r2.table) == before + 1

    def test_disconnected_destination_has_no_route(self):
        net = Network()
        net.add_router("r")
        net.add_host("island", "9.9.9.9")
        net.compute_routes()
        assert net.node("r").table.lookup(parse_ip("9.9.9.9")) is None


class TestNeighbors:
    def test_neighbors_sorted_by_port(self):
        net = figure3_network()
        ports = [p for p, _peer, _pp in net.neighbors("r1")]
        assert ports == sorted(ports)
