"""Tests for the network-to-symbolic-graph compiler."""

import pytest

from repro.click import parse_config
from repro.common import fields as F
from repro.common.addr import parse_ip
from repro.common.errors import VerificationError
from repro.netmodel import NetworkCompiler
from repro.netmodel.examples import figure3_network
from repro.policy import parse_requirement
from repro.policy.grammar import NodeRef, KIND_NAME
from repro.symexec.reachability import ReachabilityChecker

BATCHER = """
    src :: FromNetfront();
    dst :: ToNetfront();
    src -> IPFilter(allow udp port 1500)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> dst;
"""


def deploy_batcher(net, platform="platform3", name="batcher"):
    p = net.node(platform)
    address = p.allocate_address()
    p.deploy(name, address, parse_config(BATCHER))
    net.compute_routes()
    return address


class TestCompilation:
    def test_compiles_plain_topology(self, figure3):
        compiled = NetworkCompiler(figure3).compile()
        assert "r1" in compiled.graph.models
        assert compiled.graph.sinks["clients"]
        assert not compiled.graph.sinks["r1"]

    def test_module_nodes_namespaced(self, figure3):
        deploy_batcher(figure3)
        compiled = NetworkCompiler(figure3).compile()
        assert "batcher/src" in compiled.graph.models
        assert "batcher/dst" in compiled.graph.models
        assert not compiled.graph.sinks["batcher/dst"]

    def test_module_without_source_rejected(self, figure3):
        p = figure3.node("platform3")
        p.deploy("bad", p.allocate_address(),
                 parse_config("x :: Counter();"))
        with pytest.raises(VerificationError):
            NetworkCompiler(figure3).compile()


class TestEndToEndExploration:
    def test_internet_reaches_client_through_module(self, figure3):
        deploy_batcher(figure3)
        compiled = NetworkCompiler(figure3).compile()
        req = parse_requirement(
            "reach from internet udp -> batcher:dst:0 -> client"
        )
        ex = compiled.explore_from(req.origin.node, req.origin.flow)
        checker = ReachabilityChecker(compiled.resolver)
        assert checker.check(req, ex).satisfied

    def test_private_platforms_unreachable(self, figure3):
        deploy_batcher(figure3, platform="platform1", name="hidden")
        compiled = NetworkCompiler(figure3).compile()
        req = parse_requirement(
            "reach from internet udp -> hidden:dst:0"
        )
        ex = compiled.explore_from(req.origin.node, req.origin.flow)
        checker = ReachabilityChecker(compiled.resolver)
        assert not checker.check(req, ex).satisfied

    def test_clients_can_reach_internet(self, figure3):
        compiled = NetworkCompiler(figure3).compile()
        req = parse_requirement("reach from client -> internet")
        ex = compiled.explore_from(req.origin.node, req.origin.flow)
        checker = ReachabilityChecker(compiled.resolver)
        assert checker.check(req, ex).satisfied

    def test_platform_demux_constrains_destination(self, figure3):
        address = deploy_batcher(figure3)
        compiled = NetworkCompiler(figure3).compile()
        engine = compiled.engine()
        ref = NodeRef(kind="internet")
        ex = compiled.explore_from(
            parse_requirement("reach from internet -> client").origin.node,
            None,
            engine=engine,
        )
        for flow in ex.flows_at("batcher/src"):
            entry = [t for t in flow.trace
                     if t.node == "batcher/src"][0]
            from repro.symexec.reachability import domain_at

            domain = domain_at(flow, entry.snapshot, F.IP_DST)
            assert domain.is_subset(
                __import__("repro.common.intervals",
                           fromlist=["IntervalSet"]
                           ).IntervalSet.single(address)
            )


class TestInjectionPoints:
    def test_internet_excludes_internal_sources(self, figure3):
        compiled = NetworkCompiler(figure3).compile()
        points = compiled.injection_points(NodeRef(kind="internet"))
        (node, source_set), = points
        assert node == "internet"
        assert parse_ip("172.16.15.133") not in source_set
        assert parse_ip("8.8.8.8") in source_set

    def test_client_constrained_to_subnet(self, figure3):
        compiled = NetworkCompiler(figure3).compile()
        (node, source_set), = compiled.injection_points(
            NodeRef(kind="client")
        )
        assert node == "clients"
        assert parse_ip("172.16.0.1") in source_set
        assert parse_ip("8.8.8.8") not in source_set

    def test_unknown_name_resolver_raises(self, figure3):
        compiled = NetworkCompiler(figure3).compile()
        with pytest.raises(VerificationError):
            compiled.resolver(NodeRef(kind=KIND_NAME, name="ghost"))
