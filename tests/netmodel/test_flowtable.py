"""Tests for the OpenFlow-style flow table."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import Packet, TCP, UDP
from repro.common import fields as F
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.common.intervals import IntervalSet
from repro.netmodel.flowtable import (
    ACTION_TO_MODULE,
    Action,
    FlowTable,
    module_steering_rule,
)


def single(addr_text):
    return IntervalSet.single(parse_ip(addr_text))


class TestRules:
    def test_priority_order(self):
        table = FlowTable()
        table.install(10, {F.IP_DST: single("10.0.0.1")},
                      Action.drop())
        high = table.install(
            50, {F.IP_DST: single("10.0.0.1")}, Action.output(3)
        )
        rule = table.lookup(Packet(ip_dst=parse_ip("10.0.0.1")))
        assert rule is high

    def test_tie_breaks_by_insertion(self):
        table = FlowTable()
        first = table.install(10, {}, Action.output(1))
        table.install(10, {}, Action.output(2))
        assert table.lookup(Packet()) is first

    def test_deferred_sort_preserves_order_semantics(self):
        # Regression for the batched-sort optimization: bulk installs
        # defer the priority sort to the next read, which must yield
        # exactly the order per-insert sorting produced -- including
        # stable tie-breaking by insertion order.
        eager, lazy = FlowTable(), FlowTable()
        priorities = [10, 50, 10, 100, 50, 1, 100, 10]
        for index, priority in enumerate(priorities):
            eager.install(priority, {}, Action.output(index))
            eager.rules  # force a sort after every install
            lazy.install(priority, {}, Action.output(index))
        assert lazy.rules == eager.rules
        assert lazy.lookup(Packet()) == eager.rules[0]

    def test_bulk_install_then_read(self):
        table = FlowTable()
        for i in range(500):
            table.install(
                100, {F.IP_DST: IntervalSet.single(i)},
                Action.to_module("m%d" % i), cookie="m%d" % i,
            )
        # One low-priority catch-all installed mid-stream must sort
        # below every steering rule.
        table.install(1, {}, Action.drop())
        for i in range(0, 500, 97):
            rule = table.lookup(Packet(ip_dst=i))
            assert rule.action.target == "m%d" % i
        assert table.rules[-1].action.kind == "drop"
        assert table.remove_by_cookie("m42") == 1
        assert table.lookup(Packet(ip_dst=42)).action.kind == "drop"

    def test_multi_field_match(self):
        table = FlowTable()
        table.install(10, {
            F.IP_DST: single("10.0.0.1"),
            F.IP_PROTO: IntervalSet.single(UDP),
            F.TP_DST: IntervalSet.single(53),
        }, Action.to_module("dns"))
        hit = Packet(ip_dst=parse_ip("10.0.0.1"), ip_proto=UDP,
                     tp_dst=53)
        miss = Packet(ip_dst=parse_ip("10.0.0.1"), ip_proto=TCP,
                      tp_dst=53)
        assert table.lookup(hit).action.target == "dns"
        assert table.lookup(miss) is None

    def test_empty_match_is_catch_all(self):
        table = FlowTable()
        table.install(1, {}, Action.output(0))
        assert table.lookup(Packet(ip_dst=12345)) is not None

    def test_invalid_match_field(self):
        table = FlowTable()
        with pytest.raises(ConfigError):
            table.install(1, {"payload": IntervalSet.single(1)},
                          Action.drop())

    def test_remove(self):
        table = FlowTable()
        rule = table.install(1, {}, Action.drop())
        assert table.remove(rule)
        assert not table.remove(rule)
        assert len(table) == 0

    def test_remove_by_cookie(self):
        table = FlowTable()
        table.install(1, {}, Action.drop(), cookie="m1")
        table.install(2, {}, Action.drop(), cookie="m1")
        table.install(3, {}, Action.drop(), cookie="m2")
        assert table.remove_by_cookie("m1") == 2
        assert len(table) == 1


class TestSymbolicBranches:
    def test_disjoint_single_field_rules(self):
        table = FlowTable()
        module_steering_rule(table, parse_ip("10.0.0.1"), "a")
        module_steering_rule(table, parse_ip("10.0.0.2"), "b")
        branches = table.symbolic_branches()
        assert len(branches) == 2
        domains = [residual[F.IP_DST] for _a, residual in branches]
        assert not domains[0].overlaps(domains[1])

    def test_shadowed_rule_pruned(self):
        table = FlowTable()
        table.install(
            100, {F.IP_DST: single("10.0.0.1")}, Action.output(1)
        )
        table.install(
            10, {F.IP_DST: single("10.0.0.1")}, Action.output(2)
        )
        branches = table.symbolic_branches()
        assert len(branches) == 1
        assert branches[0][0].target == 1

    def test_partial_shadow_subtracted(self):
        table = FlowTable()
        table.install(
            100, {F.IP_DST: single("10.0.0.1")}, Action.drop()
        )
        low, high = parse_ip("10.0.0.0"), parse_ip("10.0.0.255")
        table.install(
            10,
            {F.IP_DST: IntervalSet.from_interval(low, high)},
            Action.output(1),
        )
        branches = table.symbolic_branches()
        wide = [b for a, b in branches if a.kind == "output"][0]
        assert parse_ip("10.0.0.1") not in wide[F.IP_DST]
        assert parse_ip("10.0.0.2") in wide[F.IP_DST]

    @settings(max_examples=40, deadline=None)
    @given(addr=st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_branches_agree_with_lookup_for_steering(self, addr):
        table = FlowTable()
        module_steering_rule(table, parse_ip("10.0.0.1"), "a")
        module_steering_rule(table, parse_ip("10.0.0.2"), "b")
        rule = table.lookup(Packet(ip_dst=addr))
        hits = [
            action.target
            for action, residual in table.symbolic_branches()
            if all(
                addr in allowed
                for name, allowed in residual.items()
                if name == F.IP_DST
            )
        ]
        if rule is None:
            assert hits == []
        else:
            assert hits == [rule.action.target]


class TestSteeringHelper:
    def test_cookie_is_module_name(self):
        table = FlowTable()
        rule = module_steering_rule(table, parse_ip("10.0.0.1"), "m")
        assert rule.cookie == "m"
        assert rule.action.kind == ACTION_TO_MODULE
