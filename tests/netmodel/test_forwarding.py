"""Tests for the concrete forwarding plane."""

import pytest

from repro.click import Packet, UDP, parse_config
from repro.common.addr import parse_ip
from repro.common.errors import SimulationError
from repro.netmodel.examples import figure3_network
from repro.netmodel.forwarding import ForwardingPlane
from repro.netmodel.topology import Network

BATCHER = """
    src :: FromNetfront();
    dst :: ToNetfront();
    src -> IPFilter(allow udp port 1500)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> TimedUnqueue(60, 100)
        -> dst;
"""

IMMEDIATE = """
    src :: FromNetfront();
    dst :: ToNetfront();
    src -> IPFilter(allow udp)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> dst;
"""


def deploy(net, source, platform="platform3", name="mod"):
    p = net.node(platform)
    address = p.allocate_address()
    p.deploy(name, address, parse_config(source))
    net.compute_routes()
    return address


def udp_packet(dst, tp_dst=1500, src="8.8.8.8"):
    return Packet(
        ip_src=parse_ip(src), ip_dst=dst, ip_proto=UDP, tp_dst=tp_dst,
    )


class TestBasicForwarding:
    def test_internet_to_client_direct(self):
        net = figure3_network()
        plane = ForwardingPlane(net)
        deliveries = plane.send(
            "internet", udp_packet(parse_ip("172.16.15.133"))
        )
        assert len(deliveries) == 1
        assert deliveries[0].node == "clients"
        # The path traverses the border router and the firewall.
        assert "r1" in deliveries[0].path
        assert "fw" in deliveries[0].path

    def test_no_route_drops(self):
        # No internet node = no default route: unowned destinations
        # are dropped at the router.
        net = Network()
        net.add_client_subnet("clients", "172.16.0.0/16")
        net.add_router("r")
        net.link("clients", "r")
        net.compute_routes()
        plane = ForwardingPlane(net)
        assert plane.send(
            "clients",
            udp_packet(parse_ip("10.0.0.1"), src="172.16.0.5"),
        ) == []
        assert plane.stats.dropped_no_route == 1

    def test_operator_firewall_filters(self):
        net = figure3_network()
        plane = ForwardingPlane(net)
        # The fw denies traffic destined to the private platform pools.
        assert plane.send(
            "internet", udp_packet(parse_ip("10.1.0.1"))
        ) == []
        assert plane.stats.dropped_by_middlebox == 1

    def test_cannot_send_from_router(self):
        net = figure3_network()
        plane = ForwardingPlane(net)
        with pytest.raises(SimulationError):
            plane.send("r1", udp_packet(parse_ip("172.16.15.133")))


class TestModuleForwarding:
    def test_through_module_to_client(self):
        net = figure3_network()
        address = deploy(net, IMMEDIATE)
        plane = ForwardingPlane(net)
        deliveries = plane.send("internet", udp_packet(address))
        assert len(deliveries) == 1
        delivery = deliveries[0]
        assert delivery.node == "clients"
        assert delivery.packet["ip_dst"] == parse_ip("172.16.15.133")
        assert "platform3/mod" in delivery.path

    def test_module_filter_drops(self):
        net = figure3_network()
        address = deploy(net, IMMEDIATE)
        plane = ForwardingPlane(net)
        tcp = udp_packet(address)
        tcp["ip_proto"] = 6
        assert plane.send("internet", tcp) == []

    def test_batched_release_needs_time(self):
        net = figure3_network()
        address = deploy(net, BATCHER)
        plane = ForwardingPlane(net)
        assert plane.send("internet", udp_packet(address)) == []
        assert plane.send("internet", udp_packet(address)) == []
        released = plane.run_until(60.0)
        assert len(released) == 2
        assert all(d.node == "clients" for d in released)
        assert all(d.time == 60.0 for d in released)

    def test_unmatched_platform_traffic_dropped(self):
        net = figure3_network()
        deploy(net, IMMEDIATE)
        plane = ForwardingPlane(net)
        pool_addr = parse_ip("192.0.2.200")  # platform pool, no module
        assert plane.send("internet", udp_packet(pool_addr)) == []
        assert plane.stats.dropped_by_platform == 1

    def test_module_runtime_accessible(self):
        net = figure3_network()
        deploy(net, IMMEDIATE)
        plane = ForwardingPlane(net)
        assert plane.module_runtime("mod").config.sources() == ["src"]
        with pytest.raises(SimulationError):
            plane.module_runtime("ghost")


class TestHairpin:
    def test_module_to_module_on_same_platform(self):
        net = figure3_network()
        p3 = net.node("platform3")
        addr_b = None
        # Module A rewrites to module B's (future) address; deploy B
        # first so we know it.
        addr_b = p3.allocate_address()
        p3.deploy("b", addr_b, parse_config(IMMEDIATE))
        addr_a = p3.allocate_address()
        from repro.common.addr import format_ip

        p3.deploy("a", addr_a, parse_config("""
            src :: FromNetfront();
            dst :: ToNetfront();
            src -> IPRewriter(pattern - - %s - 0 0) -> dst;
        """ % format_ip(addr_b)))
        net.compute_routes()
        plane = ForwardingPlane(net)
        deliveries = plane.send("internet", udp_packet(addr_a))
        # a rewrote to b; b rewrote to the client address.
        assert len(deliveries) == 1
        assert deliveries[0].packet["ip_dst"] == parse_ip(
            "172.16.15.133"
        )
        assert "platform3/a" in deliveries[0].path
        assert "platform3/b" in deliveries[0].path


class TestTimeDiscipline:
    def test_send_at_advances_clock(self):
        net = figure3_network()
        plane = ForwardingPlane(net)
        plane.send("internet", udp_packet(parse_ip("172.16.15.133")),
                   at=5.0)
        assert plane.now == 5.0
        assert plane.deliveries[-1].time == 5.0

    def test_time_cannot_reverse(self):
        net = figure3_network()
        plane = ForwardingPlane(net)
        plane.run_until(10.0)
        with pytest.raises(SimulationError):
            plane.run_until(5.0)
        with pytest.raises(SimulationError):
            plane.send("internet",
                       udp_packet(parse_ip("172.16.15.133")), at=1.0)
