"""Tests for LPM routing tables."""

from hypothesis import given
from hypothesis import strategies as st

from repro.common.addr import parse_ip, prefix_range
from repro.netmodel.routing import Route, RoutingTable


def table(*entries):
    t = RoutingTable()
    for prefix, port in entries:
        net, _, plen = prefix.partition("/")
        t.add(parse_ip(net), int(plen), port)
    return t


class TestLookup:
    def test_longest_prefix_wins(self):
        t = table(("10.0.0.0/8", 1), ("10.1.0.0/16", 2),
                  ("10.1.2.0/24", 3))
        assert t.lookup(parse_ip("10.1.2.3")) == 3
        assert t.lookup(parse_ip("10.1.9.9")) == 2
        assert t.lookup(parse_ip("10.9.9.9")) == 1

    def test_default_route(self):
        t = table(("0.0.0.0/0", 9), ("10.0.0.0/8", 1))
        assert t.lookup(parse_ip("8.8.8.8")) == 9
        assert t.lookup(parse_ip("10.0.0.1")) == 1

    def test_no_route_returns_none(self):
        t = table(("10.0.0.0/8", 1))
        assert t.lookup(parse_ip("11.0.0.0")) is None

    def test_host_bits_cleared_on_add(self):
        t = RoutingTable()
        t.add(parse_ip("10.1.2.3"), 8, 5)
        assert t.routes[0].network == parse_ip("10.0.0.0")

    def test_remove_port(self):
        t = table(("10.0.0.0/8", 1), ("11.0.0.0/8", 2))
        t.remove_port(1)
        assert t.lookup(parse_ip("10.0.0.1")) is None
        assert t.lookup(parse_ip("11.0.0.1")) == 2

    def test_constructor_accepts_routes(self):
        t = RoutingTable([Route(parse_ip("10.0.0.0"), 8, 1)])
        assert len(t) == 1


class TestSymbolicSplit:
    def test_branches_disjoint(self):
        t = table(("10.0.0.0/8", 1), ("10.1.0.0/16", 2), ("0.0.0.0/0", 3))
        branches = t.symbolic_split()
        for i, (_pa, sa) in enumerate(branches):
            for _pb, sb in branches[i + 1:]:
                assert not sa.overlaps(sb)

    def test_fully_shadowed_route_omitted(self):
        t = table(("10.0.0.0/8", 1), ("10.0.0.0/8", 1))
        # duplicate coverage: second branch empty and omitted
        assert len(t.symbolic_split()) == 1

    @given(st.integers(min_value=0, max_value=(1 << 32) - 1))
    def test_split_agrees_with_lookup(self, addr):
        t = table(
            ("10.0.0.0/8", 1),
            ("10.1.0.0/16", 2),
            ("10.1.2.0/24", 3),
            ("192.168.0.0/16", 4),
            ("0.0.0.0/0", 5),
        )
        expected = t.lookup(addr)
        hits = [
            port for port, allowed in t.symbolic_split()
            if addr in allowed
        ]
        if expected is None:
            assert hits == []
        else:
            assert hits == [expected]
