"""Cross-validating the concrete and symbolic dataplanes.

Over random tree topologies, a packet forwarded concretely must arrive
exactly where symbolic exploration says that destination class goes --
the consistency that makes the controller's verdicts meaningful for
real traffic.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import Packet, UDP
from repro.common.addr import parse_ip
from repro.netmodel import Network, NetworkCompiler
from repro.netmodel.forwarding import ForwardingPlane
from repro.symexec.engine import SymFlow


def build_tree(seed: int, n_routers: int, n_hosts: int) -> Network:
    """A random router tree with hosts hanging off random routers."""
    rng = random.Random(seed)
    net = Network("tree-%d" % seed)
    net.add_internet()
    net.add_router("r0")
    net.link("internet", "r0")
    for index in range(1, n_routers):
        net.add_router("r%d" % index)
        parent = rng.randrange(index)
        net.link("r%d" % parent, "r%d" % index)
    for index in range(n_hosts):
        address = "203.0.%d.%d" % (index + 1, rng.randrange(1, 255))
        net.add_host("h%d" % index, address)
        net.link("r%d" % rng.randrange(n_routers), "h%d" % index)
    net.compute_routes()
    return net


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_routers=st.integers(min_value=1, max_value=8),
    n_hosts=st.integers(min_value=1, max_value=6),
    target=st.integers(min_value=0, max_value=5),
)
def test_concrete_delivery_matches_symbolic(
    seed, n_routers, n_hosts, target
):
    net = build_tree(seed, n_routers, n_hosts)
    target_host = net.node("h%d" % (target % n_hosts))
    packet = Packet(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=target_host.address,
        ip_proto=UDP,
    )
    # Concrete forwarding.
    plane = ForwardingPlane(net)
    deliveries = plane.send("internet", packet)
    assert len(deliveries) == 1
    assert deliveries[0].node == target_host.name
    # Symbolic exploration, constrained to the same destination.
    compiled = NetworkCompiler(net).compile()
    engine = compiled.engine()
    flow = SymFlow(engine.fresh_packet())
    from repro.common.intervals import IntervalSet

    assert flow.constrain_field(
        "ip_dst", IntervalSet.single(target_host.address)
    )
    exploration = engine.inject_departure("internet", flow)
    arrived = {f.trace[-1].node for f in exploration.delivered}
    assert arrived == {target_host.name}
    # And the symbolic path equals the concrete one.
    (symbolic_flow,) = exploration.delivered
    symbolic_path = tuple(t.node for t in symbolic_flow.trace)
    assert symbolic_path == deliveries[0].path


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_routers=st.integers(min_value=1, max_value=8),
    n_hosts=st.integers(min_value=1, max_value=6),
)
def test_unconstrained_exploration_covers_every_endpoint(
    seed, n_routers, n_hosts
):
    """An unconstrained injection must reach every addressed endpoint
    (the default route also returns flows to the internet)."""
    net = build_tree(seed, n_routers, n_hosts)
    compiled = NetworkCompiler(net).compile()
    exploration = compiled.engine().inject_departure("internet")
    arrived = {f.trace[-1].node for f in exploration.delivered}
    expected = {"h%d" % i for i in range(n_hosts)}
    assert expected <= arrived


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=10_000),
    n_routers=st.integers(min_value=2, max_value=8),
    n_hosts=st.integers(min_value=1, max_value=6),
)
def test_symbolic_branches_disjoint_at_each_router(
    seed, n_routers, n_hosts
):
    """Flows delivered to different endpoints carry disjoint
    destination domains (LPM split soundness at topology scale)."""
    net = build_tree(seed, n_routers, n_hosts)
    compiled = NetworkCompiler(net).compile()
    exploration = compiled.engine().inject_departure("internet")
    by_endpoint = {}
    for flow in exploration.delivered:
        by_endpoint.setdefault(flow.trace[-1].node, []).append(
            flow.field_domain("ip_dst")
        )
    endpoints = sorted(by_endpoint)
    for i, a in enumerate(endpoints):
        for b in endpoints[i + 1:]:
            for domain_a in by_endpoint[a]:
                for domain_b in by_endpoint[b]:
                    assert not domain_a.overlaps(domain_b), (a, b)
