"""Network-level exploration through stateful operator middleboxes.

The Figure 1 scenario at topology scale: a stateful firewall on the
client path means unsolicited inbound traffic cannot reach clients,
while client-initiated traffic flows out -- and the controller's reach
checks see exactly that.
"""

import pytest

from repro.netmodel import Network, NetworkCompiler
from repro.policy import parse_requirement
from repro.symexec.reachability import ReachabilityChecker


@pytest.fixture
def guarded_network():
    net = Network("guarded")
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", "172.16.0.0/16")
    # Stateful firewall: port 0 = inside (clients), port 1 = outside.
    net.add_middlebox("fw", "StatefulFirewall", "allow udp")
    net.link("internet", "r1")
    net.link("r1", "fw", b_port=1)
    net.link("fw", "r2", a_port=0)
    net.link("r2", "clients")
    net.compute_routes()
    return net


def check(net, text):
    compiled = NetworkCompiler(net).compile()
    requirement = parse_requirement(text)
    exploration = compiled.explore_from(
        requirement.origin.node, requirement.origin.flow
    )
    return ReachabilityChecker(compiled.resolver).check(
        requirement, exploration
    )


class TestStatefulFirewallPolicy:
    def test_unsolicited_inbound_blocked(self, guarded_network):
        result = check(
            guarded_network, "reach from internet -> client"
        )
        assert not result.satisfied

    def test_outbound_udp_allowed(self, guarded_network):
        result = check(
            guarded_network, "reach from client udp -> internet"
        )
        assert result.satisfied

    def test_outbound_tcp_filtered(self, guarded_network):
        # The firewall only allows UDP out (the Figure 1 operator).
        result = check(
            guarded_network, "reach from client tcp -> internet"
        )
        assert not result.satisfied

    def test_outbound_flow_is_tagged(self, guarded_network):
        compiled = NetworkCompiler(guarded_network).compile()
        requirement = parse_requirement(
            "reach from client udp -> internet"
        )
        exploration = compiled.explore_from(
            requirement.origin.node, requirement.origin.flow
        )
        delivered = [
            f for f in exploration.delivered
            if f.trace[-1].node == "internet"
        ]
        assert delivered
        for flow in delivered:
            # State pushed into the flow: the tag travels with it.
            assert flow.field_domain(
                "firewall_tag"
            ).singleton_value() == 1

    def test_waypoint_through_firewall(self, guarded_network):
        result = check(
            guarded_network,
            "reach from client udp -> fw -> internet",
        )
        assert result.satisfied
