"""Registry-wide differential test: batched vs scalar execution.

Every element class in the registry is driven through the same traffic
twice -- once packet-by-packet via :meth:`Runtime.inject` and once
through :meth:`Runtime.inject_batch` -- and the two runs must agree
exactly: the same canonical packet sequence at every sink (fields,
annotations, encapsulation stack, length -- everything except the
packet uid), the same runtime drop count, and the same numeric counters
on every element.  This is the safety net that lets elements override
``push_batch`` with hand-vectorized code: any divergence from the
scalar semantics fails here.
"""

from typing import Callable, NamedTuple, Optional, Tuple

import pytest

from repro.click import Packet, Runtime, parse_config
from repro.click.element import element_registry
from repro.click.packet import GRE, ICMP, TCP, TH_SYN, UDP
from repro.common.addr import parse_ip


def _packet(annotations=None, **fields):
    for key in ("ip_src", "ip_dst"):
        if isinstance(fields.get(key), str):
            fields[key] = parse_ip(fields[key])
    length = fields.pop("length", 64)
    return Packet(length=length, annotations=annotations, **fields)


def forward_packets():
    """A diverse traffic mix exercising every element's branches.

    Fresh :class:`Packet` objects on every call -- elements mutate
    packets in place, so the scalar and batch runs each need their own
    copies (built identically, so canonical comparison is exact).
    """
    get = (b"GET /index.html HTTP/1.1\r\n"
           b"Accept-Encoding: gzip\r\n\r\n")
    tunneled = _packet(ip_src="10.1.1.1", ip_dst="10.2.2.2",
                       ip_proto=UDP, tp_src=53, tp_dst=5353)
    tunneled.encapsulate(ip_proto=GRE,
                         ip_src=parse_ip("10.0.0.99"),
                         ip_dst=parse_ip("203.0.113.9"))
    tunneled.length += 20
    return [
        _packet(ip_src="10.0.0.1", ip_dst="192.0.2.10", ip_proto=UDP,
                tp_src=5000, tp_dst=1500),
        _packet(ip_src="10.0.0.1", ip_dst="192.0.2.10", ip_proto=UDP,
                tp_src=5000, tp_dst=1500),  # repeat of the same flow
        _packet(ip_src="10.0.0.2", ip_dst="192.0.2.10", ip_proto=TCP,
                tp_src=4321, tp_dst=80, tcp_flags=TH_SYN),
        _packet(ip_src="10.0.0.3", ip_dst="172.16.15.133", ip_proto=TCP,
                tp_src=999, tp_dst=443, length=1500),
        _packet(ip_src="8.8.8.8", ip_dst="192.0.2.10", ip_proto=ICMP),
        _packet(ip_src="10.0.0.4", ip_dst="192.0.2.10", ip_proto=UDP,
                ip_ttl=1),
        _packet(ip_src="255.255.255.255", ip_dst="192.0.2.10",
                ip_proto=UDP),  # broadcast source (CheckIPHeader drop)
        _packet(ip_src="10.0.0.5", ip_dst="192.0.2.10", ip_proto=UDP,
                ip_ttl=0),  # invalid TTL
        _packet(ip_src="10.0.0.6", ip_dst="203.0.113.7", ip_proto=TCP,
                tp_src=1234, tp_dst=80, payload=get),
        _packet(ip_src="10.0.0.6", ip_dst="203.0.113.7", ip_proto=TCP,
                tp_src=1234, tp_dst=80, payload=get),  # cache hit
        _packet(ip_src="10.0.0.7", ip_dst="192.0.2.10", ip_proto=TCP,
                tp_src=2000, tp_dst=3128,
                payload=b"FETCH http://93.184.216.34/ HTTP/1.1"),
        _packet(ip_src="10.0.0.8", ip_dst="192.0.2.10", ip_proto=UDP,
                annotations={"paint": 1}),
        tunneled,
    ]


def reverse_packets():
    """Reverse-direction traffic for two-sided elements (port 1)."""
    return [
        _packet(ip_src="192.0.2.10", ip_dst="10.0.0.1", ip_proto=UDP,
                tp_src=1500, tp_dst=5000),  # reverses the UDP flow
        _packet(ip_src="192.0.2.10", ip_dst="10.0.0.2", ip_proto=TCP,
                tp_src=80, tp_dst=4321),
        _packet(ip_src="172.16.15.133", ip_dst="10.0.0.3", ip_proto=TCP,
                tp_src=443, tp_dst=999),
        _packet(ip_src="198.51.100.99", ip_dst="10.9.9.9", ip_proto=UDP,
                tp_src=7, tp_dst=7),  # no established forward flow
    ]


def one_sided():
    return [forward_packets()]


def two_sided():
    return [forward_packets(), reverse_packets()]


class Spec(NamedTuple):
    """How to wrap one element class into a differential harness."""

    args: str = ""
    inputs: int = 1
    outputs: int = 1
    config: Optional[str] = None      # full config override
    entries: Optional[Tuple[str, ...]] = None
    run: bool = False                 # timer-driven: rt.run() to drain
    traffic: Callable = one_sided


#: One spec per registered element class.  ``test_registry_fully_covered``
#: fails if a newly registered element has no entry here.
SPECS = {
    # -- io ---------------------------------------------------------------
    "FromNetfront": Spec(
        config="dut :: FromNetfront(); out0 :: ToNetfront(); dut -> out0;",
        entries=("dut",),
    ),
    "FromDevice": Spec(
        config="dut :: FromDevice(); out0 :: ToNetfront(); dut -> out0;",
        entries=("dut",),
    ),
    "ToNetfront": Spec(
        config="src0 :: FromNetfront(); dut :: ToNetfront(); src0 -> dut;",
    ),
    "ToDevice": Spec(
        config="src0 :: FromNetfront(); dut :: ToDevice(); src0 -> dut;",
    ),
    "Discard": Spec(outputs=0),
    "Idle": Spec(outputs=0),
    # -- classify ---------------------------------------------------------
    "IPFilter": Spec(args="allow udp, allow tcp dst port 80"),
    "IPClassifier": Spec(args="tcp, udp", outputs=2),
    "Classifier": Spec(args="icmp, tcp, udp", outputs=3),
    "IngressFilter": Spec(args="10.0.0.0/8", inputs=2, outputs=2,
                          traffic=two_sided),
    # -- rewrite ----------------------------------------------------------
    "IPRewriter": Spec(args="pattern 192.0.2.10 1024-65535 - - 0 0"),
    "SetIPAddress": Spec(args="198.51.100.1"),
    "SetIPSrc": Spec(args="198.51.100.2"),
    "SetTPDst": Spec(args="8080"),
    "SetTPSrc": Spec(args="4000"),
    "DecIPTTL": Spec(outputs=2),
    "CheckIPHeader": Spec(),
    # -- stats ------------------------------------------------------------
    "Counter": Spec(),
    "FlowMeter": Spec(),
    "Tee": Spec(args="3", outputs=3),
    "Paint": Spec(args="7"),
    "PaintSwitch": Spec(outputs=2),
    # -- shaping ----------------------------------------------------------
    "Queue": Spec(  # no drain side: packets buffer, overflow drops
        config="src0 :: FromNetfront(); dut :: Queue(5); src0 -> dut;",
    ),
    "Unqueue": Spec(
        config="src0 :: FromNetfront(); q :: Queue(100);"
               " dut :: Unqueue(); out0 :: ToNetfront();"
               " src0 -> q -> dut -> out0;",
    ),
    "TimedUnqueue": Spec(args="0.5, 4", run=True),
    "RatedUnqueue": Spec(args="100", run=True),
    "BandwidthShaper": Spec(args="80000, 5", run=True),
    "RateLimiter": Spec(args="5, 5", outputs=2),
    # -- switching --------------------------------------------------------
    "Switch": Spec(args="1", outputs=2),
    "RoundRobinSwitch": Spec(outputs=3),
    "Meter": Spec(args="5", outputs=2),
    "SetIPTTL": Spec(args="32"),
    "SetIPTOS": Spec(args="8"),
    "ICMPPingResponder": Spec(),
    # -- multicast --------------------------------------------------------
    "Multicast": Spec(args="198.51.100.7, 198.51.100.8"),
    # -- dpi --------------------------------------------------------------
    "DPI": Spec(args="GET", outputs=2),
    "TransparentProxy": Spec(args="192.0.2.77, 3128"),
    "HTTPOptimizer": Spec(),
    "WebCache": Spec(outputs=2),
    # -- stateful ---------------------------------------------------------
    "StatefulFirewall": Spec(args="allow udp", inputs=2, outputs=2,
                             traffic=two_sided),
    # -- tunnel -----------------------------------------------------------
    "IPEncap": Spec(args="47, 10.0.0.99, 203.0.113.9"),
    "UDPIPEncap": Spec(args="10.0.0.99, 7000, 203.0.113.9, 7001"),
    "IPDecap": Spec(),
    # -- web --------------------------------------------------------------
    "EchoResponder": Spec(),
    "ReverseProxy": Spec(args="203.0.113.50, 8080", inputs=2, outputs=2,
                         traffic=two_sided),
    "GeoDNSServer": Spec(args="10.0.0.50, 172.16.0.50"),
    "LoadBalancer": Spec(args="10.0.1.1, 10.0.1.2, 10.0.1.3"),
    "ExplicitProxy": Spec(args="192.0.2.88"),
    "X86VM": Spec(),
    # -- sandbox ----------------------------------------------------------
    "ChangeEnforcer": Spec(args="addr 192.0.2.9, whitelist 172.16.15.133",
                           inputs=2, outputs=2, traffic=two_sided),
}


def build_config(name: str, spec: Spec) -> str:
    if spec.config is not None:
        return spec.config
    lines = []
    for i in range(spec.inputs):
        lines.append("src%d :: FromNetfront();" % i)
    lines.append("dut :: %s(%s);" % (name, spec.args))
    for o in range(spec.outputs):
        lines.append("out%d :: ToNetfront();" % o)
    for i in range(spec.inputs):
        if spec.inputs == 1:
            lines.append("src0 -> dut;")
        else:
            lines.append("src%d -> [%d]dut;" % (i, i))
    for o in range(spec.outputs):
        lines.append("dut[%d] -> out%d;" % (o, o))
    return "\n".join(lines)


def canonical(packet) -> tuple:
    """Everything observable about a packet except its uid."""
    annotations = tuple(sorted(
        (k, v) for k, v in packet.annotations.items()
        if not k.startswith("obs.")
    ))
    encap = tuple(
        tuple(sorted(layer.items())) for layer in packet.encap_stack
    )
    return (
        tuple(sorted(packet.fields.items())),
        annotations,
        encap,
        packet.length,
    )


def egress_by_sink(runtime) -> dict:
    by_sink = {}
    for record in runtime.output:
        by_sink.setdefault(record.element, []).append(
            (canonical(record.packet), record.time)
        )
    return by_sink


def numeric_state(runtime) -> dict:
    """Public int/float attributes (and buffer depths) per element."""
    state = {}
    for name, element in runtime.elements.items():
        attrs = {
            key: value for key, value in vars(element).items()
            if not key.startswith("_")
            and isinstance(value, (int, float))
        }
        buffer = getattr(element, "buffer", None)
        if buffer is not None:
            attrs["buffered"] = len(buffer)
        state[name] = attrs
    return state


def run_mode(name: str, spec: Spec, mode: str):
    runtime = Runtime(parse_config(build_config(name, spec)))
    entries = spec.entries or tuple(
        "src%d" % i for i in range(spec.inputs)
    )
    per_source = spec.traffic()
    assert len(per_source) >= len(entries)
    for entry, packets in zip(entries, per_source):
        if mode == "scalar":
            for packet in packets:
                runtime.inject(entry, packet)
        else:
            runtime.inject_batch(entry, packets)
    if spec.run:
        runtime.run(until=60.0)
    return (
        egress_by_sink(runtime),
        runtime.dropped,
        numeric_state(runtime),
    )


def test_registry_fully_covered():
    """Every registered element class must have a differential spec."""
    assert set(SPECS) == set(element_registry())


@pytest.mark.parametrize("name", sorted(SPECS))
def test_batch_matches_scalar(name):
    spec = SPECS[name]
    scalar_egress, scalar_dropped, scalar_state = run_mode(
        name, spec, "scalar"
    )
    batch_egress, batch_dropped, batch_state = run_mode(
        name, spec, "batch"
    )
    assert batch_egress == scalar_egress
    assert batch_dropped == scalar_dropped
    assert batch_state == scalar_state


def test_batch_matches_scalar_sanity():
    """The harness itself must produce traffic (not trivially empty)."""
    egress, _dropped, state = run_mode(
        "Counter", SPECS["Counter"], "batch"
    )
    packets = forward_packets()
    assert state["dut"]["packets"] == len(packets)
    assert len(egress["out0"]) == len(packets)


def test_unconnected_port_drops_match():
    """Off-chain emissions to unconnected ports count as runtime drops
    identically on both paths (DecIPTTL's expiry port here)."""
    source = (
        "src0 :: FromNetfront(); dut :: DecIPTTL();"
        " out0 :: ToNetfront(); src0 -> dut; dut[0] -> out0;"
    )
    results = {}
    for mode in ("scalar", "batch"):
        runtime = Runtime(parse_config(source))
        packets = forward_packets()
        if mode == "scalar":
            for packet in packets:
                runtime.inject("src0", packet)
        else:
            runtime.inject_batch("src0", packets)
        results[mode] = (egress_by_sink(runtime), runtime.dropped)
    assert results["batch"] == results["scalar"]
    assert results["scalar"][1] > 0  # the TTL<=1 packets were dropped
