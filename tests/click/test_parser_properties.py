"""Property-based tests for the Click configuration parser.

Random configurations built from the element registry must round-trip
through serialization and always instantiate into a runnable runtime.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import Packet, Runtime, parse_config
from repro.click.config import ClickConfig

#: Linear-chain-safe element constructors (1 input, 1 output).
CHAINABLE = [
    "Counter()",
    "CheckIPHeader()",
    "IPFilter(allow udp)",
    "IPFilter(allow tcp, allow udp)",
    "SetTPDst(80)",
    "SetTPSrc(1024)",
    "SetIPAddress(10.0.0.1)",
    "IPRewriter(pattern - - 10.0.0.2 - 0 0)",
    "Paint(3)",
    "Queue(100)",
    "Unqueue()",
    "TimedUnqueue(5, 10)",
    "BandwidthShaper(1000000)",
    "Multicast(10.0.0.3)",
    "EchoResponder()",
    "UDPIPEncap(9.9.9.9, 1, 8.8.8.8, 2)",
    "IPDecap()",
    "LoadBalancer(10.0.0.4, 10.0.0.5)",
]

names = st.from_regex(r"[a-z][a-z0-9_]{0,8}", fullmatch=True)
chains = st.lists(st.sampled_from(CHAINABLE), min_size=1, max_size=6)


def build_source(chain):
    return (
        "src :: FromNetfront(); dst :: ToNetfront(); src -> "
        + " -> ".join(chain)
        + " -> dst;"
    )


@settings(max_examples=80, deadline=None)
@given(chain=chains)
def test_roundtrip_preserves_structure(chain):
    config = parse_config(build_source(chain))
    config.validate()
    again = parse_config(config.to_click())
    assert set(again.elements) == set(config.elements)
    assert {tuple(e) for e in again.edges} == {
        tuple(e) for e in config.edges
    }
    assert all(
        again.elements[n] == config.elements[n] for n in config.elements
    )


@settings(max_examples=60, deadline=None)
@given(chain=chains)
def test_every_generated_config_instantiates(chain):
    config = parse_config(build_source(chain))
    runtime = Runtime(config)
    runtime.inject("src", Packet())
    runtime.run(until=100.0)
    # No invariant on delivery (filters/decap may drop), but the run
    # must complete and account for the packet exactly once overall.
    assert runtime.now == 100.0


@settings(max_examples=60, deadline=None)
@given(chain=chains)
def test_symbolic_models_cover_generated_configs(chain):
    from repro.symexec import SymbolicEngine, SymGraph

    config = parse_config(build_source(chain))
    engine = SymbolicEngine(SymGraph.from_click(config))
    exploration = engine.inject("src")
    # Exploration always terminates and accounts for every flow.
    assert exploration.steps >= len(config.elements) - 1 or (
        exploration.dropped
    )
    assert exploration.delivered or exploration.dropped


@settings(max_examples=40, deadline=None)
@given(
    first=names, second=names, chain=chains
)
def test_named_declarations_roundtrip(first, second, chain):
    if first == second or first in ("src", "dst", "input", "output"):
        return
    if second in ("src", "dst", "input", "output"):
        return
    source = (
        "%s :: %s %s :: %s"
        % (first, CHAINABLE[0] + ";", second, CHAINABLE[1] + ";")
    )
    config = parse_config(source)
    assert first in config.elements and second in config.elements
    again = parse_config(config.to_click())
    assert set(again.elements) == {first, second}
