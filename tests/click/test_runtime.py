"""Tests for the Click runtime engine."""

import pytest

from repro.click import Packet, Runtime, parse_config
from repro.common.errors import ConfigError, SimulationError


def run_config(source, packets, until=None, inject_at=None):
    cfg = parse_config(source)
    rt = Runtime(cfg)
    src = cfg.sources()[0]
    for i, p in enumerate(packets):
        at = inject_at[i] if inject_at else None
        rt.inject(src, p, at=at)
    rt.run(until=until)
    return rt


class TestBasics:
    def test_passthrough(self):
        rt = run_config(
            "FromNetfront() -> dst :: ToNetfront();", [Packet()]
        )
        assert len(rt.output) == 1
        assert rt.output[0].element == "dst"

    def test_egress_records_time(self):
        rt = run_config(
            "FromNetfront() -> dst :: ToNetfront();",
            [Packet()],
            inject_at=[5.0],
            until=10.0,
        )
        assert rt.output[0].time == 5.0

    def test_dangling_output_counts_drop(self):
        rt = run_config("src :: FromNetfront();", [Packet()])
        assert rt.dropped == 1
        assert not rt.output

    def test_inject_unknown_element(self):
        cfg = parse_config("a :: Counter();")
        rt = Runtime(cfg)
        with pytest.raises(ConfigError):
            rt.inject("missing", Packet())

    def test_inject_in_past_rejected(self):
        cfg = parse_config("a :: FromNetfront(); a -> ToNetfront();")
        rt = Runtime(cfg, start_time=10.0)
        with pytest.raises(SimulationError):
            rt.inject("a", Packet(), at=5.0)

    def test_take_output_clears(self):
        rt = run_config(
            "FromNetfront() -> ToNetfront();", [Packet(), Packet()]
        )
        assert len(rt.take_output()) == 2
        assert rt.output == []


class TestTimers:
    def test_run_until_advances_clock(self):
        cfg = parse_config("a :: Counter();")
        rt = Runtime(cfg)
        rt.run(until=42.0)
        assert rt.now == 42.0

    def test_timers_fire_in_order(self):
        cfg = parse_config("a :: Counter();")
        rt = Runtime(cfg)
        fired = []
        rt.schedule(2.0, lambda: fired.append("late"))
        rt.schedule(1.0, lambda: fired.append("early"))
        rt.run()
        assert fired == ["early", "late"]

    def test_timed_unqueue_batches(self):
        rt = run_config(
            "FromNetfront() -> TimedUnqueue(10, 100) -> ToNetfront();",
            [Packet() for _ in range(5)],
            until=9.0,
        )
        assert not rt.output  # nothing released before the interval
        rt.run(until=10.0)
        assert len(rt.output) == 5
        assert all(r.time == 10.0 for r in rt.output)

    def test_timed_unqueue_burst_limit(self):
        rt = run_config(
            "FromNetfront() -> TimedUnqueue(10, 3) -> ToNetfront();",
            [Packet() for _ in range(5)],
            until=10.0,
        )
        assert len(rt.output) == 3
        rt.run(until=20.0)
        assert len(rt.output) == 5

    def test_element_counters(self):
        cfg = parse_config(
            "src :: FromNetfront(); c :: Counter(); "
            "dst :: ToNetfront(); src -> c -> dst;"
        )
        rt = Runtime(cfg)
        rt.inject("src", Packet(length=100))
        rt.inject("src", Packet(length=200))
        assert rt.element("c").packets == 2
        assert rt.element("c").bytes == 300
