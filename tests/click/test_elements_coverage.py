"""Coverage for element behaviours not exercised elsewhere."""

import pytest

from repro.click import Packet, Runtime, TCP, UDP, parse_config
from repro.click.element import (
    create_element,
    parse_keyword_args,
    parse_float_arg,
    parse_int_arg,
)
from repro.common.errors import ConfigError


def make(class_name, *args):
    return create_element(class_name, "el", list(args))


class TestHTTPOptimizer:
    def test_rewrites_accept_encoding(self):
        opt = make("HTTPOptimizer")
        p = Packet(payload=b"GET / HTTP/1.1\r\nAccept-Encoding: gzip")
        opt.push(0, p)
        assert b"identity" in p["payload"]
        assert opt.rewrites == 1

    def test_other_payloads_untouched(self):
        opt = make("HTTPOptimizer")
        p = Packet(payload=b"hello")
        opt.push(0, p)
        assert p["payload"] == b"hello"


class TestWebCache:
    def test_non_get_passes_through(self):
        cache = make("WebCache")
        out = cache.push(0, Packet(payload=b"POST /x"))
        assert out[0][0] == 0
        assert cache.hits == cache.misses == 0

    def test_different_urls_do_not_collide(self):
        cache = make("WebCache")
        cache.push(0, Packet(ip_dst=2, payload=b"GET /a\r\n"))
        out = cache.push(0, Packet(ip_dst=2, payload=b"GET /b\r\n"))
        assert out[0][0] == 0  # miss, forwarded
        assert cache.misses == 2


class TestAliasesAndSinks:
    def test_fromdevice_todevice_aliases(self):
        cfg = parse_config("FromDevice() -> ToDevice();")
        rt = Runtime(cfg)
        rt.inject(cfg.sources()[0], Packet())
        assert len(rt.output) == 1

    def test_idle_swallows(self):
        idle = make("Idle")
        assert idle.push(0, Packet()) == []

    def test_discard_counts(self):
        d = make("Discard")
        d.push(0, Packet())
        d.push(0, Packet())
        assert d.count == 2

    def test_tonetfront_counts(self):
        cfg = parse_config(
            "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;"
        )
        rt = Runtime(cfg)
        rt.inject("src", Packet())
        assert rt.element("dst").count == 1


class TestPaintSwitchDefault:
    def test_unpainted_goes_to_port_zero(self):
        sw = make("PaintSwitch")
        assert sw.push(0, Packet())[0][0] == 0


class TestArgumentHelpers:
    def test_parse_keyword_args(self):
        positional, keywords = parse_keyword_args(
            ["100", "CAPACITY 50"], ["capacity"]
        )
        assert positional == ["100"]
        assert keywords == {"CAPACITY": "50"}

    def test_parse_int_arg_errors(self):
        with pytest.raises(ConfigError):
            parse_int_arg("abc", "thing")

    def test_parse_float_arg_errors(self):
        with pytest.raises(ConfigError):
            parse_float_arg("x.y", "thing")

    def test_require_args_bounds(self):
        with pytest.raises(ConfigError):
            make("SetIPAddress")  # needs exactly one
        with pytest.raises(ConfigError):
            make("SetIPAddress", "1.2.3.4", "5.6.7.8")

    def test_emit_outside_runtime_rejected(self):
        element = make("Counter")
        with pytest.raises(ConfigError):
            element.emit(0, Packet())
        with pytest.raises(ConfigError):
            element.schedule(1.0, lambda: None)

    def test_duplicate_registration_rejected(self):
        from repro.click.element import Element, register_element

        with pytest.raises(ConfigError):
            @register_element("Counter")  # already taken
            class Dup(Element):
                pass


class TestElementReprs:
    def test_repr_mentions_class(self):
        assert "Counter" in repr(make("Counter"))
