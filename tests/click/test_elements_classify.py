"""Tests for IPFilter / IPClassifier / Classifier."""

import pytest

from repro.click import Packet, TCP, UDP
from repro.click.element import create_element
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


def make(class_name, *args):
    return create_element(class_name, "el", list(args))


class TestIPFilter:
    def test_allow_matching(self):
        f = make("IPFilter", "allow udp port 1500")
        out = f.push(0, Packet(ip_proto=UDP, tp_dst=1500))
        assert out and out[0][0] == 0

    def test_implicit_deny(self):
        f = make("IPFilter", "allow udp port 1500")
        assert f.push(0, Packet(ip_proto=TCP, tp_dst=1500)) == []
        assert f.dropped == 1

    def test_first_match_wins(self):
        f = make("IPFilter", "deny dst port 80", "allow tcp")
        assert f.push(0, Packet(ip_proto=TCP, tp_dst=80)) == []
        assert f.push(0, Packet(ip_proto=TCP, tp_dst=81))

    def test_explicit_deny_all(self):
        f = make("IPFilter", "allow udp", "deny all")
        assert f.push(0, Packet(ip_proto=TCP)) == []

    def test_drop_alias(self):
        f = make("IPFilter", "drop udp", "allow all")
        assert f.push(0, Packet(ip_proto=UDP)) == []
        assert f.push(0, Packet(ip_proto=TCP))

    def test_requires_rules(self):
        with pytest.raises(ConfigError):
            make("IPFilter")

    def test_bad_action_rejected(self):
        with pytest.raises(ConfigError):
            make("IPFilter", "maybe udp")


class TestIPClassifier:
    def test_routes_to_matching_port(self):
        c = make("IPClassifier", "udp", "tcp", "-")
        assert c.push(0, Packet(ip_proto=UDP))[0][0] == 0
        assert c.push(0, Packet(ip_proto=TCP))[0][0] == 1
        assert c.push(0, Packet(ip_proto=1))[0][0] == 2

    def test_unmatched_dropped_without_catchall(self):
        c = make("IPClassifier", "udp")
        assert c.push(0, Packet(ip_proto=TCP)) == []
        assert c.dropped == 1

    def test_dst_host_demux(self):
        a, b = parse_ip("10.0.0.1"), parse_ip("10.0.0.2")
        c = make(
            "IPClassifier", "dst host 10.0.0.1", "dst host 10.0.0.2"
        )
        assert c.push(0, Packet(ip_dst=a))[0][0] == 0
        assert c.push(0, Packet(ip_dst=b))[0][0] == 1

    def test_classifier_alias(self):
        c = make("Classifier", "udp", "-")
        assert c.push(0, Packet(ip_proto=UDP))[0][0] == 0

    def test_requires_patterns(self):
        with pytest.raises(ConfigError):
            make("IPClassifier")
