"""Registry-wide differential test: sharded vs single-process execution.

Every element class in the registry is driven through the same traffic
twice -- once through the single-process batch path and once through a
four-shard :class:`ShardedRuntime` -- and the runs must agree up to the
sharding contract:

* every sink's egress is the same **multiset** of canonical packets (a
  permutation; cross-flow interleaving may differ),
* within each ingress flow, egress order is **preserved** (checked via
  a ``diff.seq`` annotation stamped before injection),
* the runtime drop count matches,
* the merged shard metrics registries equal the single-process registry
  snapshot (packet/byte/drop/egress counters and the simulated-latency
  histogram all sum correctly across shards).

Configurations the classifier rejects (buffering, multiplying,
cross-flow state, joins) exercise the fallback path instead -- a
single-process shard must behave *identically* to the plain runtime --
so the whole registry runs through one harness either way.
"""

from collections import Counter as Multiset

import pytest

from test_batch_differential import SPECS, Spec, build_config, canonical

from repro.click import Runtime, ShardedRuntime, parse_config
from repro.click.sharding import shard_unsafe_reason
from repro.obs import MetricsRegistry, Observability

SHARDS = 4

#: Elements re-checked under the multiprocessing executor (a spread of
#: stateless, flow-stateful, and fallback behaviours); the full sweep
#: runs serial shards to keep the suite fast.
PROCESS_SPOT_CHECKS = (
    "Counter", "IPFilter", "StatefulFirewall", "LoadBalancer", "Tee",
)


def stamped_traffic(spec: Spec):
    """The spec's traffic with per-flow order markers stamped on.

    ``diff.flow`` groups egress by ingress flow (the 5-tuple *and* the
    entry element, so two-sided specs keep directions distinct);
    ``diff.seq`` is the packet's index within that flow.  Annotations
    ride through rewrites, so the markers survive elements that change
    the 5-tuple mid-pipeline.
    """
    per_source = spec.traffic()
    sequence: dict = {}
    for entry_index, packets in enumerate(per_source):
        for packet in packets:
            flow = (entry_index,) + packet.flow_key()
            packet.annotations["diff.flow"] = str(flow)
            packet.annotations["diff.seq"] = sequence.get(flow, 0)
            sequence[flow] = packet.annotations["diff.seq"] + 1
    return per_source


def entries_for(spec: Spec):
    return spec.entries or tuple("src%d" % i for i in range(spec.inputs))


def run_single(name: str, spec: Spec):
    obs = Observability(metrics=MetricsRegistry())
    runtime = Runtime(parse_config(build_config(name, spec)), obs=obs)
    for entry, packets in zip(entries_for(spec), stamped_traffic(spec)):
        runtime.inject_batch(entry, packets)
    egress = {}
    for record in runtime.take_output():
        egress.setdefault(record.element, []).append(
            canonical(record.packet)
        )
    return egress, runtime.dropped, obs.metrics.snapshot()


def run_sharded(name: str, spec: Spec, executor: str):
    sharded = ShardedRuntime(
        parse_config(build_config(name, spec)), shards=SHARDS,
        executor=executor, obs=Observability(metrics=MetricsRegistry()),
    )
    with sharded:
        for entry, packets in zip(entries_for(spec), stamped_traffic(spec)):
            sharded.inject_batch(entry, packets)
        collection = sharded.collect()
    egress = {}
    for record in collection.egress:
        egress.setdefault(record.element, []).append(
            canonical(record.packet)
        )
    snapshot = (
        collection.metrics.snapshot() if collection.metrics else {}
    )
    return egress, collection.dropped, snapshot, sharded


def assert_flow_order_preserved(egress: dict) -> None:
    """Each flow's ``diff.seq`` markers must be increasing per sink."""
    for sink, packets in egress.items():
        last_seq: dict = {}
        for fields, annotations, _encap, _length in packets:
            notes = dict(annotations)
            flow, seq = notes.get("diff.flow"), notes.get("diff.seq")
            if flow is None:
                continue  # response packet minted inside the pipeline
            # Non-decreasing, not strictly increasing: multiplying
            # elements (fallback path) legitimately duplicate a marker.
            assert seq >= last_seq.get(flow, -1), (
                "sink %s reordered flow %s" % (sink, flow)
            )
            last_seq[flow] = seq


@pytest.mark.parametrize("name", sorted(SPECS))
def test_sharded_matches_single_process(name):
    spec = SPECS[name]
    single_egress, single_dropped, single_snapshot = run_single(name, spec)
    shard_egress, shard_dropped, shard_snapshot, sharded = run_sharded(
        name, spec, executor="serial"
    )
    # Safe configs really shard; unsafe ones really fall back.
    reason = shard_unsafe_reason(parse_config(build_config(name, spec)))
    if reason is None:
        assert sharded.fallback_reason is None
        assert sharded.shards == SHARDS
    else:
        assert sharded.fallback_reason == reason
        assert sharded.shards == 1
    # Permutation: same multiset of canonical packets at every sink.
    assert set(shard_egress) == set(single_egress)
    for sink in single_egress:
        assert Multiset(shard_egress[sink]) == Multiset(
            single_egress[sink]
        ), "sink %s egress is not a permutation" % sink
    assert_flow_order_preserved(shard_egress)
    assert shard_dropped == single_dropped
    # Merged shard registries must equal the single-process registry:
    # counters/histograms sum across shards, including the deferred-
    # accounting expansion inside each shard.
    assert shard_snapshot == single_snapshot


@pytest.mark.parametrize("name", PROCESS_SPOT_CHECKS)
def test_sharded_matches_across_processes(name):
    spec = SPECS[name]
    single_egress, single_dropped, single_snapshot = run_single(name, spec)
    shard_egress, shard_dropped, shard_snapshot, _sharded = run_sharded(
        name, spec, executor="process"
    )
    for sink in set(single_egress) | set(shard_egress):
        assert Multiset(shard_egress.get(sink, ())) == Multiset(
            single_egress.get(sink, ())
        )
    assert_flow_order_preserved(shard_egress)
    assert shard_dropped == single_dropped
    assert shard_snapshot == single_snapshot


def test_harness_stamps_are_not_trivial():
    """The order assertion must actually see multi-packet flows."""
    per_source = stamped_traffic(SPECS["Counter"])
    seqs = [p.annotations["diff.seq"] for p in per_source[0]]
    assert max(seqs) >= 1  # at least one flow with 2+ packets


def test_sharding_really_spreads_the_harness_traffic():
    """The differential is vacuous if all test flows hash to one shard."""
    per_source = stamped_traffic(SPECS["Counter"])
    shards = {p.flow_hash() % SHARDS for p in per_source[0]}
    assert len(shards) > 1
