"""Tests for the flow-hash sharded dataplane (repro.click.sharding)."""

import pytest

from repro.click import (
    Packet,
    Runtime,
    ShardedRuntime,
    parse_config,
    shard_unsafe_reason,
)
from repro.click.packet import TCP, UDP
from repro.common.errors import ConfigError, ShardingError
from repro.obs import MetricsRegistry, Observability

FORWARDER = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> Counter() -> out;
"""

FIREWALL = """
    src :: FromNetfront();
    fw  :: IPFilter(allow tcp);
    out :: ToNetfront();
    src -> fw -> out;
"""

EXECUTORS = ("serial", "thread", "process")


def flow_packet(flow, seq=0, proto=TCP):
    return Packet(
        ip_src=(10 << 24) | flow, ip_dst=(172 << 24) | 5, ip_proto=proto,
        tp_src=40000 + flow, tp_dst=80, seq=seq,
    )


def traffic(flows=16, per_flow=4, proto=TCP):
    """Flow-interleaved traffic: flow 0, 1, ..., n-1, 0, 1, ..."""
    return [
        flow_packet(flow, seq, proto)
        for seq in range(per_flow)
        for flow in range(flows)
    ]


class TestShardUnsafeReason:
    def test_stateless_pipeline_is_shardable(self):
        assert shard_unsafe_reason(parse_config(FORWARDER)) is None

    def test_flow_keyed_state_is_shardable(self):
        config = parse_config("""
            src :: FromNetfront();
            fw :: StatefulFirewall();
            out :: ToNetfront();
            back :: FromNetfront();
            src -> fw -> out;
            back -> [1] fw;
            fw[1] -> Discard();
        """)
        assert shard_unsafe_reason(config) is None

    def test_buffering_element(self):
        config = parse_config(
            "src :: FromNetfront(); q :: Queue(10); src -> q;"
        )
        reason = shard_unsafe_reason(config)
        assert "q :: Queue" in reason
        assert "buffers" in reason

    def test_multiplying_element(self):
        config = parse_config("""
            src :: FromNetfront(); t :: Tee(2);
            src -> t; t[0] -> Discard(); t[1] -> Discard();
        """)
        reason = shard_unsafe_reason(config)
        assert "t :: Tee" in reason
        assert "multiplies" in reason

    def test_cross_flow_order_dependent_element(self):
        config = parse_config("""
            src :: FromNetfront(); rr :: RoundRobinSwitch(2);
            src -> rr; rr[0] -> Discard(); rr[1] -> Discard();
        """)
        assert "round-robin" in shard_unsafe_reason(config)

    def test_aggregate_rate_limiter(self):
        config = parse_config(
            "src :: FromNetfront(); src -> RateLimiter(100) -> Discard();"
        )
        assert "token bucket" in shard_unsafe_reason(config)

    def test_allocating_rewriter_is_unsafe(self):
        config = parse_config("""
            src :: FromNetfront();
            rw :: IPRewriter(pattern 1.2.3.4 1024-65535 - - 0 0);
            out :: ToNetfront();
            src -> rw -> out;
        """)
        assert "allocates ports" in shard_unsafe_reason(config)

    def test_static_rewriter_is_shardable(self):
        config = parse_config("""
            src :: FromNetfront();
            rw :: IPRewriter(pattern - - 172.16.15.133 - 0 0);
            out :: ToNetfront();
            src -> rw -> out;
        """)
        assert shard_unsafe_reason(config) is None

    def test_join_is_unsafe(self):
        config = parse_config("""
            a :: FromNetfront(); b :: FromNetfront();
            c :: Counter(); out :: ToNetfront();
            a -> c; b -> c; c -> out;
        """)
        reason = shard_unsafe_reason(config)
        assert "joins" in reason and "c" in reason

    def test_distinct_input_ports_are_not_a_join(self):
        config = parse_config("""
            a :: FromNetfront(); b :: FromNetfront();
            fw :: StatefulFirewall(); out :: ToNetfront();
            a -> fw; b -> [1] fw; fw -> out; fw[1] -> Discard();
        """)
        assert shard_unsafe_reason(config) is None


class TestConstruction:
    def test_needs_at_least_one_shard(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            ShardedRuntime(parse_config(FORWARDER), shards=0)

    def test_rejects_unknown_executor(self):
        with pytest.raises(ConfigError, match="unknown shard executor"):
            ShardedRuntime(parse_config(FORWARDER), executor="gpu")

    def test_fallback_collapses_to_one_serial_shard(self):
        config = parse_config("""
            src :: FromNetfront(); t :: Tee(2);
            src -> t; t[0] -> Discard(); t[1] -> Discard();
        """)
        with ShardedRuntime(config, shards=4) as sharded:
            assert sharded.fallback_reason is not None
            assert sharded.shards == 1
            assert sharded.executor == "serial"
            assert sharded.requested_shards == 4

    def test_fallback_false_raises(self):
        config = parse_config(
            "src :: FromNetfront(); q :: Queue(); src -> q;"
        )
        with pytest.raises(ShardingError, match="buffers"):
            ShardedRuntime(config, shards=2, fallback=False)

    def test_fallback_is_logged(self, caplog):
        config = parse_config(
            "src :: FromNetfront(); q :: Queue(); src -> q;"
        )
        with caplog.at_level("INFO", logger="repro.click.sharding"):
            ShardedRuntime(config, shards=2).close()
        assert any("falling back" in r.message for r in caplog.records)

    def test_single_shard_auto_is_serial(self):
        with ShardedRuntime(parse_config(FORWARDER), shards=1) as sharded:
            assert sharded.executor == "serial"


@pytest.mark.parametrize("executor", EXECUTORS)
class TestExecutors:
    def test_egress_is_permutation_of_single_process(self, executor):
        packets = traffic(flows=12, per_flow=3)
        baseline = Runtime(parse_config(FORWARDER))
        baseline.inject_batch("src", [p.copy() for p in packets])
        expected = sorted(
            (r.packet["ip_src"], r.packet["seq"])
            for r in baseline.take_output()
        )
        with ShardedRuntime(
            parse_config(FORWARDER), shards=4, executor=executor,
        ) as sharded:
            sharded.inject_batch("src", packets)
            collection = sharded.collect()
        assert sorted(
            (r.packet["ip_src"], r.packet["seq"]) for r in collection.egress
        ) == expected

    def test_per_flow_order_is_preserved(self, executor):
        packets = traffic(flows=8, per_flow=5)
        with ShardedRuntime(
            parse_config(FORWARDER), shards=4, executor=executor,
        ) as sharded:
            sharded.inject_batch("src", packets)
            collection = sharded.collect()
        seqs = {}
        for record in collection.egress:
            seqs.setdefault(record.packet["ip_src"], []).append(
                record.packet["seq"]
            )
        for flow_seqs in seqs.values():
            assert flow_seqs == sorted(flow_seqs)

    def test_unrouted_drops_are_summed(self, executor):
        # Switch(1) steers everything to an unconnected port, which is
        # what Runtime.dropped counts.
        config = parse_config("""
            src :: FromNetfront(); sw :: Switch(1);
            out :: ToNetfront(); src -> sw; sw[0] -> out;
        """)
        packets = traffic(flows=10, per_flow=2)
        with ShardedRuntime(config, shards=4, executor=executor) as sharded:
            sharded.inject_batch("src", packets)
            collection = sharded.collect()
        assert collection.egress_count == 0
        assert collection.dropped == len(packets)
        assert sharded.dropped == len(packets)

    def test_element_drops_show_in_merged_state(self, executor):
        packets = traffic(flows=10, per_flow=2, proto=UDP)  # all denied
        with ShardedRuntime(
            parse_config(FIREWALL), shards=4, executor=executor,
        ) as sharded:
            sharded.inject_batch("src", packets)
            collection = sharded.collect()
        assert collection.egress_count == 0
        denied = sum(
            state["fw"]["dropped"] for state in collection.element_state
        )
        assert denied == len(packets)

    def test_counts_only_collect(self, executor):
        packets = traffic(flows=6, per_flow=2)
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor=executor,
        ) as sharded:
            sharded.inject_batch("src", packets)
            collection = sharded.collect(full=False)
        assert collection.egress == []
        assert collection.egress_count == len(packets)
        assert collection.element_state is None

    def test_metrics_merge_across_shards(self, executor):
        obs = Observability(metrics=MetricsRegistry())
        packets = traffic(flows=10, per_flow=2)
        with ShardedRuntime(
            parse_config(FORWARDER), shards=4, executor=executor, obs=obs,
        ) as sharded:
            sharded.inject_batch("src", packets)
            merged = sharded.collect().metrics
        family = merged.get("dataplane_packets_total")
        counts = {
            labels[0]: child.value for labels, child in family.samples()
        }
        assert counts["src"] == len(packets)
        assert counts["out"] == len(packets)

    def test_flow_pinning_matches_flow_hash(self, executor):
        obs = Observability(metrics=MetricsRegistry())
        shards = 4
        packets = traffic(flows=9, per_flow=3)
        expected = [0] * shards
        for packet in packets:
            expected[packet.flow_hash() % shards] += 1
        with ShardedRuntime(
            parse_config(FORWARDER), shards=shards, executor=executor,
            obs=obs,
        ) as sharded:
            sharded.inject_batch("src", packets)
            sharded.collect(full=False)
        family = obs.metrics.get("dataplane_shard_packets_total")
        observed = [0] * shards
        for labels, child in family.samples():
            observed[int(labels[0])] = child.value
        assert observed == expected


class TestLifecycle:
    def test_close_is_idempotent(self):
        sharded = ShardedRuntime(parse_config(FORWARDER), shards=2,
                                 executor="process")
        sharded.close()
        sharded.close()

    def test_inject_after_close_raises(self):
        sharded = ShardedRuntime(parse_config(FORWARDER), shards=2)
        sharded.close()
        with pytest.raises(ShardingError, match="closed"):
            sharded.inject("src", flow_packet(0))
        with pytest.raises(ShardingError, match="closed"):
            sharded.collect()

    def test_inject_unknown_element_raises(self):
        with ShardedRuntime(parse_config(FORWARDER), shards=2) as sharded:
            with pytest.raises(ConfigError, match="unknown element"):
                sharded.inject_batch("nope", [flow_packet(0)])

    def test_take_output_drains(self):
        with ShardedRuntime(parse_config(FORWARDER), shards=2) as sharded:
            sharded.inject_batch("src", traffic(flows=4, per_flow=1))
            sharded.collect()
            assert len(sharded.take_output()) == 4
            assert sharded.take_output() == []

    def test_parent_obs_counts_shards_and_fallbacks(self):
        obs = Observability(metrics=MetricsRegistry())
        config = parse_config(
            "src :: FromNetfront(); q :: Queue(); src -> q;"
        )
        with ShardedRuntime(config, shards=4, obs=obs):
            pass
        assert obs.metrics.gauge("dataplane_shards").value == 1
        assert obs.metrics.counter(
            "dataplane_shard_fallbacks_total"
        ).value == 1


class TestInjectGenerated:
    @staticmethod
    def factory(flow, count):
        return [flow_packet(flow, seq) for seq in range(count)]

    @pytest.mark.parametrize("executor", EXECUTORS)
    def test_workers_generate_their_own_traffic(self, executor):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor=executor,
        ) as sharded:
            sharded.inject_generated(
                "src", _module_factory, [(1, 5), (2, 7)],
            )
            assert sharded.collect(full=False).egress_count == 12

    def test_args_must_match_shard_count(self):
        with ShardedRuntime(parse_config(FORWARDER), shards=2) as sharded:
            with pytest.raises(ShardingError, match="one args tuple"):
                sharded.inject_generated("src", _module_factory, [(1, 1)])

    def test_unpicklable_factory_is_a_clean_error(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor="process",
        ) as sharded:
            with pytest.raises(ShardingError, match="module-level"):
                sharded.inject_generated(
                    "src", lambda flow, count: [], [(1, 1), (2, 1)],
                )
            # The workers never saw the bad message; they still serve.
            sharded.inject_generated(
                "src", _module_factory, [(1, 2), (2, 2)],
            )
            assert sharded.collect(full=False).egress_count == 4


def _module_factory(flow, count):
    return [flow_packet(flow, seq) for seq in range(count)]


class _PoisonPacket(Packet):
    """Pickles fine in the parent, explodes when a worker unpickles it."""

    def __reduce__(self):
        return (_explode, ())


def _explode():
    raise RuntimeError("poison packet")


class TestWorkerErrors:
    def test_worker_failure_surfaces_at_collect(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=1, executor="process",
        ) as sharded:
            sharded._shards[0].submit(
                ("batch", "src", 0, [_PoisonPacket()])
            )
            with pytest.raises(ShardingError, match="poison packet"):
                sharded.collect()
            # The worker survives a poisoned message and keeps serving.
            sharded.inject_batch("src", [flow_packet(0)])
            assert sharded.collect(full=False).egress_count == 1


class TestWorkerDeath:
    """A killed worker must surface on the next inject, not only at
    collect, and the error must say which shard, which executor, and
    how many batches it took down with it."""

    @staticmethod
    def _kill(sharded, shard):
        process = sharded._shards[shard]._process
        process.terminate()
        process.join(timeout=5.0)

    def test_inject_detects_a_dead_worker_eagerly(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor="process",
        ) as sharded:
            # One batch per shard is in flight when shard 0 dies.
            sharded.inject_batch("src", traffic(flows=8, per_flow=1))
            self._kill(sharded, 0)
            with pytest.raises(ShardingError) as excinfo:
                sharded.inject_batch(
                    "src", traffic(flows=8, per_flow=1)
                )
            message = str(excinfo.value)
            assert "shard 0" in message
            assert "process executor" in message
            assert "1 batch(es)" in message
            assert "unconfirmed" in message

    def test_inject_generated_sweeps_workers_too(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor="process",
        ) as sharded:
            self._kill(sharded, 1)
            with pytest.raises(ShardingError, match="shard 1"):
                sharded.inject_generated(
                    "src", _module_factory, [(1, 1), (2, 1)],
                )

    def test_collect_confirms_earlier_batches(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor="process",
        ) as sharded:
            # A full round trip confirms the first batch ...
            sharded.inject_batch("src", traffic(flows=8, per_flow=1))
            sharded.collect(full=False)
            # ... so only the two batches after it count as lost.
            for _ in range(2):
                sharded.inject_batch(
                    "src", traffic(flows=8, per_flow=1)
                )
            self._kill(sharded, 1)
            with pytest.raises(ShardingError) as excinfo:
                sharded.inject_batch(
                    "src", traffic(flows=8, per_flow=1)
                )
            message = str(excinfo.value)
            assert "shard 1" in message
            assert "2 batch(es)" in message

    def test_collect_names_the_dead_shard(self):
        with ShardedRuntime(
            parse_config(FORWARDER), shards=2, executor="process",
        ) as sharded:
            sharded.inject_batch("src", traffic(flows=8, per_flow=1))
            self._kill(sharded, 0)
            with pytest.raises(ShardingError) as excinfo:
                sharded.collect()
            message = str(excinfo.value)
            assert "shard 0" in message
            assert "process executor" in message
