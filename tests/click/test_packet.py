"""Tests for the Packet abstraction."""

import pytest

from repro.click.packet import (
    IP_DST,
    IP_PROTO,
    IP_SRC,
    PAYLOAD,
    TCP,
    TCP_FLAGS,
    TH_ACK,
    TH_SYN,
    TP_DST,
    TP_SRC,
    UDP,
    Packet,
)
from repro.common.addr import parse_ip


class TestFields:
    def test_defaults(self):
        p = Packet()
        assert p[IP_PROTO] == UDP
        assert p["ip_ttl"] == 64
        assert p[PAYLOAD] == b""

    def test_kwargs_set_fields(self):
        p = Packet(ip_src=parse_ip("1.2.3.4"), tp_dst=80)
        assert p[IP_SRC] == parse_ip("1.2.3.4")
        assert p[TP_DST] == 80

    def test_mapping_protocol(self):
        p = Packet()
        p["custom"] = 7
        assert "custom" in p
        assert p.get("custom") == 7
        assert p.get("missing", 42) == 42

    def test_uids_unique(self):
        assert Packet().uid != Packet().uid


class TestCopy:
    def test_copy_is_independent(self):
        p = Packet(tp_dst=80, annotations={"paint": 1})
        q = p.copy()
        q[TP_DST] = 443
        q.annotations["paint"] = 2
        assert p[TP_DST] == 80
        assert p.annotations["paint"] == 1

    def test_copy_preserves_encap(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        q = p.copy()
        q.decapsulate()
        assert q[IP_DST] == 1
        assert p[IP_DST] == 2  # original untouched


class TestCopyMany:
    def test_clones_match_the_template(self):
        p = Packet(tp_dst=80, length=1500, annotations={"paint": 3})
        clones = p.copy_many(5)
        assert len(clones) == 5
        for clone in clones:
            assert clone.fields == p.fields
            assert clone.annotations == p.annotations
            assert clone.length == 1500

    def test_clones_are_independent(self):
        p = Packet(tp_dst=80, annotations={"paint": 1})
        a, b = p.copy_many(2)
        a[TP_DST] = 443
        a.annotations["paint"] = 2
        assert b[TP_DST] == 80 and p[TP_DST] == 80
        assert b.annotations["paint"] == 1

    def test_uids_unique_across_clones(self):
        clones = Packet().copy_many(10)
        assert len({c.uid for c in clones}) == 10

    def test_encap_stack_is_deep_enough(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        a, b = p.copy_many(2)
        a.decapsulate()
        assert a[IP_DST] == 1
        assert b[IP_DST] == 2  # sibling clone keeps its outer header

    def test_zero_clones(self):
        assert Packet().copy_many(0) == []

    def test_matches_scalar_copy(self):
        p = Packet(tp_src=7, payload=b"x", annotations={"k": "v"})
        p.encapsulate(ip_dst=9)
        scalar = p.copy()
        (bulk,) = p.copy_many(1)
        assert bulk.fields == scalar.fields
        assert bulk.annotations == scalar.annotations
        assert bulk.encap_stack == scalar.encap_stack
        assert bulk.length == scalar.length


class TestEncapsulation:
    def test_encap_decap_roundtrip(self):
        p = Packet(ip_src=10, ip_dst=20, ip_proto=UDP)
        p.encapsulate(ip_src=99, ip_dst=88, ip_proto=TCP)
        assert p[IP_DST] == 88
        assert p.encap_depth == 1
        p.decapsulate()
        assert p[IP_DST] == 20
        assert p[IP_PROTO] == UDP
        assert p.encap_depth == 0

    def test_nested_encap(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        p.encapsulate(ip_dst=3)
        assert p[IP_DST] == 3
        p.decapsulate()
        assert p[IP_DST] == 2
        p.decapsulate()
        assert p[IP_DST] == 1

    def test_decap_without_stack_raises(self):
        with pytest.raises(ValueError):
            Packet().decapsulate()

    def test_unnamed_fields_survive_encap(self):
        p = Packet(ip_ttl=33)
        p.encapsulate(ip_dst=5)
        assert p["ip_ttl"] == 33  # untouched outer fields inherited


class TestFlowKeys:
    def test_flow_key(self):
        p = Packet(ip_src=1, ip_dst=2, ip_proto=UDP, tp_src=10, tp_dst=20)
        assert p.flow_key() == (1, 2, UDP, 10, 20)
        assert p.reverse_flow_key() == (2, 1, UDP, 20, 10)

    def test_is_tcp_syn(self):
        syn = Packet(ip_proto=TCP, tcp_flags=TH_SYN)
        synack = Packet(ip_proto=TCP, tcp_flags=TH_SYN | TH_ACK)
        udp = Packet(ip_proto=UDP, tcp_flags=TH_SYN)
        assert syn.is_tcp_syn()
        assert not synack.is_tcp_syn()
        assert not udp.is_tcp_syn()

    def test_repr_mentions_protocol(self):
        assert "udp" in repr(Packet(ip_proto=UDP))


class TestFlowHash:
    def test_deterministic_for_equal_fields(self):
        a = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20)
        b = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20)
        assert a.flow_hash() == b.flow_hash()

    def test_seed_independent_golden_values(self):
        # These constants must hold under ANY PYTHONHASHSEED -- the
        # sharder relies on flow_hash being stable across worker
        # processes and across runs (unlike builtin hash() on str).
        p = Packet(ip_src=0x0A000001, ip_dst=0xAC100F85, ip_proto=TCP,
                   tp_src=40001, tp_dst=80)
        assert p.flow_hash() == 0xD66E6919664BB9BF
        assert Packet().flow_hash() == 0x88D8E4836109D035
        assert Packet(ip_src=1).flow_hash() == 0xBFD2B8D32AEA8B54

    def test_direction_symmetric(self):
        fwd = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20)
        rev = Packet(ip_src=2, ip_dst=1, ip_proto=TCP, tp_src=20, tp_dst=10)
        assert fwd.flow_hash() == rev.flow_hash()

    def test_endpoints_not_interchangeable(self):
        # Symmetry must pair (src, sport) with (dst, dport); crossing
        # the address/port pairing is a different conversation.
        a = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20)
        b = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=20, tp_dst=10)
        assert a.flow_hash() != b.flow_hash()

    def test_each_field_contributes(self):
        base = dict(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20)
        reference = Packet(**base).flow_hash()
        for field, bumped in [
            ("ip_src", 3), ("ip_dst", 4), ("ip_proto", UDP),
            ("tp_src", 11), ("tp_dst", 21),
        ]:
            assert Packet(**{**base, field: bumped}).flow_hash() != reference

    def test_missing_fields_fall_back_to_zero(self):
        # Packet() carries no addresses/ports at all; explicit zeros
        # must land on the same hash (and None behaves like absent).
        bare = Packet()
        zeroed = Packet(ip_src=0, ip_dst=0, tp_src=0, tp_dst=0)
        assert bare.flow_hash() == zeroed.flow_hash()
        assert Packet(ip_src=None).flow_hash() == bare.flow_hash()

    def test_sixty_four_bit_range(self):
        for n in range(64):
            h = Packet(ip_src=n, tp_src=n).flow_hash()
            assert 0 <= h < (1 << 64)

    def test_spreads_flows_across_shards(self):
        shards = 4
        buckets = [0] * shards
        for n in range(1000):
            p = Packet(ip_src=(10 << 24) | n, ip_dst=(172 << 24) | 5,
                       ip_proto=TCP, tp_src=40000 + n, tp_dst=80)
            buckets[p.flow_hash() % shards] += 1
        # Sequential clients must not alias onto few shards: every
        # shard takes a healthy cut of a 1000-flow population.
        assert min(buckets) > 150
