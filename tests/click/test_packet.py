"""Tests for the Packet abstraction."""

import pytest

from repro.click.packet import (
    IP_DST,
    IP_PROTO,
    IP_SRC,
    PAYLOAD,
    TCP,
    TCP_FLAGS,
    TH_ACK,
    TH_SYN,
    TP_DST,
    TP_SRC,
    UDP,
    Packet,
)
from repro.common.addr import parse_ip


class TestFields:
    def test_defaults(self):
        p = Packet()
        assert p[IP_PROTO] == UDP
        assert p["ip_ttl"] == 64
        assert p[PAYLOAD] == b""

    def test_kwargs_set_fields(self):
        p = Packet(ip_src=parse_ip("1.2.3.4"), tp_dst=80)
        assert p[IP_SRC] == parse_ip("1.2.3.4")
        assert p[TP_DST] == 80

    def test_mapping_protocol(self):
        p = Packet()
        p["custom"] = 7
        assert "custom" in p
        assert p.get("custom") == 7
        assert p.get("missing", 42) == 42

    def test_uids_unique(self):
        assert Packet().uid != Packet().uid


class TestCopy:
    def test_copy_is_independent(self):
        p = Packet(tp_dst=80, annotations={"paint": 1})
        q = p.copy()
        q[TP_DST] = 443
        q.annotations["paint"] = 2
        assert p[TP_DST] == 80
        assert p.annotations["paint"] == 1

    def test_copy_preserves_encap(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        q = p.copy()
        q.decapsulate()
        assert q[IP_DST] == 1
        assert p[IP_DST] == 2  # original untouched


class TestCopyMany:
    def test_clones_match_the_template(self):
        p = Packet(tp_dst=80, length=1500, annotations={"paint": 3})
        clones = p.copy_many(5)
        assert len(clones) == 5
        for clone in clones:
            assert clone.fields == p.fields
            assert clone.annotations == p.annotations
            assert clone.length == 1500

    def test_clones_are_independent(self):
        p = Packet(tp_dst=80, annotations={"paint": 1})
        a, b = p.copy_many(2)
        a[TP_DST] = 443
        a.annotations["paint"] = 2
        assert b[TP_DST] == 80 and p[TP_DST] == 80
        assert b.annotations["paint"] == 1

    def test_uids_unique_across_clones(self):
        clones = Packet().copy_many(10)
        assert len({c.uid for c in clones}) == 10

    def test_encap_stack_is_deep_enough(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        a, b = p.copy_many(2)
        a.decapsulate()
        assert a[IP_DST] == 1
        assert b[IP_DST] == 2  # sibling clone keeps its outer header

    def test_zero_clones(self):
        assert Packet().copy_many(0) == []

    def test_matches_scalar_copy(self):
        p = Packet(tp_src=7, payload=b"x", annotations={"k": "v"})
        p.encapsulate(ip_dst=9)
        scalar = p.copy()
        (bulk,) = p.copy_many(1)
        assert bulk.fields == scalar.fields
        assert bulk.annotations == scalar.annotations
        assert bulk.encap_stack == scalar.encap_stack
        assert bulk.length == scalar.length


class TestEncapsulation:
    def test_encap_decap_roundtrip(self):
        p = Packet(ip_src=10, ip_dst=20, ip_proto=UDP)
        p.encapsulate(ip_src=99, ip_dst=88, ip_proto=TCP)
        assert p[IP_DST] == 88
        assert p.encap_depth == 1
        p.decapsulate()
        assert p[IP_DST] == 20
        assert p[IP_PROTO] == UDP
        assert p.encap_depth == 0

    def test_nested_encap(self):
        p = Packet(ip_dst=1)
        p.encapsulate(ip_dst=2)
        p.encapsulate(ip_dst=3)
        assert p[IP_DST] == 3
        p.decapsulate()
        assert p[IP_DST] == 2
        p.decapsulate()
        assert p[IP_DST] == 1

    def test_decap_without_stack_raises(self):
        with pytest.raises(ValueError):
            Packet().decapsulate()

    def test_unnamed_fields_survive_encap(self):
        p = Packet(ip_ttl=33)
        p.encapsulate(ip_dst=5)
        assert p["ip_ttl"] == 33  # untouched outer fields inherited


class TestFlowKeys:
    def test_flow_key(self):
        p = Packet(ip_src=1, ip_dst=2, ip_proto=UDP, tp_src=10, tp_dst=20)
        assert p.flow_key() == (1, 2, UDP, 10, 20)
        assert p.reverse_flow_key() == (2, 1, UDP, 20, 10)

    def test_is_tcp_syn(self):
        syn = Packet(ip_proto=TCP, tcp_flags=TH_SYN)
        synack = Packet(ip_proto=TCP, tcp_flags=TH_SYN | TH_ACK)
        udp = Packet(ip_proto=UDP, tcp_flags=TH_SYN)
        assert syn.is_tcp_syn()
        assert not synack.is_tcp_syn()
        assert not udp.is_tcp_syn()

    def test_repr_mentions_protocol(self):
        assert "udp" in repr(Packet(ip_proto=UDP))
