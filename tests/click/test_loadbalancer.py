"""Tests for the LoadBalancer element and its symbolic treatment."""

import pytest

from repro.click import Packet, UDP, parse_config
from repro.click.element import create_element
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer
from repro.core.security import addresses_to_whitelist

BACKENDS = ("198.51.100.1", "198.51.100.2", "198.51.100.3")


def make_lb():
    return create_element("LoadBalancer", "lb", list(BACKENDS))


class TestElement:
    def test_rewrites_to_some_backend(self):
        lb = make_lb()
        p = Packet(ip_src=1, tp_src=10)
        lb.push(0, p)
        assert p["ip_dst"] in {parse_ip(b) for b in BACKENDS}

    def test_flow_stickiness(self):
        lb = make_lb()
        first = Packet(ip_src=1, ip_dst=9, tp_src=10, tp_dst=80)
        second = Packet(ip_src=1, ip_dst=9, tp_src=10, tp_dst=80)
        lb.push(0, first)
        lb.push(0, second)
        assert first["ip_dst"] == second["ip_dst"]

    def test_spreads_across_backends(self):
        lb = make_lb()
        destinations = set()
        for sport in range(64):
            p = Packet(ip_src=1, tp_src=sport)
            lb.push(0, p)
            destinations.add(p["ip_dst"])
        assert len(destinations) == len(BACKENDS)

    def test_requires_backends(self):
        with pytest.raises(ConfigError):
            create_element("LoadBalancer", "lb", [])

    def test_not_stateful_for_consolidation(self):
        from repro.platform import is_consolidation_safe

        cfg = parse_config(
            "src :: FromNetfront(); lb :: LoadBalancer(%s);"
            "dst :: ToNetfront(); src -> lb -> dst;"
            % ", ".join(BACKENDS)
        )
        assert is_consolidation_safe(cfg)


class TestSymbolic:
    def config(self):
        return parse_config(
            "src :: FromNetfront(); lb :: LoadBalancer(%s);"
            "dst :: ToNetfront(); src -> lb -> dst;"
            % ", ".join(BACKENDS)
        )

    def test_one_branch_per_backend(self):
        from repro.symexec import SymbolicEngine, SymGraph

        engine = SymbolicEngine(SymGraph.from_click(self.config()))
        exploration = engine.inject("src")
        assert len(exploration.delivered) == len(BACKENDS)
        domains = {
            f.field_domain("ip_dst").singleton_value()
            for f in exploration.delivered
        }
        assert domains == {parse_ip(b) for b in BACKENDS}

    def test_safe_when_backends_whitelisted(self):
        report = SecurityAnalyzer().analyze(
            self.config(),
            ROLE_THIRD_PARTY,
            whitelist=addresses_to_whitelist(BACKENDS),
        )
        assert report.verdict == "allow"

    def test_rejected_when_a_backend_is_foreign(self):
        report = SecurityAnalyzer().analyze(
            self.config(),
            ROLE_THIRD_PARTY,
            whitelist=addresses_to_whitelist(BACKENDS[:2]),
        )
        assert report.verdict == "reject"
