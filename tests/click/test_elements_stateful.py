"""Tests for the stateful firewall and the ChangeEnforcer sandbox."""

from repro.click import Packet, Runtime, TCP, UDP, parse_config
from repro.click.element import create_element
from repro.common.addr import parse_ip


def firewall(*args):
    return create_element("StatefulFirewall", "fw", list(args))


def out_packet(**kw):
    defaults = dict(ip_src=1, ip_dst=2, ip_proto=UDP, tp_src=10,
                    tp_dst=20)
    defaults.update(kw)
    return Packet(**defaults)


def reply_of(p):
    return Packet(
        ip_src=p["ip_dst"], ip_dst=p["ip_src"], ip_proto=p["ip_proto"],
        tp_src=p["tp_dst"], tp_dst=p["tp_src"],
    )


class TestStatefulFirewall:
    def test_outbound_allowed_creates_state(self):
        fw = firewall("allow udp")
        p = out_packet()
        out = fw.push(fw.OUTBOUND, p)
        assert out[0][0] == fw.OUTBOUND
        assert p.annotations["firewall_tag"] is True
        assert fw.active_flows() == 1

    def test_outbound_filtered(self):
        fw = firewall("allow udp")
        assert fw.push(fw.OUTBOUND, out_packet(ip_proto=TCP)) == []
        assert fw.dropped_outbound == 1

    def test_related_inbound_allowed(self):
        fw = firewall("allow udp")
        p = out_packet()
        fw.push(fw.OUTBOUND, p)
        out = fw.push(fw.INBOUND, reply_of(p))
        assert out and out[0][0] == fw.INBOUND

    def test_unsolicited_inbound_dropped(self):
        fw = firewall()
        assert fw.push(fw.INBOUND, out_packet()) == []
        assert fw.dropped_inbound == 1

    def test_state_expires_after_timeout(self):
        cfg = parse_config(
            "src :: FromNetfront(); fw :: StatefulFirewall(timeout 10);"
            "dst0 :: ToNetfront(); dst1 :: ToNetfront();"
            "src -> fw; fw[0] -> dst0; fw[1] -> dst1;"
        )
        rt = Runtime(cfg)
        fw = rt.element("fw")
        p = out_packet()
        fw.push(fw.OUTBOUND, p)
        rt.run(until=20.0)  # advance past the idle timeout
        assert fw.push(fw.INBOUND, reply_of(p)) == []
        assert fw.expire_idle() == 0  # the lookup already evicted it

    def test_activity_refreshes_state(self):
        cfg = parse_config("fw :: StatefulFirewall(timeout 10);")
        rt = Runtime(cfg)
        fw = rt.element("fw")
        p = out_packet()
        fw.push(fw.OUTBOUND, p)
        rt.run(until=8.0)
        assert fw.push(fw.INBOUND, reply_of(p))  # refreshes
        rt.run(until=16.0)
        assert fw.push(fw.INBOUND, reply_of(p))  # still fresh


class TestChangeEnforcer:
    def enforcer(self, *extra):
        return create_element(
            "ChangeEnforcer", "enf",
            ["addr 192.0.2.10"] + list(extra),
        )

    def test_inbound_always_passes_and_authorizes(self):
        enf = self.enforcer()
        p = out_packet(ip_src=parse_ip("8.8.8.8"))
        out = enf.push(enf.TO_MODULE, p)
        assert out[0][0] == enf.TO_MODULE
        assert parse_ip("8.8.8.8") in enf.authorized

    def test_response_to_sender_allowed(self):
        enf = self.enforcer()
        enf.push(enf.TO_MODULE, out_packet(ip_src=parse_ip("8.8.8.8")))
        response = Packet(
            ip_src=parse_ip("192.0.2.10"), ip_dst=parse_ip("8.8.8.8")
        )
        assert enf.push(enf.FROM_MODULE, response)

    def test_unauthorized_destination_dropped(self):
        enf = self.enforcer()
        egress = Packet(
            ip_src=parse_ip("192.0.2.10"), ip_dst=parse_ip("9.9.9.9")
        )
        assert enf.push(enf.FROM_MODULE, egress) == []
        assert enf.dropped_unauthorized == 1

    def test_whitelist_allows(self):
        enf = self.enforcer("whitelist 9.9.9.9")
        egress = Packet(
            ip_src=parse_ip("192.0.2.10"), ip_dst=parse_ip("9.9.9.9")
        )
        assert enf.push(enf.FROM_MODULE, egress)

    def test_source_not_policed_by_enforcer(self):
        # Anti-spoofing is a *static* check before deployment; the
        # enforcer polices destinations only (Section 4.4).
        enf = self.enforcer("whitelist 9.9.9.9")
        egress = Packet(
            ip_src=parse_ip("6.6.6.6"), ip_dst=parse_ip("9.9.9.9")
        )
        assert enf.push(enf.FROM_MODULE, egress)

    def test_authorization_expires(self):
        cfg = parse_config(
            "enf :: ChangeEnforcer(addr 192.0.2.10, timeout 10);"
        )
        rt = Runtime(cfg)
        enf = rt.element("enf")
        enf.push(enf.TO_MODULE, out_packet(ip_src=parse_ip("8.8.8.8")))
        rt.run(until=20.0)
        response = Packet(
            ip_src=parse_ip("192.0.2.10"), ip_dst=parse_ip("8.8.8.8")
        )
        assert enf.push(enf.FROM_MODULE, response) == []

    def test_expire_idle_sweeps(self):
        cfg = parse_config(
            "enf :: ChangeEnforcer(addr 192.0.2.10, timeout 10);"
        )
        rt = Runtime(cfg)
        enf = rt.element("enf")
        enf.push(enf.TO_MODULE, out_packet(ip_src=parse_ip("8.8.8.8")))
        rt.run(until=20.0)
        assert enf.expire_idle() == 1
