"""Registry-wide differential test: columnar vs scalar execution.

The columnar tier re-runs the whole differential matrix of
``test_batch_differential``: every registered element class processes
the same diverse traffic three ways -- scalar ``inject``, the
list-based ``push_batch`` executor, and the struct-of-arrays column
plans -- and all three must agree on the canonical egress at every
sink, the runtime drop count, and every element's numeric state.

``columnar.MIN_BATCH`` is forced to 1 so even the small differential
trains take the column-plan path wherever a plan exists.  Elements
without kernels (and segments broken by joins, buffering, or
side-table columns) exercise the fallback: the runtime must route
those batches through ``push_batch`` untouched, which this test
proves by equality and by the runtime's fallback counters.
"""

import pytest

pytest.importorskip("numpy")

from repro.click import Runtime, parse_config
from repro.click import columnar
from test_batch_differential import (
    SPECS,
    Spec,
    build_config,
    egress_by_sink,
    forward_packets,
    numeric_state,
)


@pytest.fixture(autouse=True)
def _force_columnar(monkeypatch):
    """Lift every batch, however small, into columns."""
    monkeypatch.setattr(columnar, "MIN_BATCH", 1)


def run_columns(name: str, spec: Spec, mode: str):
    runtime = Runtime(
        parse_config(build_config(name, spec)),
        use_columns=(mode == "columns"),
    )
    entries = spec.entries or tuple(
        "src%d" % i for i in range(spec.inputs)
    )
    per_source = spec.traffic()
    assert len(per_source) >= len(entries)
    for entry, packets in zip(entries, per_source):
        if mode == "scalar":
            for packet in packets:
                runtime.inject(entry, packet)
        else:
            runtime.inject_batch(entry, packets)
    if spec.run:
        runtime.run(until=60.0)
    return (
        egress_by_sink(runtime),
        runtime.dropped,
        numeric_state(runtime),
        runtime,
    )


@pytest.mark.parametrize("name", sorted(SPECS))
def test_columnar_matches_scalar_and_batch(name):
    spec = SPECS[name]
    s_egress, s_dropped, s_state, _ = run_columns(name, spec, "scalar")
    b_egress, b_dropped, b_state, _ = run_columns(name, spec, "batch")
    c_egress, c_dropped, c_state, rt = run_columns(name, spec, "columns")
    assert c_egress == s_egress
    assert c_dropped == s_dropped
    assert c_state == s_state
    assert (c_egress, c_dropped, c_state) \
        == (b_egress, b_dropped, b_state)


#: Elements with kernels whose default differential config compiles to
#: an all-kernel segment, so the column plan must actually engage.
KERNEL_COVERED = (
    "CheckIPHeader",
    "Counter",
    "Discard",
    "FlowMeter",
    "IPClassifier",
    "IPFilter",
    "IPRewriter",
    "Idle",
    "Paint",
    "SetIPAddress",
    "SetIPSrc",
    "SetIPTOS",
    "SetIPTTL",
    "SetTPDst",
    "SetTPSrc",
    "Switch",
    "DecIPTTL",
)


@pytest.mark.parametrize("name", KERNEL_COVERED)
def test_column_plan_engages(name):
    """Kernel-bearing elements must actually run the columnar path on
    at least one batch of the differential traffic (batches carrying
    side-table columns -- portless ICMP packets -- legitimately fall
    back, but clean batches must lift)."""
    spec = SPECS[name]
    *_ignored, rt = run_columns(name, spec, "columns")
    assert rt.columnar_batches + rt.columnar_fallbacks > 0
    assert rt.columnar_batches > 0, (
        "no batch took the column plan for %s" % name
    )


def test_kernel_less_segment_falls_back_entirely():
    """A segment containing a kernel-less element compiles to no plan,
    so its batches cross via push_batch (downstream all-kernel
    segments -- the bare sinks here -- may still lift)."""
    runtime = Runtime(parse_config(
        "src0 :: FromNetfront(); dut :: Tee(2);"
        " out0 :: ToNetfront(); out1 :: ToNetfront();"
        " src0 -> dut; dut[0] -> out0; dut[1] -> out1;"
    ), use_columns=True)
    runtime.inject_batch("src0", forward_packets())
    assert runtime._column_plans[("src0", 0)] is None
    assert runtime.columnar_fallbacks == 0
    # Tee duplicated the train into both sinks.
    assert len(runtime.output) == 2 * len(forward_packets())


def test_side_table_batch_falls_back():
    """A batch whose lifted columns hit the side table (portless
    packets under a port-writing kernel) must fall back to push_batch
    -- which handles them fine -- and count the fallback."""
    runtime = Runtime(parse_config(
        "src0 :: FromNetfront(); dut :: SetTPSrc(4000);"
        " out0 :: ToNetfront(); src0 -> dut -> out0;"
    ), use_columns=True)
    packets = forward_packets()
    for packet in packets:
        packet.fields.pop("tp_src", None)
    runtime.inject_batch("src0", packets)
    assert runtime.columnar_fallbacks > 0
    assert runtime.columnar_batches == 0
    assert len(runtime.output) == len(packets)
    assert all(
        record.packet.fields["tp_src"] == 4000
        for record in runtime.output
    )


def test_use_columns_false_never_lifts():
    runtime = Runtime(parse_config(
        "src0 :: FromNetfront(); dut :: Counter();"
        " out0 :: ToNetfront(); src0 -> dut -> out0;"
    ), use_columns=False)
    runtime.inject_batch("src0", forward_packets())
    assert runtime.columnar_batches == 0
    assert len(runtime.output) == len(forward_packets())
