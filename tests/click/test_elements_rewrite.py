"""Tests for rewriting elements: IPRewriter, setters, TTL handling."""

import pytest

from repro.click import Packet, UDP
from repro.click.element import create_element
from repro.click.elements.rewrite import parse_rewrite_pattern
from repro.click.packet import IP_DST, IP_SRC, TP_DST, TP_SRC
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


def make(class_name, *args):
    return create_element(class_name, "el", list(args))


class TestPatternParsing:
    def test_dashes_mean_unchanged(self):
        p = parse_rewrite_pattern("pattern - - 172.16.15.133 - 0 0")
        assert p.src_addr is None and p.src_port is None
        assert p.dst_addr == parse_ip("172.16.15.133")
        assert p.dst_port is None
        assert not p.allocates_ports and not p.rewrites_source

    def test_port_range(self):
        p = parse_rewrite_pattern("pattern 1.2.3.4 1024-65535 - - 0 1")
        assert p.src_port == (1024, 65535)
        assert p.allocates_ports and p.rewrites_source
        assert p.fwd_output == 0 and p.rev_output == 1

    @pytest.mark.parametrize(
        "bad",
        [
            "nopattern - - - - 0 0",
            "pattern - - - 0 0",           # missing field
            "pattern x - - - 0 0",          # bad address
            "pattern - 70000 - - 0 0",      # port out of range
            "pattern - 5-2 - - 0 0",        # inverted range
        ],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_rewrite_pattern(bad)


class TestIPRewriter:
    def test_figure4_destination_rewrite(self):
        rw = make("IPRewriter", "pattern - - 172.16.15.133 - 0 0")
        p = Packet(ip_src=1, ip_dst=2, tp_src=10, tp_dst=1500)
        out = rw.push(0, p)
        assert out[0][0] == 0
        assert p[IP_DST] == parse_ip("172.16.15.133")
        assert p[IP_SRC] == 1  # untouched
        assert p[TP_DST] == 1500
        assert not rw.stateful  # pure destination rewrite is stateless

    def test_masquerade_is_stateful(self):
        rw = make("IPRewriter", "pattern 9.9.9.9 1024-65535 - - 0 1")
        assert rw.stateful

    def test_reverse_mapping_restores_flow(self):
        rw = make("IPRewriter", "pattern 9.9.9.9 5000-6000 - - 0 1")
        p = Packet(ip_src=parse_ip("10.0.0.1"), ip_dst=parse_ip("8.8.8.8"),
                   ip_proto=UDP, tp_src=1234, tp_dst=53)
        rw.push(0, p)
        nat_src, nat_port = p[IP_SRC], p[TP_SRC]
        assert nat_src == parse_ip("9.9.9.9")
        # The response comes back to the NAT address.
        reply = Packet(ip_src=parse_ip("8.8.8.8"), ip_dst=nat_src,
                       ip_proto=UDP, tp_src=53, tp_dst=nat_port)
        out = rw.push(0, reply)
        assert out[0][0] == 1  # reverse output
        assert reply[IP_DST] == parse_ip("10.0.0.1")
        assert reply[TP_DST] == 1234

    def test_same_flow_reuses_mapping(self):
        rw = make("IPRewriter", "pattern 9.9.9.9 5000-6000 - - 0 1")
        p1 = Packet(ip_src=1, ip_dst=2, tp_src=10, tp_dst=20)
        p2 = Packet(ip_src=1, ip_dst=2, tp_src=10, tp_dst=20)
        rw.push(0, p1)
        rw.push(0, p2)
        assert p1[TP_SRC] == p2[TP_SRC]

    def test_distinct_flows_get_distinct_ports(self):
        rw = make("IPRewriter", "pattern 9.9.9.9 5000-6000 - - 0 1")
        p1 = Packet(ip_src=1, ip_dst=2, tp_src=10, tp_dst=20)
        p2 = Packet(ip_src=1, ip_dst=2, tp_src=11, tp_dst=20)
        rw.push(0, p1)
        rw.push(0, p2)
        assert p1[TP_SRC] != p2[TP_SRC]

    def test_drop_input(self):
        rw = make("IPRewriter", "drop")
        assert rw.push(0, Packet()) == []


class TestSetters:
    def test_set_ip_address(self):
        e = make("SetIPAddress", "5.6.7.8")
        p = Packet()
        e.push(0, p)
        assert p[IP_DST] == parse_ip("5.6.7.8")

    def test_set_ip_src(self):
        e = make("SetIPSrc", "5.6.7.8")
        p = Packet()
        e.push(0, p)
        assert p[IP_SRC] == parse_ip("5.6.7.8")

    def test_set_ports(self):
        p = Packet()
        make("SetTPDst", "8080").push(0, p)
        make("SetTPSrc", "99").push(0, p)
        assert p[TP_DST] == 8080 and p[TP_SRC] == 99


class TestDecIPTTL:
    def test_decrements(self):
        e = make("DecIPTTL")
        p = Packet(ip_ttl=10)
        out = e.push(0, p)
        assert out[0][0] == 0
        assert p["ip_ttl"] == 9

    def test_expired_goes_to_port_1(self):
        e = make("DecIPTTL")
        out = e.push(0, Packet(ip_ttl=1))
        assert out[0][0] == 1
        assert e.expired == 1


class TestCheckIPHeader:
    def test_valid_passes(self):
        assert make("CheckIPHeader").push(0, Packet())

    def test_zero_ttl_dropped(self):
        e = make("CheckIPHeader")
        assert e.push(0, Packet(ip_ttl=0)) == []
        assert e.dropped == 1
