"""Tests for elementclass compound elements."""

import pytest

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError


class TestExpansion:
    def test_simple_compound(self):
        cfg = parse_config("""
            elementclass UdpOnly {
                input -> IPFilter(allow udp) -> output;
            }
            src :: FromNetfront();
            box :: UdpOnly();
            dst :: ToNetfront();
            src -> box -> dst;
        """)
        cfg.validate()
        assert "box/IPFilter@1" in cfg.elements
        assert "box" not in cfg.elements  # replaced by its body
        rt = Runtime(cfg)
        rt.inject("src", Packet(ip_proto=UDP))
        rt.inject("src", Packet(ip_proto=6))
        assert len(rt.output) == 1

    def test_multi_element_body(self):
        cfg = parse_config("""
            elementclass Pipeline {
                input -> Counter() -> DecIPTTL() -> output;
            }
            src :: FromNetfront(); p :: Pipeline();
            dst :: ToNetfront();
            src -> p -> dst;
        """)
        cfg.validate()
        rt = Runtime(cfg)
        rt.inject("src", Packet(ip_ttl=10))
        assert rt.output[0].packet["ip_ttl"] == 9

    def test_multiple_instances_are_independent(self):
        cfg = parse_config("""
            elementclass C { input -> Counter() -> output; }
            src :: FromNetfront();
            a :: C(); b :: C();
            dst :: ToNetfront();
            src -> a -> b -> dst;
        """)
        rt = Runtime(cfg)
        rt.inject("src", Packet())
        counters = [
            e for name, e in rt.elements.items()
            if e.class_name == "Counter"
        ]
        assert len(counters) == 2
        assert all(c.packets == 1 for c in counters)

    def test_multi_port_compound(self):
        cfg = parse_config("""
            elementclass Split {
                input -> cl :: IPClassifier(udp, -);
                cl[0] -> [0]output;
                cl[1] -> [1]output;
            }
            src :: FromNetfront(); s :: Split();
            u :: ToNetfront(); rest :: ToNetfront();
            src -> s; s[0] -> u; s[1] -> rest;
        """)
        rt = Runtime(cfg)
        rt.inject("src", Packet(ip_proto=UDP))
        rt.inject("src", Packet(ip_proto=6))
        assert [r.element for r in rt.output] == ["u", "rest"]

    def test_nested_compounds(self):
        cfg = parse_config("""
            elementclass Inner { input -> Counter() -> output; }
            elementclass Outer { input -> Inner() -> output; }
            src :: FromNetfront(); o :: Outer();
            dst :: ToNetfront();
            src -> o -> dst;
        """)
        cfg.validate()
        rt = Runtime(cfg)
        rt.inject("src", Packet())
        assert len(rt.output) == 1

    def test_inline_compound_instance(self):
        cfg = parse_config("""
            elementclass C { input -> Counter() -> output; }
            FromNetfront() -> C() -> ToNetfront();
        """)
        cfg.validate()

    def test_compound_in_symbolic_analysis(self):
        # Expanded configs are primitive-only, so static checking just
        # works on them.
        from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer

        cfg = parse_config("""
            elementclass Forwarder {
                input -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                      -> output;
            }
            src :: FromNetfront(); f :: Forwarder();
            dst :: ToNetfront();
            src -> f -> dst;
        """)
        from repro.core.security import addresses_to_whitelist

        report = SecurityAnalyzer().analyze(
            cfg, ROLE_THIRD_PARTY,
            whitelist=addresses_to_whitelist(["172.16.15.133"]),
        )
        assert report.verdict == "allow"


class TestErrors:
    def test_duplicate_class_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
                elementclass C { input -> output; }
                elementclass C { input -> output; }
            """)

    def test_input_to_output_passthrough_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
                elementclass C { input -> output; }
                a :: C();
            """)

    def test_args_to_compound_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
                elementclass C { input -> Counter() -> output; }
                a :: C(5);
            """)

    def test_missing_port_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
                elementclass C { input -> Counter() -> output; }
                src :: FromNetfront(); c :: C();
                dst :: ToNetfront();
                src -> c; c[3] -> dst;
            """)

    def test_input_fanout_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("""
                elementclass C {
                    input -> Counter() -> output;
                    input -> DecIPTTL() -> Discard();
                }
                a :: C();
            """)
