"""Tests for the switching/stamping elements and their models."""

import pytest

from repro.click import ICMP, Packet, Runtime, UDP, parse_config
from repro.click.element import create_element
from repro.common.errors import ConfigError
from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer


def make(class_name, *args):
    return create_element(class_name, "el", list(args))


class TestSwitch:
    def test_static_output(self):
        s = make("Switch", "1")
        assert s.push(0, Packet())[0][0] == 1

    def test_minus_one_drops(self):
        assert make("Switch", "-1").push(0, Packet()) == []

    def test_invalid_port(self):
        with pytest.raises(ConfigError):
            make("Switch", "-2")

    def test_symbolic_model_follows_port(self):
        from repro.symexec import SymbolicEngine, SymGraph

        cfg = parse_config(
            "src :: FromNetfront(); s :: Switch(1);"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> s; s[0] -> a; s[1] -> b;"
        )
        engine = SymbolicEngine(SymGraph.from_click(cfg))
        exploration = engine.inject("src")
        assert [f.trace[-1].node for f in exploration.delivered] == ["b"]


class TestRoundRobinSwitch:
    def test_cycles_outputs(self):
        cfg = parse_config(
            "src :: FromNetfront(); rr :: RoundRobinSwitch();"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> rr; rr[0] -> a; rr[1] -> b;"
        )
        rt = Runtime(cfg)
        for _ in range(4):
            rt.inject("src", Packet())
        assert [r.element for r in rt.output] == ["a", "b", "a", "b"]

    def test_symbolic_model_covers_all_outputs(self):
        from repro.symexec import SymbolicEngine, SymGraph

        cfg = parse_config(
            "src :: FromNetfront(); rr :: RoundRobinSwitch();"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> rr; rr[0] -> a; rr[1] -> b;"
        )
        engine = SymbolicEngine(SymGraph.from_click(cfg))
        exploration = engine.inject("src")
        sinks = {f.trace[-1].node for f in exploration.delivered}
        assert sinks == {"a", "b"}


class TestMeter:
    def test_conformant_then_excess(self):
        cfg = parse_config(
            "src :: FromNetfront(); m :: Meter(2);"
            "ok :: ToNetfront(); over :: ToNetfront();"
            "src -> m; m[0] -> ok; m[1] -> over;"
        )
        rt = Runtime(cfg)
        for _ in range(4):
            rt.inject("src", Packet())
        assert [r.element for r in rt.output] == [
            "ok", "ok", "over", "over",
        ]

    def test_window_resets(self):
        cfg = parse_config(
            "src :: FromNetfront(); m :: Meter(1); ok :: ToNetfront();"
            "over :: ToNetfront(); src -> m; m[0] -> ok; m[1] -> over;"
        )
        rt = Runtime(cfg)
        rt.inject("src", Packet())
        rt.inject("src", Packet(), at=2.0)
        rt.run()
        assert [r.element for r in rt.output] == ["ok", "ok"]

    def test_rate_must_be_positive(self):
        with pytest.raises(ConfigError):
            make("Meter", "0")


class TestStampers:
    def test_set_ttl(self):
        p = Packet(ip_ttl=3)
        make("SetIPTTL", "64").push(0, p)
        assert p["ip_ttl"] == 64

    def test_ttl_range_checked(self):
        with pytest.raises(ConfigError):
            make("SetIPTTL", "0")
        with pytest.raises(ConfigError):
            make("SetIPTTL", "256")

    def test_set_tos(self):
        p = Packet()
        make("SetIPTOS", "46").push(0, p)  # EF
        assert p["ip_tos"] == 46

    def test_tos_write_breaks_invariant(self):
        # A tos invariant must fail through a SetIPTOS -- useful for
        # the HTTP-vs-HTTPS style invariant requests.
        from repro.policy import parse_requirement
        from repro.symexec import SymbolicEngine, SymGraph
        from repro.symexec.reachability import ReachabilityChecker

        cfg = parse_config(
            "src :: FromNetfront(); t :: SetIPTOS(46);"
            "dst :: ToNetfront(); src -> t -> dst;"
        )
        engine = SymbolicEngine(SymGraph.from_click(cfg, "mod"))
        exploration = engine.inject("mod/src")
        result = ReachabilityChecker().check(
            parse_requirement(
                "reach from internet -> mod:dst:0 const tos"
            ),
            exploration,
        )
        assert not result.satisfied


class TestPingResponder:
    def test_answers_icmp(self):
        p = Packet(ip_src=1, ip_dst=2, ip_proto=ICMP)
        make("ICMPPingResponder").push(0, p)
        assert (p["ip_src"], p["ip_dst"]) == (2, 1)

    def test_drops_other_traffic(self):
        assert make("ICMPPingResponder").push(
            0, Packet(ip_proto=UDP)
        ) == []

    def test_statically_safe_for_third_parties(self):
        cfg = parse_config(
            "src :: FromNetfront(); ping :: ICMPPingResponder();"
            "dst :: ToNetfront(); src -> ping -> dst;"
        )
        report = SecurityAnalyzer().analyze(cfg, ROLE_THIRD_PARTY)
        assert report.verdict == "allow"
