"""Tests for the batched dataplane fast path (Runtime.inject_batch).

The segment compiler, the batch executors (plain, deferred-obs,
exact-obs), deep-chain iteration limits, and the scheduling/error
surface of ``inject_batch`` are covered here; element-by-element
batch/scalar equivalence lives in ``test_batch_differential.py``.
"""

import pytest

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError, SimulationError
from repro.obs import Observability

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

SPLIT = """
    src :: FromNetfront();
    c :: IPClassifier(udp, tcp);
    u :: ToNetfront();
    t :: ToNetfront();
    src -> c;
    c[0] -> u;
    c[1] -> t;
"""


def udp_packet(**overrides):
    fields = dict(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )
    fields.update(overrides)
    return Packet(**fields)


def chain_config(length):
    """src -> SetIPTTL() * length -> out, as one linear chain."""
    lines = ["src :: FromNetfront();", "out :: ToNetfront();"]
    names = ["src"]
    for i in range(length):
        lines.append("e%d :: SetIPTTL(32);" % i)
        names.append("e%d" % i)
    names.append("out")
    lines.append(" -> ".join(names) + ";")
    return "\n".join(lines)


class TestBatchExecution:
    def test_batch_matches_scalar_on_firewall(self):
        scalar = Runtime(parse_config(FIREWALL))
        batch = Runtime(parse_config(FIREWALL))
        packets = [udp_packet(tp_src=i) for i in range(100)]
        for packet in packets:
            scalar.inject("src", packet.copy())
        batch.inject_batch("src", [p.copy() for p in packets])
        assert len(batch.output) == len(scalar.output) == 100
        for ours, theirs in zip(batch.output, scalar.output):
            assert ours.element == theirs.element
            assert ours.packet.fields == theirs.packet.fields
        assert batch.dropped == scalar.dropped == 0

    def test_classifier_split_partitions_batch(self):
        from repro.click.packet import TCP

        runtime = Runtime(parse_config(SPLIT))
        batch = [udp_packet(ip_proto=UDP if i % 3 else TCP, tp_src=i)
                 for i in range(30)]
        runtime.inject_batch("src", batch)
        by_sink = {}
        for record in runtime.output:
            by_sink.setdefault(record.element, []).append(
                record.packet.fields["tp_src"]
            )
        assert by_sink["u"] == [i for i in range(30) if i % 3]
        assert by_sink["t"] == [i for i in range(30) if not i % 3]

    def test_empty_batch_is_a_no_op(self):
        runtime = Runtime(parse_config(FIREWALL))
        runtime.inject_batch("src", [])
        assert not runtime.output
        assert runtime.pending_timers() == 0

    def test_unknown_element_raises(self):
        runtime = Runtime(parse_config(FIREWALL))
        with pytest.raises(ConfigError):
            runtime.inject_batch("nope", [udp_packet()])

    def test_inject_batch_at_defers_to_simulated_time(self):
        runtime = Runtime(parse_config(FIREWALL))
        runtime.inject_batch("src", [udp_packet(), udp_packet()], at=5.0)
        assert not runtime.output  # nothing until the clock reaches 5.0
        runtime.run(until=10.0)
        assert len(runtime.output) == 2
        assert all(record.time == 5.0 for record in runtime.output)

    def test_inject_batch_in_the_past_raises(self):
        runtime = Runtime(parse_config(FIREWALL))
        runtime.run(until=10.0)
        with pytest.raises(SimulationError):
            runtime.inject_batch("src", [udp_packet()], at=5.0)

    def test_batch_accepts_any_iterable(self):
        runtime = Runtime(parse_config(FIREWALL))
        runtime.inject_batch("src", (udp_packet() for _ in range(7)))
        assert len(runtime.output) == 7


class TestSegmentCompiler:
    def test_linear_chain_compiles_to_one_segment(self):
        runtime = Runtime(parse_config(FIREWALL))
        steps, terminal = runtime._batch_segments[("src", 0)]
        # src, CheckIPHeader, IPFilter, IPRewriter -- then the sink.
        assert [step[3] for step in steps] == [
            "src", "CheckIPHeader@1", "IPFilter@2", "IPRewriter@3",
        ]
        assert terminal[0] == "sink"
        assert terminal[2] == "out"

    def test_split_point_ends_the_segment(self):
        runtime = Runtime(parse_config(SPLIT))
        steps, terminal = runtime._batch_segments[("src", 0)]
        assert [step[3] for step in steps] == ["src", "c"]
        assert steps[-1][2] is None  # multi-output: generic dispatch
        assert terminal is None
        # Both branch targets were precompiled as partition roots.
        assert ("u", 0) in runtime._batch_segments
        assert ("t", 0) in runtime._batch_segments

    def test_mid_graph_entry_compiles_lazily(self):
        runtime = Runtime(parse_config(FIREWALL))
        key = ("IPFilter@2", 0)
        assert key not in runtime._batch_segments
        runtime.inject_batch("IPFilter@2", [udp_packet()])
        assert key in runtime._batch_segments
        assert len(runtime.output) == 1


class TestDeepChains:
    """Regression: 500-element linear chains used to blow the stack."""

    LENGTH = 500

    def test_scalar_path_survives_a_deep_chain(self):
        runtime = Runtime(parse_config(chain_config(self.LENGTH)))
        runtime.inject("src", udp_packet())
        assert len(runtime.output) == 1

    def test_batch_path_survives_a_deep_chain(self):
        runtime = Runtime(parse_config(chain_config(self.LENGTH)))
        runtime.inject_batch("src", [udp_packet() for _ in range(10)])
        assert len(runtime.output) == 10

    def test_observed_paths_survive_a_deep_chain(self):
        source = chain_config(self.LENGTH)
        obs = Observability()
        runtime = Runtime(parse_config(source), obs=obs)
        runtime.inject("src", udp_packet())
        runtime.inject_batch("src", [udp_packet() for _ in range(5)])
        assert len(runtime.output) == 6
        snap = obs.metrics.snapshot()
        values = snap["dataplane_packets_total"]["values"]
        assert values["element=e250"] == 6

    def test_exact_mode_survives_a_deep_chain(self):
        # A Tee forces the exact per-hop counting mode, whose worklist
        # routing must be iterative too.
        source = "t :: Tee(2); b :: ToNetfront();\n" + chain_config(
            self.LENGTH
        ).replace(" -> out;", " -> t;") + "\nt[0] -> out; t[1] -> b;"
        obs = Observability()
        runtime = Runtime(parse_config(source), obs=obs)
        runtime.inject("src", udp_packet())
        assert len(runtime.output) == 2


class TestObservedBatches:
    def test_deferred_obs_batch_equals_scalar_metrics(self):
        scalar_obs, batch_obs = Observability(), Observability()
        scalar = Runtime(parse_config(FIREWALL), obs=scalar_obs)
        batch = Runtime(parse_config(FIREWALL), obs=batch_obs)
        assert scalar._obs_mode == batch._obs_mode == "deferred"
        packets = [
            udp_packet(tp_src=i, ip_ttl=0 if i % 5 == 0 else 64)
            for i in range(50)
        ]
        for packet in packets:
            scalar.inject("src", packet.copy())
        batch.inject_batch("src", [p.copy() for p in packets])
        assert len(batch.output) == len(scalar.output)
        assert batch_obs.metrics.snapshot() == scalar_obs.metrics.snapshot()

    def test_exact_obs_batch_equals_scalar_metrics(self):
        source = """
            src :: FromNetfront();
            t :: Tee(2);
            a :: ToNetfront();
            b :: ToNetfront();
            src -> t; t[0] -> a; t[1] -> b;
        """
        scalar_obs, batch_obs = Observability(), Observability()
        scalar = Runtime(parse_config(source), obs=scalar_obs)
        batch = Runtime(parse_config(source), obs=batch_obs)
        assert scalar._obs_mode == batch._obs_mode == "exact"
        packets = [udp_packet(tp_src=i) for i in range(20)]
        for packet in packets:
            scalar.inject("src", packet.copy())
        batch.inject_batch("src", [p.copy() for p in packets])
        assert len(batch.output) == len(scalar.output) == 40
        assert batch_obs.metrics.snapshot() == scalar_obs.metrics.snapshot()

    def test_deferred_obs_batch_counts_buffer_entries_as_pass(self):
        source = """
            src :: FromNetfront();
            out :: ToNetfront();
            src -> TimedUnqueue(0.5, 100) -> out;
        """
        obs = Observability()
        runtime = Runtime(parse_config(source), obs=obs)
        runtime.inject_batch("src", [udp_packet() for _ in range(8)])
        values = obs.metrics.snapshot()["dataplane_packets_total"]["values"]
        assert values["element=src"] == 8
        # No drops were recorded for the buffering element.
        drops = obs.metrics.snapshot().get("dataplane_drops_total", {})
        assert all(v == 0 for v in drops.get("values", {}).values())
        runtime.run(until=1.0)
        assert len(runtime.output) == 8
        latency = obs.metrics.snapshot()[
            "dataplane_egress_latency_seconds"
        ]
        assert latency["values"][""]["count"] == 8
