"""Tests for the Click configuration language parser."""

import pytest

from repro.click.config import parse_config, split_args
from repro.common.errors import ConfigError


class TestDeclarations:
    def test_simple_declaration(self):
        cfg = parse_config("src :: FromNetfront();")
        assert cfg.elements["src"].class_name == "FromNetfront"
        assert cfg.elements["src"].args == ()

    def test_declaration_with_args(self):
        cfg = parse_config("f :: IPFilter(allow udp port 1500);")
        assert cfg.elements["f"].args == ("allow udp port 1500",)

    def test_multi_name_declaration(self):
        cfg = parse_config("a, b :: Counter();")
        assert cfg.elements["a"].class_name == "Counter"
        assert cfg.elements["b"].class_name == "Counter"

    def test_duplicate_declaration_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("a :: Counter(); a :: Counter();")

    def test_multiple_args_split_on_commas(self):
        cfg = parse_config("c :: IPClassifier(udp, tcp, -);")
        assert cfg.elements["c"].args == ("udp", "tcp", "-")


class TestConnections:
    def test_chain(self):
        cfg = parse_config(
            "a :: FromNetfront(); b :: Counter(); c :: ToNetfront();"
            "a -> b -> c;"
        )
        assert (("a", 0, "b", 0) in [tuple(e) for e in cfg.edges])
        assert (("b", 0, "c", 0) in [tuple(e) for e in cfg.edges])

    def test_port_selectors(self):
        cfg = parse_config(
            "t :: Tee(2); x :: Discard(); y :: Discard();"
            "t[0] -> x; t[1] -> y;"
        )
        edges = {tuple(e) for e in cfg.edges}
        assert ("t", 0, "x", 0) in edges
        assert ("t", 1, "y", 0) in edges

    def test_input_port_selector(self):
        cfg = parse_config(
            "a :: Counter(); fw :: StatefulFirewall(); a -> [1]fw;"
        )
        assert tuple(cfg.edges[0]) == ("a", 0, "fw", 1)

    def test_inline_anonymous_elements(self):
        cfg = parse_config("FromNetfront() -> Counter() -> ToNetfront();")
        assert len(cfg.elements) == 3
        assert len(cfg.edges) == 2

    def test_inline_named_declaration(self):
        cfg = parse_config("FromNetfront() -> dst :: ToNetfront();")
        assert "dst" in cfg.elements

    def test_undeclared_reference_rejected(self):
        with pytest.raises(ConfigError):
            parse_config("a :: Counter(); a -> missing;")

    def test_figure4_configuration(self, figure4_source):
        cfg = parse_config(figure4_source)
        cfg.validate()
        assert cfg.sources() and cfg.sinks() == ["dst"]
        classes = {d.class_name for d in cfg.elements.values()}
        assert {"IPFilter", "IPRewriter", "TimedUnqueue"} <= classes


class TestComments:
    def test_line_comments(self):
        cfg = parse_config("// hello\na :: Counter(); // trailing\n")
        assert "a" in cfg.elements

    def test_block_comments(self):
        cfg = parse_config("/* multi\nline */ a :: Counter();")
        assert "a" in cfg.elements


class TestValidation:
    def test_unknown_class_rejected(self):
        cfg = parse_config("a :: NoSuchElement();")
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_port_arity_checked(self):
        cfg = parse_config(
            "a :: Counter(); b :: Discard(); a[5] -> b;"
        )
        with pytest.raises(ConfigError):
            cfg.validate()

    def test_double_connected_output_rejected(self):
        cfg = parse_config(
            "a :: Counter(); b :: Discard(); c :: Discard();"
            "a -> b; a -> c;"
        )
        with pytest.raises(ConfigError):
            cfg.validate()


class TestSerialization:
    def test_roundtrip(self, figure4_source):
        cfg = parse_config(figure4_source)
        again = parse_config(cfg.to_click())
        assert set(again.elements) == set(cfg.elements)
        assert {tuple(e) for e in again.edges} == {
            tuple(e) for e in cfg.edges
        }


class TestGraphQueries:
    def test_sources_and_sinks(self):
        cfg = parse_config(
            "a :: FromNetfront(); b :: Counter(); c :: ToNetfront();"
            "a -> b -> c;"
        )
        assert cfg.sources() == ["a"]
        assert cfg.sinks() == ["c"]

    def test_successors_predecessors(self):
        cfg = parse_config(
            "a :: Counter(); b :: Counter(); a -> b;"
        )
        assert cfg.successors("a", 0) == [("b", 0)]
        assert cfg.predecessors("b", 0) == [("a", 0)]

    def test_elements_of_class(self):
        cfg = parse_config("a :: Counter(); b :: Counter();")
        assert cfg.elements_of_class("Counter") == ["a", "b"]


class TestSplitArgs:
    def test_nested_parens(self):
        assert split_args("a(b, c), d") == ("a(b, c)", "d")

    def test_empty(self):
        assert split_args("") == ()

    def test_whitespace_trimmed(self):
        assert split_args("  x ,  y ") == ("x", "y")
