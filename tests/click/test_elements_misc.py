"""Tests for stats, tunnels, DPI, multicast, and application elements."""

from repro.click import GRE, Packet, Runtime, TCP, UDP, parse_config
from repro.click.element import create_element
from repro.click.packet import IP_DST, IP_PROTO, IP_SRC, TP_DST, TP_SRC
from repro.common.addr import parse_ip


def make(class_name, *args):
    return create_element(class_name, "el", list(args))


class TestStats:
    def test_flow_meter_counts_flows(self):
        fm = make("FlowMeter")
        fm.push(0, Packet(ip_src=1, tp_src=1))
        fm.push(0, Packet(ip_src=1, tp_src=1))
        fm.push(0, Packet(ip_src=2, tp_src=2))
        assert fm.flow_count == 2
        assert fm.stateful

    def test_tee_copies(self):
        cfg = parse_config(
            "src :: FromNetfront(); t :: Tee();"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> t; t[0] -> a; t[1] -> b;"
        )
        rt = Runtime(cfg)
        rt.inject("src", Packet(payload=b"x"))
        assert len(rt.output) == 2
        # Copies are independent packets.
        assert rt.output[0].packet.uid != rt.output[1].packet.uid

    def test_paint_and_switch(self):
        cfg = parse_config(
            "src :: FromNetfront(); p :: Paint(1); sw :: PaintSwitch();"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> p -> sw; sw[0] -> a; sw[1] -> b;"
        )
        rt = Runtime(cfg)
        rt.inject("src", Packet())
        assert rt.output[0].element == "b"


class TestTunnels:
    def test_udp_encap_decap_roundtrip(self):
        enc = make("UDPIPEncap", "9.9.9.9", "4000", "8.8.8.8", "4001")
        dec = make("IPDecap")
        p = Packet(ip_src=1, ip_dst=2, ip_proto=TCP, tp_src=10, tp_dst=20,
                   length=100)
        enc.push(0, p)
        assert p[IP_PROTO] == UDP
        assert p[IP_DST] == parse_ip("8.8.8.8")
        assert p[TP_DST] == 4001
        assert p.length == 128
        dec.push(0, p)
        assert p[IP_PROTO] == TCP and p[IP_DST] == 2

    def test_ip_encap_gre(self):
        enc = make("IPEncap", "47", "9.9.9.9", "8.8.8.8")
        p = Packet(ip_proto=UDP)
        enc.push(0, p)
        assert p[IP_PROTO] == GRE

    def test_decap_without_layer_drops(self):
        dec = make("IPDecap")
        assert dec.push(0, Packet()) == []
        assert dec.dropped == 1


class TestDPI:
    def test_pattern_match_routing(self):
        dpi = make("DPI", "attack")
        hit = dpi.push(0, Packet(payload=b"an attack here"))
        miss = dpi.push(0, Packet(payload=b"benign"))
        assert hit[0][0] == 0 and miss[0][0] == 1
        assert dpi.matches == 1

    def test_string_payload_supported(self):
        dpi = make("DPI", "attack")
        assert dpi.push(0, Packet(payload="attack"))[0][0] == 0


class TestMulticast:
    def test_replicates_to_each_destination(self):
        mc = make("Multicast", "10.0.0.1", "10.0.0.2", "10.0.0.3")
        out = mc.push(0, Packet(payload=b"m"))
        assert len(out) == 3
        dsts = sorted(p[IP_DST] for _port, p in out)
        assert dsts == sorted(
            parse_ip(a) for a in ("10.0.0.1", "10.0.0.2", "10.0.0.3")
        )
        # Copies are distinct objects.
        assert len({p.uid for _port, p in out}) == 3


class TestEchoResponder:
    def test_swaps_addresses_for_udp(self):
        e = make("EchoResponder")
        p = Packet(ip_src=1, ip_dst=2, ip_proto=UDP, tp_src=10, tp_dst=20)
        e.push(0, p)
        assert (p[IP_SRC], p[IP_DST]) == (2, 1)
        assert (p[TP_SRC], p[TP_DST]) == (20, 10)

    def test_drops_non_udp(self):
        e = make("EchoResponder")
        assert e.push(0, Packet(ip_proto=TCP)) == []


class TestReverseProxy:
    def test_relays_and_restores(self):
        rp = make("ReverseProxy", "198.51.100.1", "80")
        proxy_addr = parse_ip("192.0.2.10")
        req = Packet(ip_src=parse_ip("10.0.0.5"), ip_dst=proxy_addr,
                     ip_proto=TCP, tp_src=5555, tp_dst=80)
        out = rp.push(rp.CLIENT_SIDE, req)
        assert out[0][0] == rp.ORIGIN_SIDE
        assert req[IP_DST] == parse_ip("198.51.100.1")
        assert req[IP_SRC] == proxy_addr  # terminating proxy
        resp = Packet(ip_src=parse_ip("198.51.100.1"), ip_dst=proxy_addr,
                      ip_proto=TCP, tp_src=80, tp_dst=5555)
        out = rp.push(rp.ORIGIN_SIDE, resp)
        assert out[0][0] == rp.CLIENT_SIDE
        assert resp[IP_DST] == parse_ip("10.0.0.5")
        assert resp[IP_SRC] == proxy_addr

    def test_unknown_session_dropped(self):
        rp = make("ReverseProxy", "198.51.100.1", "80")
        resp = Packet(tp_dst=4242)
        assert rp.push(rp.ORIGIN_SIDE, resp) == []


class TestGeoDNS:
    def test_answers_with_nearest_replica(self):
        dns = make("GeoDNSServer", "10.0.0.1", "10.200.0.1")
        near_first = Packet(
            ip_src=parse_ip("10.0.0.7"), ip_dst=parse_ip("192.0.2.1"),
            ip_proto=UDP, tp_src=5353, tp_dst=53,
        )
        dns.push(0, near_first)
        assert near_first[IP_DST] == parse_ip("10.0.0.7")  # swapped
        assert str(parse_ip("10.0.0.1")).encode() in near_first["payload"]


class TestExplicitProxy:
    def test_fetches_payload_destination(self):
        ep = make("ExplicitProxy", "192.0.2.10")
        p = Packet(payload=b"GET http://1.2.3.4/x")
        out = ep.push(0, p)
        assert out
        assert p[IP_DST] == parse_ip("1.2.3.4")
        assert p[IP_SRC] == parse_ip("192.0.2.10")

    def test_no_destination_drops(self):
        ep = make("ExplicitProxy", "192.0.2.10")
        assert ep.push(0, Packet(payload=b"garbage")) == []


class TestWebCache:
    def test_second_get_is_a_hit(self):
        cfg = parse_config(
            "src :: FromNetfront(); wc :: WebCache();"
            "fwd :: ToNetfront(); back :: ToNetfront();"
            "src -> wc; wc[0] -> fwd; wc[1] -> back;"
        )
        rt = Runtime(cfg)
        req = lambda: Packet(
            ip_src=1, ip_dst=2, tp_src=10, tp_dst=80,
            payload=b"GET /index.html\r\n",
        )
        rt.inject("src", req())
        rt.inject("src", req())
        assert [r.element for r in rt.output] == ["fwd", "back"]
        hit = rt.output[1].packet
        assert hit[IP_DST] == 1  # answered toward the client
