"""Property tests for the columnar batch representation.

``PacketColumns.from_packets``/``to_packets`` must round-trip any
traffic: packable int64 fields are lifted into the matrix, everything
else (missing fields, ``None``, floats, strings, out-of-int64-range
ints) lands verbatim in the side table, and materialization writes
back exactly the dirty columns for exactly the surviving rows.
"""

import pytest

pytest.importorskip("numpy")
hyp = pytest.importorskip("hypothesis")

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import GRE, Packet, UDP
from repro.click import columnar
from repro.click.columnar import MISSING, PacketColumns

FIELDS = ("ip_src", "ip_dst", "ip_proto", "ip_ttl", "tp_src", "tp_dst")

I64_MIN = -(1 << 63)
I64_MAX = (1 << 63) - 1

packable_values = st.one_of(
    st.integers(min_value=I64_MIN, max_value=I64_MAX),
    st.booleans(),
)
unpackable_values = st.one_of(
    st.none(),
    st.floats(allow_nan=False, allow_infinity=False),
    st.text(max_size=4),
    st.integers(min_value=I64_MAX + 1, max_value=I64_MAX + 2 ** 16),
    st.integers(min_value=I64_MIN - 2 ** 16, max_value=I64_MIN - 1),
)

#: Per-field cell: a packable value, an unpackable one, or absence.
cells = st.one_of(
    packable_values,
    unpackable_values,
    st.just(MISSING),
)


def build_packet(cell_values, encap):
    packet = Packet()
    for name, value in zip(FIELDS, cell_values):
        if value is MISSING:
            del packet.fields[name]
        else:
            packet.fields[name] = value
    if encap:
        # GRE-style tunnel header: ports make no sense on the outer
        # packet, so encapsulation *removes* them -- the classic way a
        # real train produces missing-field side columns.
        packet.encapsulate(ip_proto=GRE)
        packet.fields.pop("tp_src", None)
        packet.fields.pop("tp_dst", None)
    return packet


packet_strategy = st.builds(
    build_packet,
    st.tuples(*(cells for _ in FIELDS)),
    st.booleans(),
)
train_strategy = st.lists(packet_strategy, min_size=1, max_size=12)


def snapshot(packet):
    return (
        dict(packet.fields),
        dict(packet.annotations),
        [dict(layer) for layer in packet.encap_stack],
        packet.length,
        packet.uid,
    )


@given(train_strategy)
@settings(max_examples=200, deadline=None)
def test_round_trip_is_identity(train):
    """Lift + materialize with no kernel in between changes nothing."""
    before = [snapshot(p) for p in train]
    cols = PacketColumns.from_packets(train, FIELDS, need_length=True)
    out = cols.to_packets()
    assert out is train  # no dead rows: the original list comes back
    assert [snapshot(p) for p in out] == before


@given(train_strategy)
@settings(max_examples=200, deadline=None)
def test_lift_partitions_columns_exactly(train):
    """Every (row, field) cell is either in the matrix or the side
    table, matching the packet verbatim."""
    cols = PacketColumns.from_packets(train, FIELDS)
    for j, name in enumerate(FIELDS):
        if name in cols.side:
            expected = [p.fields.get(name, MISSING) for p in train]
            assert cols.side[name] == expected
            # A side column exists only because some cell is unpackable.
            assert not all(
                type(v) in (int, bool) and I64_MIN <= v <= I64_MAX
                for v in expected
            )
        else:
            for i, packet in enumerate(train):
                assert int(cols.column(name)[i]) == packet.fields[name]


@given(st.lists(
    st.tuples(*(packable_values for _ in FIELDS)),
    min_size=1, max_size=12,
))
@settings(max_examples=200, deadline=None)
def test_packable_train_has_no_side_table(rows):
    train = [build_packet(row, encap=False) for row in rows]
    cols = PacketColumns.from_packets(train, FIELDS)
    assert cols.side == {}
    assert cols.n == cols.n_alive == len(train)


@given(
    st.lists(st.tuples(*(packable_values for _ in FIELDS)),
             min_size=1, max_size=12),
    st.data(),
)
@settings(max_examples=200, deadline=None)
def test_kill_and_dirty_write_back(rows, data):
    """Dirty columns materialize on survivors only; dead rows keep
    their original fields; 5-tuple writes invalidate cached keys."""
    train = [build_packet(row, encap=False) for row in rows]
    for packet in train:
        packet.flow_key()
        packet.flow_hash()
    keep = data.draw(st.lists(
        st.booleans(), min_size=len(rows), max_size=len(rows),
    ))
    new_dst = data.draw(st.integers(min_value=0, max_value=2 ** 32 - 1))
    originals = {p.uid: dict(p.fields) for p in train}
    cols = PacketColumns.from_packets(train, FIELDS)
    cols.set_all("ip_dst", new_dst)
    cols.kill(np.array(keep, dtype=bool))
    out = cols.to_packets()
    survivors = [p for p, k in zip(train, keep) if k]
    assert out == survivors
    for packet in survivors:
        assert packet.fields["ip_dst"] == new_dst
        assert packet._fkey is None and packet._fhash is None
        assert packet.flow_key()[1] == new_dst
    for packet, kept in zip(train, keep):
        if not kept:
            assert packet.fields == originals[packet.uid]


@given(
    st.lists(st.tuples(*(packable_values for _ in FIELDS)),
             min_size=2, max_size=12),
    st.integers(min_value=0, max_value=2 ** 32 - 1),
)
@settings(max_examples=100, deadline=None)
def test_non_uniform_dirty_write_back(rows, base):
    """The per-row (non-uniform) materialization path: distinct values
    written through a column view land on the right packets."""
    train = [build_packet(row, encap=False) for row in rows]
    cols = PacketColumns.from_packets(train, FIELDS)
    values = [(base + i) % (2 ** 32) for i in range(len(train))]
    cols.column("tp_src")[:] = values
    cols.mark_dirty("tp_src")
    out = cols.to_packets()
    assert [p.fields["tp_src"] for p in out] == values


def test_encapsulated_packet_side_table():
    """A tunneled packet without inner ports side-tables the port
    columns, and the runtime refuses to run a plan over it."""
    packet = Packet(ip_src=1, ip_dst=2, ip_proto=UDP, tp_src=3, tp_dst=4)
    packet.encapsulate(ip_proto=GRE)
    del packet.fields["tp_src"]
    del packet.fields["tp_dst"]
    cols = PacketColumns.from_packets([packet], FIELDS)
    assert set(cols.side) == {"tp_src", "tp_dst"}
    assert cols.side["tp_src"] == [MISSING]
    # The int columns of the same batch still lifted fine.
    assert int(cols.column("ip_proto")[0]) == GRE
    out = cols.to_packets()
    assert out[0].encap_depth == 1


def test_split_preserves_rows_and_state():
    train = [
        Packet(ip_src=i, ip_dst=100 + i, ip_proto=UDP,
               tp_src=1000 + i, tp_dst=53)
        for i in range(6)
    ]
    cols = PacketColumns.from_packets(train, FIELDS)
    cols.set_all("ip_ttl", 9)
    even = np.array([i % 2 == 0 for i in range(6)])
    children = cols.split([(0, even), (1, ~even)])
    assert [port for port, _ in children] == [0, 1]
    for port, child in children:
        expected = train[port::2]
        assert child.to_packets() == expected
        for packet in expected:
            assert packet.fields["ip_ttl"] == 9


def test_annotations_stamp_survivors_only():
    train = [Packet(ip_src=i) for i in range(4)]
    cols = PacketColumns.from_packets(train, FIELDS)
    cols.annotate("paint", 7)
    cols.kill(np.array([True, False, True, False]))
    out = cols.to_packets()
    assert [p.annotations.get("paint") for p in train] == [7, None, 7, None]
    assert len(out) == 2


def test_lengths_column_matches_packets():
    train = [Packet(ip_src=i, length=64 + i) for i in range(5)]
    cols = PacketColumns.from_packets(train, FIELDS, need_length=True)
    assert cols.lengths().tolist() == [64 + i for i in range(5)]
    assert cols.bytes_alive() == sum(64 + i for i in range(5))
    cols.kill(np.array([True, True, False, False, True]))
    assert cols.bytes_alive() == 64 + 65 + 68
