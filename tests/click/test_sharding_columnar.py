"""Sharded + columnar integration: worker shards run column plans.

Four serial shards drive the firewall pipeline through the columnar
tier (``use_columns=True``, traffic big enough that every shard's
sub-batches clear ``MIN_BATCH``) and the result must relate to the
single-process columnar run exactly the way sharding always relates
to single-process execution: a per-flow-order-preserving permutation
of the egress with exactly equal merged metrics and drop counts.
"""

from collections import Counter as Multiset

import pytest

pytest.importorskip("numpy")

from test_batch_differential import canonical
from test_sharding_differential import assert_flow_order_preserved

from repro.click import Packet, Runtime, ShardedRuntime, TCP, UDP, \
    parse_config
from repro.common.addr import parse_ip
from repro.obs import MetricsRegistry, Observability

SHARDS = 4

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp dst port 53, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

FLOWS = 32
PER_FLOW = 16


def traffic():
    """32 flows x 16 packets, stamped with per-flow sequence markers
    (annotations ride through the NAT rewrite)."""
    packets = []
    for flow in range(FLOWS):
        proto, dport = ((UDP, 53), (TCP, 80))[flow % 2]
        template = Packet(
            ip_src=parse_ip("10.0.%d.%d" % (flow // 8, 1 + flow)),
            ip_dst=parse_ip("192.0.2.10"),
            ip_proto=proto,
            tp_src=30000 + flow,
            tp_dst=dport,
        )
        for seq in range(PER_FLOW):
            packet = template.copy()
            packet.annotations["diff.flow"] = str(template.flow_key())
            packet.annotations["diff.seq"] = seq
            packets.append(packet)
    # Interleave flows so every injected batch mixes them.
    packets.sort(key=lambda p: p.annotations["diff.seq"])
    return packets


def by_sink(records):
    egress = {}
    for record in records:
        egress.setdefault(record.element, []).append(
            canonical(record.packet)
        )
    return egress


def test_sharded_columnar_matches_single_process():
    single_obs = Observability(metrics=MetricsRegistry())
    single = Runtime(
        parse_config(FIREWALL), obs=single_obs, use_columns=True,
    )
    for packets in (traffic()[i:i + 128] for i in range(0, 512, 128)):
        single.inject_batch("src", packets)
    assert single.columnar_batches > 0, (
        "single-process run never took a column plan"
    )
    single_egress = by_sink(single.take_output())

    sharded = ShardedRuntime(
        parse_config(FIREWALL), shards=SHARDS, executor="serial",
        obs=Observability(metrics=MetricsRegistry()),
        use_columns=True,
    )
    with sharded:
        for packets in (traffic()[i:i + 128] for i in range(0, 512, 128)):
            sharded.inject_batch("src", packets)
        collection = sharded.collect()
    assert sharded.fallback_reason is None
    assert sharded.shards == SHARDS

    # Every shard actually lifted batches into columns.
    shard_batches = [
        shard.runtime.columnar_batches for shard in sharded._shards
    ]
    assert all(n > 0 for n in shard_batches), shard_batches

    shard_egress = by_sink(collection.egress)
    # Permutation per sink, order preserved within each flow.
    assert set(shard_egress) == set(single_egress)
    for sink in single_egress:
        assert Multiset(shard_egress[sink]) == Multiset(
            single_egress[sink]
        ), "sink %s egress is not a permutation" % sink
    assert_flow_order_preserved(shard_egress)
    assert collection.dropped == single.dropped

    # Merged shard metrics must equal the single-process registry
    # exactly -- the columnar tier's deferred tallies included.
    assert collection.metrics.snapshot() == single_obs.metrics.snapshot()


def test_traffic_spreads_and_exceeds_min_batch():
    """Each of the 4 shards must see enough of every 128-packet batch
    to clear MIN_BATCH, or the integration test is vacuous."""
    from repro.click import columnar

    packets = traffic()[:128]
    per_shard = Multiset(p.flow_hash() % SHARDS for p in packets)
    assert len(per_shard) == SHARDS
    assert min(per_shard.values()) >= columnar.MIN_BATCH
