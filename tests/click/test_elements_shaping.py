"""Tests for buffering and rate-control elements."""

from repro.click import Packet, Runtime, parse_config


def runtime(source):
    cfg = parse_config(source)
    return Runtime(cfg), cfg.sources()[0]


class TestQueueUnqueue:
    def test_queue_drains_through_unqueue(self):
        rt, src = runtime(
            "FromNetfront() -> Queue(10) -> Unqueue() -> ToNetfront();"
        )
        for _ in range(3):
            rt.inject(src, Packet())
        assert len(rt.output) == 3

    def test_queue_capacity_drops(self):
        rt, src = runtime(
            "src :: FromNetfront(); q :: Queue(2); dst :: ToNetfront();"
            "src -> q;"
        )
        for _ in range(5):
            rt.inject(src, Packet())
        q = rt.element("q")
        assert len(q) == 2
        assert q.drops == 3

    def test_queue_pull_order_fifo(self):
        rt, src = runtime(
            "src :: FromNetfront(); q :: Queue(); src -> q;"
        )
        p1, p2 = Packet(), Packet()
        rt.inject(src, p1)
        rt.inject(src, p2)
        q = rt.element("q")
        assert q.pull() is p1
        assert q.pull() is p2
        assert q.pull() is None


class TestRatedUnqueue:
    def test_emits_at_configured_rate(self):
        rt, src = runtime(
            "FromNetfront() -> RatedUnqueue(2) -> ToNetfront();"
        )
        for _ in range(4):
            rt.inject(src, Packet())
        rt.run(until=10.0)
        times = [r.time for r in rt.output]
        assert len(times) == 4
        # 2 packets/second: releases at 0.5s spacing.
        assert times == [0.5, 1.0, 1.5, 2.0]


class TestBandwidthShaper:
    def test_paces_to_rate(self):
        # 8000 bits/s, 100-byte packets = 0.1 s each.
        rt, src = runtime(
            "FromNetfront() -> BandwidthShaper(8000) -> ToNetfront();"
        )
        for _ in range(3):
            rt.inject(src, Packet(length=100))
        rt.run()
        times = [round(r.time, 3) for r in rt.output]
        assert times == [0.1, 0.2, 0.3]

    def test_capacity_drops(self):
        rt, src = runtime(
            "src :: FromNetfront(); "
            "sh :: BandwidthShaper(8000, 2); src -> sh -> ToNetfront();"
        )
        for _ in range(5):
            rt.inject(src, Packet(length=100))
        rt.run()
        assert rt.element("sh").drops == 3
        assert len(rt.output) == 2


class TestRateLimiter:
    def test_burst_passes_then_drops(self):
        rt, src = runtime(
            "src :: FromNetfront(); rl :: RateLimiter(1, 2);"
            "src -> rl -> ToNetfront();"
        )
        for _ in range(5):
            rt.inject(src, Packet())
        # burst of 2 tokens: 2 pass, 3 policed (port 1 dangling = drop)
        assert len(rt.output) == 2
        assert rt.element("rl").dropped == 3

    def test_tokens_refill_over_time(self):
        rt, src = runtime(
            "src :: FromNetfront(); rl :: RateLimiter(1, 1);"
            "src -> rl -> ToNetfront();"
        )
        rt.inject(src, Packet())
        rt.inject(src, Packet(), at=2.0)
        rt.run()
        assert len(rt.output) == 2
