"""Tests for shard revival hand-back: state returns byte-for-byte."""

import pytest

from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.fedctl import (
    FederatedControlPlane,
    collect_federation_violations,
    federation_digest,
)
from repro.resilience.chaos import _module_request


def tenant_on(plane, shard_id, tag="t"):
    """A client id whose ring owner is ``shard_id``."""
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


def populated_plane(shard_count=3):
    plane = FederatedControlPlane(shard_count=shard_count,
                                  gossip_every=1)
    for index, shard_id in enumerate(plane.shards):
        client = tenant_on(plane, shard_id)
        assert plane.submit(_module_request(client, "m-%d" % index))
    return plane


class TestRevival:
    def test_handback_restores_exact_state(self):
        plane = populated_plane()
        before = federation_digest(plane)
        outcome = plane.fail_shard("shard-0")
        handback = plane.revive_shard("shard-0")
        assert handback.handed_back == {"shard-0": outcome.heir}
        assert handback.digest_equal
        assert handback.modules == outcome.adopted_modules
        assert handback.mttr_s > 0
        assert federation_digest(plane) == before
        assert collect_federation_violations(plane) == []
        assert plane.shards["shard-0"].alive
        assert set(plane.shards["shard-0"].segments) == {"shard-0"}
        heir = plane.shards[outcome.heir]
        assert set(heir.segments) == {outcome.heir}

    def test_tenants_route_home_after_handback(self):
        plane = populated_plane()
        victim_tenants = sorted(plane.shards["shard-0"].home.tenants)
        plane.fail_shard("shard-0")
        plane.revive_shard("shard-0")
        for client in victim_tenants:
            assert plane.shard_map.route(client) == "shard-0"
        decision = plane.submit(
            _module_request(victim_tenants[0], "after-revival")
        )
        assert decision, decision.result.reason
        assert decision.shard == "shard-0"
        assert decision.segment == "shard-0"
        assert collect_federation_violations(plane) == []

    def test_address_pools_come_home(self):
        plane = populated_plane()
        address = parse_ip("10.1.0.5")   # shard-0's p0-a pool
        outcome = plane.fail_shard("shard-0")
        assert plane.resolve_address(address) == outcome.heir
        plane.revive_shard("shard-0")
        assert plane.resolve_address(address) == "shard-0"

    def test_revived_cache_rewarmed_without_reverification(self):
        plane = populated_plane()
        heir_id = plane.fail_shard("shard-0").heir
        plane.revive_shard("shard-0")
        revived = (
            plane.shards["shard-0"].home.controller.analyzer.cache
        )
        peer = plane.shards[heir_id].home.controller.analyzer.cache
        missing = [
            key for key in peer.entries()
            if key not in revived.entries()
        ]
        assert missing == []

    def test_reviving_a_live_shard_rejected(self):
        plane = populated_plane()
        with pytest.raises(ConfigError):
            plane.revive_shard("shard-1")

    def test_reviving_unknown_shard_rejected(self):
        plane = populated_plane()
        with pytest.raises(ConfigError):
            plane.revive_shard("shard-9")

    def test_detection_latency_adds_to_handback_mttr(self):
        plane = populated_plane()
        plane.fail_shard("shard-0")
        repaired_at = plane._clock() - 2.0
        handback = plane.revive_shard(
            "shard-0", repaired_at=repaired_at
        )
        assert handback.mttr_s >= 2.0

    def test_handback_counted_in_stats(self):
        plane = populated_plane()
        plane.fail_shard("shard-0")
        plane.revive_shard("shard-0")
        stats = plane.stats()
        assert stats["handbacks"] == 1
        assert stats["failovers"] == 1


class TestFailoverChains:
    """Kill A (heir B), kill B (heir C), revive in both orders."""

    def chained(self):
        plane = populated_plane()
        baseline = federation_digest(plane)
        first = plane.fail_shard("shard-0")
        second = plane.fail_shard(first.heir)
        return plane, baseline, first, second

    def test_chain_revive_middle_first(self):
        plane, baseline, first, second = self.chained()
        # Reviving the middle of the chain (A's heir) reclaims BOTH
        # its own segment and A's -- A's delegation chain now ends at
        # it.
        handback = plane.revive_shard(first.heir)
        assert sorted(handback.handed_back) == sorted(
            ["shard-0", first.heir]
        )
        assert all(
            heir == second.heir
            for heir in handback.handed_back.values()
        )
        assert handback.digest_equal
        assert collect_federation_violations(plane) == []
        # shard-0 is still dead; its segment sits on the revived
        # middle shard and its tenants route there.
        client = tenant_on(plane, "shard-0")
        assert plane.shard_map.route(client) == first.heir
        # Now revive A: its segment moves once more, home this time.
        final = plane.revive_shard("shard-0")
        assert sorted(final.handed_back) == ["shard-0"]
        assert final.handed_back["shard-0"] == first.heir
        assert final.digest_equal
        assert federation_digest(plane) == baseline
        assert collect_federation_violations(plane) == []
        for shard in plane.shards.values():
            assert shard.alive
            assert set(shard.segments) == {shard.shard_id}

    def test_chain_revive_origin_first(self):
        plane, baseline, first, second = self.chained()
        # Reviving A first: only A's segment comes back (the middle
        # shard is still dead, its segment stays on the survivor).
        handback = plane.revive_shard("shard-0")
        assert sorted(handback.handed_back) == ["shard-0"]
        assert handback.handed_back["shard-0"] == second.heir
        assert handback.digest_equal
        assert collect_federation_violations(plane) == []
        assert not plane.shards[first.heir].alive
        middle_client = tenant_on(plane, first.heir)
        assert plane.shard_map.route(middle_client) == second.heir
        final = plane.revive_shard(first.heir)
        assert sorted(final.handed_back) == [first.heir]
        assert final.digest_equal
        assert federation_digest(plane) == baseline
        assert collect_federation_violations(plane) == []

    def test_chain_address_pool_balance_each_step(self):
        plane, baseline, first, second = self.chained()
        ranges = plane.address_index.ranges()
        # All pools sit on the lone survivor.
        assert {owner for _l, _h, owner in ranges} == {second.heir}
        plane.revive_shard(first.heir)
        owners = {
            owner for _l, _h, owner in plane.address_index.ranges()
        }
        assert owners == {first.heir, second.heir}
        plane.revive_shard("shard-0")
        by_owner = {}
        for low, high, owner in plane.address_index.ranges():
            by_owner.setdefault(owner, 0)
            by_owner[owner] += 1
        # Every shard owns exactly its own two platform pools again.
        assert by_owner == {
            "shard-0": 2, "shard-1": 2, "shard-2": 2,
        }

    def test_post_chain_admissions_work_everywhere(self):
        plane, baseline, first, second = self.chained()
        plane.revive_shard("shard-0")
        plane.revive_shard(first.heir)
        for index, shard_id in enumerate(sorted(plane.shards)):
            client = tenant_on(plane, shard_id, tag="post-%d" % index)
            decision = plane.submit(
                _module_request(client, "post-chain-%d" % index)
            )
            assert decision, decision.result.reason
            assert decision.shard == shard_id
        assert collect_federation_violations(plane) == []
