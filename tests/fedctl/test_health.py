"""Tests for health-driven shard failover and auto-revival."""

from repro.fedctl import (
    FederatedControlPlane,
    ShardHealthManager,
    collect_federation_violations,
    federation_digest,
)
from repro.resilience.chaos import _module_request
from repro.sim.events import EventLoop


def tenant_on(plane, shard_id, tag="t"):
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


def managed_plane(auto_revive=False, check_interval_s=0.5,
                  miss_threshold=2):
    loop = EventLoop()
    plane = FederatedControlPlane(
        shard_count=3, gossip_every=1, clock=lambda: loop.now
    )
    for index, shard_id in enumerate(plane.shards):
        client = tenant_on(plane, shard_id)
        assert plane.submit(_module_request(client, "m-%d" % index))
    manager = ShardHealthManager(
        plane, loop,
        check_interval_s=check_interval_s,
        miss_threshold=miss_threshold,
        auto_revive=auto_revive,
    )
    manager.start()
    return loop, plane, manager


class TestHealthDrivenFailover:
    def test_missed_probes_declare_the_shard_dead(self):
        loop, plane, manager = managed_plane()
        manager.mark_crashed("shard-0")
        # One missed probe is not enough at miss_threshold=2 ...
        loop.run_until(0.5)
        assert plane.shards["shard-0"].alive
        assert manager.failures == []
        # ... the second miss declares it.
        loop.run_until(1.0)
        assert not plane.shards["shard-0"].alive
        assert len(manager.failures) == 1
        assert manager.failures[0].victim == "shard-0"
        assert collect_federation_violations(plane) == []

    def test_mttr_includes_detection_latency(self):
        loop, plane, manager = managed_plane()
        manager.mark_crashed("shard-1")
        loop.run_until(10.0)
        outcome = manager.failures[0]
        # Crash at t=0, declared at the second probe (t=1.0): the
        # detection window rides on the plane's simulated clock.
        assert outcome.mttr_s >= 1.0
        assert outcome.mttr_s < 2.0

    def test_healthy_shards_are_left_alone(self):
        loop, plane, manager = managed_plane()
        loop.run_until(20.0)
        assert manager.failures == []
        assert all(s.alive for s in plane.shards.values())

    def test_auto_revive_hands_state_back(self):
        loop, plane, manager = managed_plane(auto_revive=True)
        baseline = federation_digest(plane)
        manager.mark_crashed("shard-0")
        loop.run_until(5.0)
        assert not plane.shards["shard-0"].alive
        manager.mark_repaired("shard-0")
        loop.run_until(10.0)
        assert plane.shards["shard-0"].alive
        assert len(manager.revivals) == 1
        handback = manager.revivals[0]
        assert handback.digest_equal
        # Repair detection (one successful probe) is in the MTTR.
        assert handback.mttr_s >= 0.5
        assert federation_digest(plane) == baseline
        assert collect_federation_violations(plane) == []

    def test_without_auto_revive_recovery_waits_for_operator(self):
        loop, plane, manager = managed_plane(auto_revive=False)
        manager.mark_crashed("shard-0")
        loop.run_until(5.0)
        manager.mark_repaired("shard-0")
        loop.run_until(10.0)
        assert manager.revivals == []
        assert not plane.shards["shard-0"].alive
        # The operator revives manually; probes keep agreeing.
        plane.revive_shard("shard-0")
        loop.run_until(15.0)
        assert manager.errors == []
        assert collect_federation_violations(plane) == []

    def test_manual_failover_does_not_confuse_the_probes(self):
        loop, plane, manager = managed_plane()
        # An operator drill: fail_shard without any crashed process.
        plane.fail_shard("shard-2")
        loop.run_until(10.0)
        # The probe still succeeds, so no recovery/failure churn.
        assert manager.failures == []
        assert manager.errors == []

    def test_watch_covers_shards_added_later(self):
        loop, plane, manager = managed_plane()
        outcome = plane.add_shard()
        manager.watch(outcome.shard)
        manager.mark_crashed(outcome.shard)
        loop.run_until(loop.now + 5.0)
        assert any(
            f.victim == outcome.shard for f in manager.failures
        )
        assert collect_federation_violations(plane) == []

    def test_unwatch_stops_probing(self):
        loop, plane, manager = managed_plane()
        manager.unwatch("shard-0")
        manager.mark_crashed("shard-0")
        loop.run_until(10.0)
        assert manager.failures == []
        assert plane.shards["shard-0"].alive
