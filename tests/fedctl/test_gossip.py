"""Tests for the gossip bus and the gossiping verdict cache."""

import pytest

from repro.common.errors import ConfigError
from repro.fedctl.gossip import GossipBus, GossipingVerdictCache


def two_members(**kwargs):
    bus = GossipBus(**kwargs)
    a = GossipingVerdictCache(bus, "a")
    b = GossipingVerdictCache(bus, "b")
    return bus, a, b


class TestRumorMongering:
    def test_local_put_reaches_peers_after_drain(self):
        bus, a, b = two_members()
        a.put("k1", "verdict-1")
        assert b.get("k1") is None          # not yet drained
        assert bus.pending("b") == 1
        assert bus.drain("b") == 1
        assert b.get("k1") == "verdict-1"
        assert bus.pending("b") == 0

    def test_rumor_is_the_same_object(self):
        # Warm remote hits are byte-for-byte the origin's decision.
        bus, a, b = two_members()
        verdict = object()
        a.put("k", verdict)
        bus.drain_all()
        assert b.get("k") is verdict

    def test_origin_does_not_receive_its_own_rumor(self):
        bus, a, b = two_members()
        a.put("k", "v")
        assert bus.pending("a") == 0

    def test_duplicate_rumors_keep_the_incumbent(self):
        bus, a, b = two_members()
        a.put("k", "from-a")
        b.put("k", "from-b")     # computed locally before draining
        assert bus.drain("b") == 0      # duplicate: incumbent kept
        assert b.get("k") == "from-b"

    def test_remote_hits_are_counted(self):
        bus, a, b = two_members()
        a.put("k", "v")
        bus.drain_all()
        assert b.remote_hits == 0
        b.get("k")
        assert b.remote_hits == 1
        a.get("k")
        assert a.remote_hits == 0       # locally computed on a

    def test_local_recompute_clears_the_remote_mark(self):
        bus, a, b = two_members()
        a.put("k", "v")
        bus.drain_all()
        b.put("k", "v2")                # b computed it itself now
        b.get("k")
        assert b.remote_hits == 0

    def test_inbox_overflow_drops_oldest(self):
        bus, a, b = two_members(inbox_limit=2)
        for i in range(4):
            a.put("k%d" % i, i)
        assert bus.pending("b") == 2
        bus.drain("b")
        assert b.get("k0") is None and b.get("k1") is None
        assert b.get("k2") == 2 and b.get("k3") == 3

    def test_duplicate_join_rejected(self):
        bus, a, b = two_members()
        with pytest.raises(ConfigError):
            GossipingVerdictCache(bus, "a")

    def test_drain_unknown_member_rejected(self):
        bus, _a, _b = two_members()
        with pytest.raises(ConfigError):
            bus.drain("ghost")

    def test_leave_stops_rumor_delivery(self):
        bus, a, b = two_members()
        bus.leave("b")
        a.put("k", "v")
        assert bus.members() == ["a"]
        with pytest.raises(ConfigError):
            bus.drain("b")


class TestAntiEntropy:
    def test_reconciles_overflow_losses(self):
        bus, a, b = two_members(inbox_limit=1)
        for i in range(5):
            a.put("k%d" % i, i)
        bus.drain("b")                   # only the newest survived
        assert b.get("k0") is None
        copied = bus.anti_entropy()
        assert copied >= 4
        for i in range(5):
            assert b.get("k%d" % i) == i

    def test_late_joiner_catches_up(self):
        bus, a, b = two_members()
        a.put("k", "v")
        bus.drain_all()
        late = GossipingVerdictCache(bus, "late")
        assert late.get("k") is None
        bus.anti_entropy()
        assert late.get("k") == "v"
        assert late.remote_hits == 1

    def test_idempotent_when_converged(self):
        bus, a, b = two_members()
        a.put("k", "v")
        bus.anti_entropy()
        assert bus.anti_entropy() == 0


class TestAccounting:
    def test_overflow_drops_are_counted_per_shard(self):
        bus, a, b = two_members(inbox_limit=2)
        GossipingVerdictCache(bus, "c")
        for i in range(5):
            a.put("k%d" % i, i)
        stats = bus.stats()
        # b and c each shed 3 rumors (5 published into a 2-slot inbox).
        assert stats["dropped"] == {"b": 3, "c": 3}
        assert bus.dropped == {"b": 3, "c": 3}

    def test_drop_counts_survive_a_member_leaving(self):
        bus, a, b = two_members(inbox_limit=1)
        for i in range(3):
            a.put("k%d" % i, i)
        bus.leave("b")
        stats = bus.stats()
        assert stats["dropped"] == {"b": 2}
        assert "b" not in stats["pending"]

    def test_anti_entropy_reports_recovered_entries(self):
        bus, a, b = two_members(inbox_limit=1)
        for i in range(4):
            a.put("k%d" % i, i)
        bus.drain("b")
        recovered = bus.anti_entropy()
        assert recovered == 3
        stats = bus.stats()
        assert stats["anti_entropy_last_recovered"] == 3
        assert stats["anti_entropy_recovered"] == 3
        assert bus.anti_entropy() == 0
        assert bus.stats()["anti_entropy_last_recovered"] == 0
        assert bus.stats()["anti_entropy_recovered"] == 3

    def test_publish_apply_duplicate_totals(self):
        bus, a, b = two_members()
        a.put("k", "from-a")
        b.put("k", "from-b")
        bus.drain_all()
        stats = bus.stats()
        assert stats["published"] == 2
        # Each peer saw the other's rumor; both already held the key.
        assert stats["duplicates"] == 2
        assert stats["applied"] == 0
        assert stats["members"] == ["a", "b"]

    def test_dropped_counter_without_observability(self):
        # The per-shard drop counter must be a no-op safe metric when
        # the bus runs without obs (the default in tests).
        bus, a, b = two_members(inbox_limit=1)
        a.put("k0", 0)
        a.put("k1", 1)
        assert bus.stats()["dropped"] == {"b": 1}
