"""Tests for live resharding: add/remove shards under running tenants."""

import pytest

from repro.common.errors import ConfigError, DeploymentError
from repro.fedctl import (
    FederatedControlPlane,
    ShardMap,
    collect_federation_violations,
    federation_digest,
    reshard_movement_violations,
)
from repro.resilience.chaos import _module_request
from repro.resilience.journal import OP_DEPLOY, PHASE_INTENT


def tenant_on(plane, shard_id, tag="t"):
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


def populated_plane(shard_count=3):
    plane = FederatedControlPlane(shard_count=shard_count,
                                  gossip_every=1)
    for index, shard_id in enumerate(plane.shards):
        client = tenant_on(plane, shard_id)
        assert plane.submit(_module_request(client, "m-%d" % index))
    return plane


def moving_tenant(plane, new_shard="shard-3", tag="mover"):
    """A client id that will re-route to ``new_shard`` once added."""
    grown = ShardMap(list(plane.shards) + [new_shard])
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if grown.route(client) == new_shard:
            return client
        probe += 1


class TestAddShard:
    def test_add_moves_exactly_the_rerouted_tenants(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        src = plane.shard_map.route(mover)
        outcome = plane.add_shard()
        assert outcome.kind == "add"
        assert outcome.shard == "shard-3"
        assert outcome.failures == []
        assert mover in outcome.moved_tenants
        # Movement bound: every moved tenant now routes to the new
        # shard (checked internally too -- a violation would raise).
        for tenant in outcome.moved_tenants:
            assert plane.shard_map.route(tenant) == "shard-3"
        assert plane.shard_map.route(mover) == "shard-3"
        assert src != "shard-3"
        assert collect_federation_violations(plane) == []

    def test_moved_module_lives_on_the_new_shard(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        plane.add_shard()
        assert plane.placements["mover-mod"] == ("shard-3", "shard-3")
        record = (
            plane.shards["shard-3"].home.controller
            .deployed["mover-mod"]
        )
        assert record.client_id == mover
        # The new address comes from the new shard's own pools.
        assert plane.resolve_address(
            plane.shards["shard-3"].home.network
            .node(record.platform).pool_network
        ) == "shard-3"
        assert mover in plane.shards["shard-3"].home.tenants

    def test_move_is_journaled_with_reshard_provenance(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        src = plane.shard_map.route(mover)
        plane.add_shard()
        dst_journal = plane.shards["shard-3"].home.journal
        origins = {
            record.origin for record in dst_journal.records
            if record.module_id == "mover-mod"
        }
        assert origins == {"reshard:%s" % src}
        # Intent precedes commit, and nothing is left pending.
        assert dst_journal.pending_intents() == []
        # The source journals the departure as a kill.
        src_journal = plane.shards[src].home.journal
        assert any(
            record.op == "kill" and record.module_id == "mover-mod"
            for record in src_journal.committed()
        )

    def test_moved_module_killable_and_tenant_admitted_there(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        plane.add_shard()
        decision = plane.submit(_module_request(mover, "second-mod"))
        assert decision, decision.result.reason
        assert decision.shard == "shard-3"
        assert plane.kill("mover-mod")
        assert collect_federation_violations(plane) == []

    def test_add_warms_the_new_cache_by_anti_entropy(self):
        plane = populated_plane()
        plane.add_shard()
        new_cache = (
            plane.shards["shard-3"].home.controller.analyzer.cache
        )
        peer_cache = (
            plane.shards["shard-0"].home.controller.analyzer.cache
        )
        missing = [
            key for key in peer_cache.entries()
            if key not in new_cache.entries()
        ]
        assert missing == []

    def test_added_shard_pools_are_disjoint_and_indexed(self):
        plane = populated_plane()
        plane.add_shard()
        assert collect_federation_violations(plane) == []
        stats = plane.stats()
        assert stats["reshards"] == 1
        assert "shard-3" in stats["shards"]

    def test_duplicate_shard_id_rejected(self):
        plane = populated_plane()
        with pytest.raises(ConfigError):
            plane.add_shard("shard-1")

    def test_added_shard_participates_in_failover(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        plane.add_shard()
        before = federation_digest(plane)
        outcome = plane.fail_shard("shard-3")
        assert "shard-3" in outcome.adopted_segments
        assert federation_digest(plane) == before
        assert collect_federation_violations(plane) == []


class TestRemoveShard:
    def test_add_then_remove_round_trips(self):
        plane = populated_plane()
        mover = moving_tenant(plane)
        assert plane.submit(_module_request(mover, "mover-mod"))
        src = plane.shard_map.route(mover)
        plane.add_shard()
        outcome = plane.remove_shard("shard-3")
        assert outcome.kind == "remove"
        assert mover in outcome.moved_tenants
        # The tenant lands back on the shard the ring now serves it
        # from (its original home: the ring is restored exactly).
        assert plane.shard_map.route(mover) == src
        assert plane.placements["mover-mod"] == (src, src)
        assert "shard-3" not in plane.shards
        assert "shard-3" not in plane.shard_map.shard_ids()
        assert "shard-3" not in plane.bus.members()
        assert all(
            owner != "shard-3"
            for _low, _high, owner in plane.address_index.ranges()
        )
        assert collect_federation_violations(plane) == []

    def test_remove_unknown_shard_rejected(self):
        plane = populated_plane()
        with pytest.raises(ConfigError):
            plane.remove_shard("shard-9")

    def test_remove_dead_shard_rejected(self):
        plane = populated_plane()
        plane.fail_shard("shard-0")
        with pytest.raises(ConfigError, match="revive"):
            plane.remove_shard("shard-0")

    def test_remove_heir_rejected(self):
        plane = populated_plane()
        outcome = plane.fail_shard("shard-0")
        with pytest.raises(ConfigError, match="heir"):
            plane.remove_shard(outcome.heir)

    def test_remove_last_live_shard_rejected(self):
        plane = populated_plane()
        first = plane.fail_shard("shard-0")
        second = plane.fail_shard(first.heir)
        with pytest.raises(ConfigError):
            plane.remove_shard(second.heir)


class TestCrashMidReshard:
    def test_interrupted_move_reconciles_on_recovery(self):
        """A reshard move that dies between its destination intent and
        commit behaves exactly like any orphaned deploy: the next
        journal replay reconciles the trial placement away and the
        intent stays pending for audit."""
        plane = populated_plane()
        plane.add_shard()
        dst = plane.shards["shard-3"].home
        platform = sorted(
            dst.network.platforms(), key=lambda p: p.name
        )[0]
        config = _module_request(
            "tenant-limbo", "limbo"
        ).parse_click_config()
        before = federation_digest(plane)
        address = platform.allocate_address()
        dst.journal.append(
            OP_DEPLOY, PHASE_INTENT,
            module_id="limbo", client_id="tenant-limbo",
            platform=platform.name, address=address, sandboxed=False,
            proto=17, port=1500, timestamp=plane._clock(),
            config=config, origin="reshard:shard-0",
        )
        platform.deploy("limbo", address, config, proto=17, port=1500)
        outcome = plane.fail_shard("shard-3")
        assert "limbo" not in platform.modules
        assert "limbo" not in plane.placements
        assert federation_digest(plane) == before
        pending = [
            r.module_id for r in dst.journal.pending_intents()
        ]
        assert pending == ["limbo"]
        assert collect_federation_violations(plane) == []
        # The origin survives in the journal's audit projection.
        audit = [
            r for r in dst.journal.records if r.module_id == "limbo"
        ]
        assert audit[0].to_dict()["origin"] == "reshard:shard-0"
        # And the revived shard comes back clean.
        plane.revive_shard("shard-3")
        assert federation_digest(plane) == before
        assert collect_federation_violations(plane) == []


class TestAdoptModule:
    def test_export_unknown_module_rejected(self):
        plane = populated_plane()
        controller = plane.shards["shard-0"].home.controller
        with pytest.raises(DeploymentError):
            controller.export_module("no-such-module")

    def test_adopt_refuses_duplicate_module_id(self):
        plane = populated_plane()
        src = plane.shards["shard-0"].home.controller
        module_id = sorted(src.deployed)[0]
        record = src.export_module(module_id)
        result = src.adopt_module(record)
        assert not result
        assert "already in use" in result.reason

    def test_adopt_places_verifies_and_commits(self):
        plane = populated_plane()
        src = plane.shards["shard-0"].home.controller
        dst = plane.shards["shard-1"].home.controller
        module_id = sorted(src.deployed)[0]
        record = src.export_module(module_id)
        result = dst.adopt_module(record, origin="reshard:shard-0")
        assert result, result.reason
        assert result.source == record.platform
        assert module_id in dst.deployed
        adopted = dst.deployed[module_id]
        assert adopted.client_id == record.client_id
        assert adopted.platform != record.platform
        # Exported records are detached copies: mutating the adopted
        # requirements does not leak back to the source.
        assert adopted.requirements is not record.requirements


class TestMovementBoundHelper:
    def test_clean_add_and_remove_pass(self):
        before = {"a": "s0", "b": "s1", "c": "s0"}
        assert reshard_movement_violations(
            before, {"a": "s2", "b": "s1", "c": "s0"}, added="s2"
        ) == []
        assert reshard_movement_violations(
            before, {"a": "s1", "b": "s1", "c": "s1"}, removed="s0"
        ) == []

    def test_lateral_moves_flagged(self):
        before = {"a": "s0", "b": "s1"}
        problems = reshard_movement_violations(
            before, {"a": "s1", "b": "s1"}, added="s2"
        )
        assert len(problems) == 1
        assert "only the new shard" in problems[0]
        problems = reshard_movement_violations(
            before, {"a": "s0", "b": "s2"}, removed="s0"
        )
        assert len(problems) == 1
        assert "only the removed shard" in problems[0]

    def test_lost_and_spurious_moves_flagged(self):
        problems = reshard_movement_violations(
            {"a": "s0"}, {}, added="s1"
        )
        assert "lost its route" in problems[0]
        problems = reshard_movement_violations(
            {"a": "s0"}, {"a": "s1"}
        )
        assert "no ring change" in problems[0]
