"""Tests for the federated control plane front-end."""

import pytest

from repro.common.errors import ConfigError
from repro.fedctl import (
    FederatedControlPlane,
    check_federation_invariants,
    collect_federation_violations,
)
from repro.resilience.chaos import CLIENT_ADDR, _module_request


def tenant_on(plane, shard_id, tag="t"):
    """A client id the shard map routes to ``shard_id``."""
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.route(client) == shard_id:
            return client
        probe += 1


class TestAdmissionRouting:
    def test_request_lands_on_the_mapped_shard(self):
        plane = FederatedControlPlane(shard_count=3)
        for shard_id in plane.shards:
            client = tenant_on(plane, shard_id)
            decision = plane.submit(
                _module_request(client, "m-%s" % shard_id)
            )
            assert decision, decision.result.reason
            assert decision.shard == shard_id
            holder = plane.shards[shard_id]
            assert "m-%s" % shard_id in (
                holder.home.controller.deployed
            )
            assert client in holder.home.tenants

    def test_per_tenant_ordering(self):
        # Same tenant, duplicate module name: the second request must
        # reach the same shard and see the first one's effect.
        plane = FederatedControlPlane(shard_count=4)
        client = tenant_on(plane, "shard-2")
        first = plane.submit(_module_request(client, "dup"))
        second = plane.submit(_module_request(client, "dup"))
        assert first
        assert not second
        assert second.shard == first.shard
        assert "already in use" in second.result.reason

    def test_module_names_unique_federation_wide(self):
        # Two different tenants on two different shards cannot both
        # claim one module id: kill/migrate route by it.
        plane = FederatedControlPlane(shard_count=3)
        a = tenant_on(plane, "shard-0")
        b = tenant_on(plane, "shard-1")
        assert plane.submit(_module_request(a, "shared-name"))
        decision = plane.submit(_module_request(b, "shared-name"))
        assert not decision
        assert "already in use on shard-0" in decision.result.reason

    def test_dry_run_leaves_no_trace(self):
        plane = FederatedControlPlane(shard_count=2)
        client = tenant_on(plane, "shard-1")
        decision = plane.submit(
            _module_request(client, "ghost"), dry_run=True
        )
        assert decision
        assert plane.placements == {}
        assert "ghost" not in (
            plane.shards["shard-1"].home.controller.deployed
        )
        # The name stays free for a real admission.
        assert plane.submit(_module_request(client, "ghost"))

    def test_kill_routes_by_placement(self):
        plane = FederatedControlPlane(shard_count=3)
        client = tenant_on(plane, "shard-2")
        assert plane.submit(_module_request(client, "victim"))
        assert plane.kill("victim")
        assert "victim" not in plane.placements
        assert not plane.kill("victim")
        assert collect_federation_violations(plane) == []

    def test_resolve_address_finds_the_owning_shard(self):
        from repro.common.addr import parse_ip

        plane = FederatedControlPlane(shard_count=2)
        # shard-0 owns 10.1/24 + 10.2/24, shard-1 owns 10.3/24 + 10.4/24.
        assert plane.resolve_address(parse_ip("10.1.0.9")) == "shard-0"
        assert plane.resolve_address(parse_ip("10.4.0.9")) == "shard-1"
        assert plane.resolve_address(parse_ip("192.0.2.1")) is None

    def test_single_shard_plane_works(self):
        plane = FederatedControlPlane(shard_count=1)
        client = tenant_on(plane, "shard-0")
        assert plane.submit(_module_request(client, "solo"))
        check_federation_invariants(plane)

    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            FederatedControlPlane(shard_count=0)


class TestInvariants:
    def test_clean_plane_is_green(self):
        plane = FederatedControlPlane(shard_count=3)
        for shard_id in plane.shards:
            client = tenant_on(plane, shard_id)
            assert plane.submit(
                _module_request(client, "m-%s" % shard_id)
            )
        check_federation_invariants(plane)

    def test_phantom_placement_detected(self):
        plane = FederatedControlPlane(shard_count=2)
        plane.placements["phantom"] = ("shard-0", "shard-0")
        problems = collect_federation_violations(plane)
        assert any("phantom" in p for p in problems)

    def test_untracked_deployment_detected(self):
        plane = FederatedControlPlane(shard_count=2)
        client = tenant_on(plane, "shard-0")
        assert plane.submit(_module_request(client, "m1"))
        del plane.placements["m1"]
        problems = collect_federation_violations(plane)
        assert any(
            "missing from the front-end placements" in p
            for p in problems
        )

    def test_stats_shape(self):
        plane = FederatedControlPlane(shard_count=2)
        client = tenant_on(plane, "shard-0")
        assert plane.submit(_module_request(client, "m1"))
        stats = plane.stats()
        assert stats["admissions"] == 1
        assert stats["placements"] == 1
        assert stats["failovers"] == 0
        assert stats["shards"]["shard-0"]["alive"]
        seg = stats["shards"]["shard-0"]["segments"]["shard-0"]
        assert seg["deployed"] == 1
        assert seg["tenants"] == 1
        assert seg["journal_records"] == 2  # intent + commit


class TestFederationSeam:
    """CDN/DoS usecases run unchanged over a sharded operator."""

    def test_frontend_behind_the_federation(self):
        from repro.core.federation import Federation

        plane = FederatedControlPlane(shard_count=3)
        federation = Federation()
        federation.add_operator(
            "sharded-isp", plane.frontend(), (44.43, 26.10)
        )
        client = tenant_on(plane, "shard-1", tag="provider")
        outcome = federation.deploy_near(
            _module_request(client, "edge-filter"), (44.0, 26.0)
        )
        assert outcome
        assert outcome.operator == "sharded-isp"
        assert federation.deployments() == {
            "edge-filter": "sharded-isp"
        }
        # The module really runs on the mapped shard.
        assert plane.placements["edge-filter"][0] == "shard-1"
        # Billing aggregates across shards.
        assert federation.total_invoice(client, now=3600.0) > 0
        # Kill routes back through the facade to the owning shard.
        assert federation.kill("edge-filter")
        assert "edge-filter" not in plane.placements
        assert collect_federation_violations(plane) == []

    def test_prune_sees_through_the_facade(self):
        from repro.core.federation import Federation

        plane = FederatedControlPlane(shard_count=2)
        federation = Federation()
        federation.add_operator(
            "sharded-isp", plane.frontend(), (44.43, 26.10)
        )
        client = tenant_on(plane, "shard-0", tag="provider")
        assert federation.deploy_near(
            _module_request(client, "stale"), (44.0, 26.0)
        )
        # Killed behind the federation's back, via the plane.
        assert plane.kill("stale")
        assert federation.prune_placements() == ["stale"]
