"""Tests for cross-shard failover: journal replay + tenant adoption."""

import pytest

from repro.common.errors import ConfigError
from repro.fedctl import (
    FederatedControlPlane,
    collect_federation_violations,
    federation_digest,
)
from repro.resilience.chaos import _module_request


def tenant_on(plane, shard_id, tag="t"):
    """A client id whose ring owner is ``shard_id`` (owner, not
    route: the owner stays fixed even after the shard dies)."""
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


def populated_plane(shard_count=3):
    plane = FederatedControlPlane(shard_count=shard_count,
                                  gossip_every=1)
    for index, shard_id in enumerate(plane.shards):
        client = tenant_on(plane, shard_id)
        assert plane.submit(_module_request(client, "m-%d" % index))
    return plane


class TestFailover:
    def test_heir_adopts_state_exactly(self):
        plane = populated_plane()
        before = federation_digest(plane)
        outcome = plane.fail_shard("shard-1")
        assert outcome.heir == plane.shard_map.successor("shard-1")
        assert outcome.adopted_segments == ["shard-1"]
        assert outcome.adopted_modules == 1
        assert outcome.mttr_s > 0
        # Journal replay reconstructs the dead shard's exact state.
        assert federation_digest(plane) == before
        assert collect_federation_violations(plane) == []
        assert not plane.shards["shard-1"].alive
        assert plane.shards["shard-1"].segments == {}

    def test_tenants_reroute_to_the_heir(self):
        plane = populated_plane()
        victim_tenants = sorted(
            plane.shards["shard-0"].home.tenants
        )
        outcome = plane.fail_shard("shard-0")
        for client in victim_tenants:
            assert plane.shard_map.route(client) == outcome.heir
        decision = plane.submit(
            _module_request(victim_tenants[0], "after")
        )
        assert decision, decision.result.reason
        assert decision.shard == outcome.heir
        assert decision.segment == "shard-0"
        assert collect_federation_violations(plane) == []

    def test_adopted_module_killable_through_frontend(self):
        plane = populated_plane()
        victim_module = sorted(
            plane.shards["shard-2"].home.controller.deployed
        )[0]
        plane.fail_shard("shard-2")
        assert plane.kill(victim_module)
        assert collect_federation_violations(plane) == []

    def test_address_ranges_follow_the_heir(self):
        from repro.common.addr import parse_ip

        plane = populated_plane()
        # shard-0's platform pools start at 10.1/24 and 10.2/24.
        address = parse_ip("10.1.0.5")
        assert plane.resolve_address(address) == "shard-0"
        outcome = plane.fail_shard("shard-0")
        assert plane.resolve_address(address) == outcome.heir

    def test_detection_latency_adds_to_mttr(self):
        plane = populated_plane()
        failed_at = plane._clock() - 1.5
        outcome = plane.fail_shard("shard-0", failed_at=failed_at)
        assert outcome.mttr_s >= 1.5

    def test_double_failure_chains_to_one_survivor(self):
        plane = populated_plane()
        first = plane.fail_shard("shard-0")
        survivors = [
            s.shard_id for s in plane.live_shards()
        ]
        assert len(survivors) == 2
        second = plane.fail_shard(first.heir)
        # The second victim carried its home segment AND the first
        # victim's adopted segment; both move to the last survivor.
        assert sorted(second.adopted_segments) == sorted(
            ["shard-0", first.heir]
        )
        last = second.heir
        assert [s.shard_id for s in plane.live_shards()] == [last]
        assert collect_federation_violations(plane) == []
        # Every original tenant still routes somewhere live.
        for shard_id in ("shard-0", "shard-1", "shard-2"):
            client = tenant_on(plane, shard_id)
            assert plane.shard_map.route(client) == last

    def test_failing_a_dead_shard_rejected(self):
        plane = populated_plane()
        plane.fail_shard("shard-0")
        with pytest.raises(ConfigError):
            plane.fail_shard("shard-0")

    def test_unknown_shard_rejected(self):
        plane = populated_plane()
        with pytest.raises(ConfigError):
            plane.fail_shard("shard-9")

    def test_orphan_intent_reconciled_on_adoption(self):
        from repro.resilience.journal import OP_DEPLOY, PHASE_INTENT

        plane = populated_plane()
        segment = plane.shards["shard-0"].home
        platform = segment.network.node("p0-a")
        config = _module_request(
            "tenant-orphan", "orphan"
        ).parse_click_config()
        before = federation_digest(plane)
        address = platform.allocate_address()
        segment.journal.append(
            OP_DEPLOY, PHASE_INTENT,
            module_id="orphan", client_id="tenant-orphan",
            platform="p0-a", address=address, sandboxed=False,
            proto=17, port=1500, timestamp=plane._clock(),
            config=config,
        )
        platform.deploy("orphan", address, config, proto=17, port=1500)
        plane.fail_shard("shard-0")
        assert "orphan" not in platform.modules
        assert "orphan" not in plane.placements
        assert federation_digest(plane) == before
        assert collect_federation_violations(plane) == []
