"""Tests for the consistent-hash shard map and the address index."""

import pytest

from repro.common.errors import ConfigError
from repro.fedctl.shardmap import AddressRangeIndex, ShardMap


def three_shards(vnodes=64):
    return ShardMap(["s0", "s1", "s2"], vnodes=vnodes)


class TestRouting:
    def test_deterministic_across_instances(self):
        # Two front-ends with the same shard list agree on every key,
        # with no coordination.
        a, b = three_shards(), three_shards()
        for i in range(200):
            key = "tenant-%d" % i
            assert a.route(key) == b.route(key)

    def test_every_shard_gets_tenants(self):
        sm = three_shards()
        assigned = sm.assignments("tenant-%d" % i for i in range(300))
        assert all(assigned[s] for s in ("s0", "s1", "s2"))

    def test_adding_a_shard_moves_a_minority(self):
        before = three_shards()
        after = three_shards()
        after.add_shard("s3")
        keys = ["tenant-%d" % i for i in range(400)]
        moved = sum(
            1 for k in keys if before.route(k) != after.route(k)
        )
        # Consistent hashing: ~1/4 of keys move, never a majority.
        assert 0 < moved < len(keys) // 2

    def test_duplicate_shard_rejected(self):
        sm = three_shards()
        with pytest.raises(ConfigError):
            sm.add_shard("s0")

    def test_empty_map_rejected(self):
        with pytest.raises(ValueError):
            ShardMap([])


class TestDelegation:
    def test_dead_shard_routes_to_heir(self):
        sm = three_shards()
        keys = ["tenant-%d" % i for i in range(300)]
        owned = [k for k in keys if sm.route(k) == "s1"]
        assert owned
        sm.delegate("s1", "s2")
        # Every one of the dead shard's tenants follows its journal to
        # the single heir; everyone else stays put.
        for key in keys:
            expected = "s2" if key in owned else ShardMap(
                ["s0", "s1", "s2"]
            ).route(key)
            assert sm.route(key) == expected

    def test_chained_delegation(self):
        sm = three_shards()
        key = next(
            "tenant-%d" % i for i in range(300)
            if sm.route("tenant-%d" % i) == "s0"
        )
        sm.delegate("s0", "s1")
        sm.delegate("s1", "s2")
        assert sm.route(key) == "s2"

    def test_no_live_shard_raises(self):
        sm = ShardMap(["s0", "s1"])
        sm.delegate("s0", "s1")
        with pytest.raises(ConfigError):
            sm.delegate("s1", "s0")  # heir is dead: cycle

    def test_self_delegation_rejected(self):
        sm = three_shards()
        with pytest.raises(ConfigError):
            sm.delegate("s0", "s0")

    def test_revive_restores_ownership(self):
        sm = three_shards()
        keys = ["tenant-%d" % i for i in range(200)]
        before = {k: sm.route(k) for k in keys}
        sm.delegate("s1", "s0")
        sm.revive("s1")
        assert {k: sm.route(k) for k in keys} == before

    def test_successor_is_deterministic_and_live(self):
        sm = three_shards()
        heir = sm.successor("s0")
        assert heir in ("s1", "s2")
        assert sm.successor("s0") == heir
        sm.delegate(heir, [s for s in ("s1", "s2") if s != heir][0])
        assert sm.successor("s0") != heir


class TestResolve:
    def test_live_shard_resolves_to_itself(self):
        sm = three_shards()
        assert sm.resolve("s1") == "s1"

    def test_dead_shard_resolves_through_the_chain(self):
        sm = three_shards()
        sm.delegate("s0", "s1")
        assert sm.resolve("s0") == "s1"
        sm.delegate("s1", "s2")
        assert sm.resolve("s0") == "s2"
        assert sm.resolve("s1") == "s2"
        # Reviving the middle shard shortens the chain.
        sm.revive("s1")
        assert sm.resolve("s0") == "s1"
        assert sm.resolve("s1") == "s1"

    def test_unknown_shard_rejected(self):
        with pytest.raises(ConfigError):
            three_shards().resolve("s9")


class TestRemoveShard:
    def test_removal_moves_only_the_removed_shards_keys(self):
        before = three_shards()
        after = three_shards()
        after.remove_shard("s1")
        keys = ["tenant-%d" % i for i in range(400)]
        for key in keys:
            if before.route(key) != "s1":
                assert after.route(key) == before.route(key)
            else:
                assert after.route(key) != "s1"

    def test_add_then_remove_restores_the_ring_exactly(self):
        sm = three_shards()
        keys = ["tenant-%d" % i for i in range(300)]
        before = {k: sm.route(k) for k in keys}
        sm.add_shard("s3")
        sm.remove_shard("s3")
        assert {k: sm.route(k) for k in keys} == before

    def test_remove_unknown_rejected(self):
        with pytest.raises(ConfigError):
            three_shards().remove_shard("s9")

    def test_remove_dead_shard_rejected(self):
        sm = three_shards()
        sm.delegate("s0", "s1")
        with pytest.raises(ConfigError, match="revive"):
            sm.remove_shard("s0")

    def test_remove_heir_rejected(self):
        sm = three_shards()
        sm.delegate("s0", "s1")
        with pytest.raises(ConfigError, match="heir"):
            sm.remove_shard("s1")

    def test_remove_last_live_shard_rejected(self):
        sm = ShardMap(["s0", "s1"])
        sm.delegate("s0", "s1")
        sm.revive("s0")
        sm.remove_shard("s1")
        with pytest.raises(ConfigError):
            sm.remove_shard("s0")


class TestAddressRangeIndex:
    def test_lookup_and_miss(self):
        idx = AddressRangeIndex()
        idx.register(100, 199, "s0")
        idx.register(300, 399, "s1")
        assert idx.owner_of(150) == "s0"
        assert idx.owner_of(399) == "s1"
        assert idx.owner_of(250) is None
        assert idx.owner_of(1000) is None

    def test_overlap_rejected(self):
        idx = AddressRangeIndex()
        idx.register(100, 199, "s0")
        with pytest.raises(ConfigError):
            idx.register(150, 250, "s1")
        with pytest.raises(ConfigError):
            idx.register(50, 100, "s1")

    def test_reassign_moves_every_range(self):
        idx = AddressRangeIndex()
        idx.register(100, 199, "s0")
        idx.register(300, 399, "s0")
        idx.register(500, 599, "s1")
        assert idx.reassign("s0", "s2") == 2
        assert idx.owner_of(150) == "s2"
        assert idx.owner_of(350) == "s2"
        assert idx.owner_of(550) == "s1"

    def test_empty_range_rejected(self):
        with pytest.raises(ConfigError):
            AddressRangeIndex().register(10, 5, "s0")

    def test_reassign_exact_moves_one_range(self):
        idx = AddressRangeIndex()
        idx.register(100, 199, "s0")
        idx.register(300, 399, "s0")
        assert idx.reassign_exact(100, 199, "s2")
        assert idx.owner_of(150) == "s2"
        assert idx.owner_of(350) == "s0"
        # Only exact boundaries match.
        assert not idx.reassign_exact(100, 198, "s1")
        assert not idx.reassign_exact(500, 599, "s1")

    def test_unregister_shard_drops_its_ranges(self):
        idx = AddressRangeIndex()
        idx.register(100, 199, "s0")
        idx.register(300, 399, "s0")
        idx.register(500, 599, "s1")
        assert idx.unregister_shard("s0") == 2
        assert idx.owner_of(150) is None
        assert idx.owner_of(550) == "s1"
        assert idx.unregister_shard("s0") == 0
