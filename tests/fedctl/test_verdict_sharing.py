"""Satellite: a config verified on shard A is a warm hit on shard B.

The security verdict depends only on the config fingerprint, role, and
white-list -- never on the network -- so gossip can share it across
shards, and the shared decision must be *byte-for-byte* what shard B
would have decided cold.
"""

from repro.fedctl import FederatedControlPlane
from repro.resilience.chaos import _module_request


def tenant_on(plane, shard_id, tag="t"):
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


class TestCrossShardVerdictSharing:
    def test_warm_hit_on_the_other_shard(self):
        plane = FederatedControlPlane(shard_count=2, gossip_every=1)
        shard_a = tenant_on(plane, "shard-0", tag="alice")
        shard_b = tenant_on(plane, "shard-1", tag="bob")

        cold = plane.submit(_module_request(shard_a, "mod-a"))
        assert cold, cold.result.reason
        assert cold.shard == "shard-0"

        cache_b = (
            plane.shards["shard-1"].home.controller.analyzer.cache
        )
        assert cache_b.remote_hits == 0
        # gossip_every=1: the rumor was drained into shard-1's cache
        # right after shard-0's admission.
        warm = plane.submit(_module_request(shard_b, "mod-b"))
        assert warm, warm.result.reason
        assert warm.shard == "shard-1"
        # Shard B never ran the verifier: its cache served the verdict
        # gossip delivered, and the hit is counted as remote.
        assert cache_b.remote_hits >= 1
        assert cache_b.stats.misses == 0

    def test_shared_decision_identical_to_cold_admission(self):
        # Two identical federations; in the first, shard-1 decides via
        # gossip, in the second (no prior traffic) it decides cold.
        # The admission outcome must be indistinguishable.
        warm_plane = FederatedControlPlane(
            shard_count=2, gossip_every=1
        )
        cold_plane = FederatedControlPlane(
            shard_count=2, gossip_every=1
        )
        alice = tenant_on(warm_plane, "shard-0", tag="alice")
        bob = tenant_on(warm_plane, "shard-1", tag="bob")

        assert warm_plane.submit(_module_request(alice, "mod-a"))
        warm = warm_plane.submit(_module_request(bob, "mod-b"))
        cold = cold_plane.submit(_module_request(bob, "mod-b"))
        assert warm and cold

        warm_cache = (
            warm_plane.shards["shard-1"].home.controller.analyzer.cache
        )
        cold_cache = (
            cold_plane.shards["shard-1"].home.controller.analyzer.cache
        )
        assert warm_cache.remote_hits >= 1   # served by gossip
        assert cold_cache.stats.misses >= 1  # computed locally

        # Byte-for-byte the same decision.
        assert warm.shard == cold.shard
        assert warm.segment == cold.segment
        for attr in ("accepted", "platform", "address", "sandboxed"):
            assert getattr(warm.result, attr) == \
                getattr(cold.result, attr), attr
        assert str(warm.result.security) == str(cold.result.security)

    def test_verdict_object_is_the_origins(self):
        # The gossiped entry is the origin shard's exact report object
        # (in-process bus), not a recomputed lookalike.
        plane = FederatedControlPlane(shard_count=2, gossip_every=1)
        alice = tenant_on(plane, "shard-0", tag="alice")
        assert plane.submit(_module_request(alice, "mod-a"))
        cache_a = (
            plane.shards["shard-0"].home.controller.analyzer.cache
        )
        cache_b = (
            plane.shards["shard-1"].home.controller.analyzer.cache
        )
        shared = set(cache_a.entries()) & set(cache_b.entries())
        assert shared
        for key in shared:
            assert cache_b.entries()[key] is cache_a.entries()[key]
