"""The shard-death chaos scenario must pass, with and without obs."""

from repro.fedctl.chaos import run_all, run_shard_death


class TestShardDeathScenario:
    def test_passes_across_seeds(self):
        for report in run_all(seeds=(1, 2)):
            assert report.passed, report.failures
            assert report.digest_equal
            assert report.mttr_s is not None and report.mttr_s > 0
            assert report.evacuated

    def test_instrumented_run_matches(self):
        from repro.obs import Observability

        obs = Observability()
        report = run_shard_death(seed=3, obs=obs)
        assert report.passed, report.failures
        parsed = obs.snapshot()["metrics"]
        assert "fedctl_failovers_total" in parsed
        spans = obs.snapshot()["spans"]
        names = {s["name"] for s in spans}
        assert "fedctl.submit" in names
        assert "fedctl.failover" in names
