"""The federation chaos scenarios must pass, with and without obs."""

from repro.fedctl.chaos import (
    LIFECYCLE_SCENARIO,
    run_all,
    run_failure_lifecycle,
    run_lifecycle_all,
    run_shard_death,
)


class TestShardDeathScenario:
    def test_passes_across_seeds(self):
        for report in run_all(seeds=(1, 2)):
            assert report.passed, report.failures
            assert report.digest_equal
            assert report.mttr_s is not None and report.mttr_s > 0
            assert report.evacuated

    def test_instrumented_run_matches(self):
        from repro.obs import Observability

        obs = Observability()
        report = run_shard_death(seed=3, obs=obs)
        assert report.passed, report.failures
        parsed = obs.snapshot()["metrics"]
        assert "fedctl_failovers_total" in parsed
        spans = obs.snapshot()["spans"]
        names = {s["name"] for s in spans}
        assert "fedctl.submit" in names
        assert "fedctl.failover" in names


class TestFailureLifecycleScenario:
    def test_passes_across_seeds(self):
        for report in run_lifecycle_all(seeds=(1, 2)):
            assert report.scenario == LIFECYCLE_SCENARIO
            assert report.passed, report.failures
            assert report.digest_equal
            assert report.mttr_s is not None and report.mttr_s > 0
            assert report.faults_injected >= 2

    def test_instrumented_run_matches(self):
        from repro.obs import Observability

        obs = Observability()
        report = run_failure_lifecycle(seed=3, obs=obs)
        assert report.passed, report.failures
        parsed = obs.snapshot()["metrics"]
        assert "fedctl_handbacks_total" in parsed
        assert "fedctl_reshards_total" in parsed
        spans = obs.snapshot()["spans"]
        names = {s["name"] for s in spans}
        assert "fedctl.handback" in names
        assert "fedctl.reshard" in names
