"""Shared fixtures for the In-Net reproduction test suite."""

import pytest

from repro.common.addr import parse_ip
from repro.core import Controller
from repro.netmodel.examples import figure3_network


@pytest.fixture
def figure3():
    """A fresh Figure 3 operator network."""
    return figure3_network()


@pytest.fixture
def controller(figure3):
    """A controller over the Figure 3 network."""
    return Controller(figure3)


@pytest.fixture
def ip():
    """Shorthand dotted-quad parser."""
    return parse_ip


#: The Figure 4 client configuration used across integration tests.
FIGURE4_SOURCE = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""


@pytest.fixture
def figure4_source():
    return FIGURE4_SOURCE
