"""Tests for the ``python -m repro`` command-line interface."""

import json

import pytest

from repro.__main__ import main


FIREWALL_CONFIG = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> IPFilter(allow udp)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

ROUTER_CONFIG = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> DecIPTTL() -> out;
"""


class TestDemo:
    def test_demo_succeeds(self, capsys):
        assert main(["demo"]) == 0
        out = capsys.readouterr().out
        assert "platform3" in out
        assert "accepted : True" in out


class TestAudit:
    def test_audit_prints_matrix(self, capsys):
        assert main(["audit"]) == 0
        out = capsys.readouterr().out
        assert "x86_vm" in out
        assert "ok(s)" in out and "X" in out


class TestElements:
    def test_lists_every_registered_element(self, capsys):
        from repro.click.element import element_registry

        assert main(["elements"]) == 0
        out = capsys.readouterr().out
        for name in element_registry():
            assert name in out
        assert "every one has a symbolic model" in out

    def test_iprewriter_statefulness_is_dynamic(self, capsys):
        main(["elements"])
        out = capsys.readouterr().out
        line = next(
            l for l in out.splitlines() if l.startswith("IPRewriter")
        )
        assert "dyn" in line


class TestCheck:
    def test_safe_config_exits_zero(self, tmp_path, capsys):
        path = tmp_path / "fw.click"
        path.write_text(FIREWALL_CONFIG)
        code = main([
            "check", str(path),
            "--whitelist", "172.16.15.133",
        ])
        assert code == 0
        assert "verdict=allow" in capsys.readouterr().out

    def test_passthrough_rejected_exit_three(self, tmp_path):
        path = tmp_path / "router.click"
        path.write_text(ROUTER_CONFIG)
        assert main(["check", str(path)]) == 3

    def test_tunnel_sandbox_exit_two(self, tmp_path):
        path = tmp_path / "tun.click"
        path.write_text(
            "FromNetfront() -> IPDecap() -> ToNetfront();"
        )
        assert main(["check", str(path)]) == 2

    def test_operator_role_allows_anything(self, tmp_path):
        path = tmp_path / "router.click"
        path.write_text(ROUTER_CONFIG)
        assert main(["check", str(path), "--role", "operator"]) == 0


class TestRequest:
    def test_wire_request_roundtrip(self, tmp_path, capsys):
        payload = {
            "version": 1,
            "client_id": "cli-user",
            "config_source": FIREWALL_CONFIG,
            "requirements": "reach from internet udp -> client",
            "role": "client",
            "owned_addresses": ["172.16.15.133"],
            "module_name": "cli-mod",
        }
        path = tmp_path / "request.json"
        path.write_text(json.dumps(payload))
        assert main(["request", str(path)]) == 0
        reply = json.loads(capsys.readouterr().out)
        assert reply["accepted"] is True
        assert reply["module_id"] == "cli-mod"

    def test_denied_request_exit_one(self, tmp_path, capsys):
        payload = {
            "version": 1,
            "client_id": "cli-user",
            "config_source": ROUTER_CONFIG,  # passthrough: rejected
            "role": "third-party",
        }
        path = tmp_path / "request.json"
        path.write_text(json.dumps(payload))
        assert main(["request", str(path)]) == 1
        reply = json.loads(capsys.readouterr().out)
        assert reply["accepted"] is False


class TestTrace:
    def test_trace_prints_table(self, tmp_path, capsys):
        path = tmp_path / "fig2.click"
        path.write_text("""
            client :: FromNetfront();
            fw :: IPFilter(allow udp);
            server :: EchoResponder();
            back :: ToNetfront();
            client -> fw -> server -> back;
        """)
        assert main(["trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert "IP SRC" in out and "udp" in out
        assert "flows delivered" in out

    def test_trace_without_source_fails(self, tmp_path, capsys):
        path = tmp_path / "empty.click"
        # A ring has no source element to inject at.
        path.write_text("a :: Counter(); b :: Counter(); "
                        "a -> b; b -> a;")
        assert main(["trace", str(path)]) == 1


class TestObs:
    def test_obs_table_shows_all_three_layers(self, capsys):
        assert main(["obs", "--packets", "10"]) == 0
        out = capsys.readouterr().out
        assert "=== figure 4 walkthrough ===" in out
        assert "dataplane_packets_total" in out
        assert "controller_admission_seconds" in out
        assert "platform_boots_total" in out
        assert "=== spans ===" in out
        assert "admit" in out

    def test_obs_json_snapshot_has_metrics_and_nested_spans(self, capsys):
        assert main(["obs", "--packets", "10", "--format", "json"]) == 0
        snap = json.loads(capsys.readouterr().out)
        metrics = snap["metrics"]
        assert metrics["dataplane_egress_total"]["values"] == \
            {"element=dst": 10}
        assert "controller_admission_seconds" in metrics
        assert "platform_lifecycle_seconds" in metrics
        admit = next(s for s in snap["spans"] if s["name"] == "admit")
        assert admit["children"], "admission span has no children"

    def test_obs_prometheus_output_parses(self, capsys):
        from repro.obs.export import parse_prometheus

        assert main(["obs", "--packets", "10", "--format", "prom"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        assert parsed["dataplane_packets_total"]['{element="dst"}'] == 10
        # One walkthrough admission plus the resilience episode's
        # three scenario deploys share the snapshot.
        assert parsed["controller_requests_total"][
            '{outcome="accepted"}'] == 4


class TestObsResilienceEpisode:
    def test_obs_table_includes_failure_model_counters(self, capsys):
        assert main(["obs", "--packets", "10"]) == 0
        out = capsys.readouterr().out
        assert "resilience_health_checks_total" in out
        assert "resilience_failovers_total" in out
        assert "resilience_recovery_seconds" in out

    def test_obs_prometheus_reports_a_complete_failover(self, capsys):
        from repro.obs.export import parse_prometheus

        assert main(["obs", "--packets", "10", "--format", "prom"]) == 0
        parsed = parse_prometheus(capsys.readouterr().out)
        assert parsed["resilience_failovers_total"][
            '{outcome="complete"}'] == 1
        assert parsed["resilience_modules_evacuated_total"][""] == 2


class TestChaos:
    def test_all_scenarios_green(self, capsys):
        assert main(["chaos", "--seeds", "1", "2", "3"]) == 0
        out = capsys.readouterr().out
        assert "12/12 runs green" in out
        assert "FAIL" not in out
        for name in (
            "platform-crash", "boot-timeout-storm",
            "link-flap-migration", "controller-restart",
        ):
            assert name in out

    def test_single_scenario_selection(self, capsys):
        assert main([
            "chaos", "--scenario", "platform-crash", "--seeds", "7",
        ]) == 0
        out = capsys.readouterr().out
        assert "1/1 runs green" in out
        assert "mttr=" in out

    def test_list_scenarios(self, capsys):
        assert main(["chaos", "--list"]) == 0
        out = capsys.readouterr().out.split()
        assert "platform-crash" in out
        assert "controller-restart" in out

    def test_unknown_scenario_fails_loudly(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            main(["chaos", "--scenario", "heat-death"])
