"""Tests for the dataplane cost model (Figures 8, 9, 11, 12)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel, line_rate_pps
from repro.platform.throughput import (
    SANDBOX_INLINE,
    SANDBOX_NONE,
    SANDBOX_SEPARATE_VM,
)


@pytest.fixture(scope="module")
def model():
    return ThroughputModel(CHEAP_SERVER_SPEC)


class TestLineRate:
    def test_64b_line_rate(self):
        # 10G at 64B + 24B overhead = 14.2 Mpps.
        assert line_rate_pps(CHEAP_SERVER_SPEC, 64) == pytest.approx(
            14.2e6, rel=0.01
        )

    def test_1500b_line_rate(self):
        assert line_rate_pps(CHEAP_SERVER_SPEC, 1500) == pytest.approx(
            820e3, rel=0.01
        )

    def test_positive_size_required(self):
        with pytest.raises(ValueError):
            line_rate_pps(CHEAP_SERVER_SPEC, 0)


class TestFigure11:
    """Sandboxing cost by packet size."""

    def test_baseline_64b_is_4_3_mpps(self, model):
        assert model.capacity_pps(64) == pytest.approx(4.3e6, rel=0.02)

    def test_inline_sandbox_costs_a_third_at_64b(self, model):
        base = model.capacity_pps(64)
        boxed = model.capacity_pps(64, sandbox=SANDBOX_INLINE)
        assert 1 - boxed / base == pytest.approx(1 / 3, abs=0.02)

    def test_separate_vm_drops_to_1_5_mpps(self, model):
        boxed = model.capacity_pps(64, sandbox=SANDBOX_SEPARATE_VM)
        assert boxed == pytest.approx(1.5e6, rel=0.05)

    def test_no_drop_at_mtu_sizes(self, model):
        for size in (1024, 1472):
            base = model.capacity_pps(size)
            boxed = model.capacity_pps(size, sandbox=SANDBOX_INLINE)
            assert boxed == base  # both line-rate bound

    def test_drop_shrinks_with_size(self, model):
        drops = []
        for size in (64, 256, 512, 1024):
            base = model.capacity_pps(size)
            boxed = model.capacity_pps(size, sandbox=SANDBOX_INLINE)
            drops.append(1 - boxed / base)
        assert drops == sorted(drops, reverse=True)

    def test_unknown_sandbox_mode(self, model):
        with pytest.raises(ValueError):
            model.capacity_pps(64, sandbox="jail")


class TestFigure8:
    """Consolidation: line rate to ~150 configs, drop after."""

    def test_line_rate_below_knee(self, model):
        for n in (24, 96, 150):
            bps = model.capacity_bps(
                1500, element_cost=2.4, consolidated_configs=n
            )
            assert bps == pytest.approx(9.84e9, rel=0.01)

    def test_drop_beyond_knee(self, model):
        at_252 = model.capacity_bps(
            1500, element_cost=2.4, consolidated_configs=252
        )
        assert 8.0e9 < at_252 < 9.0e9

    @given(st.integers(min_value=1, max_value=500))
    def test_more_configs_never_faster(self, model, n):
        a = model.capacity_bps(1500, consolidated_configs=n)
        b = model.capacity_bps(1500, consolidated_configs=n + 1)
        assert b <= a


class TestFigure9:
    """1,000 clients at 8 Mb/s delivered regardless of grouping."""

    @pytest.mark.parametrize("per_vm", [50, 100, 200])
    def test_thousand_clients_meet_demand(self, model, per_vm):
        clients = 1000
        vms = clients // per_vm
        delivered = model.aggregate_throughput_bps(
            1500,
            [8e6] * clients,
            element_cost=2.4,
            consolidated_configs=per_vm,
            resident_vms=vms,
        )
        assert delivered == pytest.approx(8e9, rel=0.02)

    def test_demand_bound_when_few_clients(self, model):
        delivered = model.aggregate_throughput_bps(1500, [8e6] * 10)
        assert delivered == pytest.approx(80e6)


class TestFigure12:
    """Aggregate middlebox throughput stays high up to 100 VMs."""

    @pytest.mark.parametrize("element_cost", [2.2, 2.4, 2.7, 3.2])
    def test_high_throughput_at_100_vms(self, model, element_cost):
        bps = model.capacity_bps(
            1500, element_cost=element_cost, resident_vms=100
        )
        assert bps > 8e9

    def test_costlier_middlebox_never_faster(self, model):
        cheap = model.capacity_bps(1500, element_cost=2.2,
                                   resident_vms=100)
        costly = model.capacity_bps(1500, element_cost=3.2,
                                    resident_vms=100)
        assert costly <= cheap


class TestConfigCost:
    def test_config_element_cost_sums_classes(self, model):
        from repro.click import parse_config

        cfg = parse_config(
            "FromNetfront() -> Counter() -> ToNetfront();"
        )
        # 0.6 + 0.3 + 0.6
        assert model.config_element_cost(cfg) == pytest.approx(1.5)


class TestMonotonicity:
    @given(
        size=st.integers(min_value=64, max_value=1500),
        vms=st.integers(min_value=1, max_value=200),
    )
    def test_more_vms_never_faster(self, model, size, vms):
        a = model.capacity_pps(size, resident_vms=vms)
        b = model.capacity_pps(size, resident_vms=vms + 10)
        assert b <= a

    @given(size=st.integers(min_value=64, max_value=1471))
    def test_capacity_never_exceeds_line_rate(self, model, size):
        assert model.capacity_pps(size) <= line_rate_pps(
            CHEAP_SERVER_SPEC, size
        )
