"""Tests for platform specs and the lifecycle latency models."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.platform import (
    BIG_SERVER_SPEC,
    CHEAP_SERVER_SPEC,
    VM_CLICKOS,
    VM_LINUX,
    boot_time,
    resume_time,
    suspend_time,
)
from repro.platform.lifecycle import packet_rtt


class TestMemoryDensity:
    """Section 6: 10,000 ClickOS vs ~200 Linux VMs on the 128 GB box."""

    def test_clickos_density_on_big_box(self):
        assert BIG_SERVER_SPEC.max_vms(VM_CLICKOS) == 10_000

    def test_linux_density_on_big_box(self):
        assert BIG_SERVER_SPEC.max_vms(VM_LINUX) == 200

    def test_two_orders_of_magnitude_gap(self):
        ratio = (
            BIG_SERVER_SPEC.linux_memory_mb
            / BIG_SERVER_SPEC.clickos_memory_mb
        )
        assert ratio == 64  # "almost two orders of magnitude"

    def test_cheap_box_memory_bound(self):
        # 16 GB box: memory caps Linux VMs well below the hypervisor cap.
        assert CHEAP_SERVER_SPEC.max_vms(VM_LINUX) < 40

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            CHEAP_SERVER_SPEC.vm_memory_mb("solaris")

    def test_scaled_override(self):
        fat = CHEAP_SERVER_SPEC.scaled(memory_mb=32 * 1024)
        assert fat.max_vms(VM_LINUX) > CHEAP_SERVER_SPEC.max_vms(VM_LINUX)
        assert fat.name == CHEAP_SERVER_SPEC.name


class TestBootTimes:
    """Section 5 / Figure 5 constants."""

    def test_clickos_boots_in_about_30ms(self):
        assert 0.025 <= boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, 0) <= 0.035

    def test_hundredth_vm_near_100ms(self):
        t = boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, 100)
        assert 0.08 <= t <= 0.12

    def test_linux_boot_an_order_of_magnitude_slower(self):
        clickos = boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, 0)
        linux = boot_time(CHEAP_SERVER_SPEC, VM_LINUX, 0)
        assert linux / clickos > 10

    def test_negative_residents_rejected(self):
        with pytest.raises(ValueError):
            boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, -1)

    @given(st.integers(min_value=0, max_value=500))
    def test_monotone_in_residents(self, n):
        assert boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, n + 1) >= (
            boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, n)
        )


class TestSuspendResume:
    """Figure 7: 30-100 ms, growing with resident VMs."""

    @pytest.mark.parametrize("n", [0, 50, 100, 150, 200])
    def test_within_figure7_envelope(self, n):
        s = suspend_time(CHEAP_SERVER_SPEC, n)
        r = resume_time(CHEAP_SERVER_SPEC, n)
        assert 0.030 <= s <= 0.100
        assert 0.030 <= r <= 0.100

    def test_cycle_about_100ms_when_idle(self):
        total = suspend_time(CHEAP_SERVER_SPEC, 0) + resume_time(
            CHEAP_SERVER_SPEC, 0
        )
        assert 0.080 <= total <= 0.110

    @given(st.integers(min_value=0, max_value=200))
    def test_monotone(self, n):
        assert suspend_time(CHEAP_SERVER_SPEC, n + 1) >= suspend_time(
            CHEAP_SERVER_SPEC, n
        )
        assert resume_time(CHEAP_SERVER_SPEC, n + 1) >= resume_time(
            CHEAP_SERVER_SPEC, n
        )


class TestPacketRtt:
    def test_sub_millisecond_when_quiet(self):
        assert packet_rtt(CHEAP_SERVER_SPEC, 1) < 0.001

    def test_grows_with_residents(self):
        assert packet_rtt(CHEAP_SERVER_SPEC, 100) > packet_rtt(
            CHEAP_SERVER_SPEC, 1
        )
