"""Tests for tenant consolidation (Section 5)."""

import pytest

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.platform import (
    ConsolidationManager,
    consolidate_configs,
    is_consolidation_safe,
)

STATELESS = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> IPFilter(allow udp)
        -> IPRewriter(pattern - - %s - 0 0) -> out;
"""

STATEFUL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> FlowMeter() -> out;
"""


def stateless(addr):
    return parse_config(STATELESS % addr)


class TestSafety:
    def test_stateless_config_safe(self):
        assert is_consolidation_safe(stateless("10.0.0.1"))

    def test_flow_meter_unsafe(self):
        assert not is_consolidation_safe(parse_config(STATEFUL))

    def test_stateful_firewall_unsafe(self):
        cfg = parse_config("fw :: StatefulFirewall();")
        assert not is_consolidation_safe(cfg)

    def test_masquerading_rewriter_unsafe(self):
        cfg = parse_config(
            "r :: IPRewriter(pattern 9.9.9.9 1024-65535 - - 0 1);"
        )
        assert not is_consolidation_safe(cfg)


class TestMergedConfig:
    def test_merge_and_demux_traffic(self):
        addr_a = parse_ip("172.16.0.1")
        addr_b = parse_ip("172.16.0.2")
        merged = consolidate_configs([
            ("alice", parse_ip("192.0.2.1"), stateless("172.16.0.1")),
            ("bob", parse_ip("192.0.2.2"), stateless("172.16.0.2")),
        ])
        merged.validate()
        rt = Runtime(merged)
        for_alice = Packet(ip_dst=parse_ip("192.0.2.1"), ip_proto=UDP)
        for_bob = Packet(ip_dst=parse_ip("192.0.2.2"), ip_proto=UDP)
        rt.inject("shared_in", for_alice)
        rt.inject("shared_in", for_bob)
        out = [r.packet["ip_dst"] for r in rt.output]
        assert out == [addr_a, addr_b]

    def test_unmatched_traffic_dropped(self):
        merged = consolidate_configs([
            ("alice", parse_ip("192.0.2.1"), stateless("172.16.0.1")),
        ])
        rt = Runtime(merged)
        rt.inject("shared_in", Packet(ip_dst=parse_ip("9.9.9.9")))
        assert not rt.output

    def test_stateful_client_refused(self):
        with pytest.raises(ConfigError):
            consolidate_configs([
                ("meter", parse_ip("192.0.2.1"), parse_config(STATEFUL)),
            ])

    def test_empty_refused(self):
        with pytest.raises(ConfigError):
            consolidate_configs([])

    def test_namespaces_isolate_elements(self):
        merged = consolidate_configs([
            ("a", parse_ip("192.0.2.1"), stateless("172.16.0.1")),
            ("b", parse_ip("192.0.2.2"), stateless("172.16.0.2")),
        ])
        names = set(merged.elements)
        assert any(n.startswith("a/") for n in names)
        assert any(n.startswith("b/") for n in names)
        # No element is shared between the two clients' subgraphs.
        assert not {n for n in names if n.startswith("a/")} & {
            n for n in names if n.startswith("b/")
        }


class TestManager:
    def test_groups_fill_up_to_limit(self):
        mgr = ConsolidationManager(clients_per_vm=2)
        _, new1 = mgr.place("a", 1, stateless("172.16.0.1"))
        _, new2 = mgr.place("b", 2, stateless("172.16.0.2"))
        _, new3 = mgr.place("c", 3, stateless("172.16.0.3"))
        assert (new1, new2, new3) == (True, False, True)
        assert mgr.vm_count == 2

    def test_stateful_gets_private_vm(self):
        mgr = ConsolidationManager(clients_per_vm=10)
        mgr.place("a", 1, stateless("172.16.0.1"))
        idx, new = mgr.place("meter", 2, parse_config(STATEFUL))
        assert new
        assert mgr.group_of("meter") == idx
        # Later stateless clients do not join the stateful group.
        idx2, _ = mgr.place("b", 3, stateless("172.16.0.2"))
        assert idx2 != idx

    def test_duplicate_placement_rejected(self):
        mgr = ConsolidationManager()
        mgr.place("a", 1, stateless("172.16.0.1"))
        with pytest.raises(ConfigError):
            mgr.place("a", 1, stateless("172.16.0.1"))

    def test_merged_config_for_group(self):
        mgr = ConsolidationManager(clients_per_vm=10)
        mgr.place("a", parse_ip("192.0.2.1"), stateless("172.16.0.1"))
        mgr.place("b", parse_ip("192.0.2.2"), stateless("172.16.0.2"))
        merged = mgr.merged_config(0)
        merged.validate()
        assert "demux" in merged.elements

    def test_invalid_limit(self):
        with pytest.raises(ConfigError):
            ConsolidationManager(clients_per_vm=0)
