"""Replaying the MAWI-like workload against the platform simulator.

Section 6's capacity argument, exercised end to end: one cheap box
hosts a personalized firewall per active backbone client, VMs booting
on demand as each client's first flow arrives.
"""

import pytest

from repro.platform import CHEAP_SERVER_SPEC, PlatformSim
from repro.platform.consolidation import ConsolidationManager
from repro.click import parse_config
from repro.sim.traces import TraceConfig, generate_trace


@pytest.fixture(scope="module")
def small_trace():
    # A scaled-down window so the replay stays fast.
    config = TraceConfig(window_s=60.0, arrival_rate=50.0)
    return generate_trace(config, seed=42)


class TestOnDemandReplay:
    def test_every_active_client_served(self, small_trace):
        sim = PlatformSim()
        clients = {flow.client for flow in small_trace}
        for client in clients:
            sim.register_client("fw-%d" % client)
        served = []
        for flow in small_trace[:500]:
            result = sim.ping(
                "fw-%d" % flow.client, start=flow.start, count=1,
            )
            served.append(result)
        sim.loop.run()
        assert all(len(r.rtts) == 1 for r in served)
        # VMs booted at most once per client touched.
        touched = {flow.client for flow in small_trace[:500]}
        assert sim.switch.vms_booted_on_demand == len(touched)

    def test_first_flow_pays_boot_later_flows_do_not(self, small_trace):
        sim = PlatformSim()
        by_client = {}
        for flow in small_trace[:300]:
            by_client.setdefault(flow.client, []).append(flow)
        repeat_clients = {
            c: flows for c, flows in by_client.items()
            if len(flows) >= 2
        }
        assert repeat_clients, "trace must contain repeat clients"
        client, flows = next(iter(repeat_clients.items()))
        sim.register_client("fw-%d" % client)
        first = sim.ping("fw-%d" % client, start=flows[0].start,
                         count=1)
        second = sim.ping("fw-%d" % client,
                          start=flows[0].start + 5.0, count=1)
        sim.loop.run()
        assert first.rtts[0] > 0.02     # paid the boot
        assert second.rtts[0] < 0.005   # VM already up

    def test_memory_stays_within_budget(self, small_trace):
        sim = PlatformSim()
        clients = {flow.client for flow in small_trace}
        for client in clients:
            sim.register_client("fw-%d" % client)
            sim.force_boot("fw-%d" % client)
        in_use = sim.memory_in_use_mb()
        budget = CHEAP_SERVER_SPEC.usable_memory_mb()
        assert in_use < budget
        assert in_use == pytest.approx(
            len(clients) * CHEAP_SERVER_SPEC.clickos_memory_mb
        )


class TestConsolidatedReplay:
    FIREWALL = """
        src :: FromNetfront();
        out :: ToNetfront();
        src -> IPFilter(allow tcp, allow udp)
            -> IPRewriter(pattern - - 172.16.%d.%d - 0 0) -> out;
    """

    def test_consolidation_shrinks_vm_count(self, small_trace):
        clients = sorted({flow.client for flow in small_trace})[:150]
        manager = ConsolidationManager(clients_per_vm=100)
        for index, client in enumerate(clients):
            config = parse_config(
                self.FIREWALL % (client // 256, client % 256)
            )
            manager.place(
                "fw-%d" % client,
                0xC0000200 + index,  # 192.0.2.0 + index
                config,
            )
        assert manager.vm_count == 2  # 150 clients in two shared VMs
        merged = manager.merged_config(0)
        merged.validate()
        # 100 tenants in VM 0: demux + per-tenant subgraphs.
        assert len(merged.elements_of_class("IPFilter")) == 100
