"""Tests for the switch controller and the PlatformSim facade."""

import pytest

from repro.common.errors import SimulationError
from repro.platform import (
    CHEAP_SERVER_SPEC,
    PlatformSim,
    VM,
    VM_LINUX,
)
from repro.platform.switch import SwitchController
from repro.sim.events import EventLoop


class TestSwitchController:
    def test_first_packet_boots_vm(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c1")
        delivered = []
        switch.packet_for("c1", lambda: delivered.append(loop.now))
        assert not delivered  # boot in progress
        loop.run()
        assert delivered and delivered[0] >= 0.030
        assert switch.vms_booted_on_demand == 1

    def test_running_vm_delivers_immediately(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c1")
        switch.packet_for("c1", lambda: None)
        loop.run()
        delivered = []
        switch.packet_for("c1", lambda: delivered.append(loop.now))
        assert delivered  # synchronous

    def test_packets_buffered_during_boot(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c1")
        order = []
        switch.packet_for("c1", lambda: order.append("a"))
        switch.packet_for("c1", lambda: order.append("b"))
        loop.run()
        assert order == ["a", "b"]
        assert switch.vms_booted_on_demand == 1  # one boot, not two

    def test_suspended_vm_resumes_on_packet(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        vm = switch.register_client("c1")
        switch.packet_for("c1", lambda: None)
        loop.run()
        switch.suspend_idle(vm)
        loop.run()
        assert vm.state == "suspended"
        delivered = []
        switch.packet_for("c1", lambda: delivered.append(loop.now))
        loop.run()
        assert delivered
        assert vm.resume_count == 1

    def test_shared_vm_across_clients(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        vm = switch.register_client("c1")
        switch.register_client("c2", vm=vm)
        switch.packet_for("c1", lambda: None)
        loop.run()
        assert switch.resident_vms() == 1
        delivered = []
        switch.packet_for("c2", lambda: delivered.append(True))
        assert delivered  # same running VM serves c2

    def test_duplicate_client_rejected(self):
        switch = SwitchController(CHEAP_SERVER_SPEC, EventLoop())
        switch.register_client("c1")
        with pytest.raises(SimulationError):
            switch.register_client("c1")

    def test_unknown_client_rejected(self):
        switch = SwitchController(CHEAP_SERVER_SPEC, EventLoop())
        with pytest.raises(SimulationError):
            switch.packet_for("ghost", lambda: None)


class TestPlatformSimPing:
    """Figure 5 behaviour."""

    def test_first_ping_pays_boot(self):
        sim = PlatformSim()
        sim.register_client("c1")
        result = sim.ping("c1", start=0.0, count=15)
        sim.loop.run()
        assert len(result.rtts) == 15
        assert result.rtts[0] > 0.025
        assert all(r < 0.005 for r in result.rtts[1:])

    def test_first_rtt_grows_with_concurrent_flows(self):
        sim = PlatformSim()
        results = []
        for i in range(100):
            sim.register_client("c%d" % i)
            results.append(sim.ping("c%d" % i, start=0.0, count=1))
        sim.loop.run()
        firsts = [r.rtts[0] for r in results]
        # Figure 5: ~50 ms average, ~100 ms worst, growing trend.
        assert 0.040 <= sum(firsts) / len(firsts) <= 0.080
        assert max(firsts) <= 0.120
        assert max(firsts) > 2 * min(firsts)

    def test_linux_vm_order_of_magnitude_slower(self):
        sim = PlatformSim()
        sim.register_client("linuxer", kind=VM_LINUX)
        result = sim.ping("linuxer", start=0.0, count=1)
        sim.loop.run()
        assert result.rtts[0] >= 0.6  # ~700 ms in the paper


class TestPlatformSimHttp:
    """Figure 6 behaviour."""

    def test_transfer_time_matches_rate_cap(self):
        sim = PlatformSim()
        sim.register_client("c1")
        result = sim.http_request(
            "c1", start=0.0, size_bytes=50 * 1024 * 1024, rate_bps=25e6
        )
        sim.loop.run()
        # 50 MB at 25 Mb/s = 16.8 s.
        assert result.transfer_time == pytest.approx(16.78, rel=0.01)
        assert 0.02 < result.connection_time < 0.3

    def test_hundred_concurrent_transfers(self):
        sim = PlatformSim()
        results = []
        for i in range(100):
            sim.register_client("c%d" % i)
            results.append(sim.http_request(
                "c%d" % i, start=0.0,
                size_bytes=50 * 1024 * 1024, rate_bps=25e6,
            ))
        sim.loop.run()
        transfers = [r.transfer_time for r in results]
        conns = [r.connection_time for r in results]
        # Figure 6: transfers 16.6-17.8 s, connections 50-350 ms.
        assert all(16.5 <= t <= 18.0 for t in transfers)
        assert max(conns) <= 0.35


class TestPlatformSimLifecycle:
    """Figure 7 behaviour."""

    def test_suspend_resume_cycle(self):
        sim = PlatformSim()
        sim.register_client("c1")
        sim.force_boot("c1")
        s, r = sim.suspend_resume_cycle("c1")
        assert 0.030 <= s <= 0.100
        assert 0.030 <= r <= 0.100
        vm = sim.switch.client_vms["c1"]
        assert vm.is_running
        assert vm.suspend_count == vm.resume_count == 1

    def test_cycle_slower_with_more_residents(self):
        quiet = PlatformSim()
        quiet.register_client("solo")
        quiet.force_boot("solo")
        s0, r0 = quiet.suspend_resume_cycle("solo")

        busy = PlatformSim()
        for i in range(200):
            busy.register_client("c%d" % i)
            busy.force_boot("c%d" % i)
        s1, r1 = busy.suspend_resume_cycle("c0")
        assert s1 > s0 and r1 > r0


class TestAdmission:
    def test_memory_admission_enforced(self):
        spec = CHEAP_SERVER_SPEC.scaled(
            memory_mb=1024 + 16, reserved_memory_mb=1024
        )  # room for exactly two 8 MB ClickOS VMs
        sim = PlatformSim(spec=spec)
        sim.register_client("a")
        sim.force_boot("a")
        sim.register_client("b")
        sim.force_boot("b")
        with pytest.raises(SimulationError):
            sim.register_client("c")

    def test_memory_accounting(self):
        sim = PlatformSim()
        sim.register_client("a")
        assert sim.memory_in_use_mb() == 0  # not booted yet
        sim.force_boot("a")
        assert sim.memory_in_use_mb() == pytest.approx(8.0)
