"""Tests for the control-plane -> platform provisioning bridge."""

import pytest

from repro.common.errors import SimulationError
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.platform.orchestrator import PlatformOrchestrator


def stateless_request(index):
    return ClientRequest(
        client_id="tenant-%d" % index,
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        owned_addresses=(CLIENT_ADDR,),
        module_name="mod-%d" % index,
    )


def stateful_request(index):
    return ClientRequest(
        client_id="meter-%d" % index,
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> FlowMeter()
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        owned_addresses=(CLIENT_ADDR,),
        module_name="meter-%d" % index,
    )


@pytest.fixture
def deployed_controller():
    controller = Controller(figure3_network())
    for index in range(12):
        assert controller.request(stateless_request(index))
    for index in range(2):
        assert controller.request(stateful_request(index))
    return controller


class TestProvisioning:
    def test_full_pipeline(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=10,
        )
        reports = orchestrator.provision_all()
        by_platform = {r.platform: r for r in reports}
        total_modules = sum(r.modules for r in reports)
        assert total_modules == 14
        # Stateless tenants consolidate; stateful ones get own VMs.
        busy = [r for r in reports if r.modules]
        assert busy
        for report in busy:
            assert report.vms <= report.modules

    def test_stateful_modules_not_shared(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=10,
        )
        orchestrator.provision_all()
        for index in range(2):
            vm = orchestrator.vm_of("meter-%d" % index)
            assert vm.clients == ["meter-%d" % index]
            assert vm.stateful

    def test_stateless_modules_share(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=100,
        )
        orchestrator.provision_all()
        # All 12 stateless tenants on the same platform share one VM.
        vms = {
            orchestrator.vm_of("mod-%d" % i).vm_id
            for i in range(12)
            if orchestrator.placements["mod-%d" % i][0]
            == orchestrator.placements["mod-0"][0]
        }
        assert len(vms) == 1

    def test_memory_accounting(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=100,
        )
        reports = orchestrator.provision_all()
        for report in reports:
            assert report.memory_mb == report.vms * 8.0

    def test_capacity_estimate(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=100,
        )
        orchestrator.provision_all()
        platform = orchestrator.placements["mod-0"][0]
        capacity = orchestrator.capacity_estimate_bps(platform)
        assert capacity > 9e9  # a handful of tenants: line rate

    def test_unprovisioned_queries_raise(self):
        orchestrator = PlatformOrchestrator(figure3_network())
        with pytest.raises(SimulationError):
            orchestrator.sim_for("platform3")
        with pytest.raises(SimulationError):
            orchestrator.vm_of("ghost")
        with pytest.raises(SimulationError):
            orchestrator.capacity_estimate_bps("platform3")

    def test_traffic_boots_shared_vm_once(self, deployed_controller):
        orchestrator = PlatformOrchestrator(
            deployed_controller.network, clients_per_vm=100,
        )
        orchestrator.provision_all()
        platform = orchestrator.placements["mod-0"][0]
        sim = orchestrator.sim_for(platform)
        colocated = [
            "mod-%d" % i for i in range(12)
            if orchestrator.placements["mod-%d" % i][0] == platform
        ]
        for module in colocated[:3]:
            sim.ping(module, start=0.0, count=1)
        sim.loop.run()
        assert sim.switch.vms_booted_on_demand == 1