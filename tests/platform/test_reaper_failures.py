"""Tests for the idle-VM reaper and boot-failure injection."""

import pytest

from repro.platform import CHEAP_SERVER_SPEC, PlatformSim
from repro.platform.reaper import IdleReaper
from repro.platform.switch import SwitchController
from repro.sim.events import EventLoop


def platform_with_client(client="c", stateful=False):
    sim = PlatformSim()
    sim.register_client(client, stateful=stateful)
    return sim


class TestIdleReaper:
    def test_stateless_idle_vm_terminated(self):
        sim = platform_with_client()
        sim.ping("c", start=0.0, count=1)
        sim.loop.run()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)
        reaped = reaper.sweep()
        assert len(reaped) == 1
        vm = sim.switch.client_vms["c"]
        assert vm.state == "stopped"

    def test_stateful_idle_vm_suspended(self):
        sim = platform_with_client(stateful=True)
        sim.ping("c", start=0.0, count=1)
        sim.loop.run()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)
        reaper.sweep()
        sim.loop.run()
        vm = sim.switch.client_vms["c"]
        assert vm.state == "suspended"
        assert reaper.stats.suspended == 1

    def test_active_vm_left_alone(self):
        sim = platform_with_client()
        sim.ping("c", start=0.0, count=1)
        sim.loop.run()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(10.0)  # idle only 10 s
        assert reaper.sweep() == []

    def test_traffic_revives_reaped_vm(self):
        sim = platform_with_client()
        sim.ping("c", start=0.0, count=1)
        sim.loop.run()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)
        reaper.sweep()
        result = sim.ping("c", start=sim.loop.now + 1.0, count=1)
        sim.loop.run()
        assert len(result.rtts) == 1
        assert result.rtts[0] > 0.02  # paid a fresh boot

    def test_suspended_vm_resumes_with_state(self):
        sim = platform_with_client(stateful=True)
        sim.ping("c", start=0.0, count=1)
        sim.loop.run()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)
        reaper.sweep()
        sim.loop.run()
        vm = sim.switch.client_vms["c"]
        result = sim.ping("c", start=sim.loop.now + 1.0, count=1)
        sim.loop.run()
        assert len(result.rtts) == 1
        assert vm.resume_count == 1
        assert vm.boot_count == 1  # never re-booted: state survived

    def test_periodic_sweeps(self):
        sim = platform_with_client()
        sim.ping("c", start=0.0, count=1)
        reaper = IdleReaper(
            sim.switch, sim.loop,
            idle_timeout_s=30.0, sweep_interval_s=10.0,
        )
        reaper.start()
        sim.loop.run_until(100.0)
        assert reaper.stats.sweeps >= 5
        assert reaper.stats.terminated == 1
        reaper.stop()
        fired = reaper.stats.sweeps
        sim.loop.run_until(200.0)
        assert reaper.stats.sweeps == fired


class TestBootFailureInjection:
    def test_boot_retries_transparently(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c")
        switch.inject_boot_failure("c", times=1)
        delivered = []
        switch.packet_for("c", lambda: delivered.append(loop.now))
        loop.run()
        assert delivered  # the retry succeeded
        assert switch.boot_failures_seen == 1
        assert switch.boot_retries == 1
        # The retry costs roughly one extra boot latency.
        assert delivered[0] > 0.06

    def test_gives_up_after_max_attempts(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c")
        switch.inject_boot_failure("c", times=10)
        delivered = []
        switch.packet_for("c", lambda: delivered.append(True))
        loop.run()
        assert delivered == []
        assert switch.boot_failures_seen == switch.max_boot_attempts
        vm = switch.client_vms["c"]
        assert vm.state == "stopped"

    def test_next_flow_can_succeed_after_give_up(self):
        loop = EventLoop()
        switch = SwitchController(CHEAP_SERVER_SPEC, loop)
        switch.register_client("c")
        switch.inject_boot_failure("c", times=switch.max_boot_attempts)
        switch.packet_for("c", lambda: None)
        loop.run()
        delivered = []
        switch.packet_for("c", lambda: delivered.append(True))
        loop.run()
        assert delivered

    def test_unknown_client_rejected(self):
        from repro.common.errors import SimulationError

        switch = SwitchController(CHEAP_SERVER_SPEC, EventLoop())
        with pytest.raises(SimulationError):
            switch.inject_boot_failure("ghost")


class TestReaperFaultTolerance:
    """Sweep failures are tolerated: counted, skipped, never fatal."""

    def _two_idle_stateful(self):
        sim = PlatformSim()
        for client in ("c1", "c2"):
            sim.register_client(client, stateful=True)
            sim.ping(client, start=0.0, count=1)
        sim.loop.run()
        return sim

    def test_reclaim_error_is_counted_and_skipped(self, monkeypatch):
        sim = self._two_idle_stateful()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)

        def refuse(vm, done=None):
            raise RuntimeError("toolstack refused the suspend")

        monkeypatch.setattr(sim.switch, "suspend_idle", refuse)
        assert reaper.sweep() == []
        assert reaper.stats.errors == 2
        assert reaper.stats.suspended == 0
        # Both VMs are still running -- nothing was half-reclaimed.
        assert all(
            vm.state == "running"
            for vm in sim.switch.client_vms.values()
        )

    def test_sweep_recovers_once_the_fault_clears(self, monkeypatch):
        sim = self._two_idle_stateful()
        reaper = IdleReaper(sim.switch, sim.loop, idle_timeout_s=30.0)
        sim.loop.run_until(100.0)
        monkeypatch.setattr(
            sim.switch, "suspend_idle",
            lambda vm, done=None: (_ for _ in ()).throw(
                RuntimeError("flaky")
            ),
        )
        reaper.sweep()
        monkeypatch.undo()
        reaped = reaper.sweep()
        sim.loop.run()
        assert len(reaped) == 2
        assert reaper.stats.errors == 2
        assert reaper.stats.suspended == 2

    def test_periodic_sweeps_survive_a_raising_sweep(self):
        sim = self._two_idle_stateful()
        reaper = IdleReaper(
            sim.switch, sim.loop,
            idle_timeout_s=1e9,  # nothing to reclaim; sweeps still run
            sweep_interval_s=10.0,
        )
        original = reaper.sweep
        calls = []

        def explodes_once():
            calls.append(True)
            if len(calls) == 1:
                raise RuntimeError("one bad sweep")
            return original()

        reaper.sweep = explodes_once
        reaper.start()
        with pytest.raises(RuntimeError):
            sim.loop.run_until(200.0)
        # The failed tick already rescheduled the next one.
        sim.loop.run_until(200.0)
        assert len(calls) >= 3
