"""Tests for the Section 7 amplification analysis."""

import pytest

from repro.click import Packet, TCP, UDP
from repro.click.element import create_element
from repro.common.addr import parse_ip
from repro.usecases.amplification import (
    AmplificationScenario,
    compare_mitigations,
)


class TestIngressFilterElement:
    def element(self):
        return create_element(
            "IngressFilter", "f", ["172.16.0.0/16"]
        )

    def test_inbound_spoofed_dropped(self):
        f = self.element()
        spoofed = Packet(ip_src=parse_ip("172.16.1.1"))
        assert f.push(f.INBOUND, spoofed) == []
        assert f.dropped_spoofed == 1

    def test_inbound_genuine_passes(self):
        f = self.element()
        genuine = Packet(ip_src=parse_ip("8.8.8.8"))
        out = f.push(f.INBOUND, genuine)
        assert out == [(f.INBOUND, genuine)]

    def test_outbound_unfiltered(self):
        f = self.element()
        inside = Packet(ip_src=parse_ip("172.16.1.1"))
        assert f.push(f.OUTBOUND, inside) == [(f.OUTBOUND, inside)]


class TestAmplification:
    def test_open_resolver_amplifies(self):
        scenario = AmplificationScenario(ingress_filtering=False)
        report = scenario.attack(queries=50, proto=UDP)
        # 64-byte queries produce 512-byte responses to the victim.
        assert report.victim_packets == 50
        assert report.amplification_factor == pytest.approx(8.0)

    def test_ingress_filtering_stops_it(self):
        scenario = AmplificationScenario(ingress_filtering=True)
        report = scenario.attack(queries=50, proto=UDP)
        assert report.victim_packets == 0
        assert report.amplification_factor == 0.0
        assert report.dropped_spoofed == 50

    def test_legitimate_queries_still_work_when_filtered(self):
        scenario = AmplificationScenario(ingress_filtering=True)
        genuine = Packet(
            ip_src=parse_ip("8.8.4.4"),
            ip_dst=scenario.module_address,
            ip_proto=UDP,
            tp_src=5353, tp_dst=53,
            length=64, payload=b"query",
        )
        deliveries = scenario.plane.send("internet", genuine)
        assert len(deliveries) == 1
        assert deliveries[0].node == "internet"  # answered back out

    def test_tcp_ban_removes_amplification(self):
        scenario = AmplificationScenario(ingress_filtering=False)
        report = scenario.attack(queries=50, proto=TCP)
        assert report.victim_packets == 0
        assert report.amplification_factor == 0.0

    def test_comparison_table_shape(self):
        rows = compare_mitigations(queries=20)
        assert len(rows) == 3
        by_label = {label: factor for label, factor, _pkts in rows}
        assert by_label["UDP, no ingress filtering"] > 5
        assert by_label["UDP, ingress filtering"] == 0
        assert by_label["TCP only (connectionless banned)"] == 0
