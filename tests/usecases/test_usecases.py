"""Tests for the four Section 8 use cases."""

import statistics

import pytest

from repro.usecases import (
    CdnScenario,
    PushNotificationScenario,
    SlowlorisScenario,
    TunnelScenario,
)


class TestPushNotifications:
    @pytest.fixture(scope="class")
    def scenario(self):
        return PushNotificationScenario()

    def test_deploys_on_platform3(self, scenario):
        deployment = scenario.deploy()
        assert deployment.platform == "platform3"
        assert deployment.module_address.startswith("192.0.2.")
        # Paper: ~3 s dominated by waking the 3G interface.
        assert 2.5 <= deployment.request_latency_s <= 3.5

    def test_traffic_batched_at_interval(self, scenario):
        deployment = scenario.deploy(batch_interval_s=120)
        schedule, delivered = scenario.run_traffic(
            deployment, window_s=600
        )
        # 19 messages sent in 600s minus those still buffered.
        assert delivered >= 15
        assert all(t % 120 == 0 for t, _count in schedule)

    def test_energy_sweep_monotone(self):
        scenario = PushNotificationScenario()
        samples = scenario.energy_sweep(window_s=1800)
        powers = [s.average_power_mw for s in samples]
        assert powers == sorted(powers, reverse=True)
        # Figure 13 endpoints.
        assert samples[0].average_power_mw == pytest.approx(240, abs=20)
        assert samples[-1].average_power_mw == pytest.approx(140, abs=20)

    def test_unbatched_is_worst(self):
        scenario = PushNotificationScenario()
        unbatched = scenario.unbatched_power_mw(window_s=1800)
        samples = scenario.energy_sweep(
            batch_intervals=(120.0,), window_s=1800
        )
        assert samples[0].average_power_mw < unbatched


class TestTunneling:
    @pytest.fixture(scope="class")
    def scenario(self):
        return TunnelScenario()

    def test_sweep_shape(self, scenario):
        samples = scenario.sweep()
        assert samples[0].loss == 0.0
        assert samples[0].udp_goodput_bps > 90e6
        for sample in samples[1:]:
            assert 2.0 <= sample.ratio <= 6.0

    def test_udp_reachability_query(self, scenario):
        assert scenario.udp_reachable("8.8.8.8") is True

    def test_innet_selection_15x_faster(self, scenario):
        with_innet = scenario.selection_latency_s(True)
        without = scenario.selection_latency_s(False)
        assert without / with_innet == pytest.approx(15.0)


class TestSlowloris:
    @pytest.fixture(scope="class")
    def timeline(self):
        return SlowlorisScenario().run(
            duration_s=600, attack_start=120, defense_delay_s=120
        )

    @staticmethod
    def window_rate(timeline, series, lo, hi):
        values = [
            v for t, v in zip(timeline.times, series) if lo <= t < hi
        ]
        return sum(values) / len(values)

    def test_attack_starves_single_server(self, timeline):
        pre = self.window_rate(timeline, timeline.single_server, 0, 120)
        during = self.window_rate(
            timeline, timeline.single_server, 300, 500
        )
        assert pre > 250
        assert during < 0.1 * pre

    def test_defense_restores_service(self, timeline):
        during = self.window_rate(timeline, timeline.with_innet, 300, 500)
        pre = self.window_rate(timeline, timeline.with_innet, 0, 120)
        assert during > 0.5 * pre

    def test_proxies_deployed_via_controller(self, timeline):
        assert timeline.proxies_deployed == 3


class TestCdn:
    @pytest.fixture(scope="class")
    def result(self):
        return CdnScenario().run()

    def test_median_roughly_halved(self, result):
        origin = statistics.median(result.origin_delays_s)
        cdn = statistics.median(result.cdn_delays_s)
        assert 1.8 <= origin / cdn <= 3.5

    def test_p90_improvement_exceeds_median(self, result):
        origin_p90 = result.percentile(result.origin_delays_s, 90)
        cdn_p90 = result.percentile(result.cdn_delays_s, 90)
        origin_med = statistics.median(result.origin_delays_s)
        cdn_med = statistics.median(result.cdn_delays_s)
        assert origin_p90 / cdn_p90 >= origin_med / cdn_med * 0.9
        assert origin_p90 / cdn_p90 >= 2.5

    def test_every_client_assigned_a_cache(self, result):
        assert len(result.client_assignments) == 75
        assert set(result.client_assignments.values()) <= {
            "cache-romania", "cache-germany", "cache-italy",
        }

    def test_caches_deploy_sandboxed_at_nearest_operators(self):
        scenario = CdnScenario()
        assert scenario.deploy_caches() == 3
        placements = scenario.federation.deployments()
        # Each cache lands at its own country's operator.
        assert placements == {
            "cache-romania": "operator-romania",
            "cache-germany": "operator-germany",
            "cache-italy": "operator-italy",
        }
        for name, operator in placements.items():
            controller = scenario.federation.operators[
                operator
            ].controller
            assert controller.deployed[name].sandboxed
