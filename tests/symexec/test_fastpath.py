"""Unit and property tests for the symbolic-execution fast path.

``test_differential.py`` proves the optimized engine equals the seed
engine end to end; these tests pin the individual mechanisms -- that
copy-on-write forks never leak writes between flows, that interval
interning really canonicalizes, and that the element-model memos
invalidate on mutation.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.common import fields as F
from repro.common import intervals
from repro.common.intervals import IntervalSet
from repro.netmodel.flowtable import Action, FlowTable
from repro.netmodel.routing import RoutingTable
from repro.symexec.engine import SymFlow, VarFactory, WriteRecord
from repro.symexec.sympacket import SymPacket
from repro.symexec.tuning import (
    OPT,
    counters,
    optimizations_enabled,
    seed_mode,
    stats,
)


_FACTORY = VarFactory("t")


def fresh_flow():
    return SymFlow(SymPacket.fresh(VarFactory()))


def route(table, dotted, plen, port):
    from repro.common.addr import parse_ip

    table.add(parse_ip(dotted), plen, port)


#: A short program of divergent mutations: (which flow, what to do).
#: Drawn by hypothesis to interleave writes on both sides of a fork.
_ACTIONS = st.lists(
    st.tuples(
        st.sampled_from(["parent", "child"]),
        st.sampled_from(["constrain", "write", "record", "trace"]),
        st.integers(min_value=0, max_value=200),
    ),
    min_size=1,
    max_size=12,
)


def _flow_state(flow):
    """Everything a flow owns, as plain values (not identities)."""
    return (
        {uid: v.intervals for uid, v in flow.domains.items()},
        list(flow.trace),
        list(flow.writes),
        flow.alive,
    )


def _apply(flow, action, value, node, var):
    if action == "constrain":
        flow.constrain(
            flow.packet.var(F.TP_DST),
            IntervalSet.from_interval(value, value + 10),
        )
    elif action == "write":
        # The same SymVar goes to both the real flow and its shadow
        # replay, so the logged uids match.
        flow.write_field(F.IP_SRC, var, node)
    elif action == "record":
        flow.record_write(
            WriteRecord(len(flow.trace), node, F.TP_SRC, None, None)
        )
    else:  # trace -- mimic the engine: own the history, then append
        if flow._history_shared:
            flow._own_history()
        flow.trace.append((node, value, ()))


class TestCopyOnWriteForking:
    """fork() shares storage, but divergence must never alias."""

    @settings(max_examples=60, deadline=None)
    @given(_ACTIONS)
    def test_forked_flows_never_alias(self, actions):
        parent = fresh_flow()
        parent.constrain(
            parent.packet.var(F.IP_PROTO), IntervalSet.single(17)
        )
        child = parent.fork()
        # Snapshot both sides *by value* right after the fork...
        parent_before = _flow_state(parent)
        child_before = _flow_state(child)
        # ...then replay an arbitrary interleaving of divergent
        # mutations and check each side only saw its own.
        mutate = {"parent": parent, "child": child}
        shadow = {"parent": parent.fork(), "child": child.fork()}
        for index, (who, action, value) in enumerate(actions):
            node = "n%d" % index
            var = _FACTORY.fresh_for_field(F.IP_SRC)
            other = "child" if who == "parent" else "parent"
            other_before = _flow_state(mutate[other])
            _apply(mutate[who], action, value, node, var)
            _apply(shadow[who], action, value, node, var)
            # The untouched side must be exactly as it was.
            assert _flow_state(mutate[other]) == other_before
        # And each mutated side matches a replay on a private copy.
        assert _flow_state(parent) == _flow_state(shadow["parent"])
        assert _flow_state(child) == _flow_state(shadow["child"])
        del parent_before, child_before

    def test_fork_shares_then_copies_domains(self):
        parent = fresh_flow()
        var = parent.packet.var(F.TP_DST)
        parent.constrain(var, IntervalSet.from_interval(0, 100))
        child = parent.fork()
        assert child.domains is parent.domains  # shared until a write
        before = dict(parent.domains)
        child.constrain(var, IntervalSet.from_interval(0, 10))
        assert child.domains is not parent.domains
        assert {u: v for u, v in parent.domains.items()} == before

    def test_fork_shares_then_copies_history(self):
        parent = fresh_flow()
        parent.write_field(
            F.IP_SRC, _FACTORY.fresh_for_field(F.IP_SRC), "a"
        )
        child = parent.fork()
        assert child.trace is parent.trace
        assert child.writes is parent.writes
        child.write_field(
            F.IP_DST, _FACTORY.fresh_for_field(F.IP_DST), "b"
        )
        assert child.writes is not parent.writes
        assert len(parent.writes) == 1 and len(child.writes) == 2

    def test_seed_mode_fork_copies_eagerly(self):
        parent = fresh_flow()
        with seed_mode():
            child = parent.fork()
            assert child.domains is not parent.domains
            assert child.trace is not parent.trace
            assert child.writes is not parent.writes

    def test_fork_counts(self):
        before = counters()["forks"]
        flow = fresh_flow()
        flow.fork()
        assert counters()["forks"] == before + 1


class TestIntervalInterning:
    def test_intern_is_idempotent(self):
        a = intervals.intern(IntervalSet.from_interval(5, 9))
        b = intervals.intern(IntervalSet.from_interval(5, 9))
        assert a is b

    def test_cached_ops_return_identical_objects(self):
        left = IntervalSet.from_interval(0, 100)
        right = IntervalSet.from_interval(50, 200)
        assert left.intersect(right) is left.intersect(right)
        assert left.union(right) is left.union(right)
        assert left.subtract(right) is left.subtract(right)

    def test_cache_disable_restores_fresh_allocation(self):
        left = IntervalSet.from_interval(0, 100)
        right = IntervalSet.from_interval(50, 200)
        with seed_mode():
            first = left.intersect(right)
            second = left.intersect(right)
            assert first is not second
            assert first.intervals == second.intervals

    def test_results_equal_either_way(self):
        left = IntervalSet.from_interval(0, 100)
        right = IntervalSet.from_interval(50, 200)
        cached = (
            left.intersect(right).intervals,
            left.union(right).intervals,
            left.subtract(right).intervals,
        )
        with seed_mode():
            fresh = (
                left.intersect(right).intervals,
                left.union(right).intervals,
                left.subtract(right).intervals,
            )
        assert cached == fresh

    def test_stats_report_hits(self):
        intervals.clear_result_cache()
        left = IntervalSet.from_interval(3, 33)
        right = IntervalSet.from_interval(22, 44)
        left.intersect(right)
        before = intervals.result_cache_stats()["hits"]
        left.intersect(right)
        assert intervals.result_cache_stats()["hits"] == before + 1


class TestElementModelMemos:
    def test_routing_split_memoized_until_mutation(self):
        table = RoutingTable()
        route(table, "10.0.0.0", 8, 1)
        route(table, "10.1.0.0", 16, 2)
        first = table.symbolic_split()
        assert table.symbolic_split() is first
        route(table, "192.168.0.0", 16, 3)
        second = table.symbolic_split()
        assert second is not first
        assert len(second) == len(first) + 1

    def test_flowtable_branches_memoized_until_mutation(self):
        table = FlowTable()
        rule = table.install(
            priority=10,
            match={F.IP_DST: IntervalSet.single(42)},
            action=Action.to_module("m"),
        )
        first = table.symbolic_branches()
        assert table.symbolic_branches() is first
        table.remove(rule)
        assert table.symbolic_branches() == []

    def test_memos_off_in_seed_mode(self):
        table = RoutingTable()
        route(table, "10.0.0.0", 8, 1)
        with seed_mode():
            assert table.symbolic_split() is not table.symbolic_split()

    def test_memo_hits_counted(self):
        table = RoutingTable()
        route(table, "10.0.0.0", 8, 1)
        table.symbolic_split()
        before = counters()["memo_hits"]
        table.symbolic_split()
        assert counters()["memo_hits"] == before + 1


class TestTuningSurface:
    def test_seed_mode_flips_and_restores(self):
        assert optimizations_enabled()
        with seed_mode():
            assert not optimizations_enabled()
            assert not intervals.result_cache_stats()["enabled"]
        assert optimizations_enabled()
        assert intervals.result_cache_stats()["enabled"]

    def test_seed_mode_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with seed_mode():
                raise RuntimeError("boom")
        assert optimizations_enabled()

    def test_stats_shape(self):
        out = stats()
        for key in ("forks", "prunes", "memo_hits", "cow_copies",
                    "optimizations_enabled", "interval_cache",
                    "negation_memo_hits"):
            assert key in out

    def test_counters_monotonic_under_exploration(self):
        from repro.netmodel import NetworkCompiler
        from repro.netmodel.examples import figure3_network

        from repro.policy import parse_requirement

        before = counters()
        compiled = NetworkCompiler(figure3_network()).compile()
        origin = parse_requirement(
            "reach from internet -> client"
        ).origin
        compiled.explore_from(origin.node, origin.flow)
        after = counters()
        assert after["forks"] > before["forks"]
        assert after["prunes"] >= before["prunes"]
        assert after["memo_hits"] >= before["memo_hits"]
