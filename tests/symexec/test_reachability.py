"""Tests for reach-requirement checking over explorations."""

from repro.click import parse_config
from repro.policy import parse_requirement
from repro.symexec import SymbolicEngine, SymGraph
from repro.symexec.reachability import ReachabilityChecker


def check(source, requirement_text, namespace="mod", inject="mod/src"):
    cfg = parse_config(source)
    graph = SymGraph.from_click(cfg, namespace)
    engine = SymbolicEngine(graph)
    exploration = engine.inject(inject)
    checker = ReachabilityChecker()
    return checker.check(parse_requirement(requirement_text), exploration)


FIGURE4 = """
    src :: FromNetfront();
    dst :: ToNetfront();
    src -> IPFilter(allow udp port 1500)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> TimedUnqueue(120, 100)
        -> dst;
"""


class TestReachability:
    def test_satisfied_requirement(self):
        result = check(
            FIGURE4,
            "reach from internet udp"
            " -> mod:dst:0 dst 172.16.15.133 const proto && payload",
        )
        assert result.satisfied
        assert result.witnesses

    def test_flow_spec_must_be_guaranteed(self):
        # The module rewrites dst to .133, so a different address can
        # never be guaranteed at the sink.
        result = check(
            FIGURE4,
            "reach from internet -> mod:dst:0 dst 172.16.15.134",
        )
        assert not result.satisfied
        assert "no symbolic flow" in result.reason

    def test_const_violation_detected(self):
        # ip_dst IS rewritten by the module: a dst invariant must fail.
        result = check(
            FIGURE4,
            "reach from internet -> mod:dst:0 const dst",
        )
        assert not result.satisfied
        assert result.violations
        violation = result.violations[0]
        assert violation.field == "ip_dst"
        assert any("IPRewriter" in w for w in violation.writers)

    def test_waypoint_ordering_enforced(self):
        source = """
            src :: FromNetfront();
            a :: Counter(); b :: Counter();
            dst :: ToNetfront();
            src -> a -> b -> dst;
        """
        forward = check(
            source, "reach from internet -> mod:a:0 -> mod:b:0"
        )
        backward = check(
            source, "reach from internet -> mod:b:0 -> mod:a:0"
        )
        assert forward.satisfied
        assert not backward.satisfied

    def test_unreachable_element(self):
        result = check(FIGURE4, "reach from internet -> mod:nowhere:0")
        assert not result.satisfied

    def test_port_must_match(self):
        result = check(FIGURE4, "reach from internet -> mod:dst:3")
        assert not result.satisfied

    def test_dropped_flows_still_count_for_waypoints(self):
        # A reach to an intermediate element is satisfied even if the
        # flow later dies.
        source = """
            src :: FromNetfront();
            c :: Counter();
            src -> c -> Discard();
        """
        result = check(source, "reach from internet -> mod:c:0")
        assert result.satisfied

    def test_invariant_across_two_hops(self):
        result = check(
            FIGURE4,
            "reach from internet udp"
            " -> mod:TimedUnqueue@3:0"
            " -> mod:dst:0 const dst && proto && payload",
        )
        # dst was rewritten BEFORE the TimedUnqueue: the hop from the
        # batcher to the sink keeps it constant, so this passes.
        assert result.satisfied
