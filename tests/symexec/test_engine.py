"""Tests for the symbolic exploration engine."""

import pytest

from repro.click import parse_config
from repro.common import fields as F
from repro.common.errors import VerificationError
from repro.common.intervals import IntervalSet
from repro.policy.flowspec import parse_flowspec
from repro.symexec import SymbolicEngine, SymGraph
from repro.symexec.engine import SymFlow
from repro.symexec.models import flows_matching


def engine_for(source, namespace=""):
    graph = SymGraph.from_click(parse_config(source), namespace)
    return SymbolicEngine(graph)


class TestBasicExploration:
    def test_passthrough_delivers(self):
        eng = engine_for("src :: FromNetfront(); src -> ToNetfront();")
        ex = eng.inject("src")
        assert len(ex.delivered) == 1
        assert not ex.dropped

    def test_discard_drops(self):
        eng = engine_for("src :: FromNetfront(); src -> Discard();")
        ex = eng.inject("src")
        assert not ex.delivered
        assert len(ex.dropped) == 1

    def test_trace_records_path(self):
        eng = engine_for(
            "src :: FromNetfront(); c :: Counter();"
            "dst :: ToNetfront(); src -> c -> dst;"
        )
        ex = eng.inject("src")
        assert [t.node for t in ex.delivered[0].trace] == [
            "src", "c", "dst",
        ]

    def test_arrivals_indexed_by_port(self):
        eng = engine_for(
            "src :: FromNetfront(); dst :: ToNetfront(); src -> dst;"
        )
        ex = eng.inject("src")
        assert len(ex.flows_at("dst", 0)) == 1
        assert ex.flows_at("dst", 3) == []

    def test_namespace_prefixes_nodes(self):
        eng = engine_for(
            "src :: FromNetfront(); src -> ToNetfront();", "mod"
        )
        ex = eng.inject("mod/src")
        assert ex.delivered[0].trace[0].node == "mod/src"

    def test_inject_unknown_node(self):
        eng = engine_for("src :: FromNetfront(); src -> ToNetfront();")
        with pytest.raises(VerificationError):
            eng.inject("nope")


class TestFlowSplitting:
    def test_classifier_splits_per_pattern(self):
        eng = engine_for(
            "src :: FromNetfront(); c :: IPClassifier(udp, tcp);"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> c; c[0] -> a; c[1] -> b;"
        )
        ex = eng.inject("src")
        at_a = ex.flows_at("a")
        at_b = ex.flows_at("b")
        assert len(at_a) == 1 and len(at_b) == 1
        assert at_a[0].field_domain(F.IP_PROTO).singleton_value() == F.UDP
        assert at_b[0].field_domain(F.IP_PROTO).singleton_value() == F.TCP

    def test_unsat_branches_pruned(self):
        eng = engine_for(
            "src :: FromNetfront();"
            "f1 :: IPFilter(allow udp); f2 :: IPFilter(allow tcp);"
            "dst :: ToNetfront(); src -> f1 -> f2 -> dst;"
        )
        ex = eng.inject("src")
        assert not ex.delivered  # udp AND tcp is unsatisfiable

    def test_sequential_rule_semantics(self):
        # A packet matching rule 1 must not also flow out via rule 2.
        eng = engine_for(
            "src :: FromNetfront();"
            "c :: IPClassifier(dst port 53, udp);"
            "a :: ToNetfront(); b :: ToNetfront();"
            "src -> c; c[0] -> a; c[1] -> b;"
        )
        ex = eng.inject("src")
        # Flows on output 1 (udp) must exclude dst port 53.
        for flow in ex.flows_at("b"):
            assert 53 not in flow.field_domain(F.TP_DST)


class TestWriteTracking:
    def test_write_log_records_node_and_field(self):
        eng = engine_for(
            "src :: FromNetfront(); s :: SetTPDst(80);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        ex = eng.inject("src")
        flow = ex.delivered[0]
        assert [(w.node, w.field) for w in flow.writes] == [
            ("s", F.TP_DST)
        ]
        assert flow.field_domain(F.TP_DST).singleton_value() == 80

    def test_written_between(self):
        eng = engine_for(
            "src :: FromNetfront(); s :: SetTPDst(80);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        flow = eng.inject("src").delivered[0]
        # trace: src=0, s=1, dst=2; the write happened at s (index 1).
        assert flow.written_between(0, 2, F.TP_DST)
        assert not flow.written_between(2, 3, F.TP_DST)
        assert not flow.written_between(0, 1, F.TP_DST)


class TestLoopProtection:
    def test_cyclic_graph_detected(self):
        graph = SymGraph()
        graph.add_node("a", lambda ctx, n, p, f: [(0, f)])
        graph.add_node("b", lambda ctx, n, p, f: [(0, f)])
        graph.connect("a", 0, "b", 0)
        graph.connect("b", 0, "a", 0)
        eng = SymbolicEngine(graph, max_hops=50)
        with pytest.raises(VerificationError):
            eng.inject("a")


class TestInjectDeparture:
    def test_origin_recorded_at_port_minus_one(self):
        graph = SymGraph()
        graph.add_node("host", lambda ctx, n, p, f: [], is_sink=True)
        graph.add_node("dst", lambda ctx, n, p, f: [], is_sink=True)
        graph.connect("host", 0, "dst", 0)
        eng = SymbolicEngine(graph)
        ex = eng.inject_departure("host")
        assert len(ex.delivered) == 1
        trace = ex.delivered[0].trace
        assert trace[0] == trace[0]._replace(node="host", port=-1)
        assert trace[1].node == "dst"

    def test_departure_with_no_links_drops(self):
        graph = SymGraph()
        graph.add_node("lonely", lambda ctx, n, p, f: [], is_sink=True)
        eng = SymbolicEngine(graph)
        ex = eng.inject_departure("lonely")
        assert len(ex.dropped) == 1


class TestFlowSpecInterop:
    def test_matches_spec_subset_semantics(self):
        eng = engine_for(
            "src :: FromNetfront(); f :: IPFilter(allow udp dst port 53);"
            "dst :: ToNetfront(); src -> f -> dst;"
        )
        flow = eng.inject("src").delivered[0]
        assert flow.matches_spec(parse_flowspec("udp"))
        assert flow.matches_spec(parse_flowspec("udp dst port 53"))
        assert not flow.matches_spec(parse_flowspec("tcp"))
        # dst port 0-100 is implied; dst port 54 is not possible.
        assert not flow.intersects_spec(parse_flowspec("dst port 54"))

    def test_flows_matching_forks_per_clause(self):
        eng = engine_for("src :: FromNetfront(); src -> ToNetfront();")
        base = SymFlow(eng.fresh_packet())
        forks = flows_matching(base, parse_flowspec("port 53"))
        assert len(forks) == 2  # src-port clause and dst-port clause
