"""Differential tests: the fast path is byte-for-byte the seed engine.

Every optimization behind :data:`repro.symexec.tuning.OPT` --
copy-on-write forking, interned interval domains, memoized element
models, infeasible-branch pruning -- claims to change *cost only*.
These tests hold it to that: each scenario runs twice, once optimized
and once under :func:`seed_mode`, and the two explorations must agree
on every delivered and dropped flow's trace, write log, domains and
liveness (via :func:`canonical_flow`, which renames variable uids in
first-seen order so process-global uid allocation cannot hide or fake
a difference), in the same order, with the same step count.
"""

import pytest

from repro.click import parse_config
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel import NetworkCompiler
from repro.netmodel.examples import figure3_network, linear_network
from repro.policy import parse_requirement
from repro.symexec import SymbolicEngine, SymGraph, canonical_flow
from repro.symexec.reachability import ReachabilityChecker
from repro.symexec.tuning import seed_mode

FIGURE4_SOURCE = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""


def canonical_exploration(exploration):
    """Order-preserving canonical form of a whole exploration."""
    return (
        tuple(canonical_flow(f) for f in exploration.delivered),
        tuple(canonical_flow(f) for f in exploration.dropped),
        exploration.steps,
    )


def explore_network(net, requirement_text):
    compiled = NetworkCompiler(net).compile()
    requirement = parse_requirement(requirement_text)
    exploration = compiled.explore_from(
        requirement.origin.node, requirement.origin.flow
    )
    verdict = ReachabilityChecker(compiled.resolver).check(
        requirement, exploration
    )
    return canonical_exploration(exploration), (
        verdict.satisfied, verdict.reason
    )


#: (network factory, requirement) -- one entry per policy shape the
#: test suite exercises: plain reach, flow-constrained reach, reverse
#: direction, isolation that holds, isolation that fails with
#: witnesses, and a vacuously-isolated flow class.
NETWORK_SCENARIOS = [
    (figure3_network, "reach from internet -> client"),
    (figure3_network, "reach from internet udp -> client dst port 1500"),
    (figure3_network, "reach from client -> internet"),
    (figure3_network, "isolate from internet -> platform1"),
    (figure3_network, "isolate from internet -> client"),
    (figure3_network,
     "isolate from internet udp dst port 1 -> client dst port 2"),
    (lambda: linear_network(15), "reach from internet udp -> client"),
    (lambda: linear_network(15), "reach from client -> internet"),
]


class TestNetworkExplorations:
    @pytest.mark.parametrize(
        "factory,requirement", NETWORK_SCENARIOS,
        ids=[req for _, req in NETWORK_SCENARIOS],
    )
    def test_seed_and_optimized_agree(self, factory, requirement):
        optimized, opt_verdict = explore_network(factory(), requirement)
        with seed_mode():
            seed, seed_verdict = explore_network(factory(), requirement)
        assert optimized == seed
        assert opt_verdict == seed_verdict


#: Click configurations covering every element-model family the engine
#: ships: filtering, classification fan-out, header rewrites, TTL
#: decrement, paint-based branching, and encap/decap write records.
CLICK_SCENARIOS = {
    "filter-rewrite": """
        src :: FromNetfront();
        src -> IPFilter(allow udp, allow tcp dst port 80)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
    """,
    "classifier-fanout": """
        src :: FromNetfront();
        c :: IPClassifier(udp, tcp, -);
        a :: ToNetfront(); b :: ToNetfront(); d :: Discard();
        src -> c; c[0] -> a; c[1] -> b; c[2] -> d;
    """,
    "ttl-and-paint": """
        src :: FromNetfront();
        src -> DecIPTTL()
            -> Paint(2)
            -> PaintSwitch()
            -> ToNetfront();
    """,
    "encap-decap": """
        src :: FromNetfront();
        src -> IPEncap(4, 1.2.3.4, 5.6.7.8)
            -> IPDecap()
            -> ToNetfront();
    """,
    "echo-swap": """
        src :: FromNetfront();
        src -> IPFilter(allow udp)
            -> EchoResponder()
            -> ToNetfront();
    """,
}


def explore_click(source):
    config = parse_config(source)
    engine = SymbolicEngine(SymGraph.from_click(config))
    return canonical_exploration(engine.inject(config.sources()[0]))


class TestClickExplorations:
    @pytest.mark.parametrize("name", sorted(CLICK_SCENARIOS))
    def test_seed_and_optimized_agree(self, name):
        source = CLICK_SCENARIOS[name]
        optimized = explore_click(source)
        with seed_mode():
            seed = explore_click(source)
        assert optimized == seed


def admit(requirements):
    """One cold admission on a fresh Figure 3 controller."""
    controller = Controller(figure3_network())
    result = controller.request(ClientRequest(
        client_id="alice",
        role=ROLE_CLIENT,
        config_source=FIGURE4_SOURCE,
        requirements=requirements,
        owned_addresses=("172.16.15.133",),
        module_name="batcher",
    ), dry_run=True)
    return result.accepted, result.reason


class TestControllerAdmission:
    def test_accepted_admission_agrees(self):
        requirements = (
            "reach from internet udp -> client dst port 1500\n"
            "reach from client -> internet"
        )
        optimized = admit(requirements)
        with seed_mode():
            seed = admit(requirements)
        assert optimized == seed
        assert optimized[0] is True

    def test_rejected_admission_agrees(self):
        # The module filters to udp port 1500, so tcp cannot reach it:
        # both engines must reject, for the same stated reason.
        requirements = "reach from internet tcp -> client dst port 80"
        optimized = admit(requirements)
        with seed_mode():
            seed = admit(requirements)
        assert optimized == seed
        assert optimized[0] is False
