"""Unit tests for the summary tier (repro.symexec.summaries).

Covers the three caches the tier is made of: per-element transfer
functions (keyed on class + args, shared across graphs), the per-graph
program/segment tables (validated in O(1) against
:attr:`SymGraph.version`), and the composition rules that decide which
chains may be replayed.
"""

import pytest

from repro.click import parse_config
from repro.click.element import create_element
from repro.netmodel.examples import figure3_network
from repro.netmodel.symgraph import (
    NetworkCompiler,
    _middlebox_model_factory,
)
from repro.symexec import (
    SummaryCache,
    SymbolicEngine,
    SymGraph,
    model_for,
    models_registry,
    summarizer_for,
    summarizers_registry,
)
from repro.symexec.tuning import seed_mode

PIPELINE = """
    src :: FromNetfront();
    src -> IPFilter(allow udp port 53)
        -> SetIPAddress(10.0.0.9)
        -> Counter()
        -> ToNetfront();
"""


def pipeline_graph():
    return SymGraph.from_click(parse_config(PIPELINE))


class TestRegistry:
    def test_every_model_has_a_summarizer(self):
        # Summaries must keep up with the element registry: a new model
        # without a summarizer silently falls off the fast path.
        assert set(summarizers_registry()) == set(models_registry())

    def test_passthrough_summarizer_returns_the_model(self):
        element = create_element("Counter", "c", [])
        assert summarizer_for("Counter")(element) is model_for("Counter")

    def test_specialized_summarizer_is_config_bound(self):
        element = create_element("Paint", "p", ["2"])
        program = summarizer_for("Paint")(element)
        assert program is not model_for("Paint")
        assert callable(program)

    def test_middlebox_factory_is_tagged(self):
        element = create_element("Counter", "c", [])
        model = _middlebox_model_factory(element)
        assert model.summary_kind == "middlebox"


class TestElementProgramCache:
    def test_same_config_shares_one_program(self):
        cache = SummaryCache()
        a = create_element("IPFilter", "a", ["allow udp port 53"])
        b = create_element("IPFilter", "b", ["allow udp port 53"])
        first = cache._element_program(a)
        second = cache._element_program(b)
        assert first is second
        assert cache.element_hits == 1
        assert cache.element_misses == 1

    def test_different_config_compiles_separately(self):
        cache = SummaryCache()
        a = create_element("IPFilter", "a", ["allow udp port 53"])
        b = create_element("IPFilter", "b", ["allow tcp port 80"])
        assert cache._element_program(a) is not cache._element_program(b)
        assert cache.element_misses == 2

    def test_cache_survives_across_graphs(self):
        cache = SummaryCache()
        cache.tables_for(pipeline_graph())
        misses_after_first = cache.element_misses
        cache.tables_for(pipeline_graph())
        # Second graph: new tables, but every program re-used.
        assert cache.element_misses == misses_after_first
        assert cache.element_hits > 0


class TestGraphTables:
    def test_tables_revalidate_in_o1(self):
        cache = SummaryCache()
        graph = pipeline_graph()
        tables = cache.tables_for(graph)
        assert cache.tables_for(graph) is tables
        assert cache.stats()["hits"] == 1
        assert cache.stats()["misses"] == 1

    def test_graph_mutation_invalidates(self):
        cache = SummaryCache()
        graph = pipeline_graph()
        tables = cache.tables_for(graph)
        graph.add_node("extra", model_for("Discard"),
                       payload=create_element("Discard", "extra", []))
        rebuilt = cache.tables_for(graph)
        assert rebuilt is not tables
        assert cache.stats()["invalidations"] == 1

    def test_version_bumps_on_every_structural_mutation(self):
        graph = pipeline_graph()
        v0 = graph.version
        graph.add_node("x", model_for("Discard"),
                       payload=create_element("Discard", "x", []))
        v1 = graph.version
        graph.connect("src", 5, "x", 0)
        v2 = graph.version
        graph.remove_node("x")
        assert v0 < v1 < v2 < graph.version

    def test_trial_graft_invalidates_and_restores(self):
        net = figure3_network()
        compiled = NetworkCompiler(net).compile()
        cache = SummaryCache()
        tables = cache.tables_for(compiled.graph)
        platform = net.platforms()[0]
        config = parse_config(PIPELINE)
        address = platform.allocate_address()
        platform.deploy("trial", address, config)
        try:
            with compiled.with_trial_module(
                platform.name, "trial", address, config
            ):
                grafted = cache.tables_for(compiled.graph)
                assert grafted is not tables
                assert any(
                    node.startswith("trial/")
                    for node in grafted.programs
                )
        finally:
            platform.undeploy("trial")
            platform.release_address(address)
        ungrafted = cache.tables_for(compiled.graph)
        assert not any(
            node.startswith("trial/") for node in ungrafted.programs
        )


class TestSegmentComposition:
    def test_pipeline_composes_into_a_chain(self):
        cache = SummaryCache()
        graph = pipeline_graph()
        tables = cache.tables_for(graph)
        # The edge out of src enters a 4-hop chain ending at the sink.
        entry = graph.edges[("src", 0)]
        hops = tables.segments[entry]
        assert len(hops) == 4
        assert [hop.node for hop in hops[:-1]] == [
            entry[0], hops[1].node, hops[2].node
        ]
        assert hops[-1].is_sink

    def test_interior_positions_are_entries_too(self):
        # A flow spilled back onto the worklist mid-chain must re-enter
        # the chain suffix, so every edge destination gets an entry.
        cache = SummaryCache()
        graph = pipeline_graph()
        tables = cache.tables_for(graph)
        assert len(tables.segments) == len(set(graph.edges.values()))

    def test_fanout_node_ends_the_chain(self):
        config = parse_config("""
            src :: FromNetfront();
            c :: IPClassifier(udp, -);
            a :: ToNetfront(); b :: Discard();
            src -> c; c[0] -> a; c[1] -> b;
        """)
        cache = SummaryCache()
        graph = SymGraph.from_click(config)
        tables = cache.tables_for(graph)
        entry = graph.edges[("src", 0)]
        # The classifier has two wired outputs: not chainable past it.
        assert entry not in tables.segments or \
            len(tables.segments[entry]) == 1

    def test_summary_engine_matches_plain_engine(self):
        from repro.symexec import canonical_flow

        config = parse_config(PIPELINE)
        graph = SymGraph.from_click(config)
        plain = SymbolicEngine(SymGraph.from_click(config))
        summarized = SymbolicEngine(graph, summaries=SummaryCache())
        canon = lambda e: (  # noqa: E731
            tuple(canonical_flow(f) for f in e.delivered),
            tuple(canonical_flow(f) for f in e.dropped),
            e.steps,
        )
        assert canon(summarized.inject("src")) == \
            canon(plain.inject("src"))

    def test_seed_mode_bypasses_summaries(self):
        cache = SummaryCache()
        engine = SymbolicEngine(pipeline_graph(), summaries=cache)
        with seed_mode():
            engine.inject("src")
        # The tables were never consulted, let alone built.
        assert cache.stats()["misses"] == 0
        assert cache.stats()["hits"] == 0
        engine.inject("src")
        assert cache.stats()["misses"] == 1


class TestInstrumentation:
    def test_counters_land_in_a_registry(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        cache = SummaryCache()
        cache.instrument(registry)
        cache.tables_for(pipeline_graph())
        assert registry.counter("symexec_summary_misses_total").value == 1
        assert registry.counter(
            "symexec_summary_composes_total"
        ).value >= 1
