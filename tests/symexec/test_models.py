"""Tests for the element symbolic models, including the paper's
Figure 2 walkthrough and concrete-vs-symbolic soundness properties."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import Packet, parse_config
from repro.click.element import create_element
from repro.common import fields as F
from repro.common.errors import VerificationError
from repro.symexec import SymbolicEngine, SymGraph
from repro.symexec.models import has_model, model_for, models_registry
from repro.symexec.reachability import domain_at


def explore(source, inject_at=None):
    cfg = parse_config(source)
    graph = SymGraph.from_click(cfg)
    eng = SymbolicEngine(graph)
    return eng.inject(inject_at or cfg.sources()[0])


class TestRegistry:
    def test_every_registered_element_has_a_model(self):
        from repro.click.element import element_registry

        missing = [
            name for name in element_registry() if not has_model(name)
        ]
        assert missing == [], "elements without symbolic models"

    def test_unknown_model_raises(self):
        with pytest.raises(VerificationError):
            model_for("NoSuchElement")


class TestFigure2Walkthrough:
    """The paper's firewall+server symbolic trace (Figure 2)."""

    SOURCE = """
        src :: FromNetfront();
        fw_out :: IPFilter(allow udp);
        server :: EchoResponder();
        dst :: ToNetfront();
        src -> fw_out -> server -> dst;
    """

    def test_proto_constrained_to_udp(self):
        ex = explore(self.SOURCE)
        flow = ex.delivered[0]
        assert flow.field_domain(F.IP_PROTO).singleton_value() == F.UDP

    def test_response_destination_aliases_request_source(self):
        ex = explore(self.SOURCE)
        flow = ex.delivered[0]
        ingress = flow.trace[0].snapshot
        egress = flow.trace[-1].snapshot
        # The server swapped: egress dst IS the variable that was src.
        assert egress[F.IP_DST] == ingress[F.IP_SRC]
        assert egress[F.IP_SRC] == ingress[F.IP_DST]

    def test_payload_unchanged_end_to_end(self):
        ex = explore(self.SOURCE)
        flow = ex.delivered[0]
        assert flow.writers_of(F.PAYLOAD) == []

    def test_equivalence_of_placements(self):
        """Running the server 'in the internet' vs 'on the platform'
        yields the same symbolic packet (the paper's equivalence)."""
        def final_bindings(source):
            ex = explore(source)
            flow = ex.delivered[0]
            egress = flow.trace[-1].snapshot
            ingress = flow.trace[0].snapshot
            return {
                "dst_is_old_src": egress[F.IP_DST] == ingress[F.IP_SRC],
                "proto": flow.field_domain(
                    F.IP_PROTO
                ).singleton_value(),
                "payload_writers": flow.writers_of(F.PAYLOAD),
            }

        original = final_bindings(self.SOURCE)
        # Platform placement: the server sits before the firewall on
        # the return path; same observable effect on the packet.
        platform = final_bindings(
            """
            src :: FromNetfront();
            server :: EchoResponder();
            fw_out :: IPFilter(allow udp);
            dst :: ToNetfront();
            src -> fw_out -> server -> dst;
            """
        )
        assert original == platform


class TestStatefulFirewallModel:
    SOURCE = """
        out_side :: FromNetfront();
        in_side :: FromNetfront();
        fw :: StatefulFirewall(allow udp);
        out_ok :: ToNetfront();
        in_ok :: ToNetfront();
        out_side -> fw; in_side -> [1]fw;
        fw[0] -> out_ok; fw[1] -> in_ok;
    """

    def test_outbound_tags_flow(self):
        ex = explore(self.SOURCE, "out_side")
        flow = ex.flows_at("out_ok")[0]
        assert flow.field_domain("firewall_tag").singleton_value() == 1

    def test_unsolicited_inbound_dies(self):
        ex = explore(self.SOURCE, "in_side")
        # State is pushed into the flow: untagged inbound cannot pass.
        assert ex.flows_at("in_ok") == []


class TestTunnelModels:
    def test_decap_of_unknown_traffic_havocs(self):
        ex = explore(
            "src :: FromNetfront(); d :: IPDecap();"
            "dst :: ToNetfront(); src -> d -> dst;"
        )
        flow = ex.delivered[0]
        written = {w.field for w in flow.writes}
        assert set(F.HEADER_FIELDS) <= written
        assert flow.field_domain("decapped").singleton_value() == 1

    def test_encap_then_decap_restores_inner(self):
        ex = explore(
            "src :: FromNetfront();"
            "e :: UDPIPEncap(9.9.9.9, 4000, 8.8.8.8, 4001);"
            "d :: IPDecap(); dst :: ToNetfront();"
            "src -> e -> d -> dst;"
        )
        flow = ex.delivered[0]
        ingress = flow.trace[0].snapshot
        egress = flow.trace[-1].snapshot
        assert egress[F.IP_DST] == ingress[F.IP_DST]
        assert egress[F.IP_PROTO] == ingress[F.IP_PROTO]

    def test_x86vm_havocs_everything(self):
        ex = explore(
            "src :: FromNetfront(); v :: X86VM();"
            "dst :: ToNetfront(); src -> v -> dst;"
        )
        flow = ex.delivered[0]
        ingress = flow.trace[0].snapshot
        egress = flow.trace[-1].snapshot
        assert all(
            egress[field] != ingress[field] for field in F.HEADER_FIELDS
        )


class TestRewriterModels:
    def test_iprewriter_constrains_to_pattern(self):
        ex = explore(
            "src :: FromNetfront();"
            "rw :: IPRewriter(pattern 9.9.9.9 5000-6000 - - 0 0);"
            "dst :: ToNetfront(); src -> rw -> dst;"
        )
        from repro.common.addr import parse_ip

        flow = ex.delivered[0]
        assert flow.field_domain(F.IP_SRC).singleton_value() == parse_ip(
            "9.9.9.9"
        )
        sport = flow.field_domain(F.TP_SRC)
        assert sport.min() == 5000 and sport.max() == 6000

    def test_transparent_proxy_splits(self):
        ex = explore(
            "src :: FromNetfront();"
            "tp :: TransparentProxy(9.9.9.9, 3128);"
            "dst :: ToNetfront(); src -> tp -> dst;"
        )
        assert len(ex.delivered) == 2
        redirected = [
            f for f in ex.delivered
            if f.field_domain(F.TP_DST).singleton_value() == 3128
        ]
        assert len(redirected) == 1


# ---------------------------------------------------------------------------
# Soundness: the symbolic model must admit every concrete behaviour.
# ---------------------------------------------------------------------------

#: (class, args, number of output ports to wire to sinks).
_ELEMENT_CASES = [
    ("IPFilter", ["allow udp dst port 1000-2000"], 1),
    ("IPClassifier", ["udp", "tcp", "-"], 3),
    ("IPRewriter", ["pattern - - 172.16.15.133 - 0 0"], 1),
    ("SetIPAddress", ["5.6.7.8"], 1),
    ("SetTPDst", ["8080"], 1),
    ("DecIPTTL", [], 2),
    ("Multicast", ["10.0.0.1", "10.0.0.2"], 1),
    ("EchoResponder", [], 1),
]


@settings(max_examples=40, deadline=None)
@given(
    case=st.sampled_from(_ELEMENT_CASES),
    proto=st.sampled_from([F.TCP, F.UDP, F.ICMP]),
    src=st.integers(min_value=1, max_value=(1 << 32) - 2),
    dst=st.integers(min_value=1, max_value=(1 << 32) - 2),
    sport=st.integers(min_value=0, max_value=65535),
    dport=st.integers(min_value=0, max_value=65535),
    ttl=st.integers(min_value=1, max_value=255),
)
def test_symbolic_model_admits_concrete_behaviour(
    case, proto, src, dst, sport, dport, ttl
):
    """For a random packet, the concrete element's (port, output packet)
    must be realizable by some symbolic flow of the model."""
    class_name, args, n_outputs = case
    wiring = "".join(
        "el[%d] -> sink%d :: ToNetfront();" % (port, port)
        for port in range(n_outputs)
    )
    source = (
        "src :: FromNetfront(); el :: %s(%s); src -> el; %s"
        % (class_name, ", ".join(args), wiring)
    )
    packet = Packet(
        ip_src=src, ip_dst=dst, ip_proto=proto,
        tp_src=sport, tp_dst=dport, ip_ttl=ttl,
    )
    element = create_element(class_name, "el", args)
    concrete = element.push(0, packet.copy())
    ex = explore(source)
    if not concrete:
        return  # concrete drop: symbolic may keep broader flows
    for out_port, out_packet in concrete:
        admitted = False
        for flow in ex.delivered:
            egress = flow.trace[-1].snapshot
            ok = True
            for field in F.HEADER_FIELDS:
                if field == F.PAYLOAD:
                    continue
                domain = domain_at(flow, egress, field)
                if domain is None or out_packet[field] not in domain:
                    ok = False
                    break
            if ok:
                admitted = True
                break
        assert admitted, (
            "concrete output %r of %s not admitted by any symbolic flow"
            % (out_packet, class_name)
        )
