"""Tests for configuration equivalence checking (Section 3)."""

from repro.symexec.equivalence import (
    configs_equivalent,
    explorations_equivalent,
    flow_signature,
)

FIREWALL_THEN_SERVER = """
    src :: FromNetfront();
    fw :: IPFilter(allow udp);
    server :: EchoResponder();
    dst :: ToNetfront();
    src -> fw -> server -> dst;
"""

SERVER_THEN_FIREWALL = """
    src :: FromNetfront();
    server :: EchoResponder();
    fw :: IPFilter(allow udp);
    dst :: ToNetfront();
    src -> server -> fw -> dst;
"""

SERVER_THAT_REWRITES = """
    src :: FromNetfront();
    fw :: IPFilter(allow udp);
    server :: EchoResponder();
    evil :: SetIPAddress(6.6.6.6);
    dst :: ToNetfront();
    src -> fw -> server -> evil -> dst;
"""


class TestFigure3Equivalence:
    """The paper's placement-equivalence argument."""

    def test_both_placements_equivalent(self):
        # Server in the internet (behind the firewall) vs server on
        # the platform (before the firewall): same symbolic packet.
        result = configs_equivalent(
            FIREWALL_THEN_SERVER, SERVER_THEN_FIREWALL
        )
        assert result.equivalent
        assert result.only_in_a == [] and result.only_in_b == []

    def test_tampering_breaks_equivalence(self):
        result = configs_equivalent(
            FIREWALL_THEN_SERVER, SERVER_THAT_REWRITES
        )
        assert not result.equivalent
        assert result.only_in_a and result.only_in_b

    def test_dropping_differs_from_forwarding(self):
        result = configs_equivalent(
            FIREWALL_THEN_SERVER,
            "src :: FromNetfront(); src -> Discard();",
        )
        assert not result.equivalent


class TestSignatures:
    def _explore(self, source):
        from repro.click import parse_config
        from repro.symexec import SymbolicEngine, SymGraph

        config = parse_config(source)
        engine = SymbolicEngine(SymGraph.from_click(config))
        return engine.inject(config.sources()[0])

    def test_signature_captures_aliasing(self):
        exploration = self._explore(FIREWALL_THEN_SERVER)
        signature = flow_signature(exploration.delivered[0])
        by_field = {part[0]: part for part in signature}
        # The echo server swapped: egress ip_dst aliases ingress ip_src.
        assert by_field["ip_dst"][1] == "alias"
        assert by_field["ip_dst"][2] == "ip_src"
        assert by_field["ip_src"][2] == "ip_dst"
        assert by_field["payload"][1] == "alias"

    def test_fresh_classes_are_stable(self):
        exploration = self._explore("""
            src :: FromNetfront();
            a :: SetIPAddress(5.6.7.8);
            dst :: ToNetfront();
            src -> a -> dst;
        """)
        signature = flow_signature(exploration.delivered[0])
        by_field = {part[0]: part for part in signature}
        assert by_field["ip_dst"][1] == "fresh"
        # The constant is part of the signature via the domain.
        from repro.common.addr import parse_ip

        value = parse_ip("5.6.7.8")
        assert by_field["ip_dst"][3] == ((value, value),)

    def test_equivalence_is_order_insensitive(self):
        a = self._explore(FIREWALL_THEN_SERVER)
        b = self._explore(SERVER_THEN_FIREWALL)
        assert explorations_equivalent(a, b).equivalent
        assert explorations_equivalent(b, a).equivalent


class TestCanonicalFlow:
    """Process-independence of the canonical rendering."""

    def _delivered(self, source):
        from repro.click import parse_config
        from repro.symexec import SymbolicEngine, SymGraph

        config = parse_config(source)
        engine = SymbolicEngine(SymGraph.from_click(config))
        return engine.inject(config.sources()[0]).delivered[0]

    def test_uid_allocation_cannot_distinguish_runs(self):
        from repro.symexec import canonical_flow

        # Two engines mint different global uids for the same program;
        # the canonical forms must still collide.
        first = self._delivered(FIREWALL_THEN_SERVER)
        second = self._delivered(FIREWALL_THEN_SERVER)
        uids = {e.snapshot["ip_src"] for e in (first.trace[0],
                                               second.trace[0])}
        assert len(uids) == 2  # genuinely different raw uids...
        assert canonical_flow(first) == canonical_flow(second)

    def test_differing_behaviour_detected(self):
        from repro.symexec import canonical_flow

        honest = self._delivered(FIREWALL_THEN_SERVER)
        tampered = self._delivered(SERVER_THAT_REWRITES)
        assert canonical_flow(honest) != canonical_flow(tampered)

    def test_canonical_form_is_hashable(self):
        from repro.symexec import canonical_flow

        flow = self._delivered(FIREWALL_THEN_SERVER)
        assert {canonical_flow(flow)}  # goes into a set without error
