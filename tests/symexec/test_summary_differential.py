"""Differential tests: summary-composed exploration is byte-for-byte
the seed engine.

Mirror of ``test_differential.py`` for the summary tier (PR 10's
compositional transfer functions + segment replay): every scenario runs
three ways -- through an engine carrying a :class:`SummaryCache`, with
the plain fast path, and under :func:`seed_mode` -- and all three must
agree on every delivered and dropped flow's canonical form, in the same
order, with the same step count, and on the final verdict.
"""

import pytest

from repro.click import parse_config
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel import NetworkCompiler
from repro.netmodel.examples import (
    figure3_network,
    linear_network,
    star_network,
)
from repro.policy import parse_requirement
from repro.symexec import (
    SummaryCache,
    SymbolicEngine,
    SymGraph,
    canonical_flow,
)
from repro.symexec.reachability import ReachabilityChecker
from repro.symexec.tuning import seed_mode
from tests.symexec.test_differential import (
    CLICK_SCENARIOS,
    FIGURE4_SOURCE,
    NETWORK_SCENARIOS,
    canonical_exploration,
)

#: One shared cache across all scenarios: cross-scenario reuse of
#: element programs must not leak state between explorations.
SHARED_CACHE = SummaryCache()


def explore_network_summarized(net, requirement_text, cache):
    compiled = NetworkCompiler(net).compile()
    requirement = parse_requirement(requirement_text)
    engine = compiled.engine(summaries=cache)
    exploration = compiled.explore_from(
        requirement.origin.node, requirement.origin.flow, engine=engine
    )
    verdict = ReachabilityChecker(compiled.resolver).check(
        requirement, exploration
    )
    return canonical_exploration(exploration), (
        verdict.satisfied, verdict.reason
    )


class TestNetworkExplorations:
    @pytest.mark.parametrize(
        "factory,requirement", NETWORK_SCENARIOS,
        ids=[req for _, req in NETWORK_SCENARIOS],
    )
    def test_summarized_matches_seed(self, factory, requirement):
        summarized = explore_network_summarized(
            factory(), requirement, SHARED_CACHE
        )
        plain = explore_network_summarized(factory(), requirement, None)
        with seed_mode():
            seed = explore_network_summarized(
                factory(), requirement, None
            )
        assert summarized == plain
        assert summarized == seed


class TestClickExplorations:
    @pytest.mark.parametrize("name", sorted(CLICK_SCENARIOS))
    def test_summarized_matches_seed(self, name):
        source = CLICK_SCENARIOS[name]

        def run(cache):
            config = parse_config(source)
            engine = SymbolicEngine(
                SymGraph.from_click(config), summaries=cache
            )
            return canonical_exploration(
                engine.inject(config.sources()[0])
            )

        summarized = run(SHARED_CACHE)
        plain = run(None)
        with seed_mode():
            seed = run(None)
        assert summarized == plain
        assert summarized == seed


def admit(requirements, fast_path):
    """One cold dry-run admission on a fresh Figure 3 controller.

    ``fast_path=True`` controllers carry the summary + verification
    caches; the admission verdict must not depend on any of it.
    """
    controller = Controller(figure3_network(), fast_path=fast_path)
    result = controller.request(ClientRequest(
        client_id="alice",
        role=ROLE_CLIENT,
        config_source=FIGURE4_SOURCE,
        requirements=requirements,
        owned_addresses=("172.16.15.133",),
        module_name="batcher",
    ), dry_run=True)
    return result.accepted, result.reason


class TestControllerAdmission:
    @pytest.mark.parametrize("requirements,expected", [
        ("reach from internet udp -> client dst port 1500\n"
         "reach from client -> internet", True),
        ("reach from internet tcp -> client dst port 80", False),
    ], ids=["accepted", "rejected"])
    def test_summarized_admission_agrees(self, requirements, expected):
        summarized = admit(requirements, fast_path=True)
        plain = admit(requirements, fast_path=False)
        with seed_mode():
            seed = admit(requirements, fast_path=True)
        assert summarized == plain == seed
        assert summarized[0] is expected

    def test_repeat_admissions_are_cache_stable(self):
        # The second identical dry run hits the verdict cache for the
        # operator policy; its outcome must match the first exactly,
        # and a cache-free controller must agree.
        policy = (
            "reach from internet udp dst net 192.0.1.0/24 -> platform0\n"
            "reach from internet udp dst net 192.0.3.0/24 -> platform2"
        )
        controller = Controller(star_network(4), policy)
        request = ClientRequest(
            client_id="alice",
            role=ROLE_CLIENT,
            config_source=FIGURE4_SOURCE,
            requirements="reach from client -> internet",
            owned_addresses=("172.16.15.133",),
            module_name="batcher",
        )
        first = controller.request(request, dry_run=True)
        second = controller.request(request, dry_run=True)
        assert (first.accepted, first.reason) == \
            (second.accepted, second.reason)
        cold = Controller(star_network(4), policy, fast_path=False)
        third = cold.request(request, dry_run=True)
        assert (first.accepted, first.reason) == \
            (third.accepted, third.reason)

    def test_snapshot_verdicts_survive_cache_warmup(self):
        policy = "\n".join(
            "reach from internet udp dst net 192.0.%d.0/24 -> platform%d"
            % (index + 1, index)
            for index in range(6)
        )
        controller = Controller(star_network(6), policy)
        cold = [
            (bool(r), str(r.requirement), r.reason)
            for r in controller.verify_snapshot()
        ]
        warm = [
            (bool(r), str(r.requirement), r.reason)
            for r in controller.verify_snapshot()
        ]
        assert cold == warm
        stats = controller.stats()["verification_cache"]
        assert stats["hits"] >= 6  # the warm pass reused every verdict
