"""Tests for the Figure 2-style trace renderer."""

from repro.click import parse_config
from repro.symexec import SymbolicEngine, SymGraph
from repro.symexec.render import format_exploration, format_trace

FIGURE2 = """
    client :: FromNetfront();
    fw :: IPFilter(allow udp);
    server :: EchoResponder();
    back :: ToNetfront();
    client -> fw -> server -> back;
"""


def explore(source):
    config = parse_config(source)
    engine = SymbolicEngine(SymGraph.from_click(config))
    return engine.inject(config.sources()[0])


class TestFormatTrace:
    def test_contains_all_hops(self):
        flow = explore(FIGURE2).delivered[0]
        text = format_trace(flow)
        for node in ("client", "fw", "server", "back"):
            assert node in text

    def test_constant_rendered_as_value(self):
        flow = explore("""
            src :: FromNetfront();
            s :: SetIPAddress(5.6.7.8);
            dst :: ToNetfront();
            src -> s -> dst;
        """).delivered[0]
        assert "5.6.7.8" in format_trace(flow)

    def test_proto_rendered_by_name(self):
        flow = explore(FIGURE2).delivered[0]
        assert "udp" in format_trace(flow)

    def test_change_marker_on_rewrites(self):
        flow = explore(FIGURE2).delivered[0]
        lines = format_trace(flow).splitlines()
        server_line = next(l for l in lines if l.startswith("server"))
        back_line = next(l for l in lines if l.startswith("back"))
        # The swap happens at the server: visible on the next hop row.
        assert "<" in back_line
        assert "<" not in server_line

    def test_variable_names_stable_within_trace(self):
        flow = explore(FIGURE2).delivered[0]
        text = format_trace(flow)
        # The swap reuses letters: ingress is `A B`, egress is `B A`.
        lines = text.splitlines()
        client = next(l for l in lines if l.startswith("client"))
        back = next(l for l in lines if l.startswith("back"))
        src_letter, dst_letter = client.split()[1:3]
        assert back.split()[1] == dst_letter  # egress src was dst
        assert back.split()[3] == src_letter  # egress dst was src

    def test_title_included(self):
        flow = explore(FIGURE2).delivered[0]
        assert format_trace(flow, title="hello").startswith("hello")


class TestFormatExploration:
    def test_multiple_flows_rendered(self):
        exploration = explore("""
            src :: FromNetfront();
            c :: IPClassifier(udp, tcp);
            a :: ToNetfront(); b :: ToNetfront();
            src -> c; c[0] -> a; c[1] -> b;
        """)
        text = format_exploration(exploration)
        assert "flow 1 of 2" in text and "flow 2 of 2" in text

    def test_flow_cap_respected(self):
        exploration = explore("""
            src :: FromNetfront();
            mc :: Multicast(10.0.0.1, 10.0.0.2, 10.0.0.3);
            dst :: ToNetfront();
            src -> mc -> dst;
        """)
        text = format_exploration(exploration, max_flows=2)
        assert "1 more flows" in text


class TestGoldenOutput:
    """Exact renderings, pinned character for character.

    These lock the whole surface at once -- column layout, variable
    lettering, constant formatting, protocol names, change markers --
    so an innocent-looking tweak to the renderer (or to trace
    recording in the engine) shows up as a readable diff.
    """

    GOLDEN_FIGURE2 = (
        "node    IP SRC  IP DST  PROT  DATA\n"
        "----------------------------------\n"
        "client  A       B       udp   C   \n"
        "fw      A       B       udp   C   \n"
        "server  A       B       udp   C   \n"
        "back    B <     A <     udp   C   "
    )

    GOLDEN_REWRITE = (
        "rewrite\n"
        "node  IP SRC  IP DST     PROT  DATA\n"
        "-----------------------------------\n"
        "src   A       B          C     D   \n"
        "s     A       B          C     D   \n"
        "dst   A       5.6.7.8 <  C     D   "
    )

    def test_figure2_trace_golden(self):
        flow = explore(FIGURE2).delivered[0]
        assert format_trace(flow) == self.GOLDEN_FIGURE2

    def test_rewrite_trace_golden(self):
        flow = explore("""
            src :: FromNetfront();
            s :: SetIPAddress(5.6.7.8);
            dst :: ToNetfront();
            src -> s -> dst;
        """).delivered[0]
        assert format_trace(flow, title="rewrite") == self.GOLDEN_REWRITE

    def test_exploration_wraps_same_golden_trace(self):
        text = format_exploration(explore(FIGURE2))
        assert text == "flow 1 of 1:\n" + self.GOLDEN_FIGURE2

    def test_golden_output_mode_independent(self):
        from repro.symexec.tuning import seed_mode

        with seed_mode():
            flow = explore(FIGURE2).delivered[0]
            assert format_trace(flow) == self.GOLDEN_FIGURE2
