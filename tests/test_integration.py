"""End-to-end integration tests crossing every subsystem."""

import pytest

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip
from repro.core import ClientRequest, Controller, ROLE_CLIENT, ROLE_THIRD_PARTY
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.platform import CHEAP_SERVER_SPEC, PlatformSim
from repro.platform.consolidation import consolidate_configs
from repro.sim.traces import generate_trace, trace_statistics


class TestPaperWalkthrough:
    """Section 4.5 end to end: request -> verify -> deploy -> traffic."""

    def test_full_pipeline(self):
        controller = Controller(figure3_network())
        result = controller.request(ClientRequest(
            client_id="mobile1",
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() ->
                IPFilter(allow udp port 1500) ->
                IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> TimedUnqueue(120, 100)
                -> dst :: ToNetfront();
            """,
            requirements=(
                "reach from internet udp"
                " -> batcher:dst:0 dst 172.16.15.133"
                " -> client dst port 1500"
                " const proto && dst port && payload"
            ),
            owned_addresses=(CLIENT_ADDR,),
            module_name="batcher",
        ))
        assert result.accepted and result.platform == "platform3"

        # Drive real traffic through the deployed configuration.
        record = controller.deployed["batcher"]
        runtime = Runtime(record.config)
        source = record.config.sources()[0]
        module_addr = parse_ip(result.address)
        payload = b"hello-notification"
        for i in range(5):
            runtime.inject(source, Packet(
                ip_src=parse_ip("203.0.113.9"),
                ip_dst=module_addr,
                ip_proto=UDP,
                tp_dst=1500,
                payload=payload,
            ), at=float(i))
        runtime.run(until=120.0)
        out = runtime.take_output()
        assert len(out) == 5
        for record_out in out:
            packet = record_out.packet
            # The three const fields arrived untouched; dst rewritten.
            assert packet["ip_proto"] == UDP
            assert packet["tp_dst"] == 1500
            assert packet["payload"] == payload
            assert packet["ip_dst"] == parse_ip(CLIENT_ADDR)
            assert record_out.time == 120.0  # batched

        # Traffic not matching the filter never reaches the client.
        runtime.inject(source, Packet(
            ip_dst=module_addr, ip_proto=UDP, tp_dst=9999,
        ))
        runtime.run(until=240.0)
        assert runtime.take_output() == []


class TestConsolidatedDeploymentTraffic:
    """Many verified tenants share one VM, traffic stays isolated."""

    def test_two_tenants_one_vm(self):
        controller = Controller(figure3_network())
        addresses = {}
        for name, client_ip in (
            ("alice", "172.16.0.10"), ("bob", "172.16.0.11"),
        ):
            result = controller.request(ClientRequest(
                client_id=name,
                role=ROLE_CLIENT,
                config_source="""
                    FromNetfront() -> IPFilter(allow udp)
                    -> IPRewriter(pattern - - %s - 0 0)
                    -> ToNetfront();
                """ % client_ip,
                owned_addresses=(client_ip,),
                module_name=name,
            ))
            assert result.accepted, result.reason
            addresses[name] = parse_ip(result.address)

        merged = consolidate_configs([
            (name, addresses[name], controller.deployed[name].config)
            for name in ("alice", "bob")
        ])
        runtime = Runtime(merged)
        runtime.inject("shared_in", Packet(
            ip_dst=addresses["alice"], ip_proto=UDP,
        ))
        runtime.inject("shared_in", Packet(
            ip_dst=addresses["bob"], ip_proto=UDP,
        ))
        outputs = [r.packet["ip_dst"] for r in runtime.output]
        assert outputs == [
            parse_ip("172.16.0.10"), parse_ip("172.16.0.11"),
        ]


class TestSandboxedTunnelTraffic:
    """A sandboxed tunnel's enforcer actually polices at run time."""

    def test_enforcer_blocks_unauthorized_inner_destination(self):
        controller = Controller(figure3_network())
        result = controller.request(ClientRequest(
            client_id="tunneler",
            role=ROLE_THIRD_PARTY,
            config_source=(
                "FromNetfront() -> IPDecap() -> ToNetfront();"
            ),
            owned_addresses=("172.16.15.133",),
            module_name="tun",
        ))
        assert result.accepted and result.sandboxed
        runtime = Runtime(controller.deployed["tun"].config)
        source = controller.deployed["tun"].config.sources()[0]
        module_addr = parse_ip(result.address)

        def tunneled(inner_dst):
            packet = Packet(
                ip_src=parse_ip("172.16.15.133"),
                ip_dst=parse_ip(inner_dst),
                ip_proto=UDP,
            )
            packet.encapsulate(
                ip_src=parse_ip("198.51.100.77"), ip_dst=module_addr,
            )
            return packet

        # Whitelisted inner destination passes...
        runtime.inject(source, tunneled("172.16.15.133"))
        assert len(runtime.take_output()) == 1
        # ...an arbitrary victim does not.
        runtime.inject(source, tunneled("6.6.6.6"))
        assert runtime.take_output() == []


class TestMawiCapacityClaim:
    """Section 6: one cheap platform covers the MAWI backbone's
    active clients."""

    def test_platform_fits_mawi_active_clients(self):
        stats = trace_statistics(generate_trace())
        sim = PlatformSim()
        # Consolidated at 100 clients/VM, the VM count is far below
        # the box's memory capacity.
        vms_needed = -(-stats.max_active_clients // 100)
        assert vms_needed < CHEAP_SERVER_SPEC.max_vms("clickos")
        # And 840 concurrent personalized firewalls fit outright.
        for i in range(0, 840, 100):
            sim.register_client("fw%d" % i)
        assert sim.can_admit()
