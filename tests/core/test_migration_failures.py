"""Partial-migration rollback: every failure path restores state.

The regression for the historical leak: a migration that failed after
allocating the target trial address (verification failure, platform
error, capacity race) used to strand that address and could leave the
module half-moved.  Every path now releases the target address,
restores the source placement, and leaves the controller's visible
state byte-for-byte identical (digest equality).
"""

import pytest

from repro.core.controller import Controller
from repro.netmodel.topology import Platform
from repro.resilience.chaos import _module_request, chaos_network
from repro.resilience.invariants import (
    collect_violations,
    controller_state_digest,
)


def deployed_world():
    net = chaos_network()
    controller = Controller(net)
    result = controller.request(
        _module_request("mobile1", "m1"), pinned_platform="pa"
    )
    assert result, result.reason
    return net, controller


def accounting(platform):
    return {
        "outstanding": platform.outstanding_addresses(),
        "modules": len(platform.modules),
    }


class TestRollbackPaths:
    def test_verification_failure_rolls_back_exactly(self):
        net, controller = deployed_world()
        net.unlink("r1", "pb")  # pb unreachable: requirement will fail
        before = controller_state_digest(controller)
        before_pa = accounting(net.node("pa"))
        result = controller.migrate("m1", "pb")
        assert not result.migrated
        assert result.reason  # carries the failed requirement(s)
        assert controller_state_digest(controller) == before
        assert accounting(net.node("pa")) == before_pa
        assert accounting(net.node("pb")) == {
            "outstanding": 0, "modules": 0,
        }
        assert collect_violations(controller) == []

    def test_platform_error_mid_migration_rolls_back(self, monkeypatch):
        net, controller = deployed_world()
        target = net.node("pb")
        before = controller_state_digest(controller)

        def explode(*args, **kwargs):
            raise RuntimeError("toolstack died mid-deploy")

        monkeypatch.setattr(target, "deploy", explode)
        with pytest.raises(RuntimeError):
            controller.migrate("m1", "pb")
        monkeypatch.undo()
        assert controller_state_digest(controller) == before
        # The trial address was released even though deploy() blew up.
        assert target.outstanding_addresses() == 0
        assert net.node("pa").modules["m1"] is not None
        assert collect_violations(controller) == []

    def test_failure_after_target_deploy_undeploys_the_trial(
        self, monkeypatch
    ):
        net, controller = deployed_world()
        before = controller_state_digest(controller)

        def broken_verify(*args, **kwargs):
            raise RuntimeError("verifier crashed")

        monkeypatch.setattr(controller, "_verify_all", broken_verify)
        with pytest.raises(RuntimeError):
            controller.migrate("m1", "pb")
        monkeypatch.undo()
        assert controller_state_digest(controller) == before
        assert net.node("pb").modules == {}
        assert net.node("pb").outstanding_addresses() == 0
        assert collect_violations(controller) == []

    def test_unknown_module_and_platform_are_clean_denials(self):
        net, controller = deployed_world()
        before = controller_state_digest(controller)
        assert not controller.migrate("ghost", "pb").migrated
        assert not controller.migrate("m1", "nowhere").migrated
        assert controller_state_digest(controller) == before

    def test_target_at_capacity_denied_without_leak(self):
        net, controller = deployed_world()
        pb = net.node("pb")
        while pb.has_capacity:
            pb.deploy(
                "filler%d" % len(pb.modules), pb.allocate_address(),
                config=None,
            )
        filler_count = len(pb.modules)
        result = controller.migrate("m1", "pb")
        assert not result.migrated
        assert len(pb.modules) == filler_count
        assert pb.outstanding_addresses() == filler_count

    def test_successful_migration_releases_the_source_address(self):
        net, controller = deployed_world()
        pa = net.node("pa")
        assert accounting(pa) == {"outstanding": 1, "modules": 1}
        result = controller.migrate("m1", "pb")
        assert result.migrated
        assert accounting(pa) == {"outstanding": 0, "modules": 0}
        assert accounting(net.node("pb")) == {
            "outstanding": 1, "modules": 1,
        }
        assert collect_violations(controller) == []

    def test_repeated_failed_migrations_never_accumulate_state(self):
        net, controller = deployed_world()
        net.unlink("r1", "pb")
        before = controller_state_digest(controller)
        for _ in range(5):
            assert not controller.migrate("m1", "pb").migrated
        assert controller_state_digest(controller) == before
        assert net.node("pb").outstanding_addresses() == 0
