"""Incremental re-verification: the footprint-keyed verdict cache.

The controller's :class:`~repro.symexec.summaries.VerificationCache`
claims a verdict may be reused exactly while (a) the topology signature
is unchanged, (b) every routing/flow table in the verdict's reachability
footprint still carries the version recorded at store time, and (c) no
module address moved in or out of a range the requirement references.
These tests drive each clause, plus the satellite edge cases: model
mutation mid-admission, ``seed_mode()`` round-trips, and
version-counter overflow/reset.
"""

from repro.click import parse_config
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import star_network
from repro.netmodel.routing import RoutingTable
from repro.symexec.tuning import seed_mode

MODULE_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""


def policy(n):
    return "\n".join(
        "reach from internet udp dst net 192.0.%d.0/24 -> platform%d"
        % (index + 1, index)
        for index in range(n)
    )


def request(name="batcher", client="alice"):
    return ClientRequest(
        client_id=client,
        role=ROLE_CLIENT,
        config_source=MODULE_CONFIG,
        requirements="reach from client -> internet",
        owned_addresses=("172.16.15.133",),
        module_name=name,
    )


def verdicts(results):
    return [(bool(r), str(r.requirement), r.reason) for r in results]


def cache_stats(controller):
    return controller.stats()["verification_cache"]


class TestVerdictReuse:
    def test_second_snapshot_is_all_hits(self):
        controller = Controller(star_network(5), policy(5))
        first = verdicts(controller.verify_snapshot())
        before = cache_stats(controller)
        assert before["stores"] == 5
        second = verdicts(controller.verify_snapshot())
        after = cache_stats(controller)
        assert first == second
        assert after["hits"] - before["hits"] == 5

    def test_policy_edit_reverifies_only_the_new_line(self):
        controller = Controller(star_network(5), policy(4))
        controller.verify_snapshot()
        controller.set_operator_requirements(policy(5))
        before = cache_stats(controller)
        controller.verify_snapshot()
        after = cache_stats(controller)
        assert after["hits"] - before["hits"] == 4
        assert after["stores"] - before["stores"] == 1

    def test_retracted_lines_are_pruned(self):
        controller = Controller(star_network(5), policy(5))
        controller.verify_snapshot()
        assert cache_stats(controller)["entries"] == 5
        controller.set_operator_requirements(policy(2))
        assert cache_stats(controller)["entries"] == 2

    def test_admission_reuses_disjoint_operator_verdicts(self):
        # The trial graft touches one platform; operator verdicts whose
        # footprint avoids it are answered from cache.
        controller = Controller(star_network(5), policy(5))
        controller.verify_snapshot()
        before = cache_stats(controller)
        result = controller.request(request(), dry_run=True)
        assert result.accepted, result.reason
        after = cache_stats(controller)
        assert after["hits"] > before["hits"]

    def test_dry_run_admissions_never_store_trial_state(self):
        controller = Controller(star_network(3), policy(3))
        result = controller.request(request(), dry_run=True)
        assert result.accepted, result.reason
        # Whatever was cached during the trial must still validate now
        # that the trial is rolled back: a second snapshot agrees with
        # a cache-flushed one.
        warm = verdicts(controller.verify_snapshot())
        controller._verification.flush()
        assert verdicts(controller.verify_snapshot()) == warm


class TestInvalidation:
    def test_deploy_invalidates_only_the_touched_segment(self):
        controller = Controller(star_network(5), policy(5))
        controller.verify_snapshot()
        result = controller.request(request(), dry_run=False)
        assert result.accepted, result.reason
        # The deploy bumped one platform's flow-table version; verdicts
        # for the other segments hold, the touched one re-explores.
        before = cache_stats(controller)
        controller.verify_snapshot()
        after = cache_stats(controller)
        assert after["hits"] - before["hits"] >= 3
        assert after["stores"] - before["stores"] >= 1
        # Steady state: the next snapshot answers every requirement
        # (operator policy + the committed module's own) from cache.
        mid = cache_stats(controller)
        controller.verify_snapshot()
        final = cache_stats(controller)
        assert final["hits"] - mid["hits"] >= 6
        assert final["misses"] == mid["misses"]
        assert final["invalidations"] == mid["invalidations"]

    def test_flow_table_mutation_mid_admission_invalidates(self):
        # Out-of-band surgery on a platform's table (the "model
        # mutation mid-admission" edge case): the verdict tokens catch
        # it even though no epoch was bumped.
        controller = Controller(star_network(3), policy(3))
        controller.verify_snapshot()
        platform = controller.network.node("platform1")
        platform.flow_table._version += 1  # any mutation bumps this
        before = cache_stats(controller)
        controller.verify_snapshot()
        after = cache_stats(controller)
        assert after["invalidations"] - before["invalidations"] == 1
        assert after["hits"] - before["hits"] == 2

    def test_table_replacement_with_same_version_invalidates(self):
        # A rebuilt table restarts its version counter, which a bare
        # version compare would false-match; the identity half of the
        # token catches the swap (version-counter "reset" edge case).
        controller = Controller(star_network(3), policy(3))
        controller.verify_snapshot()
        router = controller.network.node("r0")
        old = router.table
        replacement = RoutingTable()
        replacement._version = old._version
        router.table = replacement
        before = cache_stats(controller)
        controller.verify_snapshot()
        after = cache_stats(controller)
        # Every footprint crosses the router, so all three invalidate.
        assert after["invalidations"] - before["invalidations"] == 3
        router.table = old

    def test_version_counter_overflow_is_harmless(self):
        # Python ints don't wrap, but a pathologically large counter
        # must neither crash nor false-match after further bumps.
        controller = Controller(star_network(3), policy(3))
        platform = controller.network.node("platform0")
        platform.flow_table._version = 2 ** 63
        controller.verify_snapshot()
        before = cache_stats(controller)
        controller.verify_snapshot()
        assert cache_stats(controller)["hits"] - before["hits"] == 3
        platform.flow_table._version += 1
        controller.verify_snapshot()
        assert cache_stats(controller)["invalidations"] == 1

    def test_address_range_sensitivity(self):
        # A requirement referencing an address range invalidates when a
        # module address appears inside that range -- even though the
        # exploration footprint never visited the module's platform.
        controller = Controller(
            star_network(3),
            "isolate from internet tcp -> 192.0.9.0/24",
        )
        controller.verify_snapshot()
        platform = controller.network.node("platform1")
        ghost = parse_config(MODULE_CONFIG)
        platform.modules["ghost"] = (0xC0000901, ghost)  # 192.0.9.1
        try:
            before = cache_stats(controller)
            controller.verify_snapshot()
            after = cache_stats(controller)
            assert after["invalidations"] - before["invalidations"] >= 1
        finally:
            platform.modules.pop("ghost", None)


class TestSeedModeRoundTrip:
    def test_seed_mode_disables_and_restores_caching(self):
        controller = Controller(star_network(3), policy(3))
        with seed_mode():
            seed_results = verdicts(controller.verify_snapshot())
            assert cache_stats(controller)["stores"] == 0
            assert cache_stats(controller)["hits"] == 0
        warm_results = verdicts(controller.verify_snapshot())
        assert cache_stats(controller)["stores"] == 3
        assert seed_results == warm_results
        controller.verify_snapshot()
        assert cache_stats(controller)["hits"] == 3

    def test_fast_path_off_never_touches_the_caches(self):
        controller = Controller(
            star_network(3), policy(3), fast_path=False
        )
        controller.verify_snapshot()
        stats = cache_stats(controller)
        assert stats["stores"] == stats["hits"] == 0
        assert controller._summaries is None

    def test_invalidate_model_cache_flushes_everything(self):
        controller = Controller(star_network(3), policy(3))
        controller.verify_snapshot()
        assert cache_stats(controller)["entries"] == 3
        controller.invalidate_model_cache()
        assert cache_stats(controller)["entries"] == 0
        assert controller._summaries._tables is None


class TestStats:
    def test_stats_exposes_summary_and_verification_tiers(self):
        controller = Controller(star_network(3), policy(3))
        controller.verify_snapshot()
        stats = controller.stats()
        assert "symexec_summaries" in stats
        assert "verification_cache" in stats
        assert stats["verification_cache"]["entries"] == 3
        assert stats["symexec_summaries"]["misses"] >= 1
