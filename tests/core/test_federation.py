"""Tests for multi-operator federation."""

import pytest

from repro.common.errors import DeploymentError
from repro.core import ClientRequest, Controller, ROLE_THIRD_PARTY
from repro.core.federation import Federation
from repro.netmodel.examples import figure3_network

BUCHAREST = (44.43, 26.10)
BERLIN = (52.52, 13.40)
ROME = (41.90, 12.50)


def build_federation():
    federation = Federation()
    federation.add_operator(
        "ro", Controller(figure3_network()), BUCHAREST
    )
    federation.add_operator(
        "de", Controller(figure3_network()), BERLIN
    )
    federation.add_operator("it", Controller(figure3_network()), ROME)
    return federation


def proxy_request(name="shield"):
    return ClientRequest(
        client_id="provider",
        role=ROLE_THIRD_PARTY,
        stock="reverse-proxy",
        stock_params=("198.51.100.1", "80"),
        owned_addresses=("198.51.100.1",),
        module_name=name,
    )


class TestDirectory:
    def test_duplicate_operator_rejected(self):
        federation = build_federation()
        with pytest.raises(DeploymentError):
            federation.add_operator(
                "ro", Controller(figure3_network()), BUCHAREST
            )

    def test_nearest_first_ordering(self):
        federation = build_federation()
        near_rome = federation.operators_by_distance((42.0, 12.0))
        assert [o.name for o in near_rome][0] == "it"
        near_bucharest = federation.operators_by_distance((45.0, 26.0))
        assert [o.name for o in near_bucharest][0] == "ro"


class TestDeployment:
    def test_deploys_at_nearest(self):
        federation = build_federation()
        outcome = federation.deploy_near(proxy_request(), ROME)
        assert outcome
        assert outcome.operator == "it"
        assert federation.deployments() == {"shield": "it"}

    def test_falls_back_when_nearest_is_full(self):
        federation = build_federation()
        # Fill every platform of the Italian operator.
        for platform in federation.operators[
            "it"
        ].controller.network.platforms():
            platform.capacity = 0
        outcome = federation.deploy_near(proxy_request(), ROME)
        assert outcome
        assert outcome.operator != "it"

    def test_reports_denial_when_all_refuse(self):
        federation = build_federation()
        bad = ClientRequest(
            client_id="provider",
            role=ROLE_THIRD_PARTY,
            config_source="FromNetfront() -> SetIPSrc(6.6.6.6) "
                          "-> ToNetfront();",
            module_name="evil",
        )
        outcome = federation.deploy_near(bad, ROME)
        assert not outcome
        assert "security" in outcome.result.reason
        assert federation.deployments() == {}

    def test_kill_routes_to_owner(self):
        federation = build_federation()
        federation.deploy_near(proxy_request(), BERLIN)
        assert federation.kill("shield")
        assert not federation.kill("shield")
        assert "shield" not in (
            federation.operators["de"].controller.deployed
        )

    def test_no_operators_registered(self):
        with pytest.raises(DeploymentError):
            Federation().deploy_near(proxy_request(), ROME)

    def test_auto_named_module_is_tracked(self):
        # Regression: deployments without an explicit module_name used
        # to leak -- accepted at the operator, absent from placements,
        # unkillable through the federation.
        federation = build_federation()
        outcome = federation.deploy_near(proxy_request(name=""), ROME)
        assert outcome
        module_id = outcome.result.module_id
        assert module_id
        assert federation.deployments() == {module_id: "it"}
        assert federation.kill(module_id)
        assert federation.deployments() == {}
        assert module_id not in (
            federation.operators["it"].controller.deployed
        )

    def test_prune_drops_stale_placements(self):
        federation = build_federation()
        kept = federation.deploy_near(proxy_request("s-keep"), ROME)
        gone = federation.deploy_near(proxy_request("s-gone"), BERLIN)
        assert kept and gone
        # The module dies operator-side, behind the federation's back.
        assert federation.operators["de"].controller.kill("s-gone")
        assert federation.prune_placements() == ["s-gone"]
        assert federation.deployments() == {"s-keep": "it"}
        # Pruning is idempotent.
        assert federation.prune_placements() == []

    def test_combined_invoice(self):
        federation = build_federation()
        for info in federation.operators.values():
            info.controller._clock = lambda: 0.0
        federation.deploy_near(proxy_request("s1"), ROME)
        federation.deploy_near(proxy_request("s2"), BERLIN)
        total = federation.total_invoice("provider", now=3600.0)
        # Two module-hours across two operators (plus verifications).
        assert total >= 2.0
