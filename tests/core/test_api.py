"""Tests for the controller wire format."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.errors import PolicyError
from repro.core import ClientRequest, Controller
from repro.core.api import (
    request_from_dict,
    request_from_json,
    request_to_dict,
    request_to_json,
    result_to_dict,
    result_to_json,
)
from repro.netmodel.examples import CLIENT_ADDR, figure3_network


def sample_request(**overrides):
    kwargs = dict(
        client_id="mobile1",
        role="client",
        config_source="FromNetfront() -> IPFilter(allow udp) "
                      "-> IPRewriter(pattern - - 172.16.15.133 - 0 0) "
                      "-> dst :: ToNetfront();",
        requirements="reach from internet udp -> batcher:dst:0",
        owned_addresses=(CLIENT_ADDR,),
        module_name="batcher",
    )
    kwargs.update(overrides)
    return ClientRequest(**kwargs)


class TestRoundTrip:
    def test_dict_roundtrip(self):
        original = sample_request()
        restored = request_from_dict(request_to_dict(original))
        assert restored == original

    def test_json_roundtrip(self):
        original = sample_request()
        restored = request_from_json(request_to_json(original))
        assert restored == original

    def test_stock_request_roundtrip(self):
        original = ClientRequest(
            client_id="cdn", stock="reverse-proxy",
            stock_params=("198.51.100.1", "80"),
        )
        restored = request_from_json(request_to_json(original))
        assert restored == original

    @given(
        client=st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1, max_size=20,
        ),
        role=st.sampled_from(["third-party", "client", "operator"]),
    )
    def test_roundtrip_random_identity(self, client, role):
        original = sample_request(client_id=client, role=role)
        assert request_from_json(request_to_json(original)) == original


class TestValidation:
    def test_wrong_version_refused(self):
        payload = request_to_dict(sample_request())
        payload["version"] = 99
        with pytest.raises(PolicyError):
            request_from_dict(payload)

    def test_missing_client_refused(self):
        payload = request_to_dict(sample_request())
        del payload["client_id"]
        with pytest.raises(PolicyError):
            request_from_dict(payload)

    def test_malformed_json_refused(self):
        with pytest.raises(PolicyError):
            request_from_json("{not json")

    def test_non_object_refused(self):
        with pytest.raises(PolicyError):
            request_from_dict([1, 2, 3])


class TestEndToEndOverWire:
    def test_request_survives_transport(self):
        controller = Controller(figure3_network())
        wire = request_to_json(sample_request())
        result = controller.request(request_from_json(wire))
        assert result.accepted
        reply = result_to_dict(result)
        assert reply["accepted"] is True
        assert reply["platform"] == "platform3"
        assert "address" in reply

    def test_denial_reply_has_reason_not_address(self):
        controller = Controller(figure3_network())
        result = controller.request(sample_request(
            requirements="reach from internet tcp dst port 99 "
                         "-> client dst port 7",
        ))
        reply = result_to_dict(result)
        assert reply["accepted"] is False
        assert reply["reason"]
        assert "address" not in reply

    def test_result_json_is_valid(self):
        import json

        controller = Controller(figure3_network())
        result = controller.request(sample_request())
        payload = json.loads(result_to_json(result))
        assert payload["module_id"] == "batcher"
