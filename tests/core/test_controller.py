"""Tests for the In-Net controller: the Section 4.5 walkthrough and the
deployment decision paths."""

import pytest

from repro.click.config import parse_config
from repro.common.addr import parse_ip
from repro.core import (
    ClientRequest,
    Controller,
    ROLE_CLIENT,
    ROLE_THIRD_PARTY,
)
from repro.core.controller import wrap_with_enforcer
from repro.netmodel.examples import CLIENT_ADDR, figure3_network

FIGURE4_REQUIREMENT = (
    "reach from internet udp"
    " -> batcher:dst:0 dst 172.16.15.133"
    " -> client dst port 1500 const proto && dst port && payload"
)


def batcher_request(**overrides):
    kwargs = dict(
        client_id="mobile1",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        """,
        requirements=FIGURE4_REQUIREMENT,
        owned_addresses=(CLIENT_ADDR,),
        module_name="batcher",
    )
    kwargs.update(overrides)
    return ClientRequest(**kwargs)


class TestFigure4Walkthrough:
    """Section 4.5: the unifying example, end to end."""

    def test_platform3_selected(self, controller):
        result = controller.request(batcher_request())
        assert result.accepted
        assert result.platform == "platform3"
        assert result.address.startswith("192.0.2.")
        assert not result.sandboxed

    def test_flow_rules_installed(self, controller):
        result = controller.request(batcher_request())
        key = ("platform3", parse_ip(result.address))
        assert controller.flow_rules[key] == "batcher"

    def test_module_address_joins_client_whitelist(self, controller):
        result = controller.request(batcher_request())
        assert parse_ip(result.address) in (
            controller.client_addresses["mobile1"]
        )

    def test_kill_removes_everything(self, controller):
        result = controller.request(batcher_request())
        assert controller.kill("batcher")
        assert "batcher" not in controller.deployed
        assert not controller.flow_rules
        assert not controller.kill("batcher")

    def test_timing_recorded(self, controller):
        result = controller.request(batcher_request())
        assert result.compile_seconds > 0
        assert result.check_seconds > 0


class TestDenials:
    def test_unsatisfiable_requirement_denied(self, controller):
        result = controller.request(batcher_request(
            requirements="reach from internet tcp dst port 99"
                         " -> batcher:dst:0 dst port 7",
        ))
        assert not result.accepted
        assert "no symbolic flow" in result.reason

    def test_security_reject_denied(self, controller):
        result = controller.request(ClientRequest(
            client_id="evil",
            role=ROLE_THIRD_PARTY,
            config_source="""
                FromNetfront() -> SetIPSrc(6.6.6.6)
                -> ToNetfront();
            """,
        ))
        assert not result.accepted
        assert "security" in result.reason

    def test_bad_configuration_denied(self, controller):
        result = controller.request(ClientRequest(
            client_id="x", config_source="this is not click",
        ))
        assert not result.accepted
        assert "bad configuration" in result.reason

    def test_bad_requirements_denied(self, controller):
        result = controller.request(batcher_request(
            requirements="reach nowhere",
        ))
        assert not result.accepted
        assert "bad requirements" in result.reason

    def test_duplicate_module_name_denied(self, controller):
        assert controller.request(batcher_request()).accepted
        result = controller.request(batcher_request())
        assert not result.accepted
        assert "already in use" in result.reason

    def test_unknown_element_denied(self, controller):
        result = controller.request(ClientRequest(
            client_id="x",
            config_source="FromNetfront() -> Imaginary() "
                          "-> ToNetfront();",
        ))
        assert not result.accepted


class TestSandboxing:
    def test_tunnel_deployed_with_enforcer(self, controller):
        result = controller.request(ClientRequest(
            client_id="tunneler",
            role=ROLE_THIRD_PARTY,
            config_source="""
                FromNetfront() -> IPDecap() -> ToNetfront();
            """,
            owned_addresses=(CLIENT_ADDR,),
            module_name="tun",
        ))
        assert result.accepted
        assert result.sandboxed
        deployed = controller.deployed["tun"].config
        assert deployed.elements_of_class("ChangeEnforcer")

    def test_client_tunnel_not_sandboxed(self, controller):
        result = controller.request(ClientRequest(
            client_id="tunneler",
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() -> IPDecap() -> ToNetfront();
            """,
            module_name="tun",
        ))
        assert result.accepted
        assert not result.sandboxed


class TestOperatorPolicy:
    def test_operator_requirements_block_bad_placements(self):
        # An operator rule that client-bound UDP must traverse the fw
        # makes any placement breaking it undeployable; the batcher on
        # platform3 routes through fw, so it still deploys.
        net = figure3_network()
        controller = Controller(
            net,
            operator_requirements=(
                "reach from internet udp -> fw -> client"
            ),
        )
        result = controller.request(batcher_request())
        assert result.accepted

    def test_impossible_operator_requirement_blocks_all(self):
        net = figure3_network()
        controller = Controller(
            net,
            operator_requirements=(
                "reach from internet udp dst port 1 -> client dst port 2"
            ),
        )
        result = controller.request(batcher_request())
        assert not result.accepted


class TestClientRegistry:
    def test_register_client_address(self, controller):
        controller.register_client_address("alice", "203.0.113.5")
        assert parse_ip("203.0.113.5") in (
            controller.client_addresses["alice"]
        )

    def test_second_module_may_target_first(self, controller):
        # Explicit authorization case (b): a module may send to the
        # same user's other modules.
        first = controller.request(batcher_request(
            client_id="alice", module_name="m1",
            requirements="reach from internet udp -> client dst port 1500",
        ))
        assert first.accepted
        second = controller.request(ClientRequest(
            client_id="alice",
            role=ROLE_THIRD_PARTY,
            config_source="""
                FromNetfront()
                -> IPRewriter(pattern - - %s - 0 0)
                -> ToNetfront();
            """ % first.address,
            module_name="m2",
        ))
        assert second.accepted, second.reason


class TestEnforcerWrapping:
    def test_wrap_inserts_both_directions(self):
        config = parse_config(
            "src :: FromNetfront(); d :: IPDecap();"
            "out :: ToNetfront(); src -> d -> out;"
        )
        wrapped = wrap_with_enforcer(
            config, parse_ip("192.0.2.10"),
            frozenset({parse_ip("172.16.15.133")}),
        )
        wrapped.validate()
        enforcers = wrapped.elements_of_class("ChangeEnforcer")
        # Single-path module: ONE shared enforcer spanning both
        # directions (ingress via port 0, egress via port 1), so the
        # implicit authorizations granted on ingress police egress.
        assert enforcers == ["enforcer"]
        in_ports = {
            e.dst_port for e in wrapped.edges if e.dst == "enforcer"
        }
        out_ports = {
            e.src_port for e in wrapped.edges if e.src == "enforcer"
        }
        assert in_ports == {0, 1} and out_ports == {0, 1}

    def test_multi_path_module_gets_per_edge_enforcers(self):
        config = parse_config(
            "a :: FromNetfront(); b :: FromNetfront();"
            "d :: IPDecap(); t :: Tee(2);"
            "o1 :: ToNetfront(); o2 :: ToNetfront();"
            "a -> d; b -> d@x :: IPDecap() -> t;"
            "d -> o1; t[0] -> o2; t[1] -> Discard();"
        )
        wrapped = wrap_with_enforcer(
            config, parse_ip("192.0.2.10"), frozenset()
        )
        wrapped.validate()
        assert len(wrapped.elements_of_class("ChangeEnforcer")) >= 2
