"""Tests for the Table 1 / stock-module catalog."""

import pytest

from repro.common.errors import ConfigError
from repro.core.catalog import (
    STOCK_MODULES,
    TABLE1_FUNCTIONALITIES,
    catalog_config,
    catalog_source,
    stock_module_config,
)


class TestCatalog:
    @pytest.mark.parametrize("name", TABLE1_FUNCTIONALITIES)
    def test_every_config_parses_and_validates(self, name):
        config = catalog_config(name)
        config.validate()
        assert config.sources()
        assert config.sinks()

    def test_twelve_functionalities(self):
        assert len(TABLE1_FUNCTIONALITIES) == 12

    def test_unknown_functionality(self):
        with pytest.raises(ConfigError):
            catalog_config("teleporter")

    def test_parameters_threaded_through(self):
        source = catalog_source("firewall", client_addr="10.9.8.7")
        assert "10.9.8.7" in source

    def test_catalog_source_unknown(self):
        with pytest.raises(ConfigError):
            catalog_source("nope")


class TestStockModules:
    @pytest.mark.parametrize("name", sorted(STOCK_MODULES))
    def test_every_stock_module_builds(self, name):
        params = {
            "reverse-proxy": ("198.51.100.1", "80"),
            "explicit-proxy": ("192.0.2.10",),
            "geo-dns": (),
            "x86-vm": (),
        }[name]
        config = stock_module_config(name, *params)
        config.validate()

    def test_paper_set_offered(self):
        # Section 4.1: reverse proxy, explicit proxy, DNS, x86 VM.
        assert {"reverse-proxy", "explicit-proxy", "geo-dns",
                "x86-vm"} <= set(STOCK_MODULES)

    def test_unknown_stock_module(self):
        with pytest.raises(ConfigError):
            stock_module_config("warp-drive")
