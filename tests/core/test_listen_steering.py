"""Tests for protocol/port-scoped module steering (Section 4.3).

"The client is also given an IP address, protocol and port combination
that can be used to reach that module."
"""

import pytest

from repro.click import Packet, TCP, UDP
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.netmodel.forwarding import ForwardingPlane


def request_with_listen(listen):
    return ClientRequest(
        client_id="mobile1",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> dst :: ToNetfront();
        """,
        requirements="reach from internet udp -> mod:dst:0",
        owned_addresses=(CLIENT_ADDR,),
        module_name="mod",
        listen=listen,
    )


class TestParseListen:
    def test_proto_and_port(self):
        req = request_with_listen("udp 1500")
        assert req.parse_listen() == (UDP, 1500)

    def test_proto_only(self):
        assert request_with_listen("tcp").parse_listen() == (TCP, None)

    def test_port_only(self):
        assert request_with_listen("53").parse_listen() == (None, 53)

    def test_none(self):
        assert request_with_listen(None).parse_listen() == (None, None)

    def test_garbage_rejected(self):
        with pytest.raises(ConfigError):
            request_with_listen("quic q").parse_listen()

    def test_port_range_checked(self):
        with pytest.raises(ConfigError):
            request_with_listen("udp 99999").parse_listen()


class TestSteering:
    def test_scoped_rule_installed(self):
        controller = Controller(figure3_network())
        result = controller.request(request_with_listen("udp 1500"))
        assert result.accepted, result.reason
        platform = controller.network.node(result.platform)
        (rule,) = platform.flow_table.rules
        matched = rule.match_dict()
        assert "ip_proto" in matched and "tp_dst" in matched

    def test_forwarding_honors_listen(self):
        controller = Controller(figure3_network())
        result = controller.request(request_with_listen("udp 1500"))
        assert result.accepted
        plane = ForwardingPlane(controller.network)
        address = parse_ip(result.address)
        matching = Packet(
            ip_src=parse_ip("8.8.8.8"), ip_dst=address,
            ip_proto=UDP, tp_dst=1500,
        )
        off_port = Packet(
            ip_src=parse_ip("8.8.8.8"), ip_dst=address,
            ip_proto=UDP, tp_dst=9999,
        )
        wrong_proto = Packet(
            ip_src=parse_ip("8.8.8.8"), ip_dst=address,
            ip_proto=TCP, tp_dst=1500,
        )
        assert len(plane.send("internet", matching)) == 1
        assert plane.send("internet", off_port) == []
        assert plane.send("internet", wrong_proto) == []

    def test_symbolic_demux_sees_the_scope(self):
        # The reach check runs against the steered table: a TCP-only
        # requirement through a udp-listening module must fail.
        controller = Controller(figure3_network())
        request = request_with_listen("udp 1500")
        request = ClientRequest(
            client_id=request.client_id,
            role=request.role,
            config_source=request.config_source,
            requirements="reach from internet tcp -> mod:dst:0",
            owned_addresses=request.owned_addresses,
            module_name="mod",
            listen="udp 1500",
        )
        result = controller.request(request)
        assert not result.accepted
        assert "no symbolic flow" in result.reason

    def test_unscoped_module_takes_everything(self):
        controller = Controller(figure3_network())
        result = controller.request(request_with_listen(None))
        assert result.accepted
        platform = controller.network.node(result.platform)
        (rule,) = platform.flow_table.rules
        assert list(rule.match_dict()) == ["ip_dst"]
