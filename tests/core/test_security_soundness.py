"""Soundness of the security analyzer, property-based.

THE guarantee the whole architecture rests on: if static analysis says
*allow* for a third-party module, then no concrete packet pushed
through the module can produce egress traffic that violates the
security rules (spoofed source / unauthorized destination).  We
generate random configurations from safe and unsafe building blocks
plus random traffic, and check the implication.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.click import Packet, Runtime, parse_config
from repro.common import fields as F
from repro.common.addr import format_ip, parse_ip
from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer
from repro.core.security import VERDICT_ALLOW, addresses_to_whitelist

MODULE_ADDR = parse_ip("192.0.2.10")
WHITELIST_ADDRS = ("172.16.15.133", "172.16.15.134")
WHITELIST = addresses_to_whitelist(WHITELIST_ADDRS)
FOREIGN = "6.6.6.6"

#: Building blocks the generator composes into linear modules.  Some
#: are safe, some are not; the analyzer decides, the runtime verifies.
BLOCKS = [
    "IPFilter(allow udp)",
    "IPFilter(allow tcp dst port 80, allow udp)",
    "Counter()",
    "DecIPTTL()",
    "CheckIPHeader()",
    "IPRewriter(pattern - - %s - 0 0)" % WHITELIST_ADDRS[0],
    "IPRewriter(pattern - - %s - 0 0)" % WHITELIST_ADDRS[1],
    "SetIPAddress(%s)" % WHITELIST_ADDRS[0],
    "SetIPAddress(%s)" % FOREIGN,                  # unsafe destination
    "SetIPSrc(%s)" % format_ip(MODULE_ADDR),
    "SetIPSrc(%s)" % FOREIGN,                      # spoofing
    "SetTPDst(1500)",
    "EchoResponder()",
    "Multicast(%s)" % ", ".join(WHITELIST_ADDRS),
    "Multicast(%s, %s)" % (WHITELIST_ADDRS[0], FOREIGN),  # unsafe
]

blocks_strategy = st.lists(
    st.sampled_from(BLOCKS), min_size=1, max_size=4
)

packets_strategy = st.lists(
    st.builds(
        dict,
        ip_src=st.integers(min_value=1, max_value=(1 << 32) - 2),
        ip_proto=st.sampled_from([F.TCP, F.UDP, F.ICMP]),
        tp_src=st.integers(min_value=0, max_value=65535),
        tp_dst=st.integers(min_value=0, max_value=65535),
        ip_ttl=st.integers(min_value=1, max_value=255),
    ),
    min_size=1,
    max_size=5,
)


def build_config(blocks):
    chain = " -> ".join(blocks)
    return parse_config(
        "src :: FromNetfront(); dst :: ToNetfront();"
        "src -> %s -> dst;" % chain
    )


def egress_conforms(ingress: Packet, egress: Packet) -> bool:
    """The Section 2.1 rules, evaluated on one concrete packet pair."""
    src_ok = (
        egress[F.IP_SRC] == ingress[F.IP_SRC]
        or egress[F.IP_SRC] == MODULE_ADDR
        # Responder-style modules source from the contacted address.
        or egress[F.IP_SRC] == ingress[F.IP_DST]
    )
    dst_ok = (
        egress[F.IP_DST] in WHITELIST
        or egress[F.IP_DST] == ingress[F.IP_SRC]  # implicit auth
    )
    return src_ok and dst_ok


@settings(max_examples=120, deadline=None)
@given(blocks=blocks_strategy, packets=packets_strategy)
def test_allow_verdict_is_sound(blocks, packets):
    """allow => every concrete egress packet conforms."""
    config = build_config(blocks)
    report = SecurityAnalyzer().analyze(
        config, ROLE_THIRD_PARTY,
        module_address=MODULE_ADDR, whitelist=WHITELIST,
    )
    if report.verdict != VERDICT_ALLOW:
        return  # nothing promised for sandbox/reject verdicts
    runtime = Runtime(config)
    for fields in packets:
        # Tenant modules only ever receive traffic addressed to them.
        packet = Packet(ip_dst=MODULE_ADDR, **fields)
        ingress = packet.copy()
        runtime.inject("src", packet)
        runtime.run(until=runtime.now + 1000.0)
        for record in runtime.take_output():
            assert egress_conforms(ingress, record.packet), (
                "analyzer said allow, but %r -> %r violates the rules "
                "in config:\n%s"
                % (ingress, record.packet, config.to_click())
            )


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_strategy)
def test_verdict_is_deterministic(blocks):
    """The same configuration always gets the same verdict."""
    config = build_config(blocks)
    analyzer = SecurityAnalyzer()
    first = analyzer.analyze(
        config, ROLE_THIRD_PARTY,
        module_address=MODULE_ADDR, whitelist=WHITELIST,
    )
    second = analyzer.analyze(
        config, ROLE_THIRD_PARTY,
        module_address=MODULE_ADDR, whitelist=WHITELIST,
    )
    assert first.verdict == second.verdict


@settings(max_examples=60, deadline=None)
@given(blocks=blocks_strategy)
def test_obviously_bad_blocks_never_allowed(blocks):
    """Configs ending in a spoof or foreign-destination write must not
    be allowed (they may be rejected or, if mixed, sandboxed)."""
    bad_tail = "SetIPSrc(%s)" % FOREIGN
    config = build_config(blocks + [bad_tail])
    report = SecurityAnalyzer().analyze(
        config, ROLE_THIRD_PARTY,
        module_address=MODULE_ADDR, whitelist=WHITELIST,
    )
    # Unless everything is filtered before the tail (possible when an
    # earlier filter chain is unsatisfiable), allow is unsound; verify
    # via the runtime that nothing ever leaves if allowed.
    if report.verdict == VERDICT_ALLOW:
        runtime = Runtime(config)
        for proto in (F.TCP, F.UDP, F.ICMP):
            runtime.inject(
                "src", Packet(ip_dst=MODULE_ADDR, ip_proto=proto)
            )
        runtime.run(until=2000.0)
        assert runtime.take_output() == []
