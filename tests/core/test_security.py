"""Tests for the security analyzer -- including the full Table 1 matrix."""

import pytest

from repro.click import parse_config
from repro.common.addr import parse_ip
from repro.common.errors import VerificationError
from repro.core import (
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
    SecurityAnalyzer,
    VERDICT_ALLOW,
    VERDICT_REJECT,
    VERDICT_SANDBOX,
)
from repro.core.catalog import TABLE1_FUNCTIONALITIES, catalog_config
from repro.core.security import addresses_to_whitelist

MODULE_ADDR = parse_ip("192.0.2.10")
WHITELIST = addresses_to_whitelist(
    [
        "172.16.15.133", "172.16.15.134",         # requester's addresses
        "198.51.100.1", "198.51.100.2", "198.51.100.3",
    ]
)

#: Table 1 of the paper: expected verdict per (functionality, role).
#: Legend: X -> reject, check -> allow, X(s)/check(s) -> sandbox.
TABLE1_EXPECTED = {
    "ip_router": ("reject", "reject", "allow"),
    "dpi": ("reject", "reject", "allow"),
    "nat": ("reject", "reject", "allow"),
    "transparent_proxy": ("reject", "reject", "allow"),
    "flow_meter": ("allow", "allow", "allow"),
    "rate_limiter": ("allow", "allow", "allow"),
    "firewall": ("allow", "allow", "allow"),
    "tunnel": ("sandbox", "allow", "allow"),
    "multicast": ("allow", "allow", "allow"),
    "dns_server": ("allow", "allow", "allow"),
    "reverse_proxy": ("allow", "allow", "allow"),
    "x86_vm": ("sandbox", "sandbox", "allow"),
}

ROLES = (ROLE_THIRD_PARTY, ROLE_CLIENT, ROLE_OPERATOR)


@pytest.fixture(scope="module")
def analyzer():
    return SecurityAnalyzer()


class TestTable1:
    """Every cell of the paper's Table 1."""

    @pytest.mark.parametrize("functionality", TABLE1_FUNCTIONALITIES)
    @pytest.mark.parametrize("role_index", range(3))
    def test_verdict_matches_paper(
        self, analyzer, functionality, role_index
    ):
        role = ROLES[role_index]
        expected = TABLE1_EXPECTED[functionality][role_index]
        config = catalog_config(functionality)
        report = analyzer.analyze(
            config, role, module_address=MODULE_ADDR, whitelist=WHITELIST
        )
        assert report.verdict == expected, (
            "%s as %s: got %s, paper says %s\n%s"
            % (functionality, role, report.verdict, expected, report)
        )


class TestSpoofing:
    def test_hardcoded_foreign_source_rejected(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPSrc(6.6.6.6);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_THIRD_PARTY, module_address=MODULE_ADDR
        )
        assert report.verdict == VERDICT_REJECT
        assert any(f.rule == "spoofing" for f in report.findings)

    def test_source_set_to_module_address_allowed(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPSrc(192.0.2.10);"
            "r :: IPRewriter(pattern - - 172.16.15.133 - 0 0);"
            "dst :: ToNetfront(); src -> s -> r -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=MODULE_ADDR, whitelist=WHITELIST,
        )
        assert report.verdict == VERDICT_ALLOW

    def test_spoofing_checked_even_for_clients(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPSrc(6.6.6.6);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_CLIENT, module_address=MODULE_ADDR
        )
        assert report.verdict == VERDICT_REJECT


class TestDefaultOff:
    def test_fixed_unwhitelisted_destination_rejected(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPAddress(6.6.6.6);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=MODULE_ADDR, whitelist=WHITELIST,
        )
        assert report.verdict == VERDICT_REJECT
        assert any(f.rule == "default-off" for f in report.findings)

    def test_whitelisted_destination_allowed(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPAddress(172.16.15.133);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=MODULE_ADDR, whitelist=WHITELIST,
        )
        assert report.verdict == VERDICT_ALLOW

    def test_clients_may_reach_any_fixed_destination(self, analyzer):
        # Operator customers get normal Internet service: default-off
        # does not apply to them (only anti-spoofing does).
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPAddress(6.6.6.6);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(
            config, ROLE_CLIENT, module_address=MODULE_ADDR
        )
        assert report.verdict == VERDICT_ALLOW

    def test_explicit_proxy_third_party_sandboxed(self, analyzer):
        from repro.core.catalog import stock_module_config

        config = stock_module_config("explicit-proxy", "192.0.2.10")
        third = analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=MODULE_ADDR, whitelist=WHITELIST,
        )
        client = analyzer.analyze(
            config, ROLE_CLIENT, module_address=MODULE_ADDR
        )
        assert third.verdict == VERDICT_SANDBOX
        assert client.verdict == VERDICT_ALLOW


class TestOperatorRole:
    def test_operator_always_allowed(self, analyzer):
        config = parse_config(
            "src :: FromNetfront(); s :: SetIPSrc(6.6.6.6);"
            "dst :: ToNetfront(); src -> s -> dst;"
        )
        report = analyzer.analyze(config, ROLE_OPERATOR)
        assert report.verdict == VERDICT_ALLOW
        assert report.findings == []


class TestUnknownElements:
    def test_unmodelled_element_uncheckable(self, analyzer):
        import repro.click.element as element_module
        from repro.click.element import Element, register_element

        # Register a dataplane-only element with no symbolic model,
        # cleaning the registry up afterwards (it is process-global).
        @register_element("UnmodelledTestElement")
        class UnmodelledTestElement(Element):
            def configure(self, args):
                pass

        try:
            config = parse_config(
                "src :: FromNetfront(); u :: UnmodelledTestElement();"
                "dst :: ToNetfront(); src -> u -> dst;"
            )
            with pytest.raises(VerificationError):
                analyzer.analyze(config, ROLE_THIRD_PARTY)
        finally:
            element_module._REGISTRY.pop("UnmodelledTestElement", None)


class TestSandboxedAnnotation:
    def test_enforcer_wrapped_config_passes(self, analyzer):
        # A tunnel wrapped in ChangeEnforcer becomes acceptable: the
        # runtime guarantees what static analysis could not prove.
        from repro.core.controller import wrap_with_enforcer
        from repro.core.catalog import catalog_config

        config = wrap_with_enforcer(
            catalog_config("tunnel"), MODULE_ADDR, WHITELIST
        )
        report = analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=MODULE_ADDR, whitelist=WHITELIST,
        )
        assert report.verdict == VERDICT_ALLOW
