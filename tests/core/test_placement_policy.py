"""The Section 2.2 placement-policy example, end to end.

"Consider the in-network cloud provider whose policy dictates that all
HTTP traffic follow the bottom path and be inspected by the HTTP
middlebox.  If a client's VM talks HTTP, it should be installed on
Platform 2 ... Installing the client's VM on Platform 1 would disobey
the operator's policy."
"""

import pytest

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.topology import Network

#: Operator rule: HTTP emitted by any tenant module must traverse the
#: HTTP optimizer before reaching clients.
HTTP_POLICY = (
    "always from $module tcp src port 80"
    " -> HTTPOptimizer -> client"
)


def section22_network() -> Network:
    """Two platforms; only platform2's egress crosses the optimizer.

    ::

        internet -- r1 -- platform2         (outside the optimizer)
                     |
                HTTPOptimizer
                     |
                    r2 -- clients
                     |
                 platform1                  (inside, bypasses it)
    """
    net = Network("section-2.2")
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_middlebox("HTTPOptimizer", "HTTPOptimizer")
    net.add_platform("platform1", "10.1.0.0/24")
    net.add_platform("platform2", "192.0.2.0/24")
    net.link("internet", "r1")
    net.link("r1", "platform2")
    net.link("r1", "HTTPOptimizer")
    net.link("HTTPOptimizer", "r2")
    net.link("r2", "clients")
    net.link("r2", "platform1")
    net.compute_routes()
    return net


def http_module_request(name="webmod"):
    # A tenant module that emits HTTP toward the operator's clients.
    return ClientRequest(
        client_id="tenant",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront()
            -> IPFilter(allow tcp src port 80)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> dst :: ToNetfront();
        """,
        owned_addresses=("172.16.15.133",),
        module_name=name,
    )


def udp_module_request(name="udpmod"):
    return ClientRequest(
        client_id="tenant",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront()
            -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> dst :: ToNetfront();
        """,
        owned_addresses=("172.16.15.133",),
        module_name=name,
    )


class TestSection22:
    def test_http_module_forced_onto_platform2(self):
        controller = Controller(
            section22_network(), operator_requirements=HTTP_POLICY
        )
        result = controller.request(http_module_request())
        assert result.accepted, result.reason
        # Platform 1 is tried first but bypasses the optimizer: the
        # `always` rule fails there, so platform 2 is chosen.
        assert result.platform == "platform2"

    def test_non_http_module_may_use_platform1(self):
        controller = Controller(
            section22_network(), operator_requirements=HTTP_POLICY
        )
        result = controller.request(udp_module_request())
        assert result.accepted, result.reason
        # The UDP module never emits HTTP, so the HTTP rule is vacuous
        # and the first platform wins.
        assert result.platform == "platform1"

    def test_without_policy_platform1_wins(self):
        controller = Controller(section22_network())
        result = controller.request(http_module_request())
        assert result.accepted
        assert result.platform == "platform1"

    def test_placeholder_rule_ignored_without_module(self):
        controller = Controller(
            section22_network(), operator_requirements=HTTP_POLICY
        )
        # Snapshot verification with no deployments must not crash on
        # the $module rule (it is skipped).
        assert controller.verify_snapshot() == []

    def test_snapshot_reverifies_instantiated_rule(self):
        controller = Controller(
            section22_network(), operator_requirements=HTTP_POLICY
        )
        result = controller.request(http_module_request())
        assert result.accepted
        outcomes = controller.verify_snapshot()
        assert outcomes and all(outcomes)
