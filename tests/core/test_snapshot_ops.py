"""Tests for snapshot re-verification and platform evacuation."""

import pytest

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.netmodel.examples import star_network


def module_request(name, requirements=""):
    return ClientRequest(
        client_id="alice",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> dst :: ToNetfront();
        """,
        requirements=requirements,
        owned_addresses=(CLIENT_ADDR,),
        module_name=name,
    )


class TestVerifySnapshot:
    def test_healthy_snapshot_all_green(self):
        controller = Controller(
            figure3_network(),
            operator_requirements="reach from client -> internet",
        )
        result = controller.request(module_request(
            "mod", "reach from internet udp -> mod:dst:0"
        ))
        assert result.accepted
        outcomes = controller.verify_snapshot()
        assert outcomes and all(outcomes)

    def test_topology_change_detected(self):
        net = figure3_network()
        controller = Controller(
            net, operator_requirements="reach from client -> internet"
        )
        result = controller.request(module_request(
            "mod", "reach from internet udp -> mod:dst:0"
        ))
        assert result.accepted and result.platform == "platform3"
        # The platform3 uplink dies: remove its link from the snapshot.
        p3 = net.node("platform3")
        r1 = net.node("r1")
        (port, (peer, peer_port)), = list(p3.ports.items())
        del p3.ports[port]
        del r1.ports[peer_port]
        net.links = [
            l for l in net.links
            if "platform3" not in (l.a, l.b)
        ]
        net.compute_routes()
        outcomes = controller.verify_snapshot()
        failed = [r for r in outcomes if not r]
        assert failed
        assert any("mod:dst" in str(r.requirement) for r in failed)


class TestEvacuation:
    def test_all_modules_relocated(self):
        net = star_network(3)
        controller = Controller(net)
        for index in range(4):
            result = controller.request(module_request("m%d" % index))
            assert result.accepted
        source = controller.deployed["m0"].platform
        victims = [
            m for m, rec in controller.deployed.items()
            if rec.platform == source
        ]
        outcomes = controller.evacuate(source)
        assert len(outcomes) == len(victims)
        assert all(outcomes)
        assert all(
            rec.platform != source
            for rec in controller.deployed.values()
        )

    def test_evacuation_respects_capacity(self):
        net = star_network(2)
        net.node("platform1").capacity = 0  # nowhere to go
        controller = Controller(net)
        result = controller.request(module_request("m0"))
        assert result.accepted and result.platform == "platform0"
        outcomes = controller.evacuate("platform0")
        assert len(outcomes) == 1
        assert not outcomes[0]
        # The module stays where it was rather than vanishing.
        assert controller.deployed["m0"].platform == "platform0"

    def test_evacuating_empty_platform_is_noop(self):
        controller = Controller(figure3_network())
        assert controller.evacuate("platform2") == []
