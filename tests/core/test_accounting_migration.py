"""Tests for tenant accounting, capacity-aware placement, migration."""

import pytest

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.core.accounting import Invoice, Ledger, Tariff
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.netmodel.topology import Network


def simple_request(name="mod", client="alice"):
    return ClientRequest(
        client_id=client,
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        owned_addresses=(CLIENT_ADDR,),
        module_name=name,
    )


class TestLedger:
    def test_module_hours_accrue(self):
        ledger = Ledger()
        ledger.record_deployment("m1", "alice", False, now=0.0)
        invoice = ledger.invoice("alice", now=7200.0)
        assert invoice.module_hours == pytest.approx(2.0)
        assert invoice.total == pytest.approx(2.0)

    def test_stop_freezes_hours(self):
        ledger = Ledger()
        ledger.record_deployment("m1", "alice", False, now=0.0)
        ledger.record_stop("m1", now=3600.0)
        invoice = ledger.invoice("alice", now=7200.0)
        assert invoice.module_hours == pytest.approx(1.0)

    def test_sandbox_surcharge(self):
        tariff = Tariff(per_module_hour=1.0, sandbox_multiplier=1.5)
        ledger = Ledger(tariff)
        ledger.record_deployment("plain", "alice", False, now=0.0)
        ledger.record_deployment("boxed", "alice", True, now=0.0)
        invoice = ledger.invoice("alice", now=3600.0)
        assert invoice.module_hours == pytest.approx(1.0)
        assert invoice.sandboxed_module_hours == pytest.approx(1.0)
        assert invoice.total == pytest.approx(1.0 + 1.5)

    def test_traffic_billed_per_gigabyte(self):
        ledger = Ledger(Tariff(per_module_hour=0.0, per_gigabyte=0.05))
        ledger.record_deployment("m1", "alice", False, now=0.0)
        ledger.record_traffic("m1", packets=1000, byte_count=2_000_000_000)
        invoice = ledger.invoice("alice", now=0.0)
        assert invoice.gigabytes == pytest.approx(2.0)
        assert invoice.total == pytest.approx(0.10)

    def test_verifications_billed_even_when_denied(self):
        ledger = Ledger(Tariff(per_verification=0.01))
        ledger.record_verification("alice")
        ledger.record_verification("alice")
        invoice = ledger.invoice("alice", now=0.0)
        assert invoice.verifications == 2

    def test_traffic_for_unknown_module_ignored(self):
        ledger = Ledger()
        ledger.record_traffic("ghost", 1, 1)
        assert ledger.invoice("alice", 0.0).total == 0.0

    def test_clients_listing(self):
        ledger = Ledger()
        ledger.record_verification("bob")
        ledger.record_deployment("m1", "alice", False, now=0.0)
        assert ledger.clients() == ["alice", "bob"]


class TestControllerAccounting:
    def test_deploy_and_kill_recorded(self):
        fake_now = [0.0]
        controller = Controller(
            figure3_network(), clock=lambda: fake_now[0]
        )
        assert controller.request(simple_request())
        fake_now[0] = 3600.0
        controller.kill("mod")
        invoice = controller.ledger.invoice("alice", now=fake_now[0])
        assert invoice.module_hours == pytest.approx(1.0)
        assert invoice.verifications == 1

    def test_denied_requests_still_billed_for_verification(self):
        controller = Controller(figure3_network())
        controller.request(ClientRequest(
            client_id="alice",
            config_source="FromNetfront() -> SetIPSrc(6.6.6.6) "
                          "-> ToNetfront();",
        ))
        assert controller.ledger.invoice(
            "alice", now=0.0
        ).verifications == 1


class TestCapacity:
    def _tiny_network(self):
        net = Network()
        net.add_internet()
        net.add_router("r")
        net.add_client_subnet("clients", "172.16.0.0/16")
        net.add_platform("p", "192.0.2.0/24", capacity=1)
        net.link("internet", "r")
        net.link("r", "clients")
        net.link("r", "p")
        net.compute_routes()
        return net

    def test_capacity_limits_deployments(self):
        controller = Controller(self._tiny_network())
        assert controller.request(simple_request("m1"))
        result = controller.request(simple_request("m2"))
        assert not result.accepted
        assert "capacity" in result.reason

    def test_kill_frees_capacity(self):
        controller = Controller(self._tiny_network())
        assert controller.request(simple_request("m1"))
        controller.kill("m1")
        assert controller.request(simple_request("m2"))


class TestMigration:
    def test_migrate_to_reachable_platform(self):
        controller = Controller(figure3_network())
        result = controller.request(simple_request())
        source = result.platform
        target = "platform2" if source != "platform2" else "platform3"
        migration = controller.migrate("mod", target)
        assert migration, migration.reason
        assert migration.source == source
        assert migration.target == target
        record = controller.deployed["mod"]
        assert record.platform == target
        assert (target, record.address) in controller.flow_rules
        assert (source, record.address) not in controller.flow_rules
        assert 0.1 <= migration.downtime_seconds <= 0.5

    def test_requirements_reverified_on_migration(self):
        controller = Controller(figure3_network())
        request = simple_request()
        request = ClientRequest(
            client_id="alice",
            role=ROLE_CLIENT,
            config_source=request.config_source,
            requirements="reach from internet udp"
                         " -> mod:dst:0" if False else
                         "reach from internet udp -> client",
            owned_addresses=(CLIENT_ADDR,),
            module_name="mod",
        )
        result = controller.request(request)
        assert result.accepted, result.reason
        # platform1 is unreachable from the internet, so an
        # internet-reach requirement cannot hold there...
        # (the requirement above reaches the client regardless of the
        # module, so migration succeeds; now use a module-specific one)
        controller.kill("mod")
        request2 = ClientRequest(
            client_id="alice",
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() -> IPFilter(allow udp)
                -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> dst :: ToNetfront();
            """,
            requirements="reach from internet udp -> mod:dst:0",
            owned_addresses=(CLIENT_ADDR,),
            module_name="mod",
        )
        result = controller.request(request2)
        assert result.accepted, result.reason
        assert result.platform == "platform3"
        migration = controller.migrate("mod", "platform1")
        assert not migration
        # Rolled back: still on platform3, old flow rule intact.
        record = controller.deployed["mod"]
        assert record.platform == "platform3"
        assert ("platform3", record.address) in controller.flow_rules

    def test_migrate_unknown_module(self):
        controller = Controller(figure3_network())
        assert not controller.migrate("ghost", "platform2")

    def test_migrate_to_same_platform_rejected(self):
        controller = Controller(figure3_network())
        result = controller.request(simple_request())
        migration = controller.migrate("mod", result.platform)
        assert not migration
        assert "already on" in migration.reason

    def test_migrate_to_full_platform_rejected(self):
        net = figure3_network()
        # Rebuild platform2 with zero capacity is awkward; instead use
        # the capacity attribute directly.
        net.node("platform2").capacity = 0
        controller = Controller(net)
        result = controller.request(simple_request())
        if result.platform == "platform2":  # pragma: no cover
            pytest.skip("unexpected placement")
        migration = controller.migrate("mod", "platform2")
        assert not migration
        assert "capacity" in migration.reason

    def test_migrate_to_non_platform_rejected(self):
        controller = Controller(figure3_network())
        controller.request(simple_request())
        assert not controller.migrate("mod", "r1")
        assert not controller.migrate("mod", "nonexistent")
