"""Admission fast path: fingerprints, verdict cache, incremental
compilation, route-recompute elision, and the address-leak fix."""

import pytest

from repro.click.config import parse_config
from repro.common.addr import parse_ip
from repro.common.errors import ConfigError
from repro.core import (
    CachingSecurityAnalyzer,
    ClientRequest,
    Controller,
    ROLE_CLIENT,
    ROLE_THIRD_PARTY,
)
from repro.core.cache import LRUCache
from repro.core.security import addresses_to_whitelist
from repro.netmodel.examples import figure3_network, CLIENT_ADDR
from repro.netmodel.symgraph import NetworkCompiler
from repro.policy import parse_requirement
from repro.symexec.reachability import ReachabilityChecker

BATCHER = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""

ALLOW_CONFIG = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> IPFilter(allow udp)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0) -> out;
"""

SANDBOX_CONFIG = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> IPDecap() -> out;
"""


def batcher_request(module_name, client="mobile1", requirements=None):
    return ClientRequest(
        client_id=client,
        role=ROLE_CLIENT,
        config_source=BATCHER,
        requirements=(
            "reach from internet udp -> client dst port 1500"
            if requirements is None else requirements
        ),
        owned_addresses=(CLIENT_ADDR,),
        module_name=module_name,
    )


class TestFingerprint:
    def test_instance_names_do_not_matter(self):
        a = parse_config(
            "alpha :: FromNetfront(); omega :: ToNetfront();"
            " alpha -> IPFilter(allow udp) -> omega;"
        )
        b = parse_config(
            "inn :: FromNetfront(); out :: ToNetfront();"
            " inn -> IPFilter(allow udp) -> out;"
        )
        assert a.fingerprint() == b.fingerprint()

    def test_declaration_order_does_not_matter(self):
        a = parse_config(
            "s :: FromNetfront(); d :: ToNetfront(); s -> d;"
        )
        b = parse_config(
            "d :: ToNetfront(); s :: FromNetfront(); s -> d;"
        )
        assert a.fingerprint() == b.fingerprint()

    def test_arguments_matter(self):
        a = parse_config(
            "s :: FromNetfront(); s -> IPFilter(allow udp)"
            " -> d :: ToNetfront();"
        )
        b = parse_config(
            "s :: FromNetfront(); s -> IPFilter(allow tcp)"
            " -> d :: ToNetfront();"
        )
        assert a.fingerprint() != b.fingerprint()

    def test_wiring_matters(self):
        a = parse_config("""
            src :: FromNetfront();
            m :: ToNetfront(); c :: ToNetfront();
            i :: DPI(sig);
            src -> i; i[0] -> m; i[1] -> c;
        """)
        b = parse_config("""
            src :: FromNetfront();
            m :: ToNetfront(); c :: ToNetfront();
            i :: DPI(sig);
            src -> i; i[1] -> m; i[0] -> c;
        """)
        # Same elements, outputs swapped between structurally distinct
        # sinks... which here are symmetric ToNetfronts, so allow equal;
        # a genuinely different wiring (chain vs branch) must differ:
        c = parse_config("""
            src :: FromNetfront();
            m :: ToNetfront(); c :: ToNetfront();
            i :: DPI(sig);
            src -> i; i[0] -> m;
        """)
        assert a.fingerprint() != c.fingerprint()
        assert b.fingerprint() != c.fingerprint()

    def test_same_class_distinct_positions_separate(self):
        chain = parse_config(
            "s :: FromNetfront(); s -> Counter -> Counter"
            " -> IPFilter(allow udp) -> d :: ToNetfront();"
        )
        swapped = parse_config(
            "s :: FromNetfront(); s -> Counter -> IPFilter(allow udp)"
            " -> Counter -> d :: ToNetfront();"
        )
        assert chain.fingerprint() != swapped.fingerprint()


class TestLRUCache:
    def test_eviction_and_stats(self):
        cache = LRUCache(capacity=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # refreshes "a"
        cache.put("c", 3)           # evicts "b"
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert cache.get("c") == 3
        assert cache.stats.evictions == 1
        assert cache.stats.misses == 1
        assert cache.stats.hits == 3


class TestVerdictCache:
    def test_warm_hit_equals_cold_run(self):
        config = parse_config(ALLOW_CONFIG)
        whitelist = addresses_to_whitelist([CLIENT_ADDR])
        plain = CachingSecurityAnalyzer().analyzer
        cold = plain.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.10"),
            whitelist=whitelist,
        )
        caching = CachingSecurityAnalyzer()
        first = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.10"),
            whitelist=whitelist,
        )
        warm = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.10"),
            whitelist=whitelist,
        )
        for report in (first, warm):
            assert report.verdict == cold.verdict
            assert report.egress_flows == cold.egress_flows
            assert [str(f) for f in report.findings] == [
                str(f) for f in cold.findings
            ]
        assert caching.stats.hits >= 1

    def test_allow_prepass_covers_every_address(self):
        config = parse_config(ALLOW_CONFIG)
        whitelist = addresses_to_whitelist([CLIENT_ADDR])
        caching = CachingSecurityAnalyzer()
        r1 = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("10.1.0.2"), whitelist=whitelist,
        )
        r2 = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.77"), whitelist=whitelist,
        )
        assert r1.verdict == r2.verdict == "allow"
        # One computed analysis serves both candidate addresses.
        assert caching.stats.misses == 1
        assert caching.stats.hits == 1

    def test_non_allow_verdicts_keyed_per_address(self):
        config = parse_config(SANDBOX_CONFIG)
        caching = CachingSecurityAnalyzer()
        r1 = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("10.1.0.2"),
        )
        # base pre-pass + per-address entry
        assert caching.stats.misses == 2
        r2 = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("10.1.0.3"),
        )
        assert caching.stats.misses == 3   # new address -> new entry
        r3 = caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("10.1.0.2"),
        )
        assert r1.verdict == r2.verdict == r3.verdict == "sandbox"
        assert caching.stats.hits >= 2     # base + address hit

    def test_role_and_whitelist_change_miss(self):
        config = parse_config(ALLOW_CONFIG)
        caching = CachingSecurityAnalyzer()
        caching.analyze(
            config, ROLE_THIRD_PARTY,
            whitelist=addresses_to_whitelist([CLIENT_ADDR]),
        )
        misses = caching.stats.misses
        caching.analyze(
            config, ROLE_CLIENT,
            whitelist=addresses_to_whitelist([CLIENT_ADDR]),
        )
        assert caching.stats.misses > misses
        misses = caching.stats.misses
        caching.analyze(
            config, ROLE_THIRD_PARTY,
            whitelist=addresses_to_whitelist(["198.51.100.9"]),
        )
        assert caching.stats.misses > misses

    def test_structural_config_change_misses(self):
        caching = CachingSecurityAnalyzer()
        caching.analyze(parse_config(ALLOW_CONFIG), ROLE_THIRD_PARTY)
        misses = caching.stats.misses
        changed = ALLOW_CONFIG.replace("allow udp", "allow tcp")
        caching.analyze(parse_config(changed), ROLE_THIRD_PARTY)
        assert caching.stats.misses > misses


class TestIncrementalCompile:
    def _reach_results(self, compiled, requirement):
        exploration = compiled.explore_from(
            requirement.origin.node, requirement.origin.flow
        )
        checker = ReachabilityChecker(compiled.resolver)
        return checker.check(requirement, exploration), exploration

    def test_trial_graft_equals_full_recompile(self):
        requirement = parse_requirement(
            "reach from internet udp"
            " -> batcher:dst:0"
        )
        config = parse_config(BATCHER)

        # Full recompile of the trial snapshot.
        net_full = figure3_network()
        platform = net_full.node("platform3")
        address = platform.allocate_address()
        platform.deploy("batcher", address, config,
                        proto=17, port=1500)
        net_full.compute_routes()
        full = NetworkCompiler(net_full).compile()
        full_result, full_exp = self._reach_results(full, requirement)

        # Incremental graft onto a pre-compiled base.
        net_inc = figure3_network()
        base = NetworkCompiler(net_inc).compile()
        nodes_before = set(base.graph.models)
        edges_before = dict(base.graph.edges)
        platform2 = net_inc.node("platform3")
        address2 = platform2.allocate_address()
        assert address2 == address
        platform2.deploy("batcher", address2, config,
                         proto=17, port=1500)
        with base.with_trial_module(
            "platform3", "batcher", address2, config,
        ) as compiled:
            inc_result, inc_exp = self._reach_results(
                compiled, requirement
            )
            assert "batcher/dst" in compiled.graph.models
        platform2.undeploy("batcher")

        assert bool(full_result) == bool(inc_result)
        assert full_result.satisfied and inc_result.satisfied
        # Same deliveries at the same sinks.
        full_sinks = sorted(
            f.trace[-1].node for f in full_exp.delivered
        )
        inc_sinks = sorted(
            f.trace[-1].node for f in inc_exp.delivered
        )
        assert full_sinks == inc_sinks
        # The graft is fully undone: the base model is untouched.
        assert set(base.graph.models) == nodes_before
        assert base.graph.edges == edges_before
        assert "batcher" not in base.modules

    def test_trial_graft_rejects_duplicate_module(self):
        net = figure3_network()
        base = NetworkCompiler(net).compile()
        config = parse_config(BATCHER)
        platform = net.node("platform3")
        address = platform.allocate_address()
        platform.deploy("m1", address, config)
        with base.with_trial_module("platform3", "m1", address, config):
            pass  # fine once
        from repro.common.errors import VerificationError
        base.modules["m1"] = ("platform3", address, config)
        with pytest.raises(VerificationError):
            with base.with_trial_module(
                "platform3", "m1", address, config,
            ):
                pass


class TestRouteElision:
    def test_recompute_skipped_when_nothing_changed(self):
        net = figure3_network()
        net.compute_routes()
        table = net.node("r1").table
        net.compute_routes()
        assert net.node("r1").table is table  # elided

    def test_module_deploy_does_not_recompute(self):
        net = figure3_network()
        net.compute_routes()
        table = net.node("r1").table
        platform = net.node("platform3")
        address = platform.allocate_address()
        platform.deploy("m", address, parse_config(BATCHER))
        net.compute_routes()
        assert net.node("r1").table is table  # platform-internal only

    def test_manual_link_surgery_recomputes(self):
        net = figure3_network()
        net.compute_routes()
        table = net.node("r1").table
        # Out-of-band surgery (no unlink() call): drop platform3's link.
        p3 = net.node("platform3")
        r1 = net.node("r1")
        (port, (peer, peer_port)), = list(p3.ports.items())
        del p3.ports[port]
        del r1.ports[peer_port]
        net.links = [
            l for l in net.links if "platform3" not in (l.a, l.b)
        ]
        net.compute_routes()
        # The signature diff (not any unlink() call) forced a rebuild.
        assert net.node("r1").table is not table

    def test_force_recomputes(self):
        net = figure3_network()
        net.compute_routes()
        table = net.node("r1").table
        net.compute_routes(force=True)
        assert net.node("r1").table is not table


class TestModelCache:
    def test_compiled_model_reused_within_epoch(self):
        controller = Controller(figure3_network())
        first = controller._ensure_compiled()
        assert controller._ensure_compiled() is first

    def test_epoch_bump_invalidates(self):
        controller = Controller(figure3_network())
        first = controller._ensure_compiled()
        controller.network.bump_epoch()
        assert controller._ensure_compiled() is not first

    def test_commit_invalidates(self):
        controller = Controller(figure3_network())
        first = controller._ensure_compiled()
        result = controller.request(batcher_request("batcher"))
        assert result.accepted
        second = controller._ensure_compiled()
        assert second is not first
        assert "batcher" in second.modules

    def test_explicit_invalidate(self):
        controller = Controller(figure3_network())
        first = controller._ensure_compiled()
        controller.invalidate_model_cache()
        assert controller._ensure_compiled() is not first


class TestAddressLeak:
    def test_rejected_everywhere_leaves_pools_intact(self):
        net = figure3_network()
        controller = Controller(net)
        platforms = net.platforms()
        before = {
            p.name: p.free_address_count() for p in platforms
        }
        probes = {}
        for p in platforms:
            addr = p.allocate_address()
            p.release_address(addr)
            probes[p.name] = addr
        # The module only passes UDP, so demanding TCP reach *through
        # the module* fails on every candidate platform.
        result = controller.request(batcher_request(
            "nogood",
            requirements="reach from internet tcp -> nogood:dst:0",
        ))
        assert not result.accepted
        after = {p.name: p.free_address_count() for p in platforms}
        assert after == before
        for p in platforms:
            addr = p.allocate_address()
            assert addr == probes[p.name]
            p.release_address(addr)

    def test_security_reject_releases_address(self):
        net = figure3_network()
        controller = Controller(net)
        platform = net.platforms()[0]
        before = platform.free_address_count()
        result = controller.request(ClientRequest(
            client_id="attacker",
            role=ROLE_THIRD_PARTY,
            # Source rewritten to a fixed foreign address: spoofing.
            config_source="""
                src :: FromNetfront();
                out :: ToNetfront();
                src -> IPRewriter(pattern 9.9.9.9 - - - 0 0) -> out;
            """,
            module_name="spoofer",
        ))
        assert not result.accepted
        assert "security rules violated" in result.reason
        assert all(
            p.free_address_count() == before
            for p in net.platforms()
            if p.name == platform.name
        )

    def test_dry_run_releases_address(self):
        net = figure3_network()
        controller = Controller(net)
        before = {
            p.name: p.free_address_count() for p in net.platforms()
        }
        result = controller.request(
            batcher_request("trial"), dry_run=True
        )
        assert result.accepted
        after = {
            p.name: p.free_address_count() for p in net.platforms()
        }
        assert after == before

    def test_release_address_guards(self):
        net = figure3_network()
        platform = net.node("platform3")
        address = platform.allocate_address()
        platform.deploy("m", address, parse_config(BATCHER))
        with pytest.raises(ConfigError):
            platform.release_address(address)  # still deployed
        with pytest.raises(ConfigError):
            platform.release_address(parse_ip("8.8.8.8"))  # not pool

    def test_failed_migration_releases_target_address(self):
        net = figure3_network()
        controller = Controller(net)
        result = controller.request(batcher_request("batcher"))
        assert result.accepted and result.platform == "platform3"
        target = net.node("platform1")
        before = target.free_address_count()
        # The private platforms cannot satisfy the internet-reach
        # requirement (the fw denies inbound), so migration rolls back.
        moved = controller.migrate("batcher", "platform1")
        assert not moved
        assert target.free_address_count() == before


class TestDecisionEquivalence:
    """Fast-path decisions must be byte-for-byte those of a
    from-scratch controller."""

    REQUESTS = (
        ("accept", dict(
            role=ROLE_CLIENT, config_source=BATCHER,
            requirements="reach from internet udp"
                         " -> client dst port 1500",
            owned_addresses=(CLIENT_ADDR,),
        )),
        ("sandbox", dict(
            role=ROLE_THIRD_PARTY, config_source=SANDBOX_CONFIG,
            owned_addresses=(CLIENT_ADDR,),
        )),
        ("reject", dict(
            role=ROLE_THIRD_PARTY,
            config_source="""
                src :: FromNetfront();
                out :: ToNetfront();
                src -> IPRewriter(pattern 9.9.9.9 - - - 0 0) -> out;
            """,
        )),
        ("unsatisfiable", dict(
            role=ROLE_CLIENT, config_source=BATCHER,
            requirements="reach from internet tcp -> client",
            owned_addresses=(CLIENT_ADDR,),
        )),
    )

    def test_same_decisions_as_from_scratch_controller(self):
        fast = Controller(figure3_network(), fast_path=True)
        slow = Controller(figure3_network(), fast_path=False)
        for index, (label, kwargs) in enumerate(self.REQUESTS):
            fast_result = fast.request(ClientRequest(
                client_id="c%d" % index,
                module_name="mod-%s" % label, **kwargs
            ))
            slow_result = slow.request(ClientRequest(
                client_id="c%d" % index,
                module_name="mod-%s" % label, **kwargs
            ))
            assert fast_result.accepted == slow_result.accepted, label
            assert fast_result.platform == slow_result.platform, label
            assert fast_result.address == slow_result.address, label
            assert fast_result.sandboxed == slow_result.sandboxed, label
            assert fast_result.reason == slow_result.reason, label
            fast_reach = [
                (str(r.requirement), r.satisfied, r.reason)
                for r in fast_result.reach_results
            ]
            slow_reach = [
                (str(r.requirement), r.satisfied, r.reason)
                for r in slow_result.reach_results
            ]
            assert fast_reach == slow_reach, label
            if fast_result.security or slow_result.security:
                assert str(fast_result.security) == str(
                    slow_result.security
                ), label

    def test_repeated_identical_requests_stay_equivalent(self):
        fast = Controller(figure3_network(), fast_path=True)
        slow = Controller(figure3_network(), fast_path=False)
        for index in range(3):
            kwargs = dict(self.REQUESTS[0][1])
            fast_result = fast.request(ClientRequest(
                client_id="rep%d" % index,
                module_name="rep-mod%d" % index, **kwargs
            ))
            slow_result = slow.request(ClientRequest(
                client_id="rep%d" % index,
                module_name="rep-mod%d" % index, **kwargs
            ))
            assert fast_result.accepted and slow_result.accepted
            assert fast_result.address == slow_result.address
            assert fast_result.platform == slow_result.platform
