"""Kill-path edge cases: idempotence, missing nodes, races.

``Controller.kill`` and ``Federation.kill`` are the client-facing
teardown calls; they must stay safe under exactly the conditions a
failure model produces -- unknown names, repeated calls, topology
nodes that vanished, kills racing migrations.
"""

import pytest

from repro.core.controller import Controller
from repro.core.federation import Federation
from repro.resilience.chaos import _module_request, chaos_network
from repro.resilience.invariants import collect_violations


def deployed_world(module="m1", client="mobile1"):
    net = chaos_network()
    controller = Controller(net)
    result = controller.request(
        _module_request(client, module), pinned_platform="pa"
    )
    assert result, result.reason
    return net, controller


class TestControllerKill:
    def test_kill_releases_every_resource(self):
        net, controller = deployed_world()
        pa = net.node("pa")
        address = controller.deployed["m1"].address
        assert controller.kill("m1")
        assert "m1" not in controller.deployed
        assert pa.modules == {}
        assert pa.outstanding_addresses() == 0
        assert ("pa", address) not in controller.flow_rules
        assert address not in controller.client_addresses.get(
            "mobile1", set()
        )
        assert collect_violations(controller) == []

    def test_unknown_module_returns_false(self):
        _, controller = deployed_world()
        assert controller.kill("ghost") is False

    def test_double_kill_is_idempotent(self):
        net, controller = deployed_world()
        pa = net.node("pa")
        assert controller.kill("m1") is True
        released = pa.released_total
        assert controller.kill("m1") is False
        # The second call must not double-release the address.
        assert pa.released_total == released
        assert collect_violations(controller) == []

    def test_kill_survives_a_missing_platform_node(self):
        net, controller = deployed_world()
        # The box was physically decommissioned: links torn down,
        # node dropped from the topology.
        net.unlink("r1", "pa")
        del net.nodes["pa"]
        assert controller.kill("m1") is True
        assert "m1" not in controller.deployed
        assert controller.flow_rules == {}

    def test_kill_stops_billing(self):
        net, controller = deployed_world()
        controller.kill("m1")
        open_ids = controller.ledger.open_module_ids()
        assert "m1" not in open_ids

    def test_kill_after_migration_releases_the_new_address(self):
        net, controller = deployed_world()
        result = controller.migrate("m1", "pb")
        assert result.migrated
        assert controller.kill("m1")
        for name in ("pa", "pb"):
            platform = net.node(name)
            assert platform.outstanding_addresses() == 0
            assert platform.modules == {}
        assert collect_violations(controller) == []

    def test_migration_after_kill_is_a_clean_denial(self):
        net, controller = deployed_world()
        controller.kill("m1")
        result = controller.migrate("m1", "pb")
        assert not result.migrated
        assert result.reason == "unknown module"

    def test_module_name_is_reusable_after_kill(self):
        net, controller = deployed_world()
        controller.kill("m1")
        result = controller.request(
            _module_request("mobile1", "m1"), pinned_platform="pb"
        )
        assert result, result.reason
        assert controller.deployed["m1"].platform == "pb"


class TestFederationKill:
    def federation(self):
        net, controller = deployed_world()
        fed = Federation()
        fed.add_operator("op-a", controller, region=(50.0, 8.0))
        fed.placements["m1"] = "op-a"
        return fed, controller

    def test_kill_reaches_the_owning_operator(self):
        fed, controller = self.federation()
        assert fed.kill("m1") is True
        assert "m1" not in controller.deployed
        assert fed.deployments() == {}

    def test_unknown_module_returns_false(self):
        fed, _ = self.federation()
        assert fed.kill("ghost") is False

    def test_double_kill_returns_false(self):
        fed, _ = self.federation()
        assert fed.kill("m1") is True
        assert fed.kill("m1") is False

    def test_deregistered_operator_is_tolerated(self):
        fed, _ = self.federation()
        del fed.operators["op-a"]
        assert fed.kill("m1") is False
        # The stale placement is dropped either way.
        assert fed.deployments() == {}

    def test_dead_operator_does_not_break_deploy_near(self):
        fed, controller = self.federation()

        class DeadController:
            def request(self, request):
                raise ConnectionError("operator unreachable")

        fed.add_operator("op-dead", DeadController(), region=(50.0, 8.1))
        result = fed.deploy_near(
            _module_request("mobile2", "m2"), location=(50.0, 8.1)
        )
        # The nearest operator is dead; the next one accepts.
        assert result
        assert result.operator == "op-a"
        assert controller.deployed["m2"].platform in ("pa", "pb", "pc")
