"""Stateful property-based fuzzing of the controller.

Random interleavings of request / kill / migrate must preserve the
controller's bookkeeping invariants: flow rules mirror deployments,
every module sits on exactly one platform, assigned addresses are
unique, and platform tables never leak rules for dead modules.
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)
from hypothesis import strategies as st

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR
from repro.netmodel.topology import Network


def small_network():
    net = Network("fuzz")
    net.add_internet()
    net.add_router("r")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_platform("p0", "192.0.2.0/24", capacity=3)
    net.add_platform("p1", "198.51.100.0/24", capacity=3)
    net.link("internet", "r")
    net.link("r", "clients")
    net.link("r", "p0")
    net.link("r", "p1")
    net.compute_routes()
    return net


def make_request(name, stateful=False):
    body = (
        "FromNetfront() -> FlowMeter() "
        if stateful
        else "FromNetfront() -> IPFilter(allow udp) "
    )
    return ClientRequest(
        client_id="fuzzer",
        role=ROLE_CLIENT,
        config_source=body
        + "-> IPRewriter(pattern - - 172.16.15.133 - 0 0) "
          "-> ToNetfront();",
        owned_addresses=(CLIENT_ADDR,),
        module_name=name,
    )


class ControllerMachine(RuleBasedStateMachine):
    @initialize()
    def setup(self):
        self.controller = Controller(small_network())
        self.counter = 0
        self.live = set()

    @rule(stateful=st.booleans())
    def deploy(self, stateful):
        name = "m%d" % self.counter
        self.counter += 1
        result = self.controller.request(
            make_request(name, stateful=stateful)
        )
        if result.accepted:
            self.live.add(name)
        else:
            assert name not in self.controller.deployed

    @rule(index=st.integers(min_value=0, max_value=30))
    def kill(self, index):
        name = "m%d" % index
        killed = self.controller.kill(name)
        assert killed == (name in self.live)
        self.live.discard(name)

    @rule(index=st.integers(min_value=0, max_value=30),
          target_platform=st.sampled_from(["p0", "p1"]))
    def migrate(self, index, target_platform):
        name = "m%d" % index
        outcome = self.controller.migrate(name, target_platform)
        if name not in self.live:
            assert not outcome
        if outcome:
            assert self.controller.deployed[name].platform == (
                target_platform
            )

    # -- invariants ------------------------------------------------------
    @invariant()
    def flow_rules_mirror_deployments(self):
        controller = getattr(self, "controller", None)
        if controller is None:
            return
        expected = {
            (record.platform, record.address): module_id
            for module_id, record in controller.deployed.items()
        }
        assert controller.flow_rules == expected

    @invariant()
    def platforms_consistent(self):
        controller = getattr(self, "controller", None)
        if controller is None:
            return
        placed = {}
        for platform in controller.network.platforms():
            for module_id, (address, _cfg) in platform.modules.items():
                assert module_id not in placed, "module on 2 platforms"
                placed[module_id] = (platform.name, address)
            # The switch table only steers live modules.
            cookies = {r.cookie for r in platform.flow_table.rules}
            assert cookies == set(platform.modules)
            assert platform.capacity is None or (
                len(platform.modules) <= platform.capacity
            )
        assert set(placed) == set(controller.deployed)
        for module_id, record in controller.deployed.items():
            assert placed[module_id] == (
                record.platform, record.address,
            )

    @invariant()
    def addresses_unique(self):
        controller = getattr(self, "controller", None)
        if controller is None:
            return
        addresses = [
            record.address for record in controller.deployed.values()
        ]
        assert len(addresses) == len(set(addresses))


ControllerFuzz = ControllerMachine.TestCase
ControllerFuzz.settings = settings(
    max_examples=25, stateful_step_count=12, deadline=None
)
