"""Tests for the parallel controller pool (Section 4.3)."""

import pytest

from repro.core import ClientRequest, ROLE_CLIENT
from repro.core.cluster import ControllerPool
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.netmodel.topology import Network


def request(name, client="alice"):
    return ClientRequest(
        client_id=client,
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        owned_addresses=(CLIENT_ADDR,),
        module_name=name,
    )


def constrained_network(capacity=1):
    net = Network()
    net.add_internet()
    net.add_router("r")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_platform("p", "192.0.2.0/24", capacity=capacity)
    net.link("internet", "r")
    net.link("r", "clients")
    net.link("r", "p")
    net.compute_routes()
    return net


class TestAffinity:
    def test_same_client_same_worker(self):
        pool = ControllerPool(figure3_network(), n_workers=4)
        assert pool.worker_for("alice") == pool.worker_for("alice")

    def test_clients_spread_across_workers(self):
        pool = ControllerPool(figure3_network(), n_workers=4)
        workers = {
            pool.worker_for("client-%d" % i) for i in range(64)
        }
        assert len(workers) == 4

    def test_per_client_ordering_preserved(self):
        pool = ControllerPool(figure3_network(), n_workers=4)
        t1 = pool.submit(request("first", client="alice"))
        t2 = pool.submit(request("first", client="alice"))  # dup name
        pool.process_all()
        assert pool.result(t1).accepted
        # The second request from the same client sees the first one's
        # effect (duplicate module name) -- ordering held.
        assert not pool.result(t2).accepted
        assert "already in use" in pool.result(t2).reason


class TestThroughput:
    def test_all_requests_decided(self):
        pool = ControllerPool(figure3_network(), n_workers=4)
        tickets = [
            pool.submit(request("mod%d" % i, client="client-%d" % i))
            for i in range(12)
        ]
        results = pool.process_all()
        assert len(results) == 12
        assert all(results[t].accepted for t in tickets)
        assert pool.pending() == 0

    def test_parallel_speedup_modeled(self):
        pool = ControllerPool(figure3_network(), n_workers=4)
        for i in range(16):
            pool.submit(request("mod%d" % i, client="client-%d" % i))
        pool.process_all()
        # With 4 workers the modeled wall clock beats serial.
        assert pool.stats.speedup > 1.5
        assert pool.stats.verifications >= 16


class TestConflicts:
    def test_simultaneous_commits_conflict_once(self):
        # Two clients (on different workers), one capacity slot: both
        # verify against the same snapshot, one commit must lose.
        pool = ControllerPool(constrained_network(capacity=1),
                              n_workers=8)
        a, b = "alice", "bob"
        assert pool.worker_for(a) != pool.worker_for(b), (
            "test requires distinct workers; adjust client names"
        )
        t1 = pool.submit(request("m-a", client=a))
        t2 = pool.submit(request("m-b", client=b))
        results = pool.process_all()
        accepted = [t for t in (t1, t2) if results[t].accepted]
        assert len(accepted) == 1
        assert pool.stats.conflicts >= 1
        loser = (set((t1, t2)) - set(accepted)).pop()
        assert "capacity" in results[loser].reason

    def test_no_conflicts_with_enough_capacity(self):
        pool = ControllerPool(constrained_network(capacity=10),
                              n_workers=8)
        for i in range(6):
            pool.submit(request("m%d" % i, client="client-%d" % i))
        results = pool.process_all()
        assert all(r.accepted for r in results.values())
        assert pool.stats.conflicts == 0

    def test_gives_up_after_max_attempts(self):
        pool = ControllerPool(
            constrained_network(capacity=0), n_workers=2,
            max_attempts=3,
        )
        t = pool.submit(request("m"))
        results = pool.process_all()
        assert not results[t].accepted

    def test_invalid_worker_count(self):
        with pytest.raises(ValueError):
            ControllerPool(figure3_network(), n_workers=0)
