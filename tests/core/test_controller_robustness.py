"""Failure-injection tests for the controller's trial placement."""

import pytest

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network


def request_with_requirements(requirements):
    return ClientRequest(
        client_id="x",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        requirements=requirements,
        owned_addresses=(CLIENT_ADDR,),
        module_name="m",
    )


def assert_clean(controller):
    for platform in controller.network.platforms():
        assert platform.modules == {}, platform.name
        assert len(platform.flow_table) == 0
    assert controller.deployed == {}
    assert controller.flow_rules == {}


class TestVerificationFailures:
    def test_unknown_node_reference_denied_cleanly(self, controller):
        result = controller.request(request_with_requirements(
            "reach from internet -> NoSuchNode"
        ))
        assert not result.accepted
        assert "verification failed" in result.reason
        assert_clean(controller)

    def test_unknown_element_ref_is_just_unsatisfied(self, controller):
        # A module:element ref that matches nothing is a normal denial
        # (no flow arrives there), not an error.
        result = controller.request(request_with_requirements(
            "reach from internet -> m:ghost:0"
        ))
        assert not result.accepted
        assert_clean(controller)

    def test_retry_after_failure_works(self, controller):
        bad = controller.request(request_with_requirements(
            "reach from internet -> NoSuchNode"
        ))
        assert not bad.accepted
        good = controller.request(request_with_requirements(
            "reach from internet udp -> client"
        ))
        assert good.accepted, good.reason

    def test_state_clean_after_reach_denial(self, controller):
        result = controller.request(request_with_requirements(
            "reach from internet tcp dst port 1 -> client dst port 2"
        ))
        assert not result.accepted
        assert_clean(controller)

    def test_state_clean_after_security_reject(self, controller):
        result = controller.request(ClientRequest(
            client_id="x",
            config_source="FromNetfront() -> SetIPSrc(6.6.6.6) "
                          "-> ToNetfront();",
            module_name="m",
        ))
        assert not result.accepted
        assert_clean(controller)

    def test_dry_run_leaves_no_trace(self, controller):
        result = controller.request(
            request_with_requirements(
                "reach from internet udp -> client"
            ),
            dry_run=True,
        )
        assert result.accepted
        assert_clean(controller)


class TestAddressExhaustion:
    def test_exhausted_pool_denies_instead_of_crashing(self):
        from repro.netmodel.topology import Network

        net = Network()
        net.add_internet()
        net.add_router("r")
        net.add_client_subnet("clients", "172.16.0.0/16")
        # A /30 pool: network 192.0.2.0, usable .1-.3 (3 addresses).
        net.add_platform("p", "192.0.2.0/30")
        net.link("internet", "r")
        net.link("r", "clients")
        net.link("r", "p")
        net.compute_routes()
        controller = Controller(net)
        accepted = 0
        for index in range(6):
            result = controller.request(ClientRequest(
                client_id="x",
                role=ROLE_CLIENT,
                config_source="""
                    FromNetfront() -> IPFilter(allow udp)
                    -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                    -> ToNetfront();
                """,
                owned_addresses=(CLIENT_ADDR,),
                module_name="m%d" % index,
            ))
            accepted += bool(result.accepted)
            if not result.accepted:
                assert "pool exhausted" in result.reason or (
                    "requirements" in result.reason
                )
        assert 1 <= accepted <= 3
