"""Tests for retry policies and the synchronous retry wrapper."""

import pytest

from repro.common.errors import RetryExhaustedError, TransientFaultError
from repro.obs import Observability
from repro.resilience.faults import FaultInjector
from repro.resilience.retry import (
    DEFAULT_LIFECYCLE_POLICY,
    RetryPolicy,
    call_with_retries,
)


class TestRetryPolicy:
    def test_backoff_grows_exponentially_then_caps(self):
        policy = RetryPolicy(
            max_attempts=5, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=0.3, jitter=0.0,
        )
        delays = [policy.backoff_s(n) for n in (1, 2, 3, 4)]
        assert delays == [0.1, 0.2, 0.3, 0.3]

    def test_jitter_stays_within_the_fraction(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.1,
                             max_delay_s=10.0)
        rng = FaultInjector(seed=3).rng
        for _ in range(100):
            delay = policy.backoff_s(1, rng=rng)
            assert 0.9 <= delay <= 1.1

    def test_no_rng_means_no_jitter(self):
        policy = RetryPolicy(base_delay_s=1.0, jitter=0.5,
                             max_delay_s=10.0)
        assert policy.backoff_s(1) == 1.0

    def test_failure_number_is_one_based(self):
        with pytest.raises(ValueError):
            DEFAULT_LIFECYCLE_POLICY.backoff_s(0)

    @pytest.mark.parametrize("kwargs", [
        dict(max_attempts=0),
        dict(base_delay_s=-1.0),
        dict(jitter=1.5),
    ])
    def test_invalid_knobs_rejected(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)


class TestCallWithRetries:
    def test_success_passes_the_result_through(self):
        assert call_with_retries(lambda: 42) == 42

    def test_transient_failures_are_absorbed(self):
        attempts = []

        def flaky():
            attempts.append(True)
            if len(attempts) < 3:
                raise TransientFaultError("flake")
            return "ok"

        policy = RetryPolicy(max_attempts=3, base_delay_s=0.0)
        assert call_with_retries(flaky, policy=policy) == "ok"
        assert len(attempts) == 3

    def test_exhaustion_raises_typed_error_from_the_last_fault(self):
        def always():
            raise TransientFaultError("still broken")

        policy = RetryPolicy(max_attempts=2, base_delay_s=0.0)
        with pytest.raises(RetryExhaustedError) as info:
            call_with_retries(always, op="boot", policy=policy)
        assert "boot failed after 2 attempt(s)" in str(info.value)
        assert isinstance(info.value.__cause__, TransientFaultError)

    def test_permanent_errors_propagate_immediately(self):
        attempts = []

        def broken():
            attempts.append(True)
            raise RuntimeError("not a fault")

        with pytest.raises(RuntimeError):
            call_with_retries(broken)
        assert len(attempts) == 1

    def test_injector_vetoes_consume_attempts(self):
        injector = FaultInjector()
        injector.fail_next("boot", times=2)
        attempts = []
        result = call_with_retries(
            lambda: attempts.append(True) or "up",
            op="boot", injector=injector,
            policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
        )
        assert result == "up"
        assert len(attempts) == 1  # two attempts were vetoed pre-call

    def test_deadline_bounds_total_elapsed_time(self):
        clock = {"now": 0.0}

        def tick_and_fail():
            clock["now"] += 10.0
            raise TransientFaultError("slow flake")

        policy = RetryPolicy(
            max_attempts=10, base_delay_s=0.0, deadline_s=15.0,
        )
        with pytest.raises(RetryExhaustedError):
            call_with_retries(
                tick_and_fail, policy=policy,
                clock=lambda: clock["now"],
            )
        # 10 s elapsed after failure 1 (< deadline), 20 s after
        # failure 2 (>= deadline): exactly two attempts ran.
        assert clock["now"] == 20.0

    def test_sleep_receives_each_backoff_delay(self):
        slept = []
        failures = []

        def flaky():
            failures.append(True)
            if len(failures) < 3:
                raise TransientFaultError("flake")
            return True

        policy = RetryPolicy(
            max_attempts=3, base_delay_s=0.1, multiplier=2.0,
            max_delay_s=1.0, jitter=0.0,
        )
        call_with_retries(flaky, policy=policy, sleep=slept.append)
        assert slept == [pytest.approx(0.1), pytest.approx(0.2)]

    def test_retry_metrics_are_recorded(self):
        obs = Observability()
        injector = FaultInjector()
        injector.fail_next("boot", times=5)
        with pytest.raises(RetryExhaustedError):
            call_with_retries(
                lambda: True, op="boot", injector=injector,
                policy=RetryPolicy(max_attempts=3, base_delay_s=0.0),
                obs=obs,
            )
        text = obs.to_prometheus()
        assert 'resilience_retries_total{op="boot"} 2' in text
        assert 'resilience_retry_exhausted_total{op="boot"} 1' in text


class TestSuspendResumeRetries:
    """The synchronous facade path through the retry layer."""

    def _platform(self, injector):
        from repro.platform.clickos import PlatformSim

        sim = PlatformSim(
            injector=injector,
            retry_policy=RetryPolicy(max_attempts=3,
                                     base_delay_s=0.01, jitter=0.0),
        )
        sim.register_client("c", stateful=True)
        sim.force_boot("c")
        return sim

    def test_transient_suspend_fault_absorbed(self):
        injector = FaultInjector(seed=1)
        sim = self._platform(injector)
        injector.fail_next("suspend-resume", times=1)
        s_time, r_time = sim.suspend_resume_cycle("c")
        assert s_time > 0 and r_time > 0
        assert sim.switch.client_vms["c"].state == "running"
        assert len(injector.injected) == 1

    def test_exhausted_suspend_faults_surface(self):
        injector = FaultInjector(seed=1)
        sim = self._platform(injector)
        injector.fail_next("suspend-resume", times=3)
        with pytest.raises(RetryExhaustedError):
            sim.suspend_resume_cycle("c")
        # The VM was never touched: every attempt was vetoed upfront.
        assert sim.switch.client_vms["c"].state == "running"

    def test_backoff_advances_the_simulated_clock(self):
        injector = FaultInjector(seed=1)
        sim = self._platform(injector)
        injector.fail_next("suspend-resume", times=2)
        before = sim.loop.now
        sim.suspend_resume_cycle("c")
        # Two backoffs (0.01 + 0.02) plus the cycle itself.
        assert sim.loop.now - before > 0.03
