"""Tests for the write-ahead deployment journal and replay views."""

import json

import pytest

from repro.obs import Observability
from repro.resilience.journal import (
    DeploymentJournal,
    NULL_JOURNAL,
    OP_DEPLOY,
    OP_KILL,
    OP_MIGRATE,
    OP_REGISTER,
    PHASE_COMMIT,
    PHASE_INTENT,
)


def deploy_pair(journal, module_id, platform="pa", address=1,
                client_id="alice", **extra):
    journal.append(OP_DEPLOY, PHASE_INTENT, module_id=module_id,
                   client_id=client_id, platform=platform,
                   address=address, **extra)
    return journal.append(OP_DEPLOY, PHASE_COMMIT, module_id=module_id,
                          client_id=client_id, platform=platform,
                          address=address, **extra)


class TestAppend:
    def test_seq_is_monotonic_from_one(self):
        journal = DeploymentJournal()
        records = [
            journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m%d" % i)
            for i in range(3)
        ]
        assert [r.seq for r in records] == [1, 2, 3]
        assert len(journal) == 3

    def test_records_counter_by_op_and_phase(self):
        obs = Observability()
        journal = DeploymentJournal(obs=obs)
        deploy_pair(journal, "m1")
        text = obs.to_prometheus()
        assert (
            'resilience_journal_records_total'
            '{op="deploy",phase="intent"} 1' in text
        )
        assert (
            'resilience_journal_records_total'
            '{op="deploy",phase="commit"} 1' in text
        )


class TestPendingIntents:
    def test_unmatched_intent_is_pending(self):
        journal = DeploymentJournal()
        deploy_pair(journal, "m1")
        journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m2")
        pending = journal.pending_intents()
        assert [r.module_id for r in pending] == ["m2"]

    def test_commit_matches_the_latest_intent(self):
        journal = DeploymentJournal()
        journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m1")
        journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m1")
        journal.append(OP_DEPLOY, PHASE_COMMIT, module_id="m1")
        assert len(journal.pending_intents()) == 1

    def test_ops_match_independently(self):
        journal = DeploymentJournal()
        journal.append(OP_MIGRATE, PHASE_INTENT, module_id="m1")
        journal.append(OP_KILL, PHASE_COMMIT, module_id="m1")
        assert [r.op for r in journal.pending_intents()] == [OP_MIGRATE]


class TestLiveState:
    def test_deploy_kill_migrate_fold(self):
        journal = DeploymentJournal()
        deploy_pair(journal, "m1", platform="pa", address=10,
                    proto=17, port=1500)
        deploy_pair(journal, "m2", platform="pa", address=11)
        journal.append(OP_KILL, PHASE_COMMIT, module_id="m2")
        journal.append(OP_MIGRATE, PHASE_COMMIT, module_id="m1",
                       platform="pb", address=20,
                       source="pa", source_address=10)
        live = journal.live_state()
        assert sorted(live) == ["m1"]
        assert live["m1"].platform == "pb"
        assert live["m1"].address == 20
        # Steering and identity carry over from the original deploy.
        assert live["m1"].proto == 17 and live["m1"].port == 1500
        assert live["m1"].client_id == "alice"

    def test_migration_without_a_base_deploy_is_ignored(self):
        journal = DeploymentJournal()
        journal.append(OP_MIGRATE, PHASE_COMMIT, module_id="ghost",
                       platform="pb", address=5)
        assert journal.live_state() == {}

    def test_uncommitted_intents_do_not_appear(self):
        journal = DeploymentJournal()
        journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m1",
                       platform="pa", address=10)
        assert journal.live_state() == {}


class TestViews:
    def test_registered_addresses_in_order(self):
        journal = DeploymentJournal()
        journal.append(OP_REGISTER, PHASE_COMMIT,
                       client_id="alice", address=7)
        journal.append(OP_REGISTER, PHASE_COMMIT,
                       client_id="alice", address=9)
        journal.append(OP_REGISTER, PHASE_COMMIT,
                       client_id="bob", address=8)
        assert journal.registered_addresses() == {
            "alice": [7, 9], "bob": [8],
        }

    def test_deploys_seen_counts_intents(self):
        journal = DeploymentJournal()
        deploy_pair(journal, "m1")
        journal.append(OP_DEPLOY, PHASE_INTENT, module_id="m2")
        journal.append(OP_KILL, PHASE_INTENT, module_id="m1")
        assert journal.deploys_seen() == 2


class TestJsonl:
    def test_one_json_object_per_record(self):
        journal = DeploymentJournal()
        deploy_pair(journal, "m1", proto=17, port=1500)
        lines = journal.to_jsonl().splitlines()
        assert len(lines) == 2
        first = json.loads(lines[0])
        assert first["op"] == "deploy" and first["phase"] == "intent"
        assert first["module_id"] == "m1"
        assert first["proto"] == 17 and first["port"] == 1500

    def test_config_reduced_to_fingerprint(self):
        from repro.click.config import parse_config

        config = parse_config(
            "FromNetfront() -> dst :: ToNetfront();"
        )
        journal = DeploymentJournal()
        deploy_pair(journal, "m1", config=config)
        record = json.loads(journal.to_jsonl().splitlines()[0])
        assert record["config_fingerprint"]
        assert "config" not in record

    def test_migrations_carry_provenance(self):
        journal = DeploymentJournal()
        journal.append(OP_MIGRATE, PHASE_COMMIT, module_id="m1",
                       platform="pb", address=20,
                       source="pa", source_address=10)
        record = json.loads(journal.to_jsonl())
        assert record["source"] == "pa"
        assert record["source_address"] == 10


class TestNullJournal:
    def test_append_is_a_noop(self):
        assert NULL_JOURNAL.append(OP_DEPLOY, PHASE_INTENT,
                                   module_id="m") is None

    def test_controller_without_journal_uses_the_null_object(self):
        from repro.core.controller import Controller
        from repro.resilience.chaos import chaos_network

        controller = Controller(chaos_network())
        assert controller.journal is NULL_JOURNAL
