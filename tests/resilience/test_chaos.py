"""Tests for the chaos harness: scenarios, determinism, reports."""

import pytest

from repro.obs import Observability
from repro.resilience.chaos import (
    SCENARIOS,
    ChaosReport,
    chaos_network,
    run_all,
    run_scenario,
)
from repro.resilience.invariants import collect_violations


class TestScenarioMatrix:
    @pytest.mark.parametrize("name", sorted(SCENARIOS))
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_scenario_passes(self, name, seed):
        report = run_scenario(name, seed=seed)
        assert report.passed, report.failures
        assert report.scenario == name
        assert report.seed == seed
        assert report.events

    def test_unknown_scenario_rejected(self):
        with pytest.raises(ValueError) as info:
            run_scenario("heat-death")
        assert "platform-crash" in str(info.value)

    def test_run_all_covers_every_scenario_and_seed(self):
        reports = run_all(seeds=(1, 2))
        assert len(reports) == 2 * len(SCENARIOS)
        assert all(r.passed for r in reports)
        assert {r.scenario for r in reports} == set(SCENARIOS)


class TestScenarioProperties:
    def test_platform_crash_reports_mttr(self):
        report = run_scenario("platform-crash", seed=1)
        assert report.mttr_s is not None
        # Detection (0.5-1.0 s of probe latency) plus the modeled
        # suspend/transfer/resume downtime: well under the gate.
        assert 0.1 < report.mttr_s < 3.0
        assert sorted(report.evacuated) == ["m1", "m2"]

    def test_boot_storm_actually_injects_faults(self):
        report = run_scenario("boot-timeout-storm", seed=1)
        assert report.faults_injected > 0

    def test_restart_replay_reaches_digest_equality(self):
        report = run_scenario("controller-restart", seed=1)
        assert report.digest_equal is True

    def test_scenarios_are_deterministic_per_seed(self):
        first = run_scenario("boot-timeout-storm", seed=5)
        second = run_scenario("boot-timeout-storm", seed=5)
        assert first.events == second.events
        assert first.faults_injected == second.faults_injected

    def test_chaos_emits_resilience_metrics(self):
        obs = Observability()
        run_scenario("platform-crash", seed=1, obs=obs)
        text = obs.to_prometheus()
        assert "resilience_health_checks_total" in text
        assert "resilience_failovers_total" in text
        assert "resilience_recovery_seconds_count 1" in text


class TestChaosReport:
    def test_summary_line(self):
        report = ChaosReport(scenario="x", seed=3, events=["e"],
                             mttr_s=0.5)
        assert report.passed
        line = report.summary()
        assert line.startswith("PASS x seed=3")
        assert "mttr=0.500s" in line

    def test_failures_flip_the_verdict(self):
        report = ChaosReport(scenario="x", seed=0,
                             failures=["boom"])
        assert not report.passed
        assert report.summary().startswith("FAIL")


class TestChaosNetwork:
    def test_topology_shape(self):
        net = chaos_network()
        assert {p.name for p in net.platforms()} == {"pa", "pb", "pc"}
        assert all(p.capacity == 4 for p in net.platforms())

    def test_fresh_network_has_no_violations(self):
        from repro.core.controller import Controller

        assert collect_violations(Controller(chaos_network())) == []
