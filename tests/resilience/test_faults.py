"""Tests for the fault injector and the fault-plan DSL."""

import pytest

from repro.common.errors import (
    FaultTimeoutError,
    SimulationError,
    TransientFaultError,
)
from repro.obs import Observability
from repro.resilience.faults import (
    Fault,
    FaultInjector,
    FaultPlan,
    KIND_CRASH,
    KIND_TIMEOUT,
    PlannedFault,
)
from repro.sim.events import EventLoop


class TestFault:
    def test_crash_surfaces_as_transient_fault(self):
        err = Fault(op="boot", kind=KIND_CRASH).to_error()
        assert isinstance(err, TransientFaultError)
        assert "boot" in str(err)

    def test_timeout_surfaces_as_timeout_error(self):
        err = Fault(op="resume", kind=KIND_TIMEOUT, target="pa").to_error()
        assert isinstance(err, FaultTimeoutError)
        assert "pa" in str(err)


class TestFaultInjector:
    def test_clean_injector_never_fails(self):
        injector = FaultInjector(seed=1)
        assert all(
            injector.draw("boot") is None for _ in range(100)
        )
        assert injector.injected == []

    def test_fail_next_queues_in_order(self):
        injector = FaultInjector()
        injector.fail_next("boot", times=2, kind=KIND_TIMEOUT,
                           delay_s=0.5)
        first = injector.draw("boot")
        second = injector.draw("boot")
        assert first.kind == KIND_TIMEOUT and first.delay_s == 0.5
        assert second is not None
        assert injector.draw("boot") is None
        assert len(injector.injected) == 2

    def test_target_specific_faults_fire_before_wildcards(self):
        injector = FaultInjector()
        injector.fail_next("boot")  # wildcard
        injector.fail_next("boot", target="pa")
        fault = injector.draw("boot", target="pa")
        assert fault.target == "pa"
        # The wildcard still waits for the next attempt (any target).
        assert injector.draw("boot", target="pb") is not None
        assert injector.draw("boot", target="pa") is None

    def test_wildcard_fault_adopts_the_caller_target(self):
        injector = FaultInjector()
        injector.fail_next("boot")
        fault = injector.draw("boot", target="pc")
        assert fault.target == "pc"

    def test_rate_is_deterministic_per_seed(self):
        def sequence(seed):
            injector = FaultInjector(seed=seed)
            injector.set_rate("boot", 0.5)
            return [
                injector.draw("boot") is not None for _ in range(50)
            ]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)
        assert any(sequence(7)) and not all(sequence(7))

    def test_clear_rate_stops_probabilistic_failures(self):
        injector = FaultInjector(seed=0)
        injector.set_rate("boot", 1.0)
        assert injector.draw("boot") is not None
        injector.clear_rate("boot")
        assert injector.draw("boot") is None

    def test_raise_for_raises_the_typed_error(self):
        injector = FaultInjector()
        injector.fail_next("suspend-resume", kind=KIND_TIMEOUT)
        with pytest.raises(FaultTimeoutError):
            injector.raise_for("suspend-resume")
        injector.raise_for("suspend-resume")  # queue drained: no-op

    def test_bad_kind_and_probability_rejected(self):
        injector = FaultInjector()
        with pytest.raises(SimulationError):
            injector.fail_next("boot", kind="gremlin")
        with pytest.raises(SimulationError):
            injector.set_rate("boot", 1.5)
        with pytest.raises(SimulationError):
            injector.set_rate("boot", 0.5, kind="gremlin")

    def test_injected_faults_are_counted_in_metrics(self):
        obs = Observability()
        injector = FaultInjector(obs=obs)
        injector.fail_next("boot", times=2)
        injector.draw("boot")
        injector.draw("boot")
        text = obs.to_prometheus()
        assert (
            'resilience_faults_injected_total'
            '{op="boot",kind="crash"} 2' in text
        )


class TestFaultPlan:
    def test_parse_entries_sorted_by_time(self):
        plan = FaultPlan.parse(
            "# a comment\n"
            "at 7.0 flap-link r1 pb 2.0\n"
            "\n"
            "at 5.0 crash-platform pa\n"
            "at 3.0 fail boot pa times=2 kind=timeout delay=1.0\n"
        )
        assert [e.at for e in plan] == [3.0, 5.0, 7.0]
        assert len(plan) == 3
        fail = plan.entries[0]
        assert fail.action == "fail"
        assert fail.args == ("boot", "pa")
        assert fail.option("times") == "2"
        assert fail.option("kind") == "timeout"
        assert fail.option("missing", "x") == "x"

    def test_str_round_trips_through_parse(self):
        text = "at 3 fail boot pa times=2 kind=timeout delay=1.0\n"
        plan = FaultPlan.parse(text)
        again = FaultPlan.parse(str(plan.entries[0]))
        assert again.entries == plan.entries

    @pytest.mark.parametrize("bad", [
        "crash-platform pa",          # missing 'at <time>'
        "at soon crash-platform pa",  # bad timestamp
        "at 1.0 explode pa",          # unknown action
        "at 1.0",                     # no action
    ])
    def test_parse_rejects_malformed_lines(self, bad):
        with pytest.raises(SimulationError):
            FaultPlan.parse(bad)

    def test_schedule_applies_entries_at_their_times(self):
        loop = EventLoop()
        seen = []
        plan = FaultPlan.parse(
            "at 2.0 crash-platform pa\nat 1.0 link-down r1 pb\n"
        )
        plan.schedule(loop, lambda e: seen.append((loop.now, e.action)))
        loop.run()
        assert seen == [(1.0, "link-down"), (2.0, "crash-platform")]

    def test_past_entries_are_clamped_to_now(self):
        loop = EventLoop()
        loop.run_until(5.0)
        seen = []
        plan = FaultPlan([PlannedFault(at=1.0, action="link-up",
                                       args=("a", "b"))])
        plan.schedule(loop, lambda e: seen.append(loop.now))
        loop.run()
        assert seen == [5.0]
