"""Tests for the health monitor and the failover engine."""

import pytest

from repro.core.controller import Controller
from repro.obs import Observability
from repro.resilience.chaos import _module_request, chaos_network
from repro.resilience.failover import FailoverEngine
from repro.resilience.health import HealthMonitor
from repro.resilience.invariants import collect_violations
from repro.sim.events import EventLoop


class FlakyProbe:
    def __init__(self, pattern):
        self.pattern = list(pattern)
        self.calls = 0

    def __call__(self):
        value = self.pattern[min(self.calls, len(self.pattern) - 1)]
        self.calls += 1
        return value


class TestHealthMonitor:
    def monitor(self, **kwargs):
        loop = EventLoop()
        kwargs.setdefault("check_interval_s", 1.0)
        kwargs.setdefault("miss_threshold", 3)
        return loop, HealthMonitor(loop, **kwargs)

    def test_death_declared_after_consecutive_misses(self):
        loop, monitor = self.monitor()
        deaths = []
        monitor.watch("pa", lambda: False)
        monitor.on_failure(lambda name, at: deaths.append((name, at)))
        monitor.start()
        loop.run_until(2.5)
        assert deaths == []  # only two misses so far
        loop.run_until(3.5)
        assert deaths == [("pa", 3.0)]
        loop.run_until(10.0)
        assert len(deaths) == 1  # declared once, not per tick

    def test_intermittent_misses_reset_the_streak(self):
        loop, monitor = self.monitor()
        deaths = []
        monitor.watch("pa", FlakyProbe([False, False, True] * 10))
        monitor.on_failure(lambda name, at: deaths.append(name))
        monitor.start()
        loop.run_until(20.0)
        assert deaths == []

    def test_recovery_callback_fires_when_probe_returns(self):
        loop, monitor = self.monitor(miss_threshold=1)
        probe = FlakyProbe([False, True])
        events = []
        monitor.watch("pa", probe)
        monitor.on_failure(lambda name, at: events.append(("down", at)))
        monitor.on_recovery(lambda name, at: events.append(("up", at)))
        monitor.start()
        loop.run_until(2.5)
        assert events == [("down", 1.0), ("up", 2.0)]
        assert monitor.status()["pa"]["alive"] is True

    def test_probe_exception_counts_as_a_miss(self):
        loop, monitor = self.monitor(miss_threshold=2)

        def broken():
            raise RuntimeError("probe transport died")

        deaths = []
        monitor.watch("pa", broken)
        monitor.on_failure(lambda name, at: deaths.append(name))
        monitor.start()
        loop.run_until(5.0)
        assert deaths == ["pa"]

    def test_stop_cancels_the_periodic_check(self):
        loop, monitor = self.monitor()
        probe = FlakyProbe([True])
        monitor.watch("pa", probe)
        monitor.start()
        loop.run_until(3.0)
        fired = probe.calls
        monitor.stop()
        loop.run_until(10.0)
        assert probe.calls == fired

    def test_down_gauge_tracks_declared_deaths(self):
        obs = Observability()
        loop = EventLoop()
        monitor = HealthMonitor(loop, check_interval_s=1.0,
                                miss_threshold=1, obs=obs)
        monitor.watch("pa", FlakyProbe([False, True]))
        monitor.start()
        loop.run_until(1.0)
        assert "resilience_platforms_down 1" in obs.to_prometheus()
        loop.run_until(2.0)
        assert "resilience_platforms_down 0" in obs.to_prometheus()

    def test_miss_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthMonitor(EventLoop(), miss_threshold=0)


def world_with_modules(obs=None):
    """A controller on the chaos topology with two modules on pa."""
    net = chaos_network()
    loop = EventLoop()
    controller = Controller(net, clock=lambda: loop.now, obs=obs)
    for client, module in (("mobile1", "m1"), ("mobile2", "m2")):
        result = controller.request(
            _module_request(client, module), pinned_platform="pa"
        )
        assert result, result.reason
    return net, loop, controller


class TestFailoverEngine:
    def test_evacuates_every_module_off_the_dead_platform(self):
        net, loop, controller = world_with_modules()
        loop.run_until(4.0)
        engine = FailoverEngine(controller, clock=lambda: loop.now)
        report = engine.handle_platform_failure("pa", failed_at=3.0)
        assert sorted(report.evacuated) == ["m1", "m2"]
        assert report.stranded == []
        assert report.complete
        assert not net.node("pa").up
        for module in ("m1", "m2"):
            assert controller.deployed[module].platform != "pa"
        assert collect_violations(controller) == []
        assert engine.reports == [report]

    def test_mttr_is_detection_latency_plus_slowest_downtime(self):
        net, loop, controller = world_with_modules()
        loop.run_until(4.0)
        engine = FailoverEngine(controller, clock=lambda: loop.now)
        report = engine.handle_platform_failure("pa", failed_at=3.0)
        assert report.failed_at == 3.0
        assert report.detected_at == 4.0
        assert report.max_downtime_s > 0
        assert report.mttr_s == pytest.approx(
            1.0 + report.max_downtime_s
        )

    def test_no_surviving_target_leaves_modules_stranded(self):
        net, loop, controller = world_with_modules()
        net.unlink("r1", "pb")
        net.unlink("r1", "pc")
        engine = FailoverEngine(controller, clock=lambda: loop.now)
        report = engine.handle_platform_failure("pa")
        assert sorted(report.stranded) == ["m1", "m2"]
        assert not report.complete

    def test_outcome_metrics(self):
        obs = Observability()
        net, loop, controller = world_with_modules(obs=obs)
        engine = FailoverEngine(controller, clock=lambda: loop.now,
                                obs=obs)
        engine.handle_platform_failure("pa")
        text = obs.to_prometheus()
        assert (
            'resilience_failovers_total{outcome="complete"} 1' in text
        )
        assert "resilience_modules_evacuated_total 2" in text
        assert "resilience_recovery_seconds_count 1" in text

    def test_unknown_platform_is_a_degraded_noop(self):
        net, loop, controller = world_with_modules()
        engine = FailoverEngine(controller, clock=lambda: loop.now)
        report = engine.handle_platform_failure("ghost")
        assert report.evacuated == []
        assert report.stranded == []
        # Nothing moved; the real platforms are untouched.
        assert controller.deployed["m1"].platform == "pa"

    def test_attach_wires_monitor_failures_to_the_engine(self):
        net, loop, controller = world_with_modules()
        monitor = HealthMonitor(loop, check_interval_s=0.5,
                                miss_threshold=2)
        down = {"pa": False}
        monitor.watch("pa", lambda: not down["pa"])
        engine = FailoverEngine(controller, clock=lambda: loop.now)
        engine.attach(monitor)
        monitor.start()
        down["pa"] = True
        loop.run_until(5.0)
        assert len(engine.reports) == 1
        assert sorted(engine.reports[0].evacuated) == ["m1", "m2"]
