"""The complete Section 4.5/8 pipeline over the concrete network.

Controller verification -> deployment -> flow rules -> real packets
crossing the topology (with link latencies) -> module batching ->
delivery at the client -> radio energy: every subsystem in one test.
"""

import pytest

from repro.click import Packet, UDP
from repro.common.addr import parse_ip
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.netmodel.forwarding import ForwardingPlane
from repro.sim.energy import RadioEnergyModel


@pytest.fixture
def deployed():
    network = figure3_network()
    # Give the access links realistic latencies.
    for wire in network.links:
        wire.latency_s = 0.002
    controller = Controller(network)
    result = controller.request(ClientRequest(
        client_id="mobile1",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        """,
        requirements=(
            "reach from internet udp -> batcher:dst:0"
            " -> client dst port 1500 const proto && dst port && payload"
        ),
        owned_addresses=(CLIENT_ADDR,),
        module_name="batcher",
        listen="udp 1500",
    ))
    assert result.accepted, result.reason
    return controller, result


def notification(address, seq):
    return Packet(
        ip_src=parse_ip("203.0.113.9"),
        ip_dst=address,
        ip_proto=UDP,
        tp_src=30000 + seq,
        tp_dst=1500,
        length=1024,
        payload=b"push-%d" % seq,
    )


class TestFullPipeline:
    def test_notifications_batched_across_the_network(self, deployed):
        controller, result = deployed
        plane = ForwardingPlane(controller.network)
        address = parse_ip(result.address)
        # Ten notifications over two batching windows.
        for seq in range(6):
            at = 10.0 + seq * 20.0  # t = 10..110
            assert plane.send(
                "internet", notification(address, seq), at=at
            ) == []  # buffered inside the module
        first_batch = plane.run_until(120.0)
        for seq in range(6, 10):
            at = 10.0 + seq * 20.0  # t = 130..190
            assert plane.send(
                "internet", notification(address, seq), at=at
            ) == []
        second_batch = plane.run_until(240.0)
        assert len(first_batch) + len(second_batch) == 10
        # The first window buffered everything sent before t=120.
        assert len(first_batch) == 6
        for delivery in first_batch + second_batch:
            assert delivery.node == "clients"
            packet = delivery.packet
            assert packet["ip_dst"] == parse_ip(CLIENT_ADDR)
            assert packet["tp_dst"] == 1500          # const dst port
            assert packet["ip_proto"] == UDP          # const proto
            assert packet["payload"].startswith(b"push-")  # const data
            # Link latencies accumulated along the delivery path.
            assert delivery.time > 120.0

    def test_off_listen_traffic_never_reaches_module(self, deployed):
        controller, result = deployed
        plane = ForwardingPlane(controller.network)
        address = parse_ip(result.address)
        wrong_port = notification(address, 0)
        wrong_port["tp_dst"] = 9999
        assert plane.send("internet", wrong_port) == []
        assert plane.run_until(240.0) == []
        assert plane.stats.dropped_by_platform == 1

    def test_energy_from_observed_deliveries(self, deployed):
        controller, result = deployed
        plane = ForwardingPlane(controller.network)
        address = parse_ip(result.address)
        for seq in range(30):
            plane.send(
                "internet", notification(address, seq),
                at=float(seq * 30 + 1),
            )
        deliveries = plane.run_until(1000.0)
        bursts = {}
        for delivery in deliveries:
            key = round(delivery.time)
            bursts[key] = bursts.get(key, 0) + 1
        schedule = sorted(bursts.items())
        power = RadioEnergyModel().average_power_mw(schedule, 1000.0)
        unbatched = RadioEnergyModel().average_power_mw(
            [(float(seq * 30 + 1), 1) for seq in range(30)], 1000.0
        )
        assert power < unbatched  # batching saved energy, end to end

    def test_kill_restores_the_network(self, deployed):
        controller, result = deployed
        assert controller.kill("batcher")
        plane = ForwardingPlane(controller.network)
        address = parse_ip(result.address)
        assert plane.send("internet", notification(address, 0)) == []
        assert plane.stats.dropped_by_platform == 1
