"""Tests for IPv4 address and prefix arithmetic."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.addr import (
    MAX_IP,
    format_ip,
    format_prefix,
    parse_ip,
    parse_prefix,
    prefix_contains,
    prefix_mask,
    prefix_range,
)
from repro.common.errors import ConfigError


class TestParseIp:
    def test_basic(self):
        assert parse_ip("10.0.0.1") == (10 << 24) + 1

    def test_zero(self):
        assert parse_ip("0.0.0.0") == 0

    def test_broadcast(self):
        assert parse_ip("255.255.255.255") == MAX_IP

    def test_whitespace_tolerated(self):
        assert parse_ip("  192.168.1.1 ") == parse_ip("192.168.1.1")

    @pytest.mark.parametrize(
        "bad",
        ["256.0.0.1", "1.2.3", "1.2.3.4.5", "a.b.c.d", "", "1..2.3"],
    )
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_ip(bad)


class TestFormatIp:
    def test_basic(self):
        assert format_ip(parse_ip("172.16.15.133")) == "172.16.15.133"

    def test_out_of_range(self):
        with pytest.raises(ConfigError):
            format_ip(MAX_IP + 1)
        with pytest.raises(ConfigError):
            format_ip(-1)

    @given(st.integers(min_value=0, max_value=MAX_IP))
    def test_roundtrip(self, value):
        assert parse_ip(format_ip(value)) == value


class TestPrefix:
    def test_parse_clears_host_bits(self):
        network, plen = parse_prefix("10.1.2.3/8")
        assert network == parse_ip("10.0.0.0")
        assert plen == 8

    def test_bare_address_is_slash_32(self):
        assert parse_prefix("1.2.3.4") == (parse_ip("1.2.3.4"), 32)

    def test_slash_zero(self):
        assert parse_prefix("0.0.0.0/0") == (0, 0)

    @pytest.mark.parametrize("bad", ["1.2.3.4/33", "1.2.3.4/x", "1.2/8"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ConfigError):
            parse_prefix(bad)

    def test_mask(self):
        assert prefix_mask(0) == 0
        assert prefix_mask(32) == MAX_IP
        assert prefix_mask(24) == parse_ip("255.255.255.0")

    def test_mask_out_of_range(self):
        with pytest.raises(ConfigError):
            prefix_mask(33)

    def test_range(self):
        low, high = prefix_range(parse_ip("192.168.1.0"), 24)
        assert low == parse_ip("192.168.1.0")
        assert high == parse_ip("192.168.1.255")

    def test_contains(self):
        net = parse_ip("10.0.0.0")
        assert prefix_contains(net, 8, parse_ip("10.255.0.1"))
        assert not prefix_contains(net, 8, parse_ip("11.0.0.0"))

    def test_format(self):
        assert format_prefix(parse_ip("10.0.0.0"), 8) == "10.0.0.0/8"

    @given(
        st.integers(min_value=0, max_value=MAX_IP),
        st.integers(min_value=0, max_value=32),
    )
    def test_range_brackets_members(self, addr, plen):
        network, _ = parse_prefix("%s/%d" % (format_ip(addr), plen))
        low, high = prefix_range(network, plen)
        assert low <= addr <= high
        assert prefix_contains(network, plen, addr)
