"""Tests for IntervalSet, including model-based hypothesis properties."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.common.intervals import FULL_RANGE, IntervalSet

# Small universe so hypothesis can compare against Python sets exactly.
small_values = st.integers(min_value=0, max_value=60)
small_intervals = st.lists(
    st.tuples(small_values, small_values).map(
        lambda pair: (min(pair), max(pair))
    ),
    max_size=6,
)


def as_set(interval_set: IntervalSet) -> set:
    return set(interval_set)


class TestConstruction:
    def test_empty(self):
        assert IntervalSet.empty().is_empty()
        assert not IntervalSet.empty()

    def test_single(self):
        s = IntervalSet.single(5)
        assert 5 in s
        assert 4 not in s
        assert s.size() == 1
        assert s.singleton_value() == 5

    def test_from_interval_inverted_is_empty(self):
        assert IntervalSet.from_interval(5, 3).is_empty()

    def test_normalization_merges_adjacent(self):
        s = IntervalSet([(1, 3), (4, 6)])
        assert s.intervals == ((1, 6),)

    def test_normalization_merges_overlap(self):
        s = IntervalSet([(1, 5), (3, 9)])
        assert s.intervals == ((1, 9),)

    def test_from_values(self):
        s = IntervalSet.from_values([3, 1, 2, 9])
        assert s.intervals == ((1, 3), (9, 9))


class TestQueries:
    def test_contains_binary_search(self):
        s = IntervalSet([(0, 10), (20, 30), (40, 50)])
        for v in (0, 10, 25, 50):
            assert v in s
        for v in (11, 19, 31, 39, 51, -1):
            assert v not in s

    def test_min_max(self):
        s = IntervalSet([(5, 9), (1, 2)])
        assert s.min() == 1
        assert s.max() == 9

    def test_min_of_empty_raises(self):
        with pytest.raises(ValueError):
            IntervalSet.empty().min()

    def test_singleton_value_none_for_bigger(self):
        assert IntervalSet.from_interval(1, 2).singleton_value() is None

    def test_iteration(self):
        assert list(IntervalSet([(1, 3), (7, 7)])) == [1, 2, 3, 7]


class TestAlgebra:
    def test_intersect(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(5, 15)])
        assert (a & b).intervals == ((5, 10),)

    def test_union(self):
        a = IntervalSet([(0, 3)])
        b = IntervalSet([(10, 12)])
        assert (a | b).intervals == ((0, 3), (10, 12))

    def test_subtract_splits(self):
        a = IntervalSet([(0, 10)])
        b = IntervalSet([(4, 6)])
        assert (a - b).intervals == ((0, 3), (7, 10))

    def test_complement(self):
        s = IntervalSet([(2, 3)])
        assert s.complement(0, 5).intervals == ((0, 1), (4, 5))

    def test_subset(self):
        assert IntervalSet([(2, 3)]).is_subset(IntervalSet([(0, 9)]))
        assert not IntervalSet([(2, 11)]).is_subset(IntervalSet([(0, 9)]))
        assert IntervalSet.empty().is_subset(IntervalSet.empty())

    def test_overlaps(self):
        assert IntervalSet([(0, 5)]).overlaps(IntervalSet([(5, 9)]))
        assert not IntervalSet([(0, 4)]).overlaps(IntervalSet([(5, 9)]))

    def test_full_range_size(self):
        assert FULL_RANGE.size() == 1 << 32

    def test_equality_and_hash(self):
        a = IntervalSet([(1, 3), (4, 5)])
        b = IntervalSet([(1, 5)])
        assert a == b
        assert hash(a) == hash(b)


class TestModelBased:
    """Every operation must agree with Python's set semantics."""

    @given(small_intervals, small_intervals)
    def test_intersect_matches_sets(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert as_set(a & b) == as_set(a) & as_set(b)

    @given(small_intervals, small_intervals)
    def test_union_matches_sets(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert as_set(a | b) == as_set(a) | as_set(b)

    @given(small_intervals, small_intervals)
    def test_subtract_matches_sets(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert as_set(a - b) == as_set(a) - as_set(b)

    @given(small_intervals)
    def test_size_matches(self, xs):
        s = IntervalSet(xs)
        assert s.size() == len(as_set(s))

    @given(small_intervals, small_intervals)
    def test_subset_matches(self, xs, ys):
        a, b = IntervalSet(xs), IntervalSet(ys)
        assert a.is_subset(b) == as_set(a).issubset(as_set(b))

    @given(small_intervals)
    def test_intervals_are_normalized(self, xs):
        s = IntervalSet(xs)
        for (a1, b1), (a2, b2) in zip(s.intervals, s.intervals[1:]):
            assert b1 + 1 < a2  # disjoint and non-adjacent
            assert a1 <= b1 and a2 <= b2
