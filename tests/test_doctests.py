"""Runs the library's docstring examples as tests.

Keeps every ``>>>`` snippet in the API documentation honest.
"""

import doctest

import pytest

import repro.click.config
import repro.click.packet
import repro.common.addr
import repro.common.intervals
import repro.policy.flowspec
import repro.policy.grammar

MODULES = [
    repro.common.addr,
    repro.common.intervals,
    repro.click.packet,
    repro.click.config,
    repro.policy.flowspec,
    repro.policy.grammar,
]


@pytest.mark.parametrize(
    "module", MODULES, ids=lambda m: m.__name__
)
def test_module_doctests(module):
    outcome = doctest.testmod(module, verbose=False)
    assert outcome.failed == 0, "%d doctest failure(s) in %s" % (
        outcome.failed, module.__name__,
    )
    assert outcome.attempted > 0, (
        "no doctests found in %s" % (module.__name__,)
    )
