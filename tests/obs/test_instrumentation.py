"""Tests for the instrumented layers: runtime, controller, platform.

The Click runtime has two instrumentation strategies (deferred segment
accounting on join-free graphs, exact per-hop counting otherwise); both
are exercised here, along with the guarantee that an uninstrumented
runtime keeps the original hot-path methods untouched.
"""

import pytest

from repro.click import Packet, Runtime, TCP, UDP, parse_config
from repro.click.runtime import Runtime as RuntimeClass
from repro.common.addr import parse_ip
from repro.core import ClientRequest, Controller
from repro.netmodel.examples import figure3_network
from repro.obs import Observability
from repro.platform.orchestrator import PlatformOrchestrator

LINEAR = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> IPFilter(allow udp)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

BUFFERED = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> TimedUnqueue(120, 100) -> out;
"""

TEED = """
    src :: FromNetfront();
    t :: Tee(2);
    a :: ToNetfront();
    b :: ToNetfront();
    src -> t;
    t[0] -> a;
    t[1] -> b;
"""


def udp_packet(**overrides):
    fields = dict(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )
    fields.update(overrides)
    return Packet(**fields)


def element_values(obs, metric):
    snap = obs.metrics.snapshot()
    if metric not in snap:
        return {}
    return {
        key.split("=", 1)[1]: value
        for key, value in snap[metric]["values"].items()
    }


class TestFastPathRuntime:
    def test_per_element_packet_and_byte_counts(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        for _ in range(5):
            runtime.inject("src", udp_packet())
        packets = element_values(obs, "dataplane_packets_total")
        assert packets["src"] == 5
        assert packets["IPFilter@1"] == 5
        assert packets["IPRewriter@2"] == 5
        assert packets["out"] == 5
        nbytes = element_values(obs, "dataplane_bytes_total")
        assert nbytes["out"] == 5 * udp_packet().length

    def test_drops_attributed_to_the_dropping_element(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        runtime.inject("src", udp_packet())
        for _ in range(3):
            runtime.inject("src", udp_packet(ip_proto=TCP))
        drops = element_values(obs, "dataplane_drops_total")
        assert drops["IPFilter@1"] == 3
        packets = element_values(obs, "dataplane_packets_total")
        assert packets["IPFilter@1"] == 4
        assert packets["out"] == 1

    def test_egress_counts_only_at_sinks(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        runtime.inject("src", udp_packet())
        egress = element_values(obs, "dataplane_egress_total")
        assert egress == {"out": 1}
        assert len(runtime.take_output()) == 1

    def test_take_output_preserves_list_identity(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        output = runtime.output
        runtime.inject("src", udp_packet())
        records = runtime.take_output()
        assert len(records) == 1
        assert runtime.output is output
        # The pre-bound append must still land in the visible list.
        runtime.inject("src", udp_packet())
        assert len(runtime.output) == 1

    def test_latency_histogram_spans_buffering_elements(self):
        obs = Observability()
        runtime = Runtime(parse_config(BUFFERED), obs=obs)
        for _ in range(4):
            runtime.inject("src", udp_packet())
        runtime.run(until=130.0)
        snap = obs.metrics.snapshot()
        hist = snap["dataplane_egress_latency_seconds"]["values"][""]
        assert hist["count"] == 4
        # Buffered for one 120 s TimedUnqueue interval each.
        assert hist["sum"] == pytest.approx(480.0)

    def test_synchronous_traversal_records_zero_latency(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        for _ in range(3):
            runtime.inject("src", udp_packet())
        snap = obs.metrics.snapshot()
        hist = snap["dataplane_egress_latency_seconds"]["values"][""]
        assert hist["count"] == 3
        assert hist["sum"] == pytest.approx(0.0)

    def test_queue_depth_gauge_samples_buffered_packets(self):
        obs = Observability()
        runtime = Runtime(parse_config(BUFFERED), obs=obs)
        for _ in range(4):
            runtime.inject("src", udp_packet())
        depth = element_values(obs, "dataplane_queue_depth")
        assert depth["TimedUnqueue@1"] == 4
        runtime.run(until=130.0)
        depth = element_values(obs, "dataplane_queue_depth")
        assert depth["TimedUnqueue@1"] == 0

    def test_unrouted_port_counts_as_unrouted_drop(self):
        obs = Observability()
        runtime = Runtime(
            parse_config("src :: FromNetfront(); src -> Counter();"),
            obs=obs,
        )
        for _ in range(2):
            runtime.inject("src", udp_packet())
        assert runtime.dropped == 2
        snap = obs.metrics.snapshot()
        unrouted = snap["dataplane_unrouted_drops_total"]["values"][""]
        assert unrouted == 2
        # The packet still traversed both elements before falling off.
        packets = element_values(obs, "dataplane_packets_total")
        assert packets["src"] == 2
        assert packets["Counter@1"] == 2

    def test_deferred_injection_is_counted(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        runtime.inject("src", udp_packet(), at=5.0)
        assert element_values(obs, "dataplane_packets_total") \
            .get("src", 0) == 0
        runtime.run(until=10.0)
        packets = element_values(obs, "dataplane_packets_total")
        assert packets["src"] == 1
        assert packets["out"] == 1

    def test_snapshots_are_cumulative_across_flushes(self):
        obs = Observability()
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        runtime.inject("src", udp_packet())
        first = element_values(obs, "dataplane_packets_total")
        runtime.inject("src", udp_packet())
        second = element_values(obs, "dataplane_packets_total")
        assert first["out"] == 1
        assert second["out"] == 2


class TestExactPathRuntime:
    def test_multiplying_elements_fall_back_to_per_hop_counting(self):
        obs = Observability()
        runtime = Runtime(parse_config(TEED), obs=obs)
        for _ in range(3):
            runtime.inject("src", udp_packet())
        packets = element_values(obs, "dataplane_packets_total")
        assert packets["src"] == 3
        assert packets["t"] == 3
        assert packets["a"] == 3
        assert packets["b"] == 3
        egress = element_values(obs, "dataplane_egress_total")
        assert egress == {"a": 3, "b": 3}
        assert len(runtime.output) == 6

    def test_exact_path_latency_and_zero_latency(self):
        obs = Observability()
        runtime = Runtime(parse_config(TEED), obs=obs)
        runtime.inject("src", udp_packet())
        snap = obs.metrics.snapshot()
        hist = snap["dataplane_egress_latency_seconds"]["values"][""]
        assert hist["count"] == 2
        assert hist["sum"] == pytest.approx(0.0)


class TestDisabledRuntime:
    def test_no_obs_keeps_the_original_methods(self):
        runtime = Runtime(parse_config(LINEAR))
        # The fast path swaps per-instance callables in; without
        # observability nothing may shadow the class methods.
        for name in ("inject", "deliver_from", "_push", "_route"):
            assert name not in vars(runtime), name
            assert getattr(type(runtime), name) is \
                getattr(RuntimeClass, name)

    def test_disabled_bundle_keeps_the_original_methods(self):
        runtime = Runtime(
            parse_config(LINEAR), obs=Observability(enabled=False),
        )
        for name in ("inject", "deliver_from", "_push", "_route"):
            assert name not in vars(runtime), name

    def test_disabled_bundle_records_nothing(self):
        obs = Observability(enabled=False)
        runtime = Runtime(parse_config(LINEAR), obs=obs)
        runtime.inject("src", udp_packet())
        assert obs.metrics.snapshot() == {}
        assert len(runtime.output) == 1


class TestControllerInstrumentation:
    def request(self, client_id="mobile1"):
        return ClientRequest(
            client_id=client_id,
            role="client",
            config_source="""
                FromNetfront() ->
                IPFilter(allow udp port 1500) ->
                IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> dst :: ToNetfront();
            """,
            requirements=(
                "reach from internet udp -> client dst port 1500"
            ),
            owned_addresses=("172.16.15.133",),
            module_name="batcher",
        )

    def test_admission_latency_and_outcome_counters(self):
        obs = Observability()
        controller = Controller(figure3_network(), obs=obs)
        result = controller.request(self.request())
        assert result.accepted
        snap = obs.metrics.snapshot()
        hist = snap["controller_admission_seconds"]["values"][""]
        assert hist["count"] == 1
        assert hist["sum"] > 0.0
        outcomes = snap["controller_requests_total"]["values"]
        assert outcomes["outcome=accepted"] == 1

    def test_admission_produces_a_nested_span_tree(self):
        obs = Observability()
        controller = Controller(figure3_network(), obs=obs)
        controller.request(self.request())
        (root,) = obs.tracer.roots
        assert root.name == "admit"
        assert root.attrs["client_id"] == "mobile1"
        assert root.attrs["accepted"] is True
        assert root.find("compile") is not None

    def test_verdict_cache_feeds_the_shared_registry(self):
        obs = Observability()
        controller = Controller(figure3_network(), obs=obs)
        controller.request(self.request("mobile1"))
        snap = obs.metrics.snapshot()
        values = snap["cache_misses_total"]["values"]
        assert values.get("cache=verdict", 0) >= 1

    def test_stats_accessor_works_without_observability(self):
        controller = Controller(figure3_network())
        result = controller.request(self.request())
        assert result.accepted
        stats = controller.stats()
        assert stats["requests"]["accepted"] == 1
        assert stats["deployed_modules"] == 1
        assert "verdict_cache" in stats


class TestPlatformInstrumentation:
    def test_lifecycle_metrics_through_a_boot_and_suspend_cycle(self):
        obs = Observability()
        network = figure3_network()
        controller = Controller(network, obs=obs)
        result = controller.request(ClientRequest(
            client_id="mobile1",
            role="client",
            config_source="""
                FromNetfront() ->
                IPFilter(allow udp port 1500) ->
                IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> dst :: ToNetfront();
            """,
            requirements=(
                "reach from internet udp -> client dst port 1500"
            ),
            owned_addresses=("172.16.15.133",),
            module_name="batcher",
        ))
        assert result.accepted
        orchestrator = PlatformOrchestrator(network, obs=obs)
        orchestrator.provision_all()
        sim = orchestrator.sim_for(result.platform)
        sim.force_boot(result.module_id)
        sim.suspend_resume_cycle(result.module_id)
        snap = obs.metrics.snapshot()
        boots = snap["platform_boots_total"]["values"]
        assert boots["platform=%s" % result.platform] == 1
        suspends = snap["platform_suspends_total"]["values"]
        assert suspends["platform=%s" % result.platform] == 1
        resumes = snap["platform_resumes_total"]["values"]
        assert resumes["platform=%s" % result.platform] == 1
        lifecycle = snap["platform_lifecycle_seconds"]["values"]
        assert lifecycle["op=boot"]["count"] >= 1
        assert lifecycle["op=suspend"]["count"] >= 1
        assert lifecycle["op=resume"]["count"] >= 1
        assert "platform_resident_vms" in snap
        assert "platform_density_vms" in snap or \
            "platform_running_vms" in snap
