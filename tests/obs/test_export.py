"""Tests for the Prometheus, JSON, and table exporters."""

import json

import pytest

from repro.obs import Observability
from repro.obs.export import (
    parse_prometheus,
    render_table,
    snapshot,
    snapshot_json,
    to_prometheus,
)
from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer


def populated_registry() -> MetricsRegistry:
    reg = MetricsRegistry()
    reg.counter("requests_total", "Requests seen").inc(3)
    packets = reg.counter(
        "packets_total", "Per-element packets", labels=("element",),
    )
    packets.labels("src").inc(10)
    packets.labels("dst").inc(7)
    reg.gauge("queue_depth", "Buffered packets").set(4)
    hist = reg.histogram(
        "latency_seconds", "Latency", buckets=(0.1, 1.0),
    )
    hist.observe(0.05)
    hist.observe(0.5)
    hist.observe(5.0)
    return reg


class TestPrometheusText:
    def test_headers_and_samples(self):
        text = to_prometheus(populated_registry())
        assert "# HELP requests_total Requests seen" in text
        assert "# TYPE requests_total counter" in text
        assert "requests_total 3" in text
        assert 'packets_total{element="src"} 10' in text
        assert "# TYPE queue_depth gauge" in text

    def test_histogram_expansion(self):
        text = to_prometheus(populated_registry())
        assert 'latency_seconds_bucket{le="0.1"} 1' in text
        assert 'latency_seconds_bucket{le="1.0"} 2' in text
        assert 'latency_seconds_bucket{le="+Inf"} 3' in text
        assert "latency_seconds_sum 5.55" in text
        assert "latency_seconds_count 3" in text

    def test_label_values_are_escaped(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("l",)).labels('we"ird\\').inc()
        text = to_prometheus(reg)
        assert r'x{l="we\"ird\\"} 1' in text

    def test_round_trip_through_the_parser(self):
        reg = populated_registry()
        parsed = parse_prometheus(to_prometheus(reg))
        assert parsed["requests_total"][""] == 3
        assert parsed["packets_total"]['{element="src"}'] == 10
        assert parsed["packets_total"]['{element="dst"}'] == 7
        assert parsed["queue_depth"][""] == 4
        assert parsed["latency_seconds_bucket"]['{le="+Inf"}'] == 3
        assert parsed["latency_seconds_sum"][""] == \
            pytest.approx(5.55)

    def test_parser_rejects_garbage(self):
        with pytest.raises(ValueError):
            parse_prometheus("justoneword")

    def test_empty_registry_serializes_to_empty_string(self):
        assert to_prometheus(MetricsRegistry()) == ""


class TestJsonSnapshot:
    def test_keys_are_stable_regardless_of_insertion_order(self):
        forward, backward = MetricsRegistry(), MetricsRegistry()
        for reg, names in (
            (forward, ("alpha", "beta")),
            (backward, ("beta", "alpha")),
        ):
            for name in names:
                fam = reg.counter(name, labels=("l",))
                for value in ("z", "a") if name == "alpha" \
                        else ("a", "z"):
                    fam.labels(value).inc()
        assert snapshot_json(forward) == snapshot_json(backward)

    def test_serialization_is_deterministic(self):
        reg = populated_registry()
        assert snapshot_json(reg) == snapshot_json(reg)

    def test_round_trips_through_json(self):
        reg = populated_registry()
        loaded = json.loads(snapshot_json(reg, indent=2))
        values = loaded["metrics"]["packets_total"]["values"]
        assert values == {"element=dst": 7, "element=src": 10}
        hist = loaded["metrics"]["latency_seconds"]["values"][""]
        assert hist["count"] == 3
        assert hist["buckets"]["+Inf"] == 3

    def test_includes_span_trees(self):
        tracer = Tracer()
        with tracer.span("admit"):
            with tracer.span("compile"):
                pass
        snap = snapshot(tracer=tracer)
        assert snap["spans"][0]["name"] == "admit"
        assert snap["spans"][0]["children"][0]["name"] == "compile"


class TestRenderTable:
    def test_banner_and_alignment(self):
        text = render_table(populated_registry(), title="demo")
        lines = text.splitlines()
        assert lines[0] == "=== demo ==="
        assert lines[1].startswith("metric")
        assert set(lines[2]) == {"-"}
        assert any("packets_total" in line and "element=src" in line
                   for line in lines)

    def test_histogram_row_summarizes(self):
        text = render_table(populated_registry())
        row = next(l for l in text.splitlines()
                   if l.startswith("latency_seconds"))
        assert "n=3" in row and "sum=5.55" in row

    def test_spans_section_appears_with_a_tracer(self):
        tracer = Tracer()
        with tracer.span("admit", client_id="mobile1"):
            with tracer.span("compile"):
                pass
        text = render_table(MetricsRegistry(), tracer=tracer)
        assert "=== spans ===" in text
        assert "admit" in text
        assert "  compile" in text
        assert "client_id=mobile1" in text


class TestObservabilityBundle:
    def test_shortcuts_delegate_to_the_exporters(self):
        obs = Observability()
        obs.metrics.counter("x").inc()
        with obs.tracer.span("s"):
            pass
        assert "x 1" in obs.to_prometheus()
        snap = obs.snapshot()
        assert snap["metrics"]["x"]["values"][""] == 1
        assert snap["spans"][0]["name"] == "s"
        assert "=== observability snapshot ===" in obs.render_table()
        assert json.loads(obs.snapshot_json())["metrics"]["x"]


class TestResilienceCountersRoundTrip:
    """The failure-model metrics survive the Prometheus round trip."""

    def _chaos_obs(self) -> Observability:
        from repro.resilience.chaos import run_scenario

        obs = Observability()
        run_scenario("platform-crash", seed=1, obs=obs)
        run_scenario("boot-timeout-storm", seed=1, obs=obs)
        return obs

    def test_families_present_in_prometheus_text(self):
        text = self._chaos_obs().to_prometheus()
        for family in (
            "resilience_faults_injected_total",
            "resilience_retries_total",
            "resilience_health_checks_total",
            "resilience_failovers_total",
            "resilience_modules_evacuated_total",
            "resilience_journal_records_total",
            "resilience_recovery_seconds",
        ):
            assert "# TYPE %s" % family in text, family

    def test_values_survive_the_parser(self):
        obs = self._chaos_obs()
        parsed = parse_prometheus(obs.to_prometheus())
        assert parsed["resilience_failovers_total"][
            '{outcome="complete"}'
        ] == 1
        assert parsed["resilience_modules_evacuated_total"][""] == 2
        assert parsed["resilience_recovery_seconds_count"][""] == 1
        injected = sum(
            parsed["resilience_faults_injected_total"].values()
        )
        assert injected > 0
        retries = parsed["resilience_retries_total"]['{op="boot"}']
        assert retries > 0

    def test_counters_match_the_snapshot_view(self):
        obs = self._chaos_obs()
        parsed = parse_prometheus(obs.to_prometheus())
        snap = json.loads(obs.snapshot_json())
        table = snap["metrics"]["resilience_health_checks_total"]
        total = sum(table["values"].values())
        assert total == sum(
            parsed["resilience_health_checks_total"].values()
        )

    def test_disabled_observability_emits_nothing(self):
        from repro.resilience.chaos import run_scenario

        obs = Observability(enabled=False)
        run_scenario("platform-crash", seed=1, obs=obs)
        assert obs.to_prometheus() == ""


class TestFedctlCountersRoundTrip:
    """The federated control plane's metrics survive the Prometheus
    round trip: per-shard admission counters/latency, gossip rumor
    accounting, failover MTTR, and the registry-sampled gauges."""

    def _fedctl_obs(self) -> Observability:
        from repro.fedctl.chaos import run_shard_death

        obs = Observability()
        report = run_shard_death(seed=1, obs=obs)
        assert report.passed, report.failures
        return obs

    def test_families_present_in_prometheus_text(self):
        text = self._fedctl_obs().to_prometheus()
        for family in (
            "fedctl_requests_total",
            "fedctl_admission_seconds",
            "fedctl_gossip_rumors_total",
            "fedctl_gossip_rounds_total",
            "fedctl_failovers_total",
            "fedctl_failover_seconds",
            "fedctl_live_shards",
            "fedctl_deployed_modules",
            "fedctl_tenants",
            "fedctl_gossip_remote_hits",
        ):
            assert "# TYPE %s" % family in text, family

    def test_values_survive_the_parser(self):
        obs = self._fedctl_obs()
        parsed = parse_prometheus(obs.to_prometheus())
        accepted = sum(
            value
            for labels, value in parsed["fedctl_requests_total"].items()
            if 'outcome="accepted"' in labels
        )
        # 3 shards x 2 modules in setup, +1 post-failover admission.
        assert accepted == 7
        assert parsed["fedctl_failovers_total"][
            '{outcome="adopted"}'
        ] == 1
        assert parsed["fedctl_failover_seconds_count"][""] == 1
        assert parsed["fedctl_live_shards"][""] == 2
        published = parsed["fedctl_gossip_rumors_total"][
            '{event="published"}'
        ]
        assert published > 0
        assert sum(
            parsed["fedctl_gossip_remote_hits"].values()
        ) > 0

    def test_pool_metrics_round_trip(self):
        from repro.core.cluster import ControllerPool
        from repro.core import ClientRequest, ROLE_CLIENT
        from repro.netmodel.examples import (
            CLIENT_ADDR, figure3_network,
        )

        obs = Observability()
        pool = ControllerPool(figure3_network(), n_workers=4, obs=obs)
        for i in range(6):
            pool.submit(ClientRequest(
                client_id="client-%d" % i,
                role=ROLE_CLIENT,
                config_source="FromNetfront() -> IPFilter(allow udp)"
                              " -> IPRewriter(pattern - - "
                              "172.16.15.133 - 0 0) -> ToNetfront();",
                owned_addresses=(CLIENT_ADDR,),
                module_name="m%d" % i,
            ))
        pool.process_all()
        parsed = parse_prometheus(obs.to_prometheus())
        assert parsed["pool_verifications_total"][""] >= 6
        assert parsed["pool_rounds_total"][""] >= 1
        assert parsed["pool_requests_total"][
            '{outcome="accepted"}'
        ] == 6
        # PoolStats gauges are sampled by the registry collector.
        assert parsed["pool_workers"][""] == 4
        assert parsed["pool_pending"][""] == 0
        assert parsed["pool_speedup"][""] == \
            pytest.approx(pool.stats.speedup)
        assert parsed["pool_serial_seconds"][""] == \
            pytest.approx(pool.stats.serial_seconds, rel=1e-3)
