"""Tests for the metric primitives and the registry."""

import pytest

from repro.obs.metrics import (
    Counter,
    DEFAULT_BUCKETS,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_METRIC,
)


class TestCounter:
    def test_starts_at_zero_and_increments(self):
        c = Counter()
        assert c.value == 0
        c.inc()
        c.inc(4)
        assert c.value == 5

    def test_snapshot_value(self):
        c = Counter()
        c.inc(7)
        assert c.snapshot_value() == 7


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge()
        g.set(10)
        g.inc(2)
        g.dec(5)
        assert g.value == 7


class TestHistogram:
    def test_observations_land_in_correct_buckets(self):
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(0.5)
        h.observe(1.5)
        h.observe(99.0)
        assert h.counts == [1, 1, 1]
        assert h.count == 3
        assert h.sum == pytest.approx(101.0)

    def test_boundary_value_is_inclusive(self):
        # Prometheus ``le`` semantics: an observation equal to a bucket
        # bound belongs to that bucket.
        h = Histogram(buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.counts == [1, 0, 0]

    def test_cumulative_running_totals(self):
        h = Histogram(buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 1.6, 99.0):
            h.observe(v)
        assert h.cumulative() == [
            (1.0, 1), (2.0, 3), (float("inf"), 4),
        ]

    def test_observe_count_batches_identical_values(self):
        batched, one_by_one = Histogram(), Histogram()
        batched.observe_count(0.002, 1000)
        for _ in range(1000):
            one_by_one.observe(0.002)
        assert batched.counts == one_by_one.counts
        assert batched.count == one_by_one.count
        assert batched.sum == pytest.approx(one_by_one.sum)

    def test_needs_at_least_one_bucket(self):
        with pytest.raises(ValueError):
            Histogram(buckets=())

    def test_default_buckets_are_sorted(self):
        assert tuple(sorted(DEFAULT_BUCKETS)) == DEFAULT_BUCKETS


class TestRegistry:
    def test_creation_is_idempotent(self):
        reg = MetricsRegistry()
        a = reg.counter("requests_total", "help")
        b = reg.counter("requests_total")
        assert a is b

    def test_labelled_family_children_are_cached(self):
        reg = MetricsRegistry()
        fam = reg.counter("hits", labels=("cache",))
        assert fam.labels("verdict") is fam.labels("verdict")
        assert fam.labels("verdict") is not fam.labels("other")

    def test_kind_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")

    def test_label_conflict_is_an_error(self):
        reg = MetricsRegistry()
        reg.counter("x", labels=("a",))
        with pytest.raises(ValueError):
            reg.counter("x", labels=("b",))

    def test_wrong_label_arity_is_an_error(self):
        reg = MetricsRegistry()
        fam = reg.counter("x", labels=("a", "b"))
        with pytest.raises(ValueError):
            fam.labels("only-one")

    def test_snapshot_is_stable_keyed(self):
        reg = MetricsRegistry()
        fam = reg.counter("zebra", labels=("element",))
        fam.labels("b").inc(2)
        fam.labels("a").inc(1)
        reg.gauge("alpha").set(3)
        snap = reg.snapshot()
        assert list(snap) == ["alpha", "zebra"]
        assert list(snap["zebra"]["values"]) == [
            "element=a", "element=b",
        ]
        assert snap["zebra"]["values"]["element=b"] == 2

    def test_collectors_run_before_snapshot(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        reg.register_collector(lambda: gauge.set(42))
        assert reg.snapshot()["depth"]["values"][""] == 42

    def test_keyed_collector_replaces_earlier_registration(self):
        reg = MetricsRegistry()
        gauge = reg.gauge("depth")
        reg.register_collector(lambda: gauge.set(1), key="k")
        reg.register_collector(lambda: gauge.set(2), key="k")
        reg.snapshot()
        assert gauge.value == 2


class TestDisabledRegistry:
    def test_hands_out_the_shared_null_metric(self):
        reg = MetricsRegistry(enabled=False)
        assert reg.counter("x") is NULL_METRIC
        assert reg.histogram("y") is NULL_METRIC
        assert reg.gauge("z").labels("a") is NULL_METRIC

    def test_null_metric_mutators_are_noops(self):
        NULL_METRIC.inc()
        NULL_METRIC.dec(3)
        NULL_METRIC.set(9)
        NULL_METRIC.observe(1.0)
        assert NULL_METRIC.value == 0

    def test_snapshot_is_empty(self):
        reg = MetricsRegistry(enabled=False)
        reg.counter("x").inc()
        assert reg.snapshot() == {}
