"""Tests for the nested tracing spans."""

import pytest

from repro.obs.trace import NULL_SPAN, Tracer


class FakeClock:
    """Deterministic monotonic clock for timing assertions."""

    def __init__(self):
        self.now = 0.0

    def __call__(self):
        self.now += 1.0
        return self.now


class TestSpans:
    def test_finished_root_lands_in_roots(self):
        tracer = Tracer()
        with tracer.span("admit") as span:
            pass
        assert tracer.roots == [span]
        assert span.duration > 0.0

    def test_runtime_containment_nests_spans(self):
        tracer = Tracer()
        with tracer.span("admit") as admit:
            with tracer.span("compile") as compile_span:
                with tracer.span("check"):
                    pass
            with tracer.span("graft"):
                pass
        assert [c.name for c in admit.children] == ["compile", "graft"]
        assert [c.name for c in compile_span.children] == ["check"]
        assert tracer.roots == [admit]

    def test_attrs_from_kwargs_and_set(self):
        tracer = Tracer()
        with tracer.span("admit", client_id="mobile1") as span:
            span.set("accepted", True)
        assert span.attrs == {"client_id": "mobile1", "accepted": True}

    def test_active_tracks_the_innermost_open_span(self):
        tracer = Tracer()
        assert tracer.active is None
        with tracer.span("outer") as outer:
            assert tracer.active is outer
            with tracer.span("inner") as inner:
                assert tracer.active is inner
            assert tracer.active is outer
        assert tracer.active is None

    def test_exception_is_recorded_and_propagates(self):
        tracer = Tracer()
        with pytest.raises(RuntimeError):
            with tracer.span("admit"):
                raise RuntimeError("boom")
        assert tracer.roots[0].error == "RuntimeError: boom"

    def test_wall_duration_uses_the_wall_clock(self):
        tracer = Tracer(wall_clock=FakeClock())
        with tracer.span("op") as span:
            pass
        assert span.duration == pytest.approx(1.0)

    def test_sim_clock_timestamps_are_optional_and_separate(self):
        sim = {"now": 100.0}
        tracer = Tracer(sim_clock=lambda: sim["now"])
        with tracer.span("boot") as span:
            sim["now"] = 102.5
        assert span.sim_duration == pytest.approx(2.5)
        assert span.start_sim == pytest.approx(100.0)

    def test_sim_clock_can_be_attached_after_construction(self):
        tracer = Tracer()
        with tracer.span("before") as before:
            pass
        assert before.sim_duration is None
        tracer.sim_clock = lambda: 7.0
        with tracer.span("after") as after:
            pass
        assert after.sim_duration == pytest.approx(0.0)

    def test_find_searches_descendants_depth_first(self):
        tracer = Tracer()
        with tracer.span("root") as root:
            with tracer.span("a"):
                with tracer.span("deep"):
                    pass
        assert root.find("deep").name == "deep"
        assert root.find("missing") is None

    def test_leaked_inner_span_does_not_corrupt_the_stack(self):
        tracer = Tracer()
        outer = tracer.span("outer")
        inner = tracer.span("inner")
        outer.__enter__()
        inner.__enter__()
        # Exiting the outer span while the inner is still open must
        # still leave the tracer usable.
        outer.__exit__(None, None, None)
        assert tracer.active is None
        assert tracer.roots == [outer]

    def test_snapshot_is_stable_keyed(self):
        tracer = Tracer()
        with tracer.span("admit", zeta=1, alpha=2):
            pass
        (snap,) = tracer.snapshot()
        assert list(snap["attrs"]) == ["alpha", "zeta"]
        assert snap["name"] == "admit"
        assert snap["children"] == []

    def test_clear_drops_finished_roots(self):
        tracer = Tracer()
        with tracer.span("x"):
            pass
        tracer.clear()
        assert tracer.roots == []


class TestDisabledTracer:
    def test_hands_out_the_shared_null_span(self):
        tracer = Tracer(enabled=False)
        span = tracer.span("admit", client_id="x")
        assert span is NULL_SPAN

    def test_null_span_is_a_working_context_manager(self):
        tracer = Tracer(enabled=False)
        with tracer.span("admit") as span:
            span.set("accepted", True)
            with tracer.span("compile"):
                pass
        assert tracer.roots == []
        assert tracer.active is None
