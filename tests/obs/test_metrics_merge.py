"""Tests for MetricsRegistry.merge and pickling (sharded obs support)."""

import pickle

import pytest

from repro.obs.export import parse_prometheus, to_prometheus
from repro.obs.metrics import NULL_METRIC, MetricsRegistry


def shard_registry(packets, depth, latencies, element="fw"):
    """A registry shaped like one dataplane shard's."""
    reg = MetricsRegistry()
    reg.counter("packets_total", "Packets", labels=("element",)) \
        .labels(element).inc(packets)
    reg.counter("egress_total", "Egress").inc(packets)
    reg.gauge("queue_depth", "Depth").set(depth)
    hist = reg.histogram("latency_seconds", "Latency", buckets=(0.1, 1.0))
    for value in latencies:
        hist.observe(value)
    return reg


class TestCounterMerge:
    def test_counters_sum(self):
        merged = MetricsRegistry().merge(
            shard_registry(10, 1, []), shard_registry(7, 2, []),
        )
        assert merged.counter("egress_total").value == 17

    def test_labelled_children_union_and_sum(self):
        a = MetricsRegistry()
        a.counter("packets_total", labels=("element",)).labels("fw").inc(5)
        b = MetricsRegistry()
        b.counter("packets_total", labels=("element",)).labels("fw").inc(3)
        b.counter("packets_total", labels=("element",)).labels("rw").inc(9)
        merged = MetricsRegistry().merge(a, b)
        family = merged.get("packets_total")
        assert family.labels("fw").value == 8
        assert family.labels("rw").value == 9

    def test_merge_into_populated_registry_adds(self):
        mine = MetricsRegistry()
        mine.counter("egress_total").inc(100)
        mine.merge(shard_registry(10, 1, []))
        assert mine.counter("egress_total").value == 110


class TestGaugeMerge:
    def test_last_write_wins_in_argument_order(self):
        merged = MetricsRegistry().merge(
            shard_registry(0, 11, []), shard_registry(0, 22, []),
        )
        assert merged.gauge("queue_depth").value == 22


class TestHistogramMerge:
    def test_buckets_sum_elementwise(self):
        merged = MetricsRegistry().merge(
            shard_registry(0, 0, [0.05, 0.5]),
            shard_registry(0, 0, [0.5, 5.0]),
        )
        hist = merged.histogram("latency_seconds", buckets=(0.1, 1.0))
        assert hist.counts == [1, 2, 1]
        assert hist.count == 4
        assert hist.sum == pytest.approx(6.05)

    def test_mismatched_bounds_raise(self):
        a = MetricsRegistry()
        a.histogram("h", buckets=(0.1, 1.0)).observe(0.5)
        b = MetricsRegistry()
        b.histogram("h", buckets=(0.2, 2.0)).observe(0.5)
        with pytest.raises(ValueError, match="bucket bounds differ"):
            MetricsRegistry().merge(a, b)


class TestMergeEdgeCases:
    def test_returns_self(self):
        reg = MetricsRegistry()
        assert reg.merge(shard_registry(1, 1, [])) is reg

    def test_kind_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x").inc()
        b = MetricsRegistry()
        b.gauge("x").set(1)
        with pytest.raises(ValueError, match="cannot merge metric 'x'"):
            a.merge(b)

    def test_labelset_conflict_raises(self):
        a = MetricsRegistry()
        a.counter("x", labels=("l",)).labels("v").inc()
        b = MetricsRegistry()
        b.counter("x").inc()
        with pytest.raises(ValueError, match="cannot merge metric 'x'"):
            a.merge(b)

    def test_merging_self_is_a_noop(self):
        reg = shard_registry(5, 1, [])
        reg.merge(reg)
        assert reg.counter("egress_total").value == 5

    def test_disabled_other_merges_as_empty(self):
        merged = MetricsRegistry().merge(MetricsRegistry(enabled=False))
        assert merged.families() == []

    def test_merge_into_disabled_is_a_noop(self):
        disabled = MetricsRegistry(enabled=False)
        assert disabled.merge(shard_registry(5, 1, [])) is disabled
        assert disabled.counter("egress_total") is NULL_METRIC

    def test_collector_sampled_gauges_are_current(self):
        other = MetricsRegistry()
        state = {"depth": 0}
        other.register_collector(
            lambda: other.gauge("sampled_depth").set(state["depth"]),
            key="q",
        )
        state["depth"] = 7
        merged = MetricsRegistry().merge(other)
        assert merged.gauge("sampled_depth").value == 7

    def test_keyed_collectors_union(self):
        a = MetricsRegistry()
        a.register_collector(lambda: a.gauge("ga").set(1), key="a")
        b = MetricsRegistry()
        b.register_collector(lambda: b.gauge("gb").set(2), key="b")
        merged = MetricsRegistry().merge(a, b)
        merged.families()  # runs the unioned collectors
        assert merged.gauge("ga").value == 1
        assert merged.gauge("gb").value == 2


class TestPrometheusRoundTrip:
    def test_merged_export_equals_summed_shards(self):
        shards = [
            shard_registry(10, 3, [0.05], element="fw"),
            shard_registry(7, 5, [0.5, 5.0], element="fw"),
        ]
        merged = MetricsRegistry().merge(*shards)
        parsed = parse_prometheus(to_prometheus(merged))
        assert parsed["egress_total"][""] == 17
        assert parsed["packets_total"]['{element="fw"}'] == 17
        assert parsed["queue_depth"][""] == 5  # last shard's write
        assert parsed["latency_seconds_bucket"]['{le="0.1"}'] == 1
        assert parsed["latency_seconds_bucket"]['{le="1.0"}'] == 2
        assert parsed["latency_seconds_bucket"]['{le="+Inf"}'] == 3
        assert parsed["latency_seconds_count"][""] == 3
        assert parsed["latency_seconds_sum"][""] == pytest.approx(5.55)

    def test_merge_of_parsed_equal_registries_doubles(self):
        # Round-trip sanity: exporting a merged registry of two equal
        # shards shows exactly double the single-shard numbers.
        single = parse_prometheus(to_prometheus(shard_registry(4, 1, [0.5])))
        merged = MetricsRegistry().merge(
            shard_registry(4, 1, [0.5]), shard_registry(4, 1, [0.5]),
        )
        doubled = parse_prometheus(to_prometheus(merged))
        for name, samples in single.items():
            for labels, value in samples.items():
                if name == "queue_depth":
                    continue  # gauge: last write, not a sum
                assert doubled[name][labels] == 2 * value


class TestPickling:
    def test_values_survive_a_round_trip(self):
        reg = shard_registry(9, 4, [0.05, 5.0])
        clone = pickle.loads(pickle.dumps(reg))
        assert clone.counter("egress_total").value == 9
        assert clone.gauge("queue_depth").value == 4
        hist = clone.histogram("latency_seconds", buckets=(0.1, 1.0))
        assert hist.count == 2
        assert to_prometheus(clone) == to_prometheus(reg)

    def test_collectors_run_once_then_drop(self):
        reg = MetricsRegistry()
        closure_state = {"depth": 0}
        reg.register_collector(
            lambda: reg.gauge("sampled").set(closure_state["depth"]),
            key="q",
        )
        closure_state["depth"] = 6
        clone = pickle.loads(pickle.dumps(reg))
        # The final collector pass ran at pickle time...
        assert clone.gauge("sampled").value == 6
        # ...and the closure itself did not cross the boundary.
        assert clone._collectors == []
        assert clone._keyed_collectors == {}

    def test_unpickled_registry_is_mergeable(self):
        clone = pickle.loads(pickle.dumps(shard_registry(3, 1, [])))
        merged = MetricsRegistry().merge(clone, shard_registry(5, 2, []))
        assert merged.counter("egress_total").value == 8
