"""Tests for the tcpdump-style flow-spec language."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.click import Packet, TCP, UDP
from repro.common import fields as F
from repro.common.addr import parse_ip
from repro.common.errors import PolicyError
from repro.policy.flowspec import (
    Clause,
    FlowSpec,
    parse_const_fields,
    parse_flowspec,
)


def pkt(**kw):
    return Packet(**kw)


class TestPrimitives:
    def test_protocol_words(self):
        assert parse_flowspec("udp").matches(pkt(ip_proto=UDP))
        assert not parse_flowspec("udp").matches(pkt(ip_proto=TCP))
        assert parse_flowspec("tcp").matches(pkt(ip_proto=TCP))

    def test_any_matches_everything(self):
        for text in ("any", "all", "true", "ip", ""):
            assert parse_flowspec(text).matches(pkt())

    def test_dst_port(self):
        spec = parse_flowspec("dst port 1500")
        assert spec.matches(pkt(tp_dst=1500))
        assert not spec.matches(pkt(tp_dst=1501))

    def test_src_port_range(self):
        spec = parse_flowspec("src port 1024-2048")
        assert spec.matches(pkt(tp_src=1500))
        assert not spec.matches(pkt(tp_src=80))

    def test_bidirectional_port(self):
        spec = parse_flowspec("port 53")
        assert spec.matches(pkt(tp_src=53))
        assert spec.matches(pkt(tp_dst=53))
        assert not spec.matches(pkt(tp_src=54, tp_dst=55))

    def test_bare_address_is_host_either_direction(self):
        spec = parse_flowspec("dst 172.16.15.133")
        assert spec.matches(pkt(ip_dst=parse_ip("172.16.15.133")))

    def test_src_net(self):
        spec = parse_flowspec("src net 10.0.0.0/8")
        assert spec.matches(pkt(ip_src=parse_ip("10.200.1.1")))
        assert not spec.matches(pkt(ip_src=parse_ip("11.0.0.1")))

    def test_host_either_direction(self):
        spec = parse_flowspec("host 1.2.3.4")
        a = parse_ip("1.2.3.4")
        assert spec.matches(pkt(ip_src=a))
        assert spec.matches(pkt(ip_dst=a))

    def test_proto_number(self):
        assert parse_flowspec("proto 17").matches(pkt(ip_proto=UDP))

    def test_ttl_and_tos(self):
        assert parse_flowspec("ttl 5").matches(pkt(ip_ttl=5))
        assert parse_flowspec("tos 7").matches(pkt(ip_tos=7))


class TestCombinators:
    def test_juxtaposition_is_and(self):
        spec = parse_flowspec("udp dst port 1500")
        assert spec.matches(pkt(ip_proto=UDP, tp_dst=1500))
        assert not spec.matches(pkt(ip_proto=TCP, tp_dst=1500))
        assert not spec.matches(pkt(ip_proto=UDP, tp_dst=80))

    def test_explicit_and(self):
        for text in ("udp and dst port 9", "udp && dst port 9"):
            spec = parse_flowspec(text)
            assert spec.matches(pkt(ip_proto=UDP, tp_dst=9))

    def test_or(self):
        for text in ("tcp or udp", "tcp || udp"):
            spec = parse_flowspec(text)
            assert spec.matches(pkt(ip_proto=TCP))
            assert spec.matches(pkt(ip_proto=UDP))
            assert not spec.matches(pkt(ip_proto=1))

    def test_not(self):
        spec = parse_flowspec("not udp")
        assert spec.matches(pkt(ip_proto=TCP))
        assert not spec.matches(pkt(ip_proto=UDP))

    def test_parentheses(self):
        spec = parse_flowspec("(tcp or udp) and dst port 80")
        assert spec.matches(pkt(ip_proto=TCP, tp_dst=80))
        assert not spec.matches(pkt(ip_proto=TCP, tp_dst=81))

    def test_de_morgan(self):
        spec = parse_flowspec("not (udp dst port 53)")
        assert spec.matches(pkt(ip_proto=TCP, tp_dst=53))
        assert spec.matches(pkt(ip_proto=UDP, tp_dst=54))
        assert not spec.matches(pkt(ip_proto=UDP, tp_dst=53))


class TestErrors:
    @pytest.mark.parametrize(
        "bad",
        [
            "frobnicate",
            "port",             # missing number
            "src",              # dangling direction
            "port 99999",       # out of range
            "udp (",            # unbalanced
            "dst port 5-2",     # inverted range
        ],
    )
    def test_rejects(self, bad):
        with pytest.raises(PolicyError):
            parse_flowspec(bad)


class TestConstFields:
    def test_paper_example(self):
        fields = parse_const_fields("proto && dst port && payload")
        assert fields == {F.IP_PROTO, F.TP_DST, F.PAYLOAD}

    def test_port_means_both(self):
        assert parse_const_fields("port") == {F.TP_SRC, F.TP_DST}

    def test_and_separator(self):
        assert parse_const_fields("ttl and tos") == {F.IP_TTL, F.IP_TOS}

    def test_unknown_field_rejected(self):
        with pytest.raises(PolicyError):
            parse_const_fields("checksum")


class TestClauseAlgebra:
    def test_conjoin_conflicting_is_none(self):
        from repro.common.intervals import IntervalSet

        a = Clause({F.TP_DST: IntervalSet.single(80)})
        b = Clause({F.TP_DST: IntervalSet.single(443)})
        assert a.conjoin(b) is None

    def test_spec_partition_property(self):
        """spec and (not spec) must partition the packet space."""
        spec = parse_flowspec("udp dst port 1000-2000")
        negation = parse_flowspec("not (udp dst port 1000-2000)")
        for proto in (UDP, TCP):
            for port in (999, 1000, 1500, 2000, 2001):
                p = pkt(ip_proto=proto, tp_dst=port)
                assert spec.matches(p) != negation.matches(p)


@given(
    proto=st.sampled_from([TCP, UDP, 1, 47]),
    sport=st.integers(min_value=0, max_value=65535),
    dport=st.integers(min_value=0, max_value=65535),
)
def test_negation_partitions_randomly(proto, sport, dport):
    spec = parse_flowspec("udp and (src port 100-200 or dst port 53)")
    negation = parse_flowspec(
        "not (udp and (src port 100-200 or dst port 53))"
    )
    p = pkt(ip_proto=proto, tp_src=sport, tp_dst=dport)
    assert spec.matches(p) != negation.matches(p)
