"""Tests for the reach-requirement grammar."""

import pytest

from repro.common import fields as F
from repro.common.addr import parse_ip
from repro.common.errors import PolicyError
from repro.policy.grammar import (
    KIND_ADDRESS,
    KIND_CLIENT,
    KIND_ELEMENT,
    KIND_INTERNET,
    KIND_NAME,
    parse_requirement,
    parse_requirements,
)


class TestNodes:
    def test_keywords(self):
        req = parse_requirement("reach from internet -> client")
        assert req.origin.node.kind == KIND_INTERNET
        assert req.target.node.kind == KIND_CLIENT

    def test_address_node(self):
        req = parse_requirement("reach from 10.0.0.0/8 -> 1.2.3.4")
        assert req.origin.node.kind == KIND_ADDRESS
        assert req.origin.node.prefix == (parse_ip("10.0.0.0"), 8)
        assert req.target.node.prefix == (parse_ip("1.2.3.4"), 32)

    def test_named_node(self):
        req = parse_requirement("reach from internet -> HTTPOptimizer")
        assert req.target.node.kind == KIND_NAME
        assert req.target.node.name == "HTTPOptimizer"

    def test_element_node_with_port(self):
        req = parse_requirement("reach from internet -> batcher:dst:1")
        node = req.target.node
        assert node.kind == KIND_ELEMENT
        assert (node.name, node.element, node.port) == ("batcher", "dst", 1)

    def test_element_node_default_port(self):
        req = parse_requirement("reach from internet -> batcher:dst")
        assert req.target.node.port == 0

    @pytest.mark.parametrize(
        "bad", ["a:b:c:d", "a:", "mod:el:x", "9bad..name"]
    )
    def test_bad_node_rejected(self, bad):
        with pytest.raises(PolicyError):
            parse_requirement("reach from internet -> %s" % bad)


class TestFlowsAndConst:
    def test_figure4_requirement(self):
        req = parse_requirement(
            "reach from internet udp"
            " -> batcher:dst:0 dst 172.16.15.133"
            " -> client dst port 1500"
            "    const proto && dst port && payload"
        )
        assert len(req.hops) == 3
        assert req.origin.flow.source == "udp"
        assert req.waypoints[0].node.element == "dst"
        assert req.target.const_fields == frozenset(
            {F.IP_PROTO, F.TP_DST, F.PAYLOAD}
        )

    def test_operator_policy_example(self):
        req = parse_requirement(
            "reach from internet tcp src port 80"
            " -> HTTPOptimizer -> client"
        )
        assert [h.node.kind for h in req.hops] == [
            KIND_INTERNET, KIND_NAME, KIND_CLIENT,
        ]

    def test_const_on_origin_rejected(self):
        with pytest.raises(PolicyError):
            parse_requirement(
                "reach from internet const proto -> client"
            )

    def test_no_flow_means_none(self):
        req = parse_requirement("reach from internet -> client")
        assert req.origin.flow is None
        assert req.target.flow is None


class TestStatementStructure:
    def test_must_start_with_reach_from(self):
        with pytest.raises(PolicyError):
            parse_requirement("go from internet -> client")
        with pytest.raises(PolicyError):
            parse_requirement("reach to internet -> client")

    def test_needs_a_hop(self):
        with pytest.raises(PolicyError):
            parse_requirement("reach from internet")

    def test_multiple_statements(self):
        reqs = parse_requirements(
            """
            # operator policy
            reach from internet tcp src port 80
                -> HTTPOptimizer -> client
            reach from client -> internet
            """
        )
        assert len(reqs) == 2
        assert reqs[1].origin.node.kind == KIND_CLIENT

    def test_empty_block(self):
        assert parse_requirements("   \n  # nothing\n") == []

    def test_str_roundtrip_is_stable(self):
        text = "reach from internet udp -> client dst port 1500"
        req = parse_requirement(text)
        assert str(req) == text
