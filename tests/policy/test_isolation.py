"""Tests for `isolate` requirements and link-failure handling."""

import pytest

from repro.common.errors import ConfigError, PolicyError
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel import NetworkCompiler
from repro.netmodel.examples import CLIENT_ADDR, figure3_network
from repro.policy import parse_requirement, parse_requirements
from repro.symexec.reachability import ReachabilityChecker


def check(net, text):
    compiled = NetworkCompiler(net).compile()
    requirement = parse_requirement(text)
    exploration = compiled.explore_from(
        requirement.origin.node, requirement.origin.flow
    )
    return ReachabilityChecker(compiled.resolver).check(
        requirement, exploration
    )


class TestGrammar:
    def test_isolate_parses(self):
        req = parse_requirement("isolate from internet -> clients")
        assert not req.expect_reachable

    def test_reach_default_true(self):
        req = parse_requirement("reach from internet -> client")
        assert req.expect_reachable

    def test_mixed_statement_blocks(self):
        reqs = parse_requirements("""
            reach from client -> internet
            isolate from internet -> platform1
        """)
        assert [r.expect_reachable for r in reqs] == [True, False]

    def test_unknown_verb_rejected(self):
        with pytest.raises(PolicyError):
            parse_requirement("forbid from internet -> client")


class TestIsolationChecking:
    def test_private_platform_isolated(self, figure3):
        # The fw denies inbound to platform1's pool: isolation holds.
        result = check(
            figure3, "isolate from internet -> platform1"
        )
        assert result.satisfied

    def test_reachable_target_fails_isolation(self, figure3):
        result = check(figure3, "isolate from internet -> client")
        assert not result.satisfied
        assert "isolation violated" in result.reason
        assert result.witnesses  # the offending flows, as evidence

    def test_isolation_with_flow_constraint(self, figure3):
        # Only-UDP isolation of a reachable node still fails...
        result = check(figure3, "isolate from internet udp -> client")
        assert not result.satisfied
        # ...but an unsatisfiable flow class is trivially isolated.
        result = check(
            figure3,
            "isolate from internet udp dst port 1"
            " -> client dst port 2",
        )
        assert result.satisfied


class TestOperatorIsolationPolicy:
    def test_controller_enforces_isolation(self):
        # Operator policy: platform1 must stay private.  A module
        # placement that would break this is impossible here (the fw
        # protects it), so requests still succeed.
        controller = Controller(
            figure3_network(),
            operator_requirements=(
                "isolate from internet -> platform1"
            ),
        )
        result = controller.request(ClientRequest(
            client_id="alice",
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() -> IPFilter(allow udp)
                -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> ToNetfront();
            """,
            owned_addresses=(CLIENT_ADDR,),
            module_name="mod",
        ))
        assert result.accepted, result.reason
        assert all(controller.verify_snapshot())


class TestUnlink:
    def test_unlink_removes_routes(self, figure3):
        from repro.common.addr import parse_ip

        r1 = figure3.node("r1")
        port = r1.table.lookup(parse_ip("192.0.2.5"))
        assert r1.ports[port][0] == "platform3"
        figure3.unlink("r1", "platform3")
        # Only the default route remains; it points at the internet,
        # not at the now-disconnected platform.
        port = r1.table.lookup(parse_ip("192.0.2.5"))
        assert port is None or r1.ports[port][0] != "platform3"
        assert not any(
            peer == "platform3" for _p, (peer, _pp) in r1.ports.items()
        )

    def test_unlink_unknown_pair_rejected(self, figure3):
        with pytest.raises(ConfigError):
            figure3.unlink("internet", "clients")

    def test_failure_then_snapshot_verification(self):
        net = figure3_network()
        controller = Controller(
            net,
            operator_requirements="reach from client -> internet",
        )
        assert all(controller.verify_snapshot())
        net.unlink("internet", "r1")
        outcomes = controller.verify_snapshot()
        assert any(not r for r in outcomes)
