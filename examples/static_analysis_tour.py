#!/usr/bin/env python3
"""A tour of the symbolic execution engine: the paper's Figure 2.

Reproduces the static-checking walkthrough of Section 3: a network
with a stateful firewall that only allows outgoing UDP, and a content
provider's server that answers by swapping source and destination.
Symbolic execution proves (a) the payload arrives unchanged, and
(b) the server's replies are implicitly authorized (IPdst is bound to
the variable IPsrc had on ingress), so it is safe to host the server
in the operator's network.

The finale times the whole pipeline as the controller runs it: a cold
admission (compile + place + verify from scratch) against a warm one
(verdict and model caches hot), with the engine fast path's
prune/memo/copy-on-write counters alongside — the numbers behind the
`symexec-speedup` CI gate.  See docs/symexec.md for the machinery.

Run:  python examples/static_analysis_tour.py
"""

import time

from repro.click import parse_config
from repro.common import fields as F
from repro.core import (
    ClientRequest, Controller, ROLE_CLIENT, ROLE_THIRD_PARTY,
    SecurityAnalyzer,
)
from repro.netmodel.examples import figure3_network
from repro.symexec import SymbolicEngine, SymGraph
from repro.symexec import tuning

FIGURE2_NETWORK = """
    client :: FromNetfront();
    fw_out :: IPFilter(allow udp);
    server :: EchoResponder();
    back   :: ToNetfront();
    client -> fw_out -> server -> back;
"""


def show_flow(flow) -> None:
    print("  path     :", " -> ".join(t.node for t in flow.trace))
    print("  writes   :", ", ".join(
        "%s@%s" % (w.field, w.node) for w in flow.writes) or "(none)")
    ingress = flow.trace[0].snapshot
    egress = flow.trace[-1].snapshot
    print("  ip_proto :", flow.field_domain(F.IP_PROTO))
    print("  aliasing : egress ip_dst %s ingress ip_src  (uids %d / %d)"
          % ("IS" if egress[F.IP_DST] == ingress[F.IP_SRC] else "is NOT",
             egress[F.IP_DST], ingress[F.IP_SRC]))
    print("  payload  : %s" % (
        "invariant end-to-end"
        if not flow.writers_of(F.PAYLOAD)
        else "rewritten by " + "/".join(flow.writers_of(F.PAYLOAD))
    ))


def main() -> None:
    print("== Figure 2: symbolic execution of firewall + server ==\n")
    config = parse_config(FIGURE2_NETWORK)
    engine = SymbolicEngine(SymGraph.from_click(config))
    exploration = engine.inject("client")
    print("symbolic flows delivered: %d  (model evaluations: %d)\n"
          % (len(exploration.delivered), exploration.steps))
    for flow in exploration.delivered:
        show_flow(flow)

    print("\n== The same proof, as the controller runs it ==\n")
    analyzer = SecurityAnalyzer()
    server_only = parse_config("""
        src :: FromNetfront();
        server :: EchoResponder();
        out :: ToNetfront();
        src -> server -> out;
    """)
    report = analyzer.analyze(server_only, ROLE_THIRD_PARTY)
    print("third-party EchoResponder verdict: %s" % report.verdict)
    print("-> the operator can host the content provider's server")
    print("   without sandboxing: every reply goes back to its sender.")

    print("\n== And a case it must refuse ==\n")
    spoofer = parse_config("""
        src :: FromNetfront();
        evil :: SetIPSrc(6.6.6.6);
        out :: ToNetfront();
        src -> evil -> out;
    """)
    report = analyzer.analyze(spoofer, ROLE_THIRD_PARTY)
    print("spoofing module verdict: %s" % report.verdict)
    for finding in report.findings:
        print("  %s" % finding)

    print("\n== What a verdict costs: cold vs. warm admission ==\n")
    controller = Controller(figure3_network())
    request = ClientRequest(
        client_id="mobile1",
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        """,
        requirements="reach from internet udp -> client dst port 1500",
        owned_addresses=("172.16.15.133",),
        module_name="batcher",
    )
    before = tuning.counters()
    started = time.perf_counter()
    result = controller.request(request, dry_run=True)
    cold = time.perf_counter() - started
    delta = {k: v - before[k] for k, v in tuning.counters().items()}
    started = time.perf_counter()
    controller.request(request, dry_run=True)
    warm = time.perf_counter() - started
    print("cold admission: %6.2f ms  (accepted=%s; nothing cached:"
          % (cold * 1e3, result.accepted))
    print("                compile the network model, trial-place,")
    print("                verify every requirement symbolically)")
    print("warm admission: %6.2f ms  (verdict + model caches hot)"
          % (warm * 1e3))
    print("\nEven the cold path is fast because the engine prunes and")
    print("reuses instead of recomputing.  This admission alone did:")
    print("  flow forks        : %5d" % delta["forks"])
    print("  branches pruned   : %5d  (proven empty before forking)"
          % delta["prunes"])
    print("  model memo hits   : %5d  (router splits, table branches)"
          % delta["memo_hits"])
    print("  copy-on-write     : %5d  (forks that actually diverged)"
          % delta["cow_copies"])
    interval = tuning.stats()["interval_cache"]
    print("  interval-op cache : %d hits / %d misses"
          % (interval["hits"], interval["misses"]))
    print("\nSwitch it all off (repro.symexec.tuning.seed_mode) and the")
    print("verdict stays bit-identical -- tests/symexec/")
    print("test_differential.py holds the engine to that, and the")
    print("symexec-speedup CI gate keeps the fast path >=3x on the")
    print("63-middlebox network.")


if __name__ == "__main__":
    main()
