#!/usr/bin/env python3
"""A tour of the symbolic execution engine: the paper's Figure 2.

Reproduces the static-checking walkthrough of Section 3: a network
with a stateful firewall that only allows outgoing UDP, and a content
provider's server that answers by swapping source and destination.
Symbolic execution proves (a) the payload arrives unchanged, and
(b) the server's replies are implicitly authorized (IPdst is bound to
the variable IPsrc had on ingress), so it is safe to host the server
in the operator's network.

Run:  python examples/static_analysis_tour.py
"""

from repro.click import parse_config
from repro.common import fields as F
from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer
from repro.symexec import SymbolicEngine, SymGraph

FIGURE2_NETWORK = """
    client :: FromNetfront();
    fw_out :: IPFilter(allow udp);
    server :: EchoResponder();
    back   :: ToNetfront();
    client -> fw_out -> server -> back;
"""


def show_flow(flow) -> None:
    print("  path     :", " -> ".join(t.node for t in flow.trace))
    print("  writes   :", ", ".join(
        "%s@%s" % (w.field, w.node) for w in flow.writes) or "(none)")
    ingress = flow.trace[0].snapshot
    egress = flow.trace[-1].snapshot
    print("  ip_proto :", flow.field_domain(F.IP_PROTO))
    print("  aliasing : egress ip_dst %s ingress ip_src  (uids %d / %d)"
          % ("IS" if egress[F.IP_DST] == ingress[F.IP_SRC] else "is NOT",
             egress[F.IP_DST], ingress[F.IP_SRC]))
    print("  payload  : %s" % (
        "invariant end-to-end"
        if not flow.writers_of(F.PAYLOAD)
        else "rewritten by " + "/".join(flow.writers_of(F.PAYLOAD))
    ))


def main() -> None:
    print("== Figure 2: symbolic execution of firewall + server ==\n")
    config = parse_config(FIGURE2_NETWORK)
    engine = SymbolicEngine(SymGraph.from_click(config))
    exploration = engine.inject("client")
    print("symbolic flows delivered: %d  (model evaluations: %d)\n"
          % (len(exploration.delivered), exploration.steps))
    for flow in exploration.delivered:
        show_flow(flow)

    print("\n== The same proof, as the controller runs it ==\n")
    analyzer = SecurityAnalyzer()
    server_only = parse_config("""
        src :: FromNetfront();
        server :: EchoResponder();
        out :: ToNetfront();
        src -> server -> out;
    """)
    report = analyzer.analyze(server_only, ROLE_THIRD_PARTY)
    print("third-party EchoResponder verdict: %s" % report.verdict)
    print("-> the operator can host the content provider's server")
    print("   without sandboxing: every reply goes back to its sender.")

    print("\n== And a case it must refuse ==\n")
    spoofer = parse_config("""
        src :: FromNetfront();
        evil :: SetIPSrc(6.6.6.6);
        out :: ToNetfront();
        src -> evil -> out;
    """)
    report = analyzer.analyze(spoofer, ROLE_THIRD_PARTY)
    print("spoofing module verdict: %s" % report.verdict)
    for finding in report.findings:
        print("  %s" % finding)


if __name__ == "__main__":
    main()
