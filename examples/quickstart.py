#!/usr/bin/env python3
"""Quickstart: deploy the paper's Figure 4 push-notification batcher.

Builds the Figure 3 operator network, submits the client request from
Figure 4, watches the controller verify it with symbolic execution and
place it on the only compliant platform, then pushes real packets
through the deployed Click configuration.

Run:  python examples/quickstart.py
"""

from repro import ClientRequest, Controller, Packet, Runtime
from repro.click import UDP
from repro.common.addr import parse_ip
from repro.netmodel.examples import CLIENT_ADDR, figure3_network

FIGURE4_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""

FIGURE4_REQUIREMENTS = """
    reach from internet udp
        -> batcher:dst:0 dst 172.16.15.133
        -> client dst port 1500
           const proto && dst port && payload
"""


def main() -> None:
    print("== In-Net quickstart: the Figure 4 walkthrough ==\n")
    network = figure3_network()
    controller = Controller(network)

    print("Submitting the client request (role: operator customer)...")
    result = controller.request(ClientRequest(
        client_id="mobile1",
        role="client",
        config_source=FIGURE4_CONFIG,
        requirements=FIGURE4_REQUIREMENTS,
        owned_addresses=(CLIENT_ADDR,),
        module_name="batcher",
    ))
    if not result:
        raise SystemExit("request denied: %s" % result.reason)

    print("  accepted   : yes")
    print("  platform   : %s  (platforms 1/2 failed reachability)"
          % result.platform)
    print("  address    : %s" % result.address)
    print("  sandboxed  : %s" % result.sandboxed)
    print("  compile    : %.1f ms   check: %.1f ms"
          % (result.compile_seconds * 1e3, result.check_seconds * 1e3))

    print("\nPushing five UDP notifications through the module...")
    record = controller.deployed["batcher"]
    runtime = Runtime(record.config)
    source = record.config.sources()[0]
    for index in range(5):
        runtime.inject(source, Packet(
            ip_src=parse_ip("203.0.113.9"),
            ip_dst=parse_ip(result.address),
            ip_proto=UDP,
            tp_dst=1500,
            payload=b"notification-%d" % index,
            length=1024,
        ), at=float(index * 20))
    runtime.run(until=240.0)
    for egress in runtime.output:
        print("  t=%6.1fs  %s  payload=%s" % (
            egress.time, egress.packet, egress.packet["payload"].decode()
        ))
    print("\nAll five delivered in one 120-second batch -- the device's"
          " radio woke once instead of five times.")


if __name__ == "__main__":
    main()
