#!/usr/bin/env python3
"""An operator's day: parallel controllers, migration, and billing.

Shows the operational side of In-Net beyond a single request:

1. a pool of controller workers answers tenant requests in parallel
   (Section 4.3), with per-client ordering and capacity-conflict
   handling,
2. a module follows its user to another platform (re-verified there),
3. the monthly invoice: module-hours, traffic, verifications, and the
   sandbox surcharge (Section 2.1: users pay for their enforcer).

Run:  python examples/operator_console.py
"""

from repro.core import ClientRequest, ROLE_CLIENT, ROLE_THIRD_PARTY
from repro.core.cluster import ControllerPool
from repro.netmodel.examples import CLIENT_ADDR, figure3_network


def tenant_request(index: int) -> ClientRequest:
    return ClientRequest(
        client_id="tenant-%d" % index,
        role=ROLE_CLIENT,
        config_source="""
            FromNetfront() -> IPFilter(allow udp)
            -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> ToNetfront();
        """,
        owned_addresses=(CLIENT_ADDR,),
        module_name="mod-%d" % index,
    )


def main() -> None:
    print("== 1. A burst of tenant requests through the pool ==\n")
    pool = ControllerPool(figure3_network(), n_workers=4)
    controller = pool.controller
    # Use the controller's ledger with a deterministic clock.
    fake_now = [0.0]
    controller._clock = lambda: fake_now[0]

    tickets = [pool.submit(tenant_request(i)) for i in range(8)]
    # One sandboxed tenant: a third-party tunnel endpoint.
    tunnel_ticket = pool.submit(ClientRequest(
        client_id="tunnel-co",
        role=ROLE_THIRD_PARTY,
        config_source="FromNetfront() -> IPDecap() -> ToNetfront();",
        owned_addresses=(CLIENT_ADDR,),
        module_name="tunnel-exit",
    ))
    results = pool.process_all()
    accepted = sum(1 for r in results.values() if r.accepted)
    print("  %d/%d requests accepted in %d rounds"
          % (accepted, len(results), pool.stats.rounds))
    print("  verification: %.1f ms serial -> %.1f ms on 4 workers "
          "(%.1fx)" % (
              pool.stats.serial_seconds * 1e3,
              pool.stats.parallel_seconds * 1e3,
              pool.stats.speedup,
          ))
    print("  tunnel-exit sandboxed: %s"
          % results[tunnel_ticket].sandboxed)

    print("\n== 2. Processing follows the user ==\n")
    record = controller.deployed["mod-0"]
    target = "platform2" if record.platform != "platform2" \
        else "platform3"
    migration = controller.migrate("mod-0", target)
    print("  mod-0: %s -> %s (new address %s, downtime %.0f ms)"
          % (migration.source, migration.target, migration.new_address,
             migration.downtime_seconds * 1e3))

    print("\n== 3. Billing after a month ==\n")
    fake_now[0] = 30 * 24 * 3600.0
    controller.ledger.record_traffic(
        "mod-0", packets=2_000_000, byte_count=3_000_000_000,
    )
    for client in ("tenant-0", "tunnel-co"):
        invoice = controller.ledger.invoice(client, now=fake_now[0])
        print("  %s:" % client)
        for label, cost in invoice.lines:
            print("    %-38s %8.2f" % (label, cost))
        print("    %-38s %8.2f" % ("TOTAL", invoice.total))
    print("\nThe sandboxed tenant pays the enforcer surcharge -- "
          "billing the user for the sandboxing, as the paper has it.")


if __name__ == "__main__":
    main()
