#!/usr/bin/env python3
"""Regenerate the paper's Table 1: middlebox safety by requester role.

Runs the security analyzer over the canonical configuration of each of
the twelve middlebox functionalities, once per trust role, and prints
the verdict matrix.  Legend (matching the paper):

  X     rejected (definitely violates the security rules)
  ok    allowed (statically proven safe)
  ok(s) allowed but sandboxed (compliance only decidable at run time)

Run:  python examples/safety_audit.py
"""

from repro.common.addr import parse_ip
from repro.core import (
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
    SecurityAnalyzer,
)
from repro.core.catalog import TABLE1_FUNCTIONALITIES, catalog_config
from repro.core.security import addresses_to_whitelist

PRETTY = {
    "ip_router": "IP Router",
    "dpi": "DPI",
    "nat": "NAT",
    "transparent_proxy": "Transparent Proxy",
    "flow_meter": "Flow meter",
    "rate_limiter": "Rate limiter",
    "firewall": "Firewall",
    "tunnel": "Tunnel",
    "multicast": "Multicast",
    "dns_server": "DNS Server (stock)",
    "reverse_proxy": "Reverse proxy (stock)",
    "x86_vm": "x86 VM",
}

MARKS = {"allow": "ok", "sandbox": "ok(s)", "reject": "X"}


def main() -> None:
    module_addr = parse_ip("192.0.2.10")
    whitelist = addresses_to_whitelist([
        "172.16.15.133", "172.16.15.134",
        "198.51.100.1", "198.51.100.2", "198.51.100.3",
    ])
    analyzer = SecurityAnalyzer()
    header = "%-24s %-12s %-10s %-10s" % (
        "Functionality", "Third-party", "Client", "Operator",
    )
    print(header)
    print("-" * len(header))
    for name in TABLE1_FUNCTIONALITIES:
        config = catalog_config(name)
        row = [PRETTY[name]]
        for role in (ROLE_THIRD_PARTY, ROLE_CLIENT, ROLE_OPERATOR):
            report = analyzer.analyze(
                config, role,
                module_address=module_addr, whitelist=whitelist,
            )
            row.append(MARKS[report.verdict])
        print("%-24s %-12s %-10s %-10s" % tuple(row))
    print(
        "\nEvery cell matches Table 1 of the paper; run"
        " `pytest tests/core/test_security.py` for the assertion."
    )


if __name__ == "__main__":
    main()
