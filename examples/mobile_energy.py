#!/usr/bin/env python3
"""The push-notification energy experiment (Figure 13), end to end.

For each batching interval: deploy the batcher module through the
controller, run an hour of notification traffic through the deployed
Click configuration, and feed the observed delivery schedule to the
3G radio energy model.

Run:  python examples/mobile_energy.py
"""

from repro.usecases import PushNotificationScenario


def bar(value: float, scale: float = 4.0) -> str:
    return "#" * int(value / scale)


def main() -> None:
    scenario = PushNotificationScenario()
    print("Deploying the batcher and sweeping batching intervals")
    print("(1 KB notification every 30 s; one hour simulated)\n")
    unbatched = scenario.unbatched_power_mw()
    print("%-16s %10s   %s" % ("batch interval", "avg power", ""))
    print("%-16s %7.0f mW   %s" % (
        "immediate", unbatched, bar(unbatched)))
    for sample in scenario.energy_sweep():
        print("%13.0f s  %7.0f mW   %s" % (
            sample.batch_interval_s,
            sample.average_power_mw,
            bar(sample.average_power_mw),
        ))
    print(
        "\nBatching cuts average power from ~240 mW to ~140 mW"
        " (Figure 13): the client trades notification delay for"
        " battery life, and the operator gets to meter the pushes."
    )


if __name__ == "__main__":
    main()
