#!/usr/bin/env python3
"""A wide-area CDN on three operators' In-Net platforms (Figure 16).

The content provider holds credentials with access operators in
Romania, Germany and Italy.  Each squid cache is an x86 VM -- static
analysis cannot certify it, so every operator deploys it *sandboxed*
(and bills the surcharge).  Clients are steered to the nearest cache
by geolocation; the CDN halves the median 1 KB download delay and cuts
the tail by more.

Run:  python examples/wide_area_cdn.py
"""

import statistics

from repro.usecases import CdnScenario


def cdf_sketch(series, width=52):
    ordered = sorted(series)
    marks = []
    for q in range(0, 101, 2):
        index = min(len(ordered) - 1, int(q / 100 * len(ordered)))
        marks.append(ordered[index])
    peak = max(marks)
    return "".join(
        "#" if value <= peak * (i + 1) / len(marks) else "."
        for i, value in enumerate(marks)
    )


def main() -> None:
    scenario = CdnScenario()
    # Deterministic accounting clock: deploy at t=0, bill after 1 h.
    for info in scenario.federation.operators.values():
        info.controller._clock = lambda: 0.0
    print("Deploying three sandboxed x86 caches, one per operator...")
    scenario.deploy_caches()
    for module, operator in sorted(
        scenario.federation.deployments().items()
    ):
        controller = scenario.federation.operators[operator].controller
        record = controller.deployed[module]
        print("  %-16s -> %-18s platform=%s sandboxed=%s"
              % (module, operator, record.platform, record.sandboxed))

    print("\n75 European clients, 20 downloads of 1 KB each...")
    result = scenario.run()
    origin_ms = [d * 1e3 for d in result.origin_delays_s]
    cdn_ms = [d * 1e3 for d in result.cdn_delays_s]

    def stats(series):
        return (
            statistics.median(series),
            result.percentile([s / 1e3 for s in series], 90) * 1e3,
        )

    origin_median, origin_p90 = stats(origin_ms)
    cdn_median, cdn_p90 = stats(cdn_ms)
    print("\n  %-12s %10s %10s" % ("", "origin", "CDN"))
    print("  %-12s %8.1f ms %8.1f ms  (%.1fx)" % (
        "median", origin_median, cdn_median,
        origin_median / cdn_median))
    print("  %-12s %8.1f ms %8.1f ms  (%.1fx)" % (
        "p90", origin_p90, cdn_p90, origin_p90 / cdn_p90))

    by_cache = {}
    for client, cache in result.client_assignments.items():
        by_cache[cache] = by_cache.get(cache, 0) + 1
    print("\n  geolocation spread: %s" % ", ".join(
        "%s=%d" % (k.split('-')[1], v) for k, v in sorted(
            by_cache.items())
    ))

    fake_now = 3600.0
    bill = scenario.federation.total_invoice("smallcdn", fake_now)
    print("\n  combined hourly bill across operators: %.2f units "
          "(sandbox surcharge included)" % bill)


if __name__ == "__main__":
    main()
