#!/usr/bin/env python3
"""Defending against Slowloris with on-demand reverse proxies (Fig 15).

A web server with a bounded connection table is starved by a Slowloris
attacker.  The In-Net defense deploys stock reverse-proxy modules on
operator platforms (verified by the controller) and steers new clients
to them by geolocation; valid request throughput recovers while the
single-server baseline stays starved.

Run:  python examples/ddos_defense.py
"""

from repro.usecases import SlowlorisScenario


def sparkline(series, width=60, peak=None):
    peak = peak or (max(series) or 1.0)
    marks = " .:-=+*#%@"
    step = max(1, len(series) // width)
    out = []
    for index in range(0, len(series), step):
        value = series[index]
        out.append(marks[min(9, int(9 * value / peak))])
    return "".join(out)


def main() -> None:
    scenario = SlowlorisScenario()
    print("Running the attack twice: single server vs In-Net defense")
    timeline = scenario.run(
        duration_s=900, attack_start=120, defense_delay_s=180
    )
    peak = max(max(timeline.single_server), max(timeline.with_innet))
    print("\nvalid requests served per second (time ->)")
    print("  single server : %s" % sparkline(timeline.single_server,
                                             peak=peak))
    print("  with In-Net   : %s" % sparkline(timeline.with_innet,
                                             peak=peak))
    print("\n  attack starts at t=%.0fs; %d reverse proxies deployed"
          " at t=%.0fs; attack ends at t=%.0fs"
          % (timeline.attack_start, timeline.proxies_deployed,
             timeline.defense_at, timeline.attack_end))

    def mean(series, lo, hi):
        values = [
            v for t, v in zip(timeline.times, series) if lo <= t < hi
        ]
        return sum(values) / max(1, len(values))

    print("\n  %-22s %10s %10s" % ("window", "single", "in-net"))
    for label, lo, hi in (
        ("before attack", 0, timeline.attack_start),
        ("attack, no defense", timeline.attack_start,
         timeline.defense_at),
        ("attack, defended", timeline.defense_at + 60,
         timeline.attack_end),
    ):
        print("  %-22s %8.0f/s %8.0f/s" % (
            label,
            mean(timeline.single_server, lo, hi),
            mean(timeline.with_innet, lo, hi),
        ))


if __name__ == "__main__":
    main()
