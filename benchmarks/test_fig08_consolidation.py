"""Figure 8: cumulative throughput when a single ClickOS VM handles
configurations for multiple clients (IPClassifier demux + per-client
firewall).

Paper: essentially 10 Gb/s line rate up to ~150 clients, then the
single core saturates and the rate drops (to ~8.3 Gb/s at 252).
"""

from _report import fmt, print_table
from repro.click import parse_config
from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel

CONFIG_COUNTS = (24, 48, 72, 96, 120, 144, 168, 192, 216, 240, 252)

#: FromNetfront + IPFilter (firewall) + ToNetfront.
FIREWALL_PATH_COST = ThroughputModel(CHEAP_SERVER_SPEC).\
    config_element_cost(parse_config(
        "FromNetfront() -> IPFilter(allow tcp) -> ToNetfront();"
    ))


def sweep():
    model = ThroughputModel(CHEAP_SERVER_SPEC)
    return [
        (
            n,
            model.capacity_bps(
                1500,
                element_cost=FIREWALL_PATH_COST,
                consolidated_configs=n,
            ),
        )
        for n in CONFIG_COUNTS
    ]


def test_fig08_consolidated_throughput(benchmark):
    series = benchmark(sweep)
    rows = [(n, fmt(bps / 1e9, 2)) for n, bps in series]
    print_table(
        "Figure 8: cumulative throughput vs configs per VM (Gb/s)",
        ("configs", "measured Gb/s"),
        rows,
        note="Paper: ~line rate (9.8+) up to ~150 configs, dropping "
             "toward ~8.3 Gb/s at 252.",
    )
    by_count = dict(series)
    # Line rate until the knee...
    for n in (24, 96, 144):
        assert by_count[n] > 9.5e9
    # ...then a clear drop, but still above 8 Gb/s.
    assert 8.0e9 < by_count[252] < 9.0e9
    # Monotone non-increasing.
    values = [bps for _n, bps in series]
    assert values == sorted(values, reverse=True)
