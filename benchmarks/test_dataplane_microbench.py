"""Microbenchmarks of this implementation's own dataplane and verifier.

Not a paper figure: these measure the *reproduction's* Python packet
rate and verification throughput, so regressions in the substrate are
visible.  (The paper's dataplane numbers come from the calibrated cost
model, not from timing Python.)
"""

import gc
import statistics
import time

import pytest

from _report import fmt, print_table
from _traffic import (
    BATCH_SIZE,
    FIREWALL,
    drive_batch,
    drive_scalar,
    firewall_packet,
)
from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip


def test_runtime_packet_rate(benchmark):
    """Packets/second through a four-element firewall path."""
    config = parse_config(FIREWALL)
    runtime = Runtime(config)
    packet = firewall_packet()

    def push_one():
        runtime.inject("src", packet.copy())

    benchmark(push_one)
    assert runtime.output  # packets actually traversed


def test_runtime_batch_packet_rate(benchmark):
    """Packets/second through the same path via the batch fast path.

    One benchmark round pushes a whole ``BATCH_SIZE`` batch; the
    per-packet rate is the round rate times the batch size.
    """
    config = parse_config(FIREWALL)
    runtime = Runtime(config, use_columns=False)
    packet = firewall_packet()

    def push_batch():
        runtime.inject_batch("src", packet.copy_many(BATCH_SIZE))
        runtime.output.clear()

    benchmark(push_batch)


def test_runtime_columnar_packet_rate(benchmark):
    """Packets/second through the same path via column plans.

    Same shape as the batch benchmark above, but the batches lift into
    struct-of-arrays ``PacketColumns`` and run the vectorized element
    kernels instead of the per-packet ``push_batch`` loops.
    """
    pytest.importorskip("numpy")
    config = parse_config(FIREWALL)
    runtime = Runtime(config, use_columns=True)
    packet = firewall_packet()

    def push_columns():
        runtime.inject_batch("src", packet.copy_many(BATCH_SIZE))
        runtime.output.clear()

    benchmark(push_columns)
    assert runtime.columnar_batches > 0


def _median_pair_ratio(side_a, side_b, trials=9):
    """Median of per-pair time ratios a/b, alternating in-pair order.

    Same methodology as ``obs_overhead_check.py``: back-to-back pairs
    with alternating order cancel CPU-frequency drift, and the median
    ignores outlier pairs.  The GC is paused around each timed side.
    """

    def timed(fn):
        gc.disable()
        started = time.perf_counter()
        fn()
        elapsed = time.perf_counter() - started
        gc.enable()
        return elapsed

    ratios = []
    for trial in range(trials):
        if trial % 2:
            b = timed(side_b)
            a = timed(side_a)
        else:
            a = timed(side_a)
            b = timed(side_b)
        ratios.append(a / b)
    return statistics.median(ratios)


def test_batch_vs_scalar_speedup():
    """Measured batch-over-scalar speedup on the firewall microbench.

    The acceptance target for the batched dataplane is >=3x on this
    path; the assertion uses the CI gate's 2x floor so a loaded CI
    worker does not flake the suite, and the measured value is emitted
    as a FIGURE_JSON line for the record.
    """
    n_packets = 4000
    scalar_rt = Runtime(parse_config(FIREWALL))
    # use_columns=False: this measures the list-based executor; the
    # columnar tier is gated separately in columnar_speedup_check.py.
    batch_rt = Runtime(parse_config(FIREWALL), use_columns=False)
    template = firewall_packet()

    def scalar_side():
        drive_scalar(scalar_rt, "src", template.copy_many(n_packets))
        scalar_rt.output.clear()

    def batch_side():
        drive_batch(batch_rt, "src", template.copy_many(n_packets))
        batch_rt.output.clear()

    scalar_side()  # warm both paths before timing
    batch_side()
    speedup = _median_pair_ratio(scalar_side, batch_side)
    print_table(
        "Dataplane microbench: batch vs scalar (firewall path)",
        ("packets", "batch size", "speedup"),
        [[n_packets, BATCH_SIZE, fmt(speedup, 2)]],
        note="Median per-pair ratio of scalar over batch wall time; "
             "target >=3x, CI gate fails below 2x.",
    )
    assert speedup >= 2.0, speedup


def test_copy_many_rate(benchmark):
    """Bulk packet cloning rate via ``Packet.copy_many``."""
    template = firewall_packet()
    clones = benchmark(template.copy_many, BATCH_SIZE)
    assert len(clones) == BATCH_SIZE
    assert clones[0].fields == template.fields
    assert clones[0].uid != clones[1].uid


def test_copy_many_vs_copy_speedup():
    """``copy_many(n)`` must beat ``n`` scalar ``copy()`` calls."""
    template = firewall_packet()
    n = 20000

    def loop_copy():
        return [template.copy() for _ in range(n)]

    def bulk_copy():
        return template.copy_many(n)

    loop_copy(), bulk_copy()  # warm up
    speedup = _median_pair_ratio(loop_copy, bulk_copy)
    print_table(
        "Packet cloning: copy_many vs per-packet copy",
        ("clones", "speedup"),
        [[n, fmt(speedup, 2)]],
        note="Median per-pair ratio of copy()-loop over copy_many "
             "wall time.",
    )
    assert speedup > 1.0, speedup


def test_symbolic_analysis_rate(benchmark):
    """Full security analyses per second for a typical tenant config."""
    from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer
    from repro.core.security import addresses_to_whitelist

    config = parse_config(FIREWALL)
    analyzer = SecurityAnalyzer()
    whitelist = addresses_to_whitelist(["172.16.15.133"])

    def analyse():
        return analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.10"),
            whitelist=whitelist,
        )

    report = benchmark(analyse)
    assert report.verdict == "allow"


def test_parser_rate(benchmark):
    """Configuration parses per second (controller ingest path)."""
    config = benchmark(parse_config, FIREWALL)
    assert len(config.elements) == 5


def test_verdict_cache_warm_rate(benchmark):
    """Warm security analyses per second through the verdict cache.

    A warm hit replays the stored report instead of re-running
    symbolic execution, so it must beat the cold
    :func:`test_symbolic_analysis_rate` path by a wide margin.
    """
    import time

    from repro.core import (
        CachingSecurityAnalyzer,
        ROLE_THIRD_PARTY,
        SecurityAnalyzer,
    )
    from repro.core.security import addresses_to_whitelist

    config = parse_config(FIREWALL)
    whitelist = addresses_to_whitelist(["172.16.15.133"])
    address = parse_ip("192.0.2.10")
    caching = CachingSecurityAnalyzer()

    def analyse():
        return caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=address, whitelist=whitelist,
        )

    cold_report = SecurityAnalyzer().analyze(
        config, ROLE_THIRD_PARTY,
        module_address=address, whitelist=whitelist,
    )
    analyse()  # prime the cache
    report = benchmark(analyse)
    assert report.verdict == cold_report.verdict == "allow"
    assert report.egress_flows == cold_report.egress_flows

    # Cold vs warm wall-clock, same workload: fresh analyzer per call
    # (every probe misses) vs the primed cache above.
    iterations = 100
    started = time.perf_counter()
    for _ in range(iterations):
        CachingSecurityAnalyzer().analyze(
            config, ROLE_THIRD_PARTY,
            module_address=address, whitelist=whitelist,
        )
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iterations):
        analyse()
    warm_seconds = time.perf_counter() - started
    assert warm_seconds < cold_seconds, (warm_seconds, cold_seconds)


def test_stock_parse_memoized_rate(benchmark):
    """Stock-module instantiations per second (memoized parse + copy)."""
    from repro.core import stock_module_config

    config = benchmark(stock_module_config, "reverse-proxy")
    assert "rp" in config.elements
    # Each instantiation is an independent copy of the cached template.
    assert stock_module_config(
        "reverse-proxy"
    ) is not stock_module_config("reverse-proxy")
