"""Microbenchmarks of this implementation's own dataplane and verifier.

Not a paper figure: these measure the *reproduction's* Python packet
rate and verification throughput, so regressions in the substrate are
visible.  (The paper's dataplane numbers come from the calibrated cost
model, not from timing Python.)
"""

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""


def test_runtime_packet_rate(benchmark):
    """Packets/second through a four-element firewall path."""
    config = parse_config(FIREWALL)
    runtime = Runtime(config)
    packet = Packet(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )

    def push_one():
        runtime.inject("src", packet.copy())

    benchmark(push_one)
    assert runtime.output  # packets actually traversed


def test_symbolic_analysis_rate(benchmark):
    """Full security analyses per second for a typical tenant config."""
    from repro.core import ROLE_THIRD_PARTY, SecurityAnalyzer
    from repro.core.security import addresses_to_whitelist

    config = parse_config(FIREWALL)
    analyzer = SecurityAnalyzer()
    whitelist = addresses_to_whitelist(["172.16.15.133"])

    def analyse():
        return analyzer.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=parse_ip("192.0.2.10"),
            whitelist=whitelist,
        )

    report = benchmark(analyse)
    assert report.verdict == "allow"


def test_parser_rate(benchmark):
    """Configuration parses per second (controller ingest path)."""
    config = benchmark(parse_config, FIREWALL)
    assert len(config.elements) == 5


def test_verdict_cache_warm_rate(benchmark):
    """Warm security analyses per second through the verdict cache.

    A warm hit replays the stored report instead of re-running
    symbolic execution, so it must beat the cold
    :func:`test_symbolic_analysis_rate` path by a wide margin.
    """
    import time

    from repro.core import (
        CachingSecurityAnalyzer,
        ROLE_THIRD_PARTY,
        SecurityAnalyzer,
    )
    from repro.core.security import addresses_to_whitelist

    config = parse_config(FIREWALL)
    whitelist = addresses_to_whitelist(["172.16.15.133"])
    address = parse_ip("192.0.2.10")
    caching = CachingSecurityAnalyzer()

    def analyse():
        return caching.analyze(
            config, ROLE_THIRD_PARTY,
            module_address=address, whitelist=whitelist,
        )

    cold_report = SecurityAnalyzer().analyze(
        config, ROLE_THIRD_PARTY,
        module_address=address, whitelist=whitelist,
    )
    analyse()  # prime the cache
    report = benchmark(analyse)
    assert report.verdict == cold_report.verdict == "allow"
    assert report.egress_flows == cold_report.egress_flows

    # Cold vs warm wall-clock, same workload: fresh analyzer per call
    # (every probe misses) vs the primed cache above.
    iterations = 100
    started = time.perf_counter()
    for _ in range(iterations):
        CachingSecurityAnalyzer().analyze(
            config, ROLE_THIRD_PARTY,
            module_address=address, whitelist=whitelist,
        )
    cold_seconds = time.perf_counter() - started
    started = time.perf_counter()
    for _ in range(iterations):
        analyse()
    warm_seconds = time.perf_counter() - started
    assert warm_seconds < cold_seconds, (warm_seconds, cold_seconds)


def test_stock_parse_memoized_rate(benchmark):
    """Stock-module instantiations per second (memoized parse + copy)."""
    from repro.core import stock_module_config

    config = benchmark(stock_module_config, "reverse-proxy")
    assert "rp" in config.elements
    # Each instantiation is an independent copy of the cached template.
    assert stock_module_config(
        "reverse-proxy"
    ) is not stock_module_config("reverse-proxy")
