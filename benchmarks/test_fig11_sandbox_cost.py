"""Figure 11: the cost of sandboxing, by packet size.

Paper: with the ChangeEnforcer inside the configuration, 64B RX
throughput drops by a third (4.3 -> ~2.9 Mpps), 128B by about a fifth,
and larger packets show no measurable drop (line-rate bound).  Running
the enforcer in a separate VM drops 64B throughput to 1.5 Mpps, and
sandboxing x86 VMs costs ~70% -- which is why static checking, which
removes the need for the sandbox, matters.
"""

from _report import fmt, print_table
from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel
from repro.platform.throughput import (
    SANDBOX_INLINE,
    SANDBOX_NONE,
    SANDBOX_SEPARATE_VM,
)

PACKET_SIZES = (64, 128, 256, 512, 1024, 1472)


def sweep():
    model = ThroughputModel(CHEAP_SERVER_SPEC)
    out = []
    for size in PACKET_SIZES:
        base = model.capacity_pps(size, sandbox=SANDBOX_NONE)
        inline = model.capacity_pps(size, sandbox=SANDBOX_INLINE)
        separate = model.capacity_pps(size, sandbox=SANDBOX_SEPARATE_VM)
        out.append((size, base, inline, separate))
    return out


def test_fig11_sandbox_cost(benchmark):
    series = benchmark(sweep)
    rows = [
        (
            size,
            fmt(base / 1e6, 2),
            fmt(inline / 1e6, 2),
            "%d%%" % round(100 * (1 - inline / base)),
            fmt(separate / 1e6, 2),
        )
        for size, base, inline, separate in series
    ]
    print_table(
        "Figure 11: RX throughput (Mpps) with and without sandboxing",
        ("bytes", "no sandbox", "inline sandbox", "drop",
         "separate VM"),
        rows,
        note="Paper: -33% at 64B, -20% at 128B, ~0 at larger sizes; "
             "separate-VM sandboxing falls to 1.5 Mpps at 64B.",
    )
    by_size = {s: (b, i, v) for s, b, i, v in series}
    base64, inline64, separate64 = by_size[64]
    assert abs(base64 - 4.3e6) / 4.3e6 < 0.05
    assert abs((1 - inline64 / base64) - 1 / 3) < 0.03
    assert abs(separate64 - 1.5e6) / 1.5e6 < 0.05
    # The tax vanishes at MTU-like sizes (both line-rate bound).
    for size in (1024, 1472):
        base, inline, _vm = by_size[size]
        assert inline == base
    # Separate-VM sandboxing costs ~70% of 64B throughput -- the
    # "today's status quo" number static checking avoids.
    assert 0.6 <= 1 - separate64 / base64 <= 0.75
