"""Section 6 (VM density): how many VMs fit on the big box?

Paper: on a 64-core, 128 GB server they booted up to 200 stripped-down
Linux VMs (512 MB each) vs 10,000 ClickOS instances (~8 MB each) --
almost two orders of magnitude more.
"""

from _report import fmt, print_table
from repro.platform import (
    BIG_SERVER_SPEC,
    CHEAP_SERVER_SPEC,
    VM_CLICKOS,
    VM_LINUX,
)


def run():
    return {
        (spec.name, kind): spec.max_vms(kind)
        for spec in (BIG_SERVER_SPEC, CHEAP_SERVER_SPEC)
        for kind in (VM_CLICKOS, VM_LINUX)
    }


def test_memory_density(benchmark):
    capacities = benchmark(run)
    rows = [
        (
            "128 GB / 64-core",
            capacities[(BIG_SERVER_SPEC.name, VM_LINUX)],
            capacities[(BIG_SERVER_SPEC.name, VM_CLICKOS)],
            "200 / 10,000",
        ),
        (
            "16 GB / 4-core ($1k)",
            capacities[(CHEAP_SERVER_SPEC.name, VM_LINUX)],
            capacities[(CHEAP_SERVER_SPEC.name, VM_CLICKOS)],
            "-",
        ),
    ]
    print_table(
        "VM density: Linux vs ClickOS guests",
        ("server", "Linux VMs", "ClickOS VMs", "paper"),
        rows,
        note="ClickOS's ~8 MB footprint vs Linux's 512 MB is what "
             "makes per-user middleboxes affordable.",
    )
    assert capacities[(BIG_SERVER_SPEC.name, VM_LINUX)] == 200
    assert capacities[(BIG_SERVER_SPEC.name, VM_CLICKOS)] == 10_000
    ratio = (
        capacities[(BIG_SERVER_SPEC.name, VM_CLICKOS)]
        / capacities[(BIG_SERVER_SPEC.name, VM_LINUX)]
    )
    assert ratio >= 50  # "almost two orders of magnitude"
