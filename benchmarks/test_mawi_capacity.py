"""Section 6 (MAWI traces): is 1,000 clients a realistic target?

Paper: 15-minute MAWI backbone traces show at most 1,600-4,000 active
TCP connections and 400-840 active TCP clients at any moment, so a
single In-Net platform on commodity hardware could run personalized
firewalls for every active source on the backbone.
"""

from _report import fmt, print_table
from repro.platform import CHEAP_SERVER_SPEC
from repro.sim.traces import generate_trace, trace_statistics

SEEDS = (2014, 113, 114, 115, 116)  # "taken between Jan 13th-17th"


def run():
    return [
        trace_statistics(generate_trace(seed=seed)) for seed in SEEDS
    ]


def test_mawi_trace_statistics(benchmark):
    stats = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            "day %d" % (index + 1),
            s.total_connections,
            "%d-%d" % (s.min_active_connections,
                       s.max_active_connections),
            "%d-%d" % (s.min_active_clients, s.max_active_clients),
        )
        for index, s in enumerate(stats)
    ]
    print_table(
        "MAWI-like workload: activity per 15-minute trace",
        ("trace", "connections", "active conns", "active clients"),
        rows,
        note="Paper: 1,600-4,000 active connections and 400-840 "
             "active clients at any moment.",
    )
    for s in stats:
        assert s.max_active_connections <= 4000
        assert s.max_active_clients <= 840
        assert s.max_active_clients >= 400

    max_clients = max(s.max_active_clients for s in stats)
    capacity = CHEAP_SERVER_SPEC.max_vms("clickos")
    print_table(
        "Capacity argument",
        ("peak active clients", "cheap-box VM capacity", "headroom"),
        [(max_clients, capacity,
          fmt(capacity / max_clients, 1) + "x")],
        note="One $1,000 platform covers every active source on the "
             "backbone, with consolidation adding further headroom.",
    )
    assert capacity > max_clients
