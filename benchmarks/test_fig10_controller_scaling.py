"""Figure 10: static-analysis time vs operator network size.

Paper: checking a client request takes "compilation" (building the
verifiable model) plus "checking" (symbolic execution); both scale
linearly with the number of middleboxes (1..1023), with compilation
dominating.  SYMNET checks a 1,000-box network in ~1.3 s.

Our absolute times are faster (no Haskell toolchain -- model
construction is Python object instantiation), but the *shape* is the
claim: both phases must grow linearly.
"""

import time

from _report import fmt, print_table
from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import figure3_network, linear_network
from repro.netmodel.symgraph import NetworkCompiler
from repro.policy import parse_requirement
from repro.symexec.reachability import ReachabilityChecker

SIZES = (1, 3, 7, 15, 31, 63, 127, 255, 511)


def measure_one(n_middleboxes):
    network = linear_network(n_middleboxes)
    requirement = parse_requirement("reach from internet -> client")
    started = time.perf_counter()
    compiled = NetworkCompiler(network).compile()
    compile_s = time.perf_counter() - started
    started = time.perf_counter()
    exploration = compiled.explore_from(
        requirement.origin.node, requirement.origin.flow
    )
    result = ReachabilityChecker(compiled.resolver).check(
        requirement, exploration
    )
    check_s = time.perf_counter() - started
    assert result.satisfied
    return compile_s, check_s


def sweep():
    return [(n,) + measure_one(n) for n in SIZES]


def test_fig10_static_analysis_scaling(benchmark):
    series = benchmark.pedantic(sweep, rounds=3, iterations=1)
    rows = [
        (n, fmt(c * 1e3, 2), fmt(k * 1e3, 2), fmt((c + k) * 1e3, 2))
        for n, c, k in series
    ]
    print_table(
        "Figure 10: static analysis time vs #middleboxes",
        ("middleboxes", "compile (ms)", "check (ms)", "total (ms)"),
        rows,
        note="Paper: linear growth; compilation dominates; 1,000 boxes"
             " check in ~1.3 s on their setup.",
    )
    totals = {n: c + k for n, c, k in series}
    # Linear shape: growing 511/15 = 34x in size must grow time by
    # less than ~80x (allows constant overheads + noise) and more
    # than ~8x (i.e. clearly not constant).
    growth = totals[511] / totals[15]
    assert 8 <= growth <= 80, growth
    checks = {n: k for n, _c, k in series}
    assert checks[511] > checks[63] > checks[15]


def test_fig10_figure3_request_latency(benchmark):
    """Section 6.1: one request on the Figure 3 topology.

    Paper: 101 ms to compile the Haskell rules, 5 ms to analyse.
    Ours is faster in absolute terms; what must hold is that the
    whole decision stays interactive (well under a second).
    """

    def run():
        controller = Controller(figure3_network())
        result = controller.request(ClientRequest(
            client_id="mobile1",
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() ->
                IPFilter(allow udp port 1500) ->
                IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> TimedUnqueue(120, 100)
                -> dst :: ToNetfront();
            """,
            requirements="reach from internet udp"
                         " -> client dst port 1500",
            owned_addresses=("172.16.15.133",),
            module_name="batcher",
        ))
        assert result.accepted
        return result

    result = benchmark(run)
    print_table(
        "Section 6.1: request decision latency (Figure 3 topology)",
        ("phase", "measured (ms)", "paper (ms)"),
        [
            ("compile", fmt(result.compile_seconds * 1e3, 2), "101"),
            ("check", fmt(result.check_seconds * 1e3, 2), "5"),
        ],
        note="Interactive either way: checking happens only at module "
             "install time, never per packet.",
    )
    assert result.compile_seconds + result.check_seconds < 1.0


def test_fig10_admission_fast_path_cold_vs_warm(benchmark):
    """Admission fast path: the first request pays a full network
    compile; later requests graft only their own module branch onto
    the cached model, so compile time collapses.
    """
    network = linear_network(63)
    controller = Controller(network)

    def make_request(index):
        return ClientRequest(
            client_id="mobile%d" % index,
            role=ROLE_CLIENT,
            config_source="""
                FromNetfront() ->
                IPFilter(allow udp port 1500) ->
                IPRewriter(pattern - - 172.16.15.133 - 0 0)
                -> TimedUnqueue(120, 100)
                -> dst :: ToNetfront();
            """,
            requirements="reach from internet udp"
                         " -> client dst port 1500",
            owned_addresses=("172.16.15.133",),
            module_name="batcher%d" % index,
        )

    cold = controller.request(make_request(0), dry_run=True)
    assert cold.accepted

    counter = iter(range(1, 10_000))

    def warm_request():
        result = controller.request(
            make_request(next(counter)), dry_run=True
        )
        assert result.accepted
        return result

    warm = benchmark(warm_request)
    print_table(
        "Admission fast path: cold vs warm request"
        " (63-middlebox linear network)",
        ("phase", "cold (ms)", "warm (ms)"),
        [
            ("compile", fmt(cold.compile_seconds * 1e3, 2),
             fmt(warm.compile_seconds * 1e3, 2)),
            ("check", fmt(cold.check_seconds * 1e3, 2),
             fmt(warm.check_seconds * 1e3, 2)),
        ],
        note="Warm compile is the incremental module graft only; the"
             " operator network model is reused across requests.",
    )
    # The tentpole claim: warm compile is measurably cheaper than the
    # cold full-network compile.
    assert warm.compile_seconds < cold.compile_seconds * 0.5, (
        warm.compile_seconds, cold.compile_seconds
    )
    # Decisions themselves are unchanged by the cache.
    assert warm.platform == cold.platform
    assert warm.sandboxed == cold.sandboxed
