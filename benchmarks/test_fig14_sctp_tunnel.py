"""Figure 14: SCTP performance when tunneling over TCP vs UDP.

Paper: on a 100 Mb/s, 20 ms-RTT emulated WAN link, SCTP over a TCP
tunnel delivers two to five times less throughput than over a UDP
tunnel once random loss reaches 1-5%.  Choosing the right tunnel via
an In-Net reachability query takes ~200 ms vs the 3 s SCTP timeout.
"""

import pytest

from _report import fmt, print_table
from repro.usecases import TunnelScenario

LOSSES = (0.0, 0.01, 0.02, 0.03, 0.04, 0.05)


def run_sweep():
    return TunnelScenario().sweep(LOSSES)


def test_fig14_tunnel_goodput(benchmark):
    samples = benchmark(run_sweep)
    rows = [
        (
            "%.0f%%" % (s.loss * 100),
            fmt(s.udp_goodput_bps / 1e6, 1),
            fmt(s.tcp_goodput_bps / 1e6, 1),
            fmt(s.ratio, 1) if s.loss else "-",
        )
        for s in samples
    ]
    print_table(
        "Figure 14: SCTP goodput through UDP vs TCP tunnels (Mb/s)",
        ("loss", "UDP tunnel", "TCP tunnel", "UDP/TCP"),
        rows,
        note="Paper: at 1-5% loss the TCP tunnel gives two to five "
             "times less throughput (control-loop stacking).",
    )
    for sample in samples:
        if sample.loss == 0:
            assert sample.udp_goodput_bps > 90e6
        else:
            assert 2.0 <= sample.ratio <= 6.0
    ratios = [s.ratio for s in samples if s.loss > 0]
    assert ratios == sorted(ratios)  # the gap widens with loss
    assert ratios[0] == pytest.approx(2.4, abs=0.5)
    assert ratios[-1] == pytest.approx(5.3, abs=0.8)


def test_fig14_empirical_crossvalidation(benchmark):
    """The same experiment, packet-level: an AIMD simulation over a
    seeded lossy link must reproduce the analytic series' ordering."""
    from repro.sim.cc import (
        simulate_sctp_over_tcp,
        simulate_sctp_over_udp,
    )

    def run():
        rows = []
        for loss in (0.0, 0.01, 0.03, 0.05):
            udp = sum(
                simulate_sctp_over_udp(
                    100e6, 0.02, loss, seed=s, duration_s=120.0
                ).goodput_bps
                for s in range(6)
            ) / 6
            tcp = sum(
                simulate_sctp_over_tcp(
                    100e6, 0.02, loss, seed=s, duration_s=120.0
                ).goodput_bps
                for s in range(6)
            ) / 6
            rows.append((loss, udp, tcp))
        return rows

    rows_raw = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = [
        (
            "%.0f%%" % (loss * 100),
            fmt(udp / 1e6, 1),
            fmt(tcp / 1e6, 1),
            fmt(udp / tcp, 1) if loss else "-",
        )
        for loss, udp, tcp in rows_raw
    ]
    print_table(
        "Figure 14 (empirical): packet-level AIMD simulation (Mb/s)",
        ("loss", "UDP tunnel", "TCP tunnel", "UDP/TCP"),
        rows,
        note="Cross-validates the analytic Padhye series: same "
             "ordering, the gap widening with loss.",
    )
    for loss, udp, tcp in rows_raw:
        if loss > 0:
            assert udp / tcp >= 1.5
    ratios = [u / t for loss, u, t in rows_raw if loss > 0]
    assert ratios == sorted(ratios)


def test_fig14_tunnel_selection_latency(benchmark):
    scenario = TunnelScenario()

    def query():
        return scenario.udp_reachable("8.8.8.8")

    reachable = benchmark(query)
    assert reachable is True
    print_table(
        "Section 8: learning which tunnel works",
        ("method", "latency"),
        [
            ("In-Net reachability query",
             fmt(scenario.selection_latency_s(True), 1) + " s"),
            ("SCTP init timeout fallback",
             fmt(scenario.selection_latency_s(False), 1) + " s"),
        ],
        note="The API answer (~200 ms) beats waiting for the 3 s "
             "timeout by 15x.",
    )
