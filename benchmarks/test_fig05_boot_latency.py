"""Figure 5: ClickOS reaction time for the first 15 packets of 100
concurrent flows (on-the-fly VM instantiation).

Paper: the first packet pays VM creation -- ~50 ms RTT on average, up
to ~100 ms for the 100th concurrent VM; subsequent packets take well
under a millisecond.  Stripped-down Linux VMs pay ~700 ms.
"""

import pytest

from _report import fmt, print_table
from repro.platform import PlatformSim, VM_LINUX


def run_ping_experiment(n_flows=100, probes=15):
    sim = PlatformSim()
    results = []
    for index in range(n_flows):
        sim.register_client("c%d" % index)
        results.append(
            sim.ping("c%d" % index, start=0.0, count=probes)
        )
    sim.loop.run()
    return results


def test_fig05_clickos_reaction_time(benchmark):
    results = benchmark(run_ping_experiment)
    firsts = sorted(r.rtts[0] for r in results)
    rest = [rtt for r in results for rtt in r.rtts[1:]]
    rows = [
        ("first packet (min)", fmt(firsts[0] * 1e3, 1), "~30"),
        ("first packet (mean)",
         fmt(sum(firsts) / len(firsts) * 1e3, 1), "~50"),
        ("first packet (max, 100th VM)",
         fmt(firsts[-1] * 1e3, 1), "~100"),
        ("later packets (mean)",
         fmt(sum(rest) / len(rest) * 1e3, 2), "<1"),
    ]
    print_table(
        "Figure 5: ping RTT through on-the-fly ClickOS VMs",
        ("metric", "measured (ms)", "paper (ms)"),
        rows,
    )
    assert 0.04 <= sum(firsts) / len(firsts) <= 0.08
    assert firsts[-1] <= 0.12
    assert max(rest) < 0.005


def test_fig05_linux_baseline(benchmark):
    def run():
        sim = PlatformSim()
        sim.register_client("lin", kind=VM_LINUX)
        result = sim.ping("lin", start=0.0, count=1)
        sim.loop.run()
        return result

    result = benchmark(run)
    print_table(
        "Figure 5 (baseline): Linux VM first-packet RTT",
        ("metric", "measured (ms)", "paper (ms)"),
        [("first packet", fmt(result.rtts[0] * 1e3, 0), "~700")],
        note="An order of magnitude slower than ClickOS, unacceptable "
             "for interactive traffic.",
    )
    assert 0.6 <= result.rtts[0] <= 0.8
