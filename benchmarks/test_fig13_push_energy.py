"""Figure 13 (and the Section 8 HTTP-vs-HTTPS numbers): mobile energy.

Paper: batching push traffic into larger intervals cuts average power
from ~240 mW (30 s) to ~140 mW (240 s).  Separately, downloading at
8 Mb/s costs 570 mW over HTTP and 650 mW over HTTPS (+15%, the TLS
decryption CPU).
"""

import pytest

from _report import fmt, print_table
from repro.sim.energy import download_power_mw
from repro.usecases import PushNotificationScenario

PAPER_VALUES = {30: 240, 60: None, 120: None, 240: 140}


def run_sweep():
    scenario = PushNotificationScenario()
    return scenario.energy_sweep(window_s=3600.0)


def test_fig13_batching_energy(benchmark):
    samples = benchmark.pedantic(run_sweep, rounds=1, iterations=1)
    rows = [
        (
            int(s.batch_interval_s),
            fmt(s.average_power_mw, 0),
            PAPER_VALUES[int(s.batch_interval_s)] or "-",
            s.batches_delivered,
        )
        for s in samples
    ]
    print_table(
        "Figure 13: average power vs batching interval",
        ("interval (s)", "measured (mW)", "paper (mW)", "batches/h"),
        rows,
        note="Each point deploys the Figure 4 module via the "
             "controller and runs an hour of traffic through the "
             "deployed Click configuration.",
    )
    by_interval = {
        int(s.batch_interval_s): s.average_power_mw for s in samples
    }
    assert by_interval[30] == pytest.approx(240, abs=15)
    assert by_interval[240] == pytest.approx(140, abs=15)
    powers = [s.average_power_mw for s in samples]
    assert powers == sorted(powers, reverse=True)


def test_http_vs_https_energy(benchmark):
    def measure():
        return (
            download_power_mw(8e6, https=False),
            download_power_mw(8e6, https=True),
        )

    http_mw, https_mw = benchmark(measure)
    print_table(
        "Section 8: download power at 8 Mb/s, HTTP vs HTTPS",
        ("protocol", "measured (mW)", "paper (mW)"),
        [
            ("HTTP", fmt(http_mw, 0), "570"),
            ("HTTPS", fmt(https_mw, 0), "650"),
        ],
        note="The ~15% HTTPS premium is why clients would rather ask "
             "the operator for a payload invariant than encrypt.",
    )
    assert http_mw == pytest.approx(570, abs=5)
    assert https_mw == pytest.approx(650, abs=10)
    assert (https_mw - http_mw) / http_mw == pytest.approx(0.14,
                                                           abs=0.03)
