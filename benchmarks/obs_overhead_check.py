"""Dataplane observability overhead gate.

Times the four-element FIREWALL push path (the same workload as
``test_runtime_packet_rate``) twice -- once on an uninstrumented
:class:`Runtime` and once with a live :class:`repro.obs.Observability`
-- and fails if the instrumented path is more than ``--threshold``
slower.  Run by the ``obs-overhead`` CI job::

    PYTHONPATH=src python benchmarks/obs_overhead_check.py

Timing runs as many fine-grained baseline/instrumented pairs with
alternating order; the reported overhead is the median of the per-pair
ratios, which neither scheduler noise nor CPU-frequency drift in a
single pair can move.
"""

from __future__ import annotations

import argparse
import gc
import os
import statistics
import sys
import time

if os.environ.get("PYTHONHASHSEED") is None:
    # Hash randomization moves dict/set layouts between processes,
    # which skews the two sides differently run to run; re-exec with a
    # fixed seed so the measurement is reproducible.
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip
from repro.obs import Observability

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""


def _push_seconds(runtime: Runtime, packet: Packet,
                  packets: int) -> float:
    """Wall-clock for pushing ``packets`` copies of ``packet``.

    The garbage collector is paused around the timed region so its
    pauses do not land inside one side's measurement.
    """
    copies = packet.copy_many(packets)
    gc.disable()
    started = time.perf_counter()
    for copy in copies:
        runtime.inject("src", copy)
    elapsed = time.perf_counter() - started
    gc.enable()
    runtime.output.clear()
    return elapsed


def measure(packets: int, trials: int):
    """``(baseline_seconds, instrumented_seconds, overhead)``.

    Trials run in back-to-back baseline/instrumented pairs, with the
    in-pair order alternating each trial, so CPU-frequency drift and
    scheduler noise hit both sides alike; the overhead is the *median*
    of the per-pair ratios, which a single noisy pair cannot move.
    """
    packet = Packet(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )
    baseline_runtime = Runtime(parse_config(FIREWALL))
    instrumented_runtime = Runtime(
        parse_config(FIREWALL), obs=Observability()
    )
    # Warm both paths (imports, lazy metric children) before timing.
    _push_seconds(baseline_runtime, packet, packets)
    _push_seconds(instrumented_runtime, packet, packets)
    baseline = instrumented = float("inf")
    ratios = []
    for trial in range(trials):
        if trial % 2:
            instr = _push_seconds(instrumented_runtime, packet, packets)
            base = _push_seconds(baseline_runtime, packet, packets)
        else:
            base = _push_seconds(baseline_runtime, packet, packets)
            instr = _push_seconds(instrumented_runtime, packet, packets)
        baseline = min(baseline, base)
        instrumented = min(instrumented, instr)
        ratios.append(instr / base)
    return baseline, instrumented, statistics.median(ratios) - 1.0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=1000,
                        help="packets pushed per trial")
    parser.add_argument("--trials", type=int, default=31,
                        help="baseline/instrumented trial pairs")
    parser.add_argument("--threshold", type=float, default=0.10,
                        help="maximum tolerated relative overhead")
    args = parser.parse_args(argv)
    baseline, instrumented, overhead = measure(args.packets, args.trials)
    print("baseline     : %8.3f ms  (%.0f pkt/s)"
          % (baseline * 1e3, args.packets / baseline))
    print("instrumented : %8.3f ms  (%.0f pkt/s)"
          % (instrumented * 1e3, args.packets / instrumented))
    print("overhead     : %+7.1f %%  (threshold %.0f %%)"
          % (overhead * 100.0, args.threshold * 100.0))
    if overhead > args.threshold:
        print("FAIL: observability overhead exceeds threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
