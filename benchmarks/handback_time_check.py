"""Hand-back time (MTTR) gate for federation shard revival.

Runs the full shard failure lifecycle -- a controller shard stops
answering health probes, the :class:`ShardHealthManager` declares it
dead after ``miss_threshold`` missed probes and fails it over to its
ring heir, then the repaired shard passes one probe and auto-revival
hands every adopted segment back -- across several seeds, and gates on
the *median* hand-back MTTR:

    MTTR = repair detection latency (one probe interval on the
           simulated clock)
         + journal replay + segment adoption wall-clock on the
           revived shard

With the default 0.5 s probe interval the detection term contributes
exactly 0.5 s and the replay of a CI-sized shard (a handful of
modules) runs in milliseconds, so a healthy federation hands state
back well inside the 3 s default gate.  Every run also proves the
revived federation digest matches the pre-crash baseline and the
federation invariants hold.  A regression in the revival fast path,
the journal replay, or the probe cadence trips this check.  Run by
the ``controller-federation`` CI job::

    PYTHONPATH=src python benchmarks/handback_time_check.py
"""

from __future__ import annotations

import argparse
import statistics
import sys

from _report import fmt, print_table

from repro.fedctl import FederatedControlPlane, ShardHealthManager
from repro.fedctl.invariants import (
    collect_federation_violations,
    federation_digest,
)
from repro.resilience.chaos import _module_request
from repro.sim.events import EventLoop


def _tenant_on(plane, shard_id, tag):
    probe = 0
    while True:
        client = "%s-%d" % (tag, probe)
        if plane.shard_map.owner(client) == shard_id:
            return client
        probe += 1


def measure(seed):
    """One lifecycle run: crash -> failover -> repair -> hand-back.

    Returns ``(handback, failures)``; the seed rotates the victim and
    scales the number of modules the replay must carry back.
    """
    loop = EventLoop()
    plane = FederatedControlPlane(
        shard_count=3, gossip_every=1, clock=lambda: loop.now,
    )
    modules_per_shard = 1 + seed % 3
    for index, shard_id in enumerate(plane.shards):
        for extra in range(modules_per_shard):
            client = _tenant_on(
                plane, shard_id, "s%d-m%d" % (index, extra),
            )
            decision = plane.submit(
                _module_request(client, "mod-%d-%d" % (index, extra))
            )
            assert decision, decision.result.reason
    victim = sorted(plane.shards)[seed % len(plane.shards)]
    baseline = federation_digest(plane)
    manager = ShardHealthManager(plane, loop, auto_revive=True)
    manager.start()

    failures = []
    manager.mark_crashed(victim)
    loop.run_until(loop.now + 5.0)
    if plane.shards[victim].alive:
        failures.append("probes never declared %s dead" % victim)
        manager.stop()
        return None, failures
    manager.mark_repaired(victim)
    loop.run_until(loop.now + 5.0)
    manager.stop()
    if not manager.revivals:
        failures.append("repaired %s was never revived" % victim)
        return None, failures
    handback = manager.revivals[-1]
    if not handback.digest_equal:
        failures.append("hand-back digests diverged on %s" % victim)
    if federation_digest(plane) != baseline:
        failures.append("federation digest drifted from baseline")
    failures.extend(collect_federation_violations(plane))
    return handback, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[1, 2, 3, 4, 5], metavar="SEED",
                        help="lifecycle seeds to run")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="maximum tolerated median hand-back"
                             " MTTR (s)")
    args = parser.parse_args(argv)
    rows = []
    mttrs = []
    broken = []
    for seed in args.seeds:
        handback, failures = measure(seed)
        if failures:
            broken.append((seed, failures))
        if handback is None:
            rows.append((seed, "NO", "-", "-", "-"))
            continue
        mttrs.append(handback.mttr_s)
        rows.append((
            seed,
            "yes" if not failures else "NO",
            len(handback.handed_back),
            handback.modules,
            fmt(handback.mttr_s, 3),
        ))
    median = statistics.median(mttrs) if mttrs else float("inf")
    print_table(
        "hand-back time (shard failure lifecycle)",
        ("seed", "green", "segments", "modules", "mttr_s"),
        rows,
        note="median hand-back MTTR %s s (threshold %s s)"
             % (fmt(median, 3), fmt(args.threshold, 1)),
    )
    for seed, failures in broken:
        for failure in failures:
            print("FAIL seed=%d: %s" % (seed, failure),
                  file=sys.stderr)
    if broken:
        return 1
    if median > args.threshold:
        print("FAIL: median hand-back MTTR %.3f s exceeds threshold"
              " %.1f s" % (median, args.threshold), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
