"""Symbolic-execution fast-path speedup gate.

Times a *cold* admission -- fresh :class:`Controller`, nothing compiled,
no verdicts cached -- on the 63-middlebox linear network twice: once
with the symbolic-execution fast path enabled (copy-on-write flow
forking, interned interval domains, memoized element models) and once
under :func:`repro.symexec.tuning.seed_mode`, which restores the
allocate-per-call seed behaviour.  Fails if the fast path is less than
``--threshold`` times faster.  Run by the ``symexec-speedup`` CI job::

    PYTHONPATH=src python benchmarks/symexec_speedup_check.py

The workload is the Figure 10 growth pattern at its largest published
point (63 middleboxes) admitting the paper's running example -- a
filter/rewrite/shape module -- under a bidirectional reachability
policy, so both exploration origins (internet-in and client-out) are
exercised.  ``tests/symexec/test_differential.py`` proves the two modes
produce byte-for-byte identical verdicts, traces and write logs; this
gate only checks that the fast path is *worth having*.

Methodology matches ``dataplane_speedup_check.py``: many back-to-back
seed/optimized pairs with alternating in-pair order, GC paused around
each timed region, and the reported speedup is the *median* of the
per-pair ratios, which neither scheduler noise nor CPU-frequency drift
in a single pair can move.
"""

from __future__ import annotations

import argparse
import gc
import os
import statistics
import sys
import time

if os.environ.get("PYTHONHASHSEED") is None:
    # Hash randomization moves dict/set layouts between processes,
    # which skews the two sides differently run to run; re-exec with a
    # fixed seed so the measurement is reproducible.
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

from _report import print_table

from repro.core import ClientRequest, Controller, ROLE_CLIENT
from repro.netmodel.examples import linear_network, star_network
from repro.symexec import tuning

#: The paper's running example: filter one UDP service, rewrite it to
#: the client's address, and shape it (Section 3's energy batcher).
MODULE_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - 172.16.15.133 - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
"""

#: A realistic client policy: the service must be reachable from the
#: internet, and the client must keep its own way out.  Two statements
#: means two exploration origins per admission.
REQUIREMENTS = """
    reach from internet udp -> client dst port 1500
    reach from client -> internet
"""


def _cold_admission_seconds(middleboxes: int) -> float:
    """Wall-clock for one fully cold admission, setup excluded.

    The network build and request construction stay outside the timed
    region; the clock covers exactly what a production controller does
    on a verdict-cache miss: parse, compile the network model, place,
    and symbolically verify.
    """
    net = linear_network(middleboxes)
    controller = Controller(net)
    request = ClientRequest(
        client_id="mobile0",
        role=ROLE_CLIENT,
        config_source=MODULE_CONFIG,
        requirements=REQUIREMENTS,
        owned_addresses=("172.16.15.133",),
        module_name="batcher0",
    )
    gc.disable()
    started = time.perf_counter()
    result = controller.request(request, dry_run=True)
    elapsed = time.perf_counter() - started
    gc.enable()
    assert result.accepted, result.reason
    return elapsed


def measure(middleboxes: int, trials: int):
    """``(seed_seconds, optimized_seconds, median_speedup)``.

    Trials run in back-to-back seed/optimized pairs with the in-pair
    order alternating each trial; the speedup is the median of the
    per-pair ratios.
    """
    # Warm both paths (imports, parser tables, interned universes).
    _cold_admission_seconds(middleboxes)
    with tuning.seed_mode():
        _cold_admission_seconds(middleboxes)
    seed = optimized = float("inf")
    ratios = []
    for trial in range(trials):
        if trial % 2:
            o = _cold_admission_seconds(middleboxes)
            with tuning.seed_mode():
                s = _cold_admission_seconds(middleboxes)
        else:
            with tuning.seed_mode():
                s = _cold_admission_seconds(middleboxes)
            o = _cold_admission_seconds(middleboxes)
        seed = min(seed, s)
        optimized = min(optimized, o)
        ratios.append(s / o)
    return seed, optimized, statistics.median(ratios)


def _policy_lines(platforms: int):
    """One localized reachability statement per platform segment.

    Each line's exploration footprint is {internet, router, platform_i},
    so a policy edit leaves every other line's cached verdict valid --
    the situation the incremental tier is built for.
    """
    return [
        "reach from internet udp dst net 192.0.%d.0/24 -> platform%d"
        % (index + 1, index)
        for index in range(platforms)
    ]


def _verdict_signature(results):
    return [(bool(r), str(r.requirement)) for r in results]


def _timed_snapshot(controller):
    gc.disable()
    started = time.perf_counter()
    results = controller.verify_snapshot()
    elapsed = time.perf_counter() - started
    gc.enable()
    return elapsed, results


def measure_incremental(platforms: int, trials: int):
    """``(warm_seconds, full_seconds, median_speedup)`` for a policy
    edit on a ``platforms``-segment star topology.

    Per trial: one new requirement is added to a verified policy, the
    re-verification is timed twice -- once against the warm verdict
    cache (re-explores only the new line) and once after flushing it
    (re-explores everything).  Both passes run over the same compiled
    model with the fast path on; the flushed pass re-warms the cache,
    so every trial starts from the same state.
    """
    base = _policy_lines(platforms - 1)
    extra = _policy_lines(platforms)[-1]
    net = star_network(platforms)
    controller = Controller(net, "\n".join(base))
    controller.verify_snapshot()  # prime: compile + cache every verdict
    warm = full = float("inf")
    ratios = []
    for _trial in range(trials):
        # The edit: retract + re-add the last line so exactly one
        # requirement is new to the cache, then verify the snapshot.
        controller.set_operator_requirements("\n".join(base))
        controller.set_operator_requirements("\n".join(base + [extra]))
        w, warm_results = _timed_snapshot(controller)
        controller._verification.flush()
        f, full_results = _timed_snapshot(controller)
        if _verdict_signature(warm_results) != \
                _verdict_signature(full_results):
            raise AssertionError(
                "incremental verdicts diverged from full re-exploration"
            )
        if not all(full_results):
            failed = [r for r in full_results if not r][0]
            raise AssertionError(
                "policy unsatisfied: %s: %s"
                % (failed.requirement, failed.reason)
            )
        warm = min(warm, w)
        full = min(full, f)
        ratios.append(f / w)
    cache_stats = controller.stats()["verification_cache"]
    assert cache_stats["hits"] > 0, cache_stats
    return warm, full, statistics.median(ratios)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--middleboxes", type=int, default=63,
                        help="middlebox count (Figure 10's largest)")
    parser.add_argument("--trials", type=int, default=21,
                        help="seed/optimized trial pairs")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="minimum required median speedup")
    parser.add_argument("--incremental", action="store_true",
                        help="gate incremental re-verification instead "
                             "of the cold fast path")
    parser.add_argument("--platforms", type=int, default=200,
                        help="star-topology segments (incremental mode)")
    args = parser.parse_args(argv)
    if args.incremental:
        warm, full, speedup = measure_incremental(
            args.platforms, args.trials
        )
        print_table(
            "Incremental re-verification: policy edit, %d segments"
            % args.platforms,
            ["mode", "best re-verify (ms)", "median speedup"],
            [
                ("full re-exploration", "%.3f" % (full * 1e3), "1.00x"),
                ("incremental (warm cache)", "%.3f" % (warm * 1e3),
                 "%.2fx" % speedup),
            ],
            note="policy edit adds 1 of %d requirements; the warm pass "
                 "re-explores only requirements whose footprint "
                 "changed" % args.platforms,
        )
        if speedup < args.threshold:
            print(
                "FAIL: incremental re-verification speedup %.2fx below "
                "threshold %.1fx" % (speedup, args.threshold),
                file=sys.stderr,
            )
            return 1
        print("OK")
        return 0
    seed, optimized, speedup = measure(args.middleboxes, args.trials)
    counters = tuning.counters()
    print_table(
        "Symbolic-execution fast path: cold admission, %d middleboxes"
        % args.middleboxes,
        ["mode", "best admission (ms)", "median speedup"],
        [
            ("seed", "%.3f" % (seed * 1e3), "1.00x"),
            ("optimized", "%.3f" % (optimized * 1e3),
             "%.2fx" % speedup),
        ],
        note="cumulative: %d forks, %d pruned, %d memo hits, "
             "%d COW copies" % (
                 counters["forks"], counters["prunes"],
                 counters["memo_hits"], counters["cow_copies"],
             ),
    )
    if speedup < args.threshold:
        print("FAIL: symexec fast-path speedup %.2fx below threshold "
              "%.1fx" % (speedup, args.threshold), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
