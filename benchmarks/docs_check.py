"""Documentation link and doctest gate.

Walks every Markdown page the repository publishes (``README.md`` and
``docs/*.md``), checks that each relative link points at a file that
exists and each ``#fragment`` at a heading that exists, then runs the
``>>>`` code blocks in ``docs/symexec.md`` as doctests.  Run by the
``docs-check`` CI job::

    PYTHONPATH=src python benchmarks/docs_check.py

External (``http``/``https``/``mailto``) links are deliberately not
fetched -- CI must not depend on the internet -- but everything the
repository can verify about itself is verified, so a renamed file, a
reworded heading, or an API drift in a documented example fails the
build instead of rotting quietly.
"""

from __future__ import annotations

import doctest
import re
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent

#: Pages whose links are checked.
PAGES = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))

#: Pages whose ``>>>`` blocks are executed.
DOCTEST_PAGES = [
    REPO / "docs" / "symexec.md",
    REPO / "docs" / "symexec-summaries.md",
]

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
_HEADING = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
_CODE_FENCE = re.compile(r"```.*?```", re.DOTALL)
_PY_BLOCK = re.compile(r"```python\n(.*?)```", re.DOTALL)


def github_slug(heading: str) -> str:
    """GitHub's anchor slug for a heading."""
    text = re.sub(r"[`*_]", "", heading.strip()).lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def anchors_of(page: Path) -> set:
    """Every anchor a page exposes (its heading slugs)."""
    source = _CODE_FENCE.sub("", page.read_text())
    return {github_slug(m.group(1)) for m in _HEADING.finditer(source)}


def check_links(page: Path) -> list:
    """Problems with a page's relative links, as readable strings."""
    problems = []
    source = _CODE_FENCE.sub("", page.read_text())
    for match in _LINK.finditer(source):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        path_part, _, fragment = target.partition("#")
        resolved = (
            page if not path_part else (page.parent / path_part)
        )
        if not resolved.exists():
            problems.append(
                "%s: broken link %r (no such file)"
                % (page.relative_to(REPO), target)
            )
            continue
        if fragment and resolved.suffix == ".md":
            if fragment not in anchors_of(resolved):
                problems.append(
                    "%s: broken anchor %r (no such heading in %s)"
                    % (page.relative_to(REPO), target,
                       resolved.relative_to(REPO))
                )
    return problems


def orphaned_docs() -> list:
    """``docs/*.md`` pages not reachable from README's docs index.

    Every documentation page must be linked (directly or transitively)
    from ``README.md``; an orphan is invisible to readers and rots.
    """
    reachable = set()
    frontier = [REPO / "README.md"]
    while frontier:
        page = frontier.pop()
        if page in reachable or not page.exists():
            continue
        reachable.add(page)
        source = _CODE_FENCE.sub("", page.read_text())
        for match in _LINK.finditer(source):
            target = match.group(1)
            if target.startswith(("http://", "https://", "mailto:")):
                continue
            path_part = target.partition("#")[0]
            if path_part and path_part.endswith(".md"):
                frontier.append((page.parent / path_part).resolve())
    return [
        "%s: orphaned (not reachable from README.md)"
        % page.relative_to(REPO)
        for page in sorted((REPO / "docs").glob("*.md"))
        if page.resolve() not in reachable
    ]


def run_doctests(page: Path) -> tuple:
    """``(attempted, failed)`` over a page's ``>>>`` python blocks."""
    runner = doctest.DocTestRunner(
        optionflags=doctest.NORMALIZE_WHITESPACE | doctest.ELLIPSIS
    )
    parser = doctest.DocTestParser()
    globs: dict = {}
    attempted = 0
    for index, match in enumerate(_PY_BLOCK.finditer(page.read_text())):
        block = match.group(1)
        if ">>>" not in block:
            continue  # illustrative snippet, not an executable session
        test = parser.get_doctest(
            block, globs, "%s[block %d]" % (page.name, index),
            str(page), 0,
        )
        runner.run(test, clear_globs=False)
        attempted += len(test.examples)
        globs = test.globs  # blocks build on earlier blocks
    return attempted, runner.failures


def main() -> int:
    problems = []
    for page in PAGES:
        problems.extend(check_links(page))
    problems.extend(orphaned_docs())
    for line in problems:
        print("FAIL:", line, file=sys.stderr)
    total_examples = 0
    total_failures = 0
    for page in DOCTEST_PAGES:
        attempted, failed = run_doctests(page)
        total_examples += attempted
        total_failures += failed
        print("%s: %d doctest examples, %d failures"
              % (page.relative_to(REPO), attempted, failed))
    print("%d pages, %d link problems, %d doctest failures"
          % (len(PAGES), len(problems), total_failures))
    if problems or total_failures:
        return 1
    if total_examples == 0:
        print("FAIL: no doctest examples found (extraction broken?)",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
