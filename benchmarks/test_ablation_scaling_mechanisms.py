"""Ablations of the platform's design choices (DESIGN.md section
"Design choices called out for ablation benches").

1. consolidation vs one-VM-per-client,
2. static checking vs always-sandbox,
3. on-the-fly boot vs a pre-booted pool,
4. suspend/resume vs terminate/boot for stateful modules.
"""

from _report import fmt, print_table
from repro.platform import (
    CHEAP_SERVER_SPEC,
    PlatformSim,
    ThroughputModel,
    boot_time,
    resume_time,
    suspend_time,
)
from repro.platform.specs import VM_CLICKOS
from repro.platform.throughput import SANDBOX_INLINE, SANDBOX_NONE


def test_ablation_consolidation_vs_one_vm_per_client(benchmark):
    """Serving 1,000 clients: shared VMs vs a VM per client."""

    def run():
        model = ThroughputModel(CHEAP_SERVER_SPEC)
        clients = 1000
        consolidated = model.capacity_bps(
            1500, element_cost=2.4,
            consolidated_configs=100, resident_vms=10,
        )
        one_per_client = model.capacity_bps(
            1500, element_cost=2.4,
            consolidated_configs=1, resident_vms=clients,
        )
        memory_shared = 10 * CHEAP_SERVER_SPEC.clickos_memory_mb
        memory_exclusive = clients * CHEAP_SERVER_SPEC.clickos_memory_mb
        return (consolidated, one_per_client,
                memory_shared, memory_exclusive)

    consolidated, exclusive, mem_shared, mem_exclusive = benchmark(run)
    print_table(
        "Ablation 1: consolidation vs one VM per client (1,000 clients)",
        ("placement", "capacity (Gb/s)", "memory (MB)"),
        [
            ("100 clients/VM (10 VMs)",
             fmt(consolidated / 1e9, 2), fmt(mem_shared, 0)),
            ("1 client/VM (1,000 VMs)",
             fmt(exclusive / 1e9, 2), fmt(mem_exclusive, 0)),
        ],
        note="Consolidation wins on both axes: fewer context switches "
             "and 100x less memory.",
    )
    assert consolidated > exclusive
    assert mem_shared < mem_exclusive / 50


def test_ablation_static_checking_vs_always_sandbox(benchmark):
    """What always-sandboxing (the status quo) would cost.

    Static checking proves most Table 1 configurations safe, so they
    run without the enforcer; a policy of sandboxing everything pays
    the Figure 11 tax on every single module.
    """

    def run():
        model = ThroughputModel(CHEAP_SERVER_SPEC)
        out = {}
        for size in (64, 128, 512):
            out[size] = (
                model.capacity_pps(size, sandbox=SANDBOX_NONE),
                model.capacity_pps(size, sandbox=SANDBOX_INLINE),
            )
        return out

    capacities = benchmark(run)
    # 10 of the 12 Table 1 functionalities are provably safe for the
    # roles that may deploy them -- they skip the sandbox entirely.
    statically_cleared = 10 / 12
    rows = []
    for size, (base, boxed) in sorted(capacities.items()):
        fleet_always = boxed
        fleet_checked = (
            statically_cleared * base + (1 - statically_cleared) * boxed
        )
        rows.append((
            size,
            fmt(fleet_always / 1e6, 2),
            fmt(fleet_checked / 1e6, 2),
            "+%d%%" % round(100 * (fleet_checked / fleet_always - 1)),
        ))
    print_table(
        "Ablation 2: always-sandbox vs static-checking-first (Mpps)",
        ("pkt bytes", "always sandbox", "check first", "gain"),
        rows,
        note="Fleet average assuming the Table 1 mix of workloads.",
    )
    base64, boxed64 = capacities[64]
    assert base64 > boxed64


def test_ablation_boot_on_demand_vs_prebooted(benchmark):
    """First-packet latency vs memory held by a pre-booted pool."""

    def run():
        sim_on_demand = PlatformSim()
        sim_on_demand.register_client("c")
        on_demand = sim_on_demand.ping("c", start=0.0, count=1)

        sim_pool = PlatformSim()
        sim_pool.register_client("c")
        sim_pool.force_boot("c")  # pre-booted before traffic
        pooled = sim_pool.ping("c", start=100.0, count=1)
        sim_on_demand.loop.run()
        sim_pool.loop.run()
        return on_demand.rtts[0], pooled.rtts[0]

    cold, warm = benchmark.pedantic(run, rounds=1, iterations=1)
    idle_pool_mb = 1000 * CHEAP_SERVER_SPEC.clickos_memory_mb
    print_table(
        "Ablation 3: on-the-fly boot vs pre-booted pool",
        ("policy", "first-packet RTT (ms)", "idle cost"),
        [
            ("boot on demand", fmt(cold * 1e3, 1), "none"),
            ("pre-booted pool", fmt(warm * 1e3, 2),
             "%.0f MB held for 1,000 idle clients" % idle_pool_mb),
        ],
        note="30 ms of first-packet latency buys the platform the "
             "ability to host every registered client, not just the "
             "currently-active ones.",
    )
    assert cold > 10 * warm
    assert cold < 0.1


def test_ablation_suspend_resume_vs_terminate_boot(benchmark):
    """Reactivating a stateful module: resume vs re-boot.

    Terminate/boot is slightly cheaper at low VM counts but destroys
    per-flow state, killing end-to-end connections (Section 5) --
    suspend/resume pays a comparable latency and keeps them alive.
    """

    def run():
        rows = []
        for residents in (0, 100, 200):
            rows.append((
                residents,
                suspend_time(CHEAP_SERVER_SPEC, residents)
                + resume_time(CHEAP_SERVER_SPEC, residents),
                boot_time(CHEAP_SERVER_SPEC, VM_CLICKOS, residents),
            ))
        return rows

    series = benchmark(run)
    print_table(
        "Ablation 4: suspend+resume vs terminate+boot (ms)",
        ("resident VMs", "suspend+resume", "terminate+boot",
         "state kept?"),
        [
            (n, fmt(cycle * 1e3, 1), fmt(boot * 1e3, 1),
             "yes / no")
            for n, cycle, boot in series
        ],
        note="Same order of magnitude either way; only suspend/resume "
             "preserves flow state, so stateful modules must use it.",
    )
    for _n, cycle, boot in series:
        assert cycle < 5 * boot  # comparable cost
