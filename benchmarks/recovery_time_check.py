"""Recovery-time (MTTR) gate for the self-healing control plane.

Runs the ``platform-crash`` chaos scenario -- a platform dies under
two tenant modules; the health monitor declares it dead and the
failover engine evacuates both -- across several fault-injection seeds
and gates on the *median* simulated mean-time-to-recovery:

    MTTR = detection latency (probe interval x miss threshold)
         + the slowest evacuated module's suspend->transfer->resume
           downtime

With the default 0.5 s probe interval and miss threshold 2, detection
contributes 0.5-1.0 s and the modeled migration downtime ~0.18 s
(suspend ~50 ms + 8 MB image at 1 Gb/s + resume ~60 ms), so a healthy
control plane recovers well inside the 3 s default gate.  A regression
in the monitor cadence, the evacuation fast path, or the downtime
model trips this check.  Run by the ``chaos`` CI job::

    PYTHONPATH=src python benchmarks/recovery_time_check.py
"""

from __future__ import annotations

import argparse
import statistics
import sys

from _report import fmt, print_table

from repro.resilience.chaos import run_scenario


def measure(seeds):
    """Run the crash scenario per seed; returns the report list."""
    reports = []
    for seed in seeds:
        report = run_scenario("platform-crash", seed=seed)
        reports.append(report)
    return reports


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--seeds", type=int, nargs="+",
                        default=[1, 2, 3, 4, 5], metavar="SEED",
                        help="fault-injection seeds to run")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="maximum tolerated median MTTR (s)")
    args = parser.parse_args(argv)
    reports = measure(args.seeds)
    rows = []
    for report in reports:
        rows.append((
            report.seed,
            "yes" if report.passed else "NO",
            len(report.evacuated),
            fmt(report.mttr_s or 0.0, 3),
        ))
    mttrs = [r.mttr_s for r in reports if r.mttr_s is not None]
    median = statistics.median(mttrs) if mttrs else float("inf")
    print_table(
        "recovery time (platform-crash failover)",
        ("seed", "green", "evacuated", "mttr_s"),
        rows,
        note="median MTTR %s s (threshold %s s)"
             % (fmt(median, 3), fmt(args.threshold, 1)),
    )
    broken = [r for r in reports if not r.passed]
    if broken:
        for report in broken:
            for failure in report.failures:
                print("FAIL seed=%d: %s" % (report.seed, failure),
                      file=sys.stderr)
        return 1
    if median > args.threshold:
        print("FAIL: median MTTR %.3f s exceeds threshold %.1f s"
              % (median, args.threshold), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
