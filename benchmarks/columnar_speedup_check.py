"""Columnar-dataplane speedup gate.

Times the four-element FIREWALL path (CheckIPHeader, a five-rule
service ACL in IPFilter, an IPRewriter NAT, a sink -- the shape of
``dataplane_speedup_check.py`` with a representative ruleset instead
of a two-rule one) twice -- once through the list-based ``push_batch``
segment executor and once through the struct-of-arrays column plans
(``push_columns`` kernels) -- and fails if the columnar path is less
than ``--threshold`` times faster.  The traffic mixes one flow per ACL
service, so scalar first-match walks the whole ruleset per packet
while the columnar filter evaluates each rule once per batch.  Run by
the ``dataplane-columnar`` CI job::

    PYTHONPATH=src python benchmarks/columnar_speedup_check.py

Methodology matches the other speedup gates: many fine-grained
batch/columnar pairs with alternating in-pair order, GC paused around
each timed region, and the reported speedup is the *median* of the
per-pair ratios, which neither scheduler noise nor CPU-frequency drift
in a single pair can move.  The traffic cycles through a handful of
flows so the columnar ``IPRewriter`` exercises its run-detection path,
not just the single-flow shortcut.
"""

from __future__ import annotations

import argparse
import gc
import json
import os
import statistics
import sys
import time

if os.environ.get("PYTHONHASHSEED") is None:
    # Hash randomization moves dict/set layouts between processes,
    # which skews the two sides differently run to run; re-exec with a
    # fixed seed so the measurement is reproducible.
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

from repro.click import Packet, Runtime, TCP, UDP, parse_config
from repro.click import columnar
from repro.common.addr import parse_ip

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow icmp,
                    allow udp dst port 53,
                    allow tcp dst port 22,
                    allow tcp dst port 443,
                    allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

#: Distinct flows in the packet train, one per ACL service
#: (interleaved in runs, so the columnar rewriter sees several runs
#: per batch and the filter's first-match spans the whole ruleset).
SERVICES = ((UDP, 53), (TCP, 22), (TCP, 443), (TCP, 80))
FLOWS = len(SERVICES)


def _make_packets(packets: int):
    templates = []
    for flow, (proto, dport) in enumerate(SERVICES):
        template = Packet(
            ip_src=parse_ip("8.8.8.%d" % (8 + flow)),
            ip_dst=parse_ip("192.0.2.10"),
            ip_proto=proto,
            tp_src=40000 + flow,
            tp_dst=dport,
        )
        template.flow_key()
        template.flow_hash()
        templates.append(template)
    per_flow = packets // FLOWS
    run = max(1, per_flow // 8)
    copies = []
    trains = [t.copy_many(per_flow) for t in templates]
    index = 0
    while len(copies) < per_flow * FLOWS:
        for train in trains:
            copies.extend(train[index:index + run])
        index += run
    return copies


def _seconds(runtime: Runtime, packets: int, batch_size: int) -> float:
    """Wall-clock for injecting a fresh train in batches."""
    copies = _make_packets(packets)
    gc.disable()
    started = time.perf_counter()
    inject_batch = runtime.inject_batch
    for index in range(0, len(copies), batch_size):
        inject_batch("src", copies[index:index + batch_size])
    elapsed = time.perf_counter() - started
    gc.enable()
    runtime.output.clear()
    return elapsed


def measure(packets: int, trials: int, batch_size: int):
    """``(batch_seconds, columnar_seconds, median_speedup)``.

    Trials run in back-to-back batch/columnar pairs with the in-pair
    order alternating each trial; the speedup is the median of the
    per-pair ratios.
    """
    batch_runtime = Runtime(parse_config(FIREWALL), use_columns=False)
    col_runtime = Runtime(parse_config(FIREWALL), use_columns=True)
    # Warm both paths (imports, lazily compiled segments/plans) first.
    _seconds(batch_runtime, packets, batch_size)
    _seconds(col_runtime, packets, batch_size)
    if not col_runtime.columnar_batches:
        raise RuntimeError(
            "columnar runtime did not take the column-plan path "
            "(numpy missing, or the firewall segment lost its kernels)"
        )
    batch = col = float("inf")
    ratios = []
    for trial in range(trials):
        if trial % 2:
            c = _seconds(col_runtime, packets, batch_size)
            b = _seconds(batch_runtime, packets, batch_size)
        else:
            b = _seconds(batch_runtime, packets, batch_size)
            c = _seconds(col_runtime, packets, batch_size)
        batch = min(batch, b)
        col = min(col, c)
        ratios.append(b / c)
    return batch, col, statistics.median(ratios)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=8192,
                        help="packets pushed per trial")
    parser.add_argument("--trials", type=int, default=31,
                        help="batch/columnar trial pairs")
    parser.add_argument("--batch-size", type=int, default=512,
                        help="packets per inject_batch call")
    parser.add_argument("--threshold", type=float, default=3.0,
                        help="minimum required columnar speedup")
    args = parser.parse_args(argv)
    if not columnar.available():
        print("SKIP: numpy unavailable, columnar tier disabled")
        return 0
    batch, col, speedup = measure(
        args.packets, args.trials, args.batch_size
    )
    print("batch    : %8.3f ms  (%.0f pkt/s)"
          % (batch * 1e3, args.packets / batch))
    print("columnar : %8.3f ms  (%.0f pkt/s)"
          % (col * 1e3, args.packets / col))
    print("speedup  : %7.2fx  (threshold %.1fx)"
          % (speedup, args.threshold))
    print("FIGURE_JSON: %s" % json.dumps({
        "figure": "columnar-speedup",
        "batch_pkts_per_s": args.packets / batch,
        "columnar_pkts_per_s": args.packets / col,
        "speedup": speedup,
        "threshold": args.threshold,
        "batch_size": args.batch_size,
    }))
    if speedup < args.threshold:
        print("FAIL: columnar dataplane speedup below threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
