"""Figure 16: a small CDN on In-Net platforms.

Paper: origin in Italy, three sandboxed x86 squid caches (Romania,
Germany, Italy), 75 PlanetLab clients spread by geolocation.  The CDN
halves the median 1 KB download delay and cuts the 90th percentile by
about four times.
"""

import statistics

from _report import fmt, print_table
from repro.usecases import CdnScenario


def run():
    scenario = CdnScenario()
    deployed = scenario.deploy_caches()
    result = scenario.run()
    return deployed, result


def test_fig16_cdn_download_delay(benchmark):
    deployed, result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert deployed == 3

    def stats(series):
        return (
            statistics.median(series) * 1e3,
            result.percentile(series, 90) * 1e3,
        )

    origin_median, origin_p90 = stats(result.origin_delays_s)
    cdn_median, cdn_p90 = stats(result.cdn_delays_s)
    rows = [
        ("median", fmt(origin_median, 1), fmt(cdn_median, 1),
         fmt(origin_median / cdn_median, 1) + "x", "~2x"),
        ("p90", fmt(origin_p90, 1), fmt(cdn_p90, 1),
         fmt(origin_p90 / cdn_p90, 1) + "x", "~4x"),
    ]
    print_table(
        "Figure 16: 1 KB download delay, origin vs CDN (ms)",
        ("percentile", "origin", "CDN", "improvement", "paper"),
        rows,
        note="75 clients, 20 downloads each; caches are x86 VMs the "
             "controller could not certify, so all three deployed "
             "sandboxed.",
    )
    assert origin_median / cdn_median >= 1.8
    assert origin_p90 / cdn_p90 >= 2.5
    # The tail improves at least as much as the median (geolocation
    # helps far clients most).
    assert origin_p90 / cdn_p90 >= 0.9 * origin_median / cdn_median
