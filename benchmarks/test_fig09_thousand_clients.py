"""Figure 9: throughput with up to 1,000 clients, for 50/100/200
clients per VM, all VMs pinned to a single core.

Paper: each client downloads at 8 Mb/s and the n-th client triggers a
new VM; the platform tracks demand all the way to ~8 Gb/s at 1,000
clients for every grouping.
"""

from _report import fmt, print_table
from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel

CLIENT_COUNTS = (100, 200, 400, 600, 800, 1000)
GROUPINGS = (50, 100, 200)
PER_CLIENT_BPS = 8e6
FIREWALL_COST = 2.4


def sweep():
    model = ThroughputModel(CHEAP_SERVER_SPEC)
    series = {}
    for per_vm in GROUPINGS:
        points = []
        for clients in CLIENT_COUNTS:
            vms = -(-clients // per_vm)
            delivered = model.aggregate_throughput_bps(
                1500,
                [PER_CLIENT_BPS] * clients,
                element_cost=FIREWALL_COST,
                consolidated_configs=min(per_vm, clients),
                resident_vms=vms,
            )
            points.append((clients, delivered))
        series[per_vm] = points
    return series


def test_fig09_thousand_clients(benchmark):
    series = benchmark(sweep)
    rows = []
    for clients in CLIENT_COUNTS:
        row = [clients]
        for per_vm in GROUPINGS:
            delivered = dict(series[per_vm])[clients]
            row.append(fmt(delivered / 1e9, 2))
        rows.append(row)
    print_table(
        "Figure 9: delivered throughput (Gb/s) vs #clients",
        ("clients", "50/VM", "100/VM", "200/VM"),
        rows,
        note="Paper: demand tracked linearly to ~8 Gb/s at 1,000 "
             "clients on one core for all three groupings.",
    )
    for per_vm in GROUPINGS:
        final = dict(series[per_vm])[1000]
        assert final > 0.95 * 8e9
        # Linear growth: throughput is demand-bound everywhere.
        values = [bps for _c, bps in series[per_vm]]
        assert values == sorted(values)
