"""Shared reporting helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
the series the paper plots, alongside the paper's reported values where
the text states them.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

from typing import Iterable, Sequence


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> None:
    """Print one reproduced figure/table as an aligned text table."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join("%-*s" % (w, h) for w, h in zip(widths, headers))
    print("\n=== %s ===" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join("%-*s" % (w, c) for w, c in zip(widths, row)))
    if note:
        print(note)


def fmt(value: float, digits: int = 2) -> str:
    """Format a float compactly."""
    return ("%%.%df" % digits) % value
