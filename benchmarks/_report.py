"""Shared reporting helpers for the benchmark harness.

Each benchmark regenerates one table or figure of the paper and prints
the series the paper plots, alongside the paper's reported values where
the text states them.  Run with::

    pytest benchmarks/ --benchmark-only -s
"""

from __future__ import annotations

import json
from typing import Iterable, Sequence

#: Prefix of the machine-readable line emitted after every table, so a
#: driver can ``grep '^FIGURE_JSON '`` a benchmark log and recover each
#: reproduced figure as one JSON object per line.
FIGURE_JSON_PREFIX = "FIGURE_JSON "


def figure_record(
    title: str,
    headers: Sequence[str],
    rows: Sequence[Sequence[str]],
    note: str = "",
) -> dict:
    """The JSON-serializable record for one reproduced figure/table."""
    return {
        "title": title,
        "headers": list(headers),
        "rows": [list(row) for row in rows],
        "note": note,
    }


def print_table(
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    note: str = "",
) -> None:
    """Print one reproduced figure/table as an aligned text table,
    followed by a machine-readable ``FIGURE_JSON`` line."""
    rows = [tuple(str(cell) for cell in row) for row in rows]
    widths = [len(h) for h in headers]
    for row in rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    line = "  ".join("%-*s" % (w, h) for w, h in zip(widths, headers))
    print("\n=== %s ===" % title)
    print(line)
    print("-" * len(line))
    for row in rows:
        print("  ".join("%-*s" % (w, c) for w, c in zip(widths, row)))
    if note:
        print(note)
    print(FIGURE_JSON_PREFIX + json.dumps(
        figure_record(title, headers, rows, note), sort_keys=True
    ))


def fmt(value: float, digits: int = 2) -> str:
    """Format a float compactly."""
    return ("%%.%df" % digits) % value
