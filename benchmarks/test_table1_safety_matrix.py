"""Table 1: running SYMNET to check middlebox safety.

Paper: for twelve middlebox functionalities and three requester roles,
static checking gives accurate verdicts; only the tunnel (third-party)
and the x86 VM need runtime sandboxing.
"""

from _report import print_table
from repro.common.addr import parse_ip
from repro.core import (
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
    SecurityAnalyzer,
)
from repro.core.catalog import TABLE1_FUNCTIONALITIES, catalog_config
from repro.core.security import addresses_to_whitelist

PAPER_TABLE1 = {
    "ip_router": ("X", "X", "ok"),
    "dpi": ("X", "X", "ok"),
    "nat": ("X", "X", "ok"),
    "transparent_proxy": ("X", "X", "ok"),
    "flow_meter": ("ok", "ok", "ok"),
    "rate_limiter": ("ok", "ok", "ok"),
    "firewall": ("ok", "ok", "ok"),
    "tunnel": ("ok(s)", "ok", "ok"),
    "multicast": ("ok", "ok", "ok"),
    "dns_server": ("ok", "ok", "ok"),
    "reverse_proxy": ("ok", "ok", "ok"),
    "x86_vm": ("ok(s)", "ok(s)", "ok"),
}

MARKS = {"allow": "ok", "sandbox": "ok(s)", "reject": "X"}


def run_matrix():
    analyzer = SecurityAnalyzer()
    module_addr = parse_ip("192.0.2.10")
    whitelist = addresses_to_whitelist([
        "172.16.15.133", "172.16.15.134",
        "198.51.100.1", "198.51.100.2", "198.51.100.3",
    ])
    matrix = {}
    for name in TABLE1_FUNCTIONALITIES:
        config = catalog_config(name)
        verdicts = tuple(
            MARKS[
                analyzer.analyze(
                    config, role,
                    module_address=module_addr, whitelist=whitelist,
                ).verdict
            ]
            for role in (ROLE_THIRD_PARTY, ROLE_CLIENT, ROLE_OPERATOR)
        )
        matrix[name] = verdicts
    return matrix


def test_table1_safety_matrix(benchmark):
    matrix = benchmark(run_matrix)
    rows = []
    mismatches = []
    for name in TABLE1_FUNCTIONALITIES:
        ours = matrix[name]
        paper = PAPER_TABLE1[name]
        rows.append((name,) + ours + (
            "match" if ours == paper else "MISMATCH %r" % (paper,),
        ))
        if ours != paper:
            mismatches.append(name)
    print_table(
        "Table 1: middlebox safety verdicts by requester role",
        ("functionality", "third-party", "client", "operator",
         "vs paper"),
        rows,
        note="X = rejected, ok = proven safe, ok(s) = needs sandbox.",
    )
    assert mismatches == [], mismatches
