"""Section 7: amplification attacks and their mitigations.

Not a figure in the paper, but a quantified claim: spoofed-source
traffic can turn a DNS-style module into an amplifier; ingress
filtering confines spoofing, and banning connectionless traffic
removes the vector entirely ("operators must choose between
flexibility of client processing and security").
"""

from _report import fmt, print_table
from repro.usecases.amplification import compare_mitigations


def test_amplification_mitigations(benchmark):
    rows_raw = benchmark.pedantic(
        lambda: compare_mitigations(queries=100), rounds=1, iterations=1
    )
    rows = [
        (label, fmt(factor, 1) + "x", packets)
        for label, factor, packets in rows_raw
    ]
    print_table(
        "Section 7: DNS-style amplification against an In-Net module",
        ("operator policy", "amplification", "packets at victim"),
        rows,
        note="Ingress filtering confines spoofing to the attacker's "
             "own domain; a TCP-only policy removes reflection "
             "entirely (no handshake, no response).",
    )
    by_label = {label: factor for label, factor, _p in rows_raw}
    assert by_label["UDP, no ingress filtering"] >= 5
    assert by_label["UDP, ingress filtering"] == 0
    assert by_label["TCP only (connectionless banned)"] == 0


def test_controller_pool_scaling(benchmark):
    """Section 4.3: parallelizing the controller.

    Sixteen tenants' requests sharded over four workers: per-client
    ordering holds, and the modeled wall-clock beats one controller.
    """
    from repro.core import ClientRequest, ROLE_CLIENT
    from repro.core.cluster import ControllerPool
    from repro.netmodel.examples import CLIENT_ADDR, figure3_network

    def run():
        pool = ControllerPool(figure3_network(), n_workers=4)
        for index in range(16):
            pool.submit(ClientRequest(
                client_id="tenant-%d" % index,
                role=ROLE_CLIENT,
                config_source="""
                    FromNetfront() -> IPFilter(allow udp)
                    -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
                    -> ToNetfront();
                """,
                owned_addresses=(CLIENT_ADDR,),
                module_name="mod-%d" % index,
            ))
        results = pool.process_all()
        return pool, results

    pool, results = benchmark.pedantic(run, rounds=1, iterations=1)
    print_table(
        "Section 4.3: controller pool, 16 requests over 4 workers",
        ("metric", "value"),
        [
            ("requests accepted",
             sum(1 for r in results.values() if r.accepted)),
            ("rounds", pool.stats.rounds),
            ("capacity conflicts", pool.stats.conflicts),
            ("serial verification",
             fmt(pool.stats.serial_seconds * 1e3, 1) + " ms"),
            ("parallel wall-clock (modeled)",
             fmt(pool.stats.parallel_seconds * 1e3, 1) + " ms"),
            ("speedup", fmt(pool.stats.speedup, 2) + "x"),
        ],
    )
    assert all(r.accepted for r in results.values())
    assert pool.stats.speedup > 1.5
