"""Sharded-dataplane scaling gate.

Replays the same multi-flow firewall workload (the Figure 12 firewall
path) through a 1-shard and an N-shard :class:`ShardedRuntime` -- both
on the multiprocessing executor, both with workers generating their own
packet trains so nothing per-packet crosses the parent boundary -- and
fails if the median N-shard speedup is below ``--threshold``.  Run by
the ``dataplane-scaling`` CI job::

    PYTHONPATH=src python benchmarks/dataplane_scaling_check.py

Methodology matches ``dataplane_speedup_check.py``: interleaved
1-shard/N-shard pairs with alternating in-pair order, GC paused around
each timed region, and the reported speedup is the *median* of the
per-pair ratios.  The flow partition is computed once, outside the
timed region, exactly as a deployment would program RSS once.

The gate is core-count aware: scaling across worker processes needs
real cores, so on machines with fewer than ``--min-cores`` usable CPUs
(or without the ``fork`` start method) the check prints ``SKIP`` and
exits 0 instead of measuring noise.
"""

from __future__ import annotations

import argparse
import gc
import multiprocessing
import os
import statistics
import sys
import time

if os.environ.get("PYTHONHASHSEED") is None:
    # Hash randomization moves dict/set layouts between processes,
    # which skews the two sides differently run to run; re-exec with a
    # fixed seed so the measurement is reproducible.
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

from _report import fmt, print_table
from _traffic import BATCH_SIZE, FIREWALL
from repro.click import ShardedRuntime, parse_config
from repro.sim.replay import _generate_flow_packets, shard_flows
from repro.sim.traces import Flow


def usable_cores() -> int:
    """CPUs this process may actually run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def make_flows(count: int) -> list:
    """``count`` distinct TCP flows toward the firewall's server."""
    return [
        Flow(start=0.0, duration=1.0, client=index, server=index % 16,
             sport=40000 + index % 20000, dport=80)
        for index in range(count)
    ]


def _replay_seconds(sharded, groups, per_flow, expected) -> float:
    """Wall-clock to generate, process, and count one full replay."""
    gc.disable()
    started = time.perf_counter()
    sharded.inject_generated(
        "src", _generate_flow_packets,
        [(group, per_flow, 64) for group in groups],
        batch_size=BATCH_SIZE,
    )
    count = sharded.collect(full=False).egress_count
    elapsed = time.perf_counter() - started
    gc.enable()
    if count != expected:
        raise AssertionError(
            "egress count %d != expected %d" % (count, expected)
        )
    return elapsed


def measure(flows: int, per_flow: int, trials: int, shards: int):
    """``(single_seconds, sharded_seconds, median_speedup)``."""
    config = parse_config(FIREWALL)
    trace = make_flows(flows)
    expected = flows * per_flow
    # Partition once, outside the timed region (RSS is programmed once).
    sharded_groups = shard_flows(trace, shards)
    single_groups = [trace]
    with ShardedRuntime(config, shards=1, executor="process") as single, \
            ShardedRuntime(config, shards=shards,
                           executor="process") as fanned:
        # Warm both sides (fork, imports, compiled segments).
        _replay_seconds(single, single_groups, per_flow, expected)
        _replay_seconds(fanned, sharded_groups, per_flow, expected)
        best_single = best_fanned = float("inf")
        ratios = []
        for trial in range(trials):
            if trial % 2:
                f = _replay_seconds(fanned, sharded_groups, per_flow,
                                    expected)
                s = _replay_seconds(single, single_groups, per_flow,
                                    expected)
            else:
                s = _replay_seconds(single, single_groups, per_flow,
                                    expected)
                f = _replay_seconds(fanned, sharded_groups, per_flow,
                                    expected)
            best_single = min(best_single, s)
            best_fanned = min(best_fanned, f)
            ratios.append(s / f)
    return best_single, best_fanned, statistics.median(ratios)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--flows", type=int, default=600,
                        help="distinct flows per trial")
    parser.add_argument("--packets-per-flow", type=int, default=16,
                        help="packets per flow per trial")
    parser.add_argument("--trials", type=int, default=21,
                        help="1-shard/N-shard trial pairs")
    parser.add_argument("--shards", type=int, default=4,
                        help="worker shards on the fanned-out side")
    parser.add_argument("--threshold", type=float, default=2.5,
                        help="minimum required median speedup")
    parser.add_argument("--min-cores", type=int, default=4,
                        help="usable cores below which the gate skips")
    args = parser.parse_args(argv)
    cores = usable_cores()
    if cores < args.min_cores:
        print("SKIP: %d usable core(s) < %d required; sharded scaling "
              "needs real cores to measure" % (cores, args.min_cores))
        return 0
    if "fork" not in multiprocessing.get_all_start_methods():
        print("SKIP: no fork start method; cannot run process shards")
        return 0
    packets = args.flows * args.packets_per_flow
    single, fanned, speedup = measure(
        args.flows, args.packets_per_flow, args.trials, args.shards
    )
    print_table(
        "Sharded dataplane scaling (firewall path, %d flows x %d pkts)"
        % (args.flows, args.packets_per_flow),
        ("shards", "best ms", "kpkt/s", "speedup"),
        [
            [1, fmt(single * 1e3, 1), fmt(packets / single / 1e3, 1),
             fmt(1.0, 2)],
            [args.shards, fmt(fanned * 1e3, 1),
             fmt(packets / fanned / 1e3, 1), fmt(speedup, 2)],
        ],
        note="Median of %d interleaved 1-shard/%d-shard pairs on %d "
             "usable cores; threshold %.1fx."
             % (args.trials, args.shards, cores, args.threshold),
    )
    if speedup < args.threshold:
        print("FAIL: sharded dataplane speedup %.2fx below threshold "
              "%.1fx" % (speedup, args.threshold), file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
