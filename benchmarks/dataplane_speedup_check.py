"""Batched-dataplane speedup gate.

Times the four-element FIREWALL path (the same workload as
``test_runtime_packet_rate``) twice -- once through the scalar
``inject()`` loop and once through the segment-compiled
``inject_batch()`` fast path -- and fails if the batch path is less
than ``--threshold`` times faster.  Run by the ``dataplane-speedup``
CI job::

    PYTHONPATH=src python benchmarks/dataplane_speedup_check.py

Methodology matches ``obs_overhead_check.py``: many fine-grained
scalar/batch pairs with alternating in-pair order, GC paused around
each timed region, and the reported speedup is the *median* of the
per-pair ratios, which neither scheduler noise nor CPU-frequency drift
in a single pair can move.
"""

from __future__ import annotations

import argparse
import gc
import os
import statistics
import sys
import time

if os.environ.get("PYTHONHASHSEED") is None:
    # Hash randomization moves dict/set layouts between processes,
    # which skews the two sides differently run to run; re-exec with a
    # fixed seed so the measurement is reproducible.
    os.environ["PYTHONHASHSEED"] = "0"
    os.execv(sys.executable, [sys.executable] + sys.argv)

from repro.click import Packet, Runtime, UDP, parse_config
from repro.common.addr import parse_ip

FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""


def _scalar_seconds(runtime: Runtime, packet: Packet,
                    packets: int) -> float:
    """Wall-clock for injecting ``packets`` clones one at a time."""
    copies = packet.copy_many(packets)
    gc.disable()
    started = time.perf_counter()
    inject = runtime.inject
    for copy in copies:
        inject("src", copy)
    elapsed = time.perf_counter() - started
    gc.enable()
    runtime.output.clear()
    return elapsed


def _batch_seconds(runtime: Runtime, packet: Packet, packets: int,
                   batch_size: int) -> float:
    """Wall-clock for injecting the same clones in batches."""
    copies = packet.copy_many(packets)
    gc.disable()
    started = time.perf_counter()
    inject_batch = runtime.inject_batch
    for index in range(0, packets, batch_size):
        inject_batch("src", copies[index:index + batch_size])
    elapsed = time.perf_counter() - started
    gc.enable()
    runtime.output.clear()
    return elapsed


def measure(packets: int, trials: int, batch_size: int):
    """``(scalar_seconds, batch_seconds, median_speedup)``.

    Trials run in back-to-back scalar/batch pairs with the in-pair
    order alternating each trial; the speedup is the median of the
    per-pair ratios.
    """
    packet = Packet(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )
    scalar_runtime = Runtime(parse_config(FIREWALL))
    # This gate measures the list-based segment executor; the columnar
    # tier has its own gate (columnar_speedup_check.py).
    batch_runtime = Runtime(parse_config(FIREWALL), use_columns=False)
    # Warm both paths (imports, lazily compiled segments) first.
    _scalar_seconds(scalar_runtime, packet, packets)
    _batch_seconds(batch_runtime, packet, packets, batch_size)
    scalar = batch = float("inf")
    ratios = []
    for trial in range(trials):
        if trial % 2:
            b = _batch_seconds(batch_runtime, packet, packets, batch_size)
            s = _scalar_seconds(scalar_runtime, packet, packets)
        else:
            s = _scalar_seconds(scalar_runtime, packet, packets)
            b = _batch_seconds(batch_runtime, packet, packets, batch_size)
        scalar = min(scalar, s)
        batch = min(batch, b)
        ratios.append(s / b)
    return scalar, batch, statistics.median(ratios)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--packets", type=int, default=4000,
                        help="packets pushed per trial")
    parser.add_argument("--trials", type=int, default=31,
                        help="scalar/batch trial pairs")
    parser.add_argument("--batch-size", type=int, default=256,
                        help="packets per inject_batch call")
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="minimum required batch speedup")
    args = parser.parse_args(argv)
    scalar, batch, speedup = measure(
        args.packets, args.trials, args.batch_size
    )
    print("scalar  : %8.3f ms  (%.0f pkt/s)"
          % (scalar * 1e3, args.packets / scalar))
    print("batch   : %8.3f ms  (%.0f pkt/s)"
          % (batch * 1e3, args.packets / batch))
    print("speedup : %7.2fx  (threshold %.1fx)"
          % (speedup, args.threshold))
    if speedup < args.threshold:
        print("FAIL: batch dataplane speedup below threshold",
              file=sys.stderr)
        return 1
    print("OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
