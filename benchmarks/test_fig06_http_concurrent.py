"""Figure 6: 100 concurrent HTTP clients retrieving a 50 MB file
through an In-Net platform at 25 Mb/s each.

Paper: connection times 50-350 ms (they include VM creation), total
transfer times ~16.6-17.8 s.
"""

from _report import fmt, print_table
from repro.platform import PlatformSim


def run_http_experiment(n_clients=100):
    sim = PlatformSim()
    results = []
    for index in range(n_clients):
        sim.register_client("c%d" % index)
        results.append(sim.http_request(
            "c%d" % index, start=0.0,
            size_bytes=50 * 1024 * 1024, rate_bps=25e6,
        ))
    sim.loop.run()
    return results


def test_fig06_concurrent_http(benchmark):
    results = benchmark(run_http_experiment)
    conns = sorted(r.connection_time for r in results)
    transfers = sorted(r.transfer_time for r in results)
    rows = [
        ("connection time (min)", fmt(conns[0] * 1e3, 0) + " ms",
         "~50 ms"),
        ("connection time (max)", fmt(conns[-1] * 1e3, 0) + " ms",
         "~350 ms"),
        ("transfer time (min)", fmt(transfers[0], 2) + " s",
         "~16.6 s"),
        ("transfer time (max)", fmt(transfers[-1], 2) + " s",
         "~17.8 s"),
    ]
    print_table(
        "Figure 6: 100 concurrent 50 MB downloads at 25 Mb/s",
        ("metric", "measured", "paper"),
        rows,
        note="Connection time includes on-the-fly VM creation; "
             "transfers are rate-capped, not platform-bound.",
    )
    assert conns[-1] <= 0.35
    assert all(16.5 <= t <= 18.0 for t in transfers)
