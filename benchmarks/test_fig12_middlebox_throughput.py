"""Figure 12: aggregate throughput of many middleboxes on one core.

Paper: running 1..100 VMs (NAT / IP router / firewall / flow meter)
on a single core, the platform sustains high cumulative throughput
(near 10 Gb/s of HTTP traffic) regardless of middlebox type and count.
"""

from _report import fmt, print_table
from repro.click import parse_config
from repro.core.catalog import catalog_source
from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel

VM_COUNTS = (1, 10, 20, 40, 60, 80, 100)

MIDDLEBOXES = {
    "nat": "nat",
    "iprouter": "ip_router",
    "firewall": "firewall",
    "flowmeter": "flow_meter",
}


def sweep():
    model = ThroughputModel(CHEAP_SERVER_SPEC)
    costs = {
        label: model.config_element_cost(
            parse_config(catalog_source(catalog_name))
        )
        for label, catalog_name in MIDDLEBOXES.items()
    }
    series = {}
    for label, cost in costs.items():
        series[label] = [
            (
                n,
                model.capacity_bps(
                    1500, element_cost=cost, resident_vms=n
                ),
            )
            for n in VM_COUNTS
        ]
    return series


def test_fig12_middlebox_throughput(benchmark):
    series = benchmark(sweep)
    rows = []
    for n in VM_COUNTS:
        row = [n]
        for label in MIDDLEBOXES:
            row.append(fmt(dict(series[label])[n] / 1e9, 2))
        rows.append(row)
    print_table(
        "Figure 12: cumulative throughput (Gb/s) vs #VMs",
        ("VMs",) + tuple(MIDDLEBOXES),
        rows,
        note="Paper: high aggregate throughput regardless of the "
             "number and type of middleboxes on one core.",
    )
    for label in MIDDLEBOXES:
        at_100 = dict(series[label])[100]
        assert at_100 > 8e9, (label, at_100)
        values = [bps for _n, bps in series[label]]
        assert values == sorted(values, reverse=True)
