"""Figure 12: aggregate throughput of many middleboxes on one core.

Paper: running 1..100 VMs (NAT / IP router / firewall / flow meter)
on a single core, the platform sustains high cumulative throughput
(near 10 Gb/s of HTTP traffic) regardless of middlebox type and count.
"""

import multiprocessing
import os
import time

from _report import fmt, print_table
from _traffic import drive_batch, drive_scalar, firewall_packet
from repro.click import Runtime, ShardedRuntime, columnar, parse_config
from repro.core.catalog import catalog_source
from repro.platform import CHEAP_SERVER_SPEC, ThroughputModel
from repro.sim.replay import replay_trace_sharded
from repro.sim.traces import Flow

VM_COUNTS = (1, 10, 20, 40, 60, 80, 100)

SHARD_COUNTS = (1, 2, 4)

MIDDLEBOXES = {
    "nat": "nat",
    "iprouter": "ip_router",
    "firewall": "firewall",
    "flowmeter": "flow_meter",
}


def sweep():
    model = ThroughputModel(CHEAP_SERVER_SPEC)
    costs = {
        label: model.config_element_cost(
            parse_config(catalog_source(catalog_name))
        )
        for label, catalog_name in MIDDLEBOXES.items()
    }
    series = {}
    for label, cost in costs.items():
        series[label] = [
            (
                n,
                model.capacity_bps(
                    1500, element_cost=cost, resident_vms=n
                ),
            )
            for n in VM_COUNTS
        ]
    return series


def test_fig12_middlebox_throughput(benchmark):
    series = benchmark(sweep)
    rows = []
    for n in VM_COUNTS:
        row = [n]
        for label in MIDDLEBOXES:
            row.append(fmt(dict(series[label])[n] / 1e9, 2))
        rows.append(row)
    print_table(
        "Figure 12: cumulative throughput (Gb/s) vs #VMs",
        ("VMs",) + tuple(MIDDLEBOXES),
        rows,
        note="Paper: high aggregate throughput regardless of the "
             "number and type of middleboxes on one core.",
    )
    for label in MIDDLEBOXES:
        at_100 = dict(series[label])[100]
        assert at_100 > 8e9, (label, at_100)
        values = [bps for _n, bps in series[label]]
        assert values == sorted(values, reverse=True)


def test_fig12_measured_dataplane_rate():
    """Measured packets/second of each Figure 12 middlebox config.

    Complements the cost model above with real numbers from this
    implementation's dataplane: every catalog config is driven once
    packet-by-packet, once through the list-based batched fast path,
    and once through the struct-of-arrays column plans, with the
    per-middlebox rates emitted side by side.
    """
    n_packets = 2000
    template = firewall_packet()
    columns_on = columnar.available()
    rows = []
    for label, catalog_name in MIDDLEBOXES.items():
        config = parse_config(catalog_source(catalog_name))
        scalar_rt = Runtime(config)
        batch_rt = Runtime(config, use_columns=False)
        col_rt = Runtime(config, use_columns=True)
        drive_scalar(scalar_rt, "src", template.copy_many(200))  # warm
        drive_batch(batch_rt, "src", template.copy_many(200))
        drive_batch(col_rt, "src", template.copy_many(200))
        started = time.perf_counter()
        drive_scalar(scalar_rt, "src", template.copy_many(n_packets))
        scalar_s = time.perf_counter() - started
        started = time.perf_counter()
        drive_batch(batch_rt, "src", template.copy_many(n_packets))
        batch_s = time.perf_counter() - started
        started = time.perf_counter()
        drive_batch(col_rt, "src", template.copy_many(n_packets))
        col_s = time.perf_counter() - started
        # All paths must agree on what the middlebox does with the
        # traffic before their rates are comparable.
        assert len(scalar_rt.output) == len(batch_rt.output), label
        assert len(col_rt.output) == len(batch_rt.output), label
        assert scalar_rt.dropped == batch_rt.dropped, label
        assert col_rt.dropped == batch_rt.dropped, label
        if columns_on:
            # Every catalog config compiles an all-kernel segment, so
            # the columnar column must measure column plans, not a
            # silent push_batch fallback.
            assert col_rt.columnar_batches > 0, label
        rows.append([
            label,
            fmt(n_packets / scalar_s / 1e3, 1),
            fmt(n_packets / batch_s / 1e3, 1),
            fmt(n_packets / col_s / 1e3, 1),
            fmt(scalar_s / batch_s, 2),
            fmt(batch_s / col_s, 2),
        ])
    print_table(
        "Figure 12 middleboxes: measured dataplane rate (kpkt/s)",
        ("middlebox", "scalar", "batch", "columnar",
         "batch/scalar", "col/batch"),
        rows,
        note="This implementation's Python dataplane: scalar, "
             "list-batched, and columnar execution; the paper's Gb/s "
             "numbers come from the cost model above.",
    )


def test_fig12_sharded_firewall_scaling():
    """Shard-count sweep of the Figure 12 firewall workload.

    The single-flow template above cannot shard (RSS pins one flow to
    one worker), so this sweep replays a multi-flow trace -- 400
    distinct TCP conversations -- through the same catalog firewall at
    1, 2, and 4 shards and reports each shard count's measured rate.
    This is the measurement behind the ``dataplane-scaling`` gate; on
    single-core runners the ratios hover near 1.0 (the table still
    documents the sharding overhead there).
    """
    flows = [
        Flow(start=0.0, duration=1.0, client=i, server=i % 16,
             sport=40000 + i, dport=80)
        for i in range(400)
    ]
    config = parse_config(catalog_source("firewall"))
    executor = (
        "process"
        if "fork" in multiprocessing.get_all_start_methods()
        else "serial"
    )
    try:
        cores = len(os.sched_getaffinity(0))
    except AttributeError:
        cores = os.cpu_count() or 1
    rows = []
    baseline_rate = None
    for shards in SHARD_COUNTS:
        with ShardedRuntime(config, shards=shards,
                            executor=executor) as sharded:
            replay_trace_sharded(sharded, flows, packets_per_flow=2)  # warm
            best = min(
                replay_trace_sharded(
                    sharded, flows, packets_per_flow=8
                ).packets_per_second
                for _trial in range(3)
            )
        if baseline_rate is None:
            baseline_rate = best
        rows.append([
            shards, fmt(best / 1e3, 1), fmt(best / baseline_rate, 2),
        ])
    print_table(
        "Figure 12 firewall: sharded replay rate vs shard count "
        "(kpkt/s)",
        ("shards", "kpkt/s", "vs 1 shard"),
        rows,
        note="400-flow trace replayed through the catalog firewall on "
             "the %s executor (%d usable cores); workers generate "
             "their own packet trains." % (executor, cores),
    )
