"""Shared traffic generation and drive helpers for the benchmark suite.

Every benchmark that times the concrete dataplane clones one template
packet in bulk (``Packet.copy_many``) and drives a runtime either packet
by packet or through the batched fast path; centralizing the two drive
loops keeps scalar/batch comparisons honest -- both sides inject the
same packets from the same pre-built list.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.click import Packet, UDP
from repro.common.addr import parse_ip

#: The four-element firewall path used across the dataplane benchmarks
#: (CheckIPHeader -> IPFilter -> IPRewriter), same as the seed
#: microbenchmark.
FIREWALL = """
    src :: FromNetfront();
    out :: ToNetfront();
    src -> CheckIPHeader()
        -> IPFilter(allow udp, allow tcp dst port 80)
        -> IPRewriter(pattern - - 172.16.15.133 - 0 0)
        -> out;
"""

#: Default batch size for batched drives: large enough to amortize the
#: per-batch dispatch, small enough to stay cache-friendly.
BATCH_SIZE = 256


def firewall_packet() -> Packet:
    """The UDP template packet the firewall path forwards."""
    return Packet(
        ip_src=parse_ip("8.8.8.8"),
        ip_dst=parse_ip("192.0.2.10"),
        ip_proto=UDP,
        tp_dst=1500,
    )


def make_traffic(template: Packet, count: int) -> List[Packet]:
    """``count`` independent clones of ``template``."""
    return template.copy_many(count)


def drive_scalar(runtime, entry: str, packets: Sequence[Packet]) -> None:
    """Inject ``packets`` one at a time (the scalar push path)."""
    inject = runtime.inject
    for packet in packets:
        inject(entry, packet)


def drive_batch(
    runtime,
    entry: str,
    packets: Sequence[Packet],
    batch_size: int = BATCH_SIZE,
) -> None:
    """Inject ``packets`` in ``batch_size`` chunks (the batch path)."""
    inject_batch = runtime.inject_batch
    for index in range(0, len(packets), batch_size):
        inject_batch(entry, packets[index:index + batch_size])
