"""Figure 7: suspend/resume latency vs number of resident VMs.

Paper: both operations take 30-100 ms, growing with the number of
existing VMs (0-200); a full suspend+resume cycle fits in ~100 ms.
"""

from _report import fmt, print_table
from repro.platform import CHEAP_SERVER_SPEC, resume_time, suspend_time
from repro.platform import PlatformSim

VM_COUNTS = (0, 25, 50, 100, 150, 200)


def sweep():
    return [
        (
            n,
            suspend_time(CHEAP_SERVER_SPEC, n),
            resume_time(CHEAP_SERVER_SPEC, n),
        )
        for n in VM_COUNTS
    ]


def test_fig07_suspend_resume_model(benchmark):
    series = benchmark(sweep)
    rows = [
        (n, fmt(s * 1e3, 1), fmt(r * 1e3, 1), fmt((s + r) * 1e3, 1))
        for n, s, r in series
    ]
    print_table(
        "Figure 7: suspend/resume latency vs resident VMs",
        ("existing VMs", "suspend (ms)", "resume (ms)", "cycle (ms)"),
        rows,
        note="Paper: both curves inside 30-100 ms, growing with VM "
             "count; cycle ~100 ms.",
    )
    for _n, s, r in series:
        assert 0.030 <= s <= 0.100 and 0.030 <= r <= 0.100
    # Monotone growth.
    suspends = [s for _n, s, _r in series]
    assert suspends == sorted(suspends)


def test_fig07_event_driven_cycle(benchmark):
    """The same measurement through the event-driven platform."""

    def run():
        sim = PlatformSim()
        for index in range(100):
            sim.register_client("c%d" % index)
            sim.force_boot("c%d" % index)
        return sim.suspend_resume_cycle("c0")

    suspend_s, resume_s = benchmark(run)
    print_table(
        "Figure 7 (event-driven): one cycle among 100 resident VMs",
        ("suspend (ms)", "resume (ms)"),
        [(fmt(suspend_s * 1e3, 1), fmt(resume_s * 1e3, 1))],
    )
    assert 0.030 <= suspend_s <= 0.100
    assert 0.030 <= resume_s <= 0.100
