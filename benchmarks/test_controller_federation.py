"""Controller federation: admission throughput vs shard count.

The paper scales one controller (Figure 10) and conjectures the rest:
"we conjecture it is fairly easy to parallelize the controller by
simply having multiple machines answer the queries" (Section 4.3).
This benchmark measures that design at production scale: a federation
carrying ``--residents`` resident modules (default 10^5, the
million-tenant regime scaled to CI) split across N controller shards,
each admission paying the honest per-request cost against its shard's
resident state (model signature + module graft + symbolic check).

Sharding wins because the per-admission cost is linear in the *shard's*
resident count, not the federation's: N shards each carry R/N
residents, so admissions get ~N times cheaper while running in
parallel.  The modeled parallel wall-clock charges each shard its own
busy time and the federation the slowest shard (the
:class:`~repro.core.cluster.ControllerPool` convention).

Gate (run via ``python benchmarks/test_controller_federation.py``):
median admission throughput at 4 shards must be >= 2x the 1-shard
median, and both federation chaos scenarios -- shard-death and the
full failure lifecycle (probe-driven failover, revival hand-back,
live resharding) -- must pass across seeds.  The pytest entry point
is a scaled-down smoke run.
"""

import argparse
import statistics
import sys
import time

from _report import fmt, print_table
from repro.core import ClientRequest, ROLE_CLIENT
from repro.fedctl import FederatedControlPlane, shard_network
from repro.fedctl.chaos import run_all as run_chaos
from repro.fedctl.chaos import run_lifecycle_all
from repro.fedctl.invariants import check_federation_invariants
from repro.fedctl.seeding import seed_residents, tenant_ids_for_shard

#: The tenant's registered endpoint (the Figure 4 mobile client).
CLIENT_ADDR = "172.16.15.133"

_MODULE_CONFIG = """
    FromNetfront() ->
    IPFilter(allow udp port 1500) ->
    IPRewriter(pattern - - %s - 0 0)
    -> TimedUnqueue(120, 100)
    -> dst :: ToNetfront();
""" % CLIENT_ADDR


def admission_request(client_id, module_name, shard_index):
    """A measured admission against one shard.

    The origin hop pins ``dst`` to the shard's landing-platform trial
    address, so the symbolic flow traverses only the module under
    test -- the per-request cost is the shard-wide model signature +
    graft + check, not an all-residents flow explosion.
    """
    landing = "10.%d.0.1" % (1 + 2 * shard_index)
    return ClientRequest(
        client_id=client_id,
        role=ROLE_CLIENT,
        config_source=_MODULE_CONFIG,
        requirements=(
            "reach from internet udp dst %s"
            " -> %s:dst:0 dst %s"
            " -> client dst port 1500"
            % (landing, module_name, CLIENT_ADDR)
        ),
        owned_addresses=(CLIENT_ADDR,),
        module_name=module_name,
        listen="udp 1500",
    )


def build_plane(shard_count, residents_total):
    """A federation with the resident modules already in steady state."""
    per_shard = [
        residents_total // shard_count
        + (1 if i < residents_total % shard_count else 0)
        for i in range(shard_count)
    ]
    plane = FederatedControlPlane(
        shard_count=shard_count,
        network_factory=lambda i: shard_network(
            i, resident_capacity=max(per_shard[i], 1),
        ),
        gossip_every=0,
    )
    for index, shard_id in enumerate(plane.shards):
        if per_shard[index]:
            seed_residents(
                plane, shard_id, "res%d" % index, per_shard[index],
                journal=False,
            )
    return plane


def measure(plane, requests_per_shard, tag="bench"):
    """One measurement round: per-shard busy time and throughput.

    Every shard admits ``requests_per_shard`` dry-run requests (trial
    place + verify + undo: the verification work without mutating the
    resident state between rounds).  Parallel wall-clock is the
    slowest shard's busy time.
    """
    busy = {}
    total = 0
    for index, shard_id in enumerate(plane.shards):
        tenants = tenant_ids_for_shard(
            plane, shard_id, requests_per_shard, tag=tag,
        )
        elapsed = 0.0
        for turn, client_id in enumerate(tenants):
            request = admission_request(
                client_id, "%s-%s-%d" % (tag, shard_id, turn), index,
            )
            started = time.perf_counter()
            decision = plane.submit(request, dry_run=True)
            elapsed += time.perf_counter() - started
            assert decision, decision.result.reason
            total += 1
        busy[shard_id] = elapsed
    parallel = max(busy.values())
    serial = sum(busy.values())
    return {
        "requests": total,
        "parallel_seconds": parallel,
        "serial_seconds": serial,
        "throughput": total / parallel if parallel > 0 else 0.0,
        "latency": serial / total if total else 0.0,
    }


def run_config(shard_count, residents, requests_per_shard, rounds):
    plane = build_plane(shard_count, residents)
    # Warmup: each shard pays its cold full-network compile once.
    measure(plane, 1, tag="warmup")
    samples = [
        measure(plane, requests_per_shard, tag="round%d" % r)
        for r in range(rounds)
    ]
    check_federation_invariants(plane)
    return {
        "shards": shard_count,
        "residents": residents,
        "throughput": statistics.median(
            s["throughput"] for s in samples
        ),
        "latency": statistics.median(s["latency"] for s in samples),
        "parallel_seconds": statistics.median(
            s["parallel_seconds"] for s in samples
        ),
    }


def sweep(shard_counts, residents, requests_per_shard, rounds):
    return [
        run_config(n, residents, requests_per_shard, rounds)
        for n in shard_counts
    ]


def report(results, note=""):
    base = results[0]["throughput"]
    rows = [
        (
            r["shards"], r["residents"],
            fmt(r["latency"] * 1e3, 2),
            fmt(r["throughput"], 2),
            fmt(r["throughput"] / base, 2) + "x",
        )
        for r in results
    ]
    print_table(
        "Controller federation: admission throughput vs shard count",
        ("shards", "residents", "admission (ms)",
         "admissions/s", "scaling"),
        rows,
        note=note or (
            "Median dry-run admission throughput; parallel wall-clock"
            " charges the slowest shard per round."
        ),
    )


def test_federation_admission_scaling(benchmark):
    """Smoke-scale run: sharding must help even at 2k residents."""
    results = benchmark.pedantic(
        lambda: sweep((1, 2, 4), 2_000, 4, 1),
        rounds=1, iterations=1,
    )
    report(
        results,
        note="Smoke scale (2k residents); the CI gate runs 10^5 via"
             " this file's __main__.",
    )
    by_shards = {r["shards"]: r["throughput"] for r in results}
    assert by_shards[4] > by_shards[1] * 1.2, by_shards
    assert by_shards[2] > by_shards[1], by_shards


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--residents", type=int, default=100_000)
    parser.add_argument(
        "--shards", type=lambda s: tuple(int(x) for x in s.split(",")),
        default=(1, 2, 4),
    )
    parser.add_argument("--requests", type=int, default=6,
                        help="measured admissions per shard per round")
    parser.add_argument("--rounds", type=int, default=3)
    parser.add_argument("--threshold", type=float, default=2.0,
                        help="required throughput scaling at the"
                             " largest shard count vs 1 shard")
    parser.add_argument("--chaos-seeds",
                        type=lambda s: tuple(
                            int(x) for x in s.split(",")
                        ),
                        default=(1, 2, 3))
    parser.add_argument("--skip-chaos", action="store_true")
    args = parser.parse_args(argv)

    results = sweep(
        args.shards, args.residents, args.requests, args.rounds
    )
    report(results)
    failed = False
    by_shards = {r["shards"]: r["throughput"] for r in results}
    largest = max(args.shards)
    scaling = by_shards[largest] / by_shards[min(args.shards)]
    print("throughput scaling at %d shards: %.2fx (threshold %.1fx)"
          % (largest, scaling, args.threshold))
    if scaling < args.threshold:
        print("FAIL: sharding did not scale admission throughput")
        failed = True

    if not args.skip_chaos:
        print("\n--- shard-death chaos ---")
        for chaos_report in run_chaos(seeds=args.chaos_seeds):
            print(chaos_report.summary())
            for failure in chaos_report.failures:
                print("  FAIL:", failure)
            failed = failed or not chaos_report.passed

        print("\n--- failure-lifecycle chaos (revive + reshard) ---")
        for chaos_report in run_lifecycle_all(seeds=args.chaos_seeds):
            print(chaos_report.summary())
            for failure in chaos_report.failures:
                print("  FAIL:", failure)
            failed = failed or not chaos_report.passed

    return 1 if failed else 0


if __name__ == "__main__":
    sys.exit(main())
