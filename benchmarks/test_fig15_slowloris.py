"""Figure 15: defending against a Slowloris attack with In-Net.

Paper: the attack starves a single origin server of connection slots;
deploying reverse-proxy modules at remote operators and steering new
connections to them by geolocation restores the valid-request rate.
"""

from _report import fmt, print_table
from repro.usecases import SlowlorisScenario


def run():
    return SlowlorisScenario().run(
        duration_s=900, attack_start=120, defense_delay_s=180
    )


def window_mean(timeline, series, lo, hi):
    values = [v for t, v in zip(timeline.times, series) if lo <= t < hi]
    return sum(values) / max(1, len(values))


def test_fig15_slowloris_defense(benchmark):
    timeline = benchmark.pedantic(run, rounds=1, iterations=1)
    phases = [
        ("before attack", 0, timeline.attack_start),
        ("attack, undefended", timeline.attack_start,
         timeline.defense_at),
        ("attack, defended", timeline.defense_at + 60,
         timeline.attack_end),
        ("after attack", timeline.attack_end + 60, 900),
    ]
    rows = [
        (
            label,
            fmt(window_mean(timeline, timeline.single_server, lo, hi), 0),
            fmt(window_mean(timeline, timeline.with_innet, lo, hi), 0),
        )
        for label, lo, hi in phases
    ]
    print_table(
        "Figure 15: valid requests served per second",
        ("phase", "single server", "with In-Net"),
        rows,
        note="Paper: the In-Net deployment quickly instantiates "
             "processing, diverts traffic, and restores service.",
    )
    pre = window_mean(timeline, timeline.single_server, 0, 120)
    starved = window_mean(
        timeline, timeline.single_server,
        timeline.defense_at + 60, timeline.attack_end,
    )
    defended = window_mean(
        timeline, timeline.with_innet,
        timeline.defense_at + 60, timeline.attack_end,
    )
    assert starved < 0.1 * pre           # single server starved
    assert defended > 0.5 * pre          # defense restores most service
    assert timeline.proxies_deployed == 3
