"""In-Net: in-network processing for the masses -- a reproduction.

This library reproduces the system from *"In-Net: In-Network Processing
for the Masses"* (Stoenescu et al., EuroSys 2015): an architecture that
lets untrusted endpoints and content providers deploy custom packet
processing on network operators' platforms, with **static analysis**
(symbolic execution) standing between tenant code and the network.

Quickstart::

    from repro import Controller, ClientRequest, figure3_network

    controller = Controller(figure3_network())
    result = controller.request(ClientRequest(
        client_id="me",
        role="client",
        config_source=\"\"\"
            FromNetfront() ->
            IPFilter(allow udp port 1500) ->
            IPRewriter(pattern - - 172.16.15.133 - 0 0)
            -> TimedUnqueue(120, 100)
            -> dst :: ToNetfront();
        \"\"\",
        requirements="reach from internet udp -> client dst port 1500",
        owned_addresses=("172.16.15.133",),
    ))
    print(result.platform, result.address)

Package map (see DESIGN.md for the full inventory):

* :mod:`repro.core` -- the controller, security rules, request API,
* :mod:`repro.click` -- the Click dataplane (elements, parser, runtime),
* :mod:`repro.symexec` -- SYMNET-style symbolic execution,
* :mod:`repro.policy` -- the ``reach``/flow-spec requirement languages,
* :mod:`repro.netmodel` -- operator topology snapshots,
* :mod:`repro.platform` -- the ClickOS platform simulator,
* :mod:`repro.sim` -- discrete-event simulation substrate,
* :mod:`repro.usecases` -- the Section 8 end-to-end scenarios.
"""

from repro.click import ClickConfig, Packet, Runtime, parse_config
from repro.core import (
    ClientRequest,
    Controller,
    DeploymentResult,
    ROLE_CLIENT,
    ROLE_OPERATOR,
    ROLE_THIRD_PARTY,
    SecurityAnalyzer,
)
from repro.netmodel import Network, figure3_network
from repro.policy import parse_flowspec, parse_requirement
from repro.symexec import SymbolicEngine, SymGraph

__version__ = "1.0.0"

__all__ = [
    "Controller",
    "ClientRequest",
    "DeploymentResult",
    "SecurityAnalyzer",
    "ROLE_THIRD_PARTY",
    "ROLE_CLIENT",
    "ROLE_OPERATOR",
    "Network",
    "figure3_network",
    "Packet",
    "Runtime",
    "ClickConfig",
    "parse_config",
    "parse_flowspec",
    "parse_requirement",
    "SymbolicEngine",
    "SymGraph",
    "__version__",
]
