"""Gossip-shared security-verdict cache across controller shards.

A security verdict depends only on the configuration's canonical
fingerprint, the requester's role and white-list, and (sometimes) the
assigned address -- never on the network snapshot
(:class:`repro.core.security.SecurityAnalyzer`).  So a verdict computed
on one shard is *valid on every other*, and popular stock modules
should be verified exactly once federation-wide.

:class:`GossipBus` implements that sharing with an epidemic protocol
over the shards' existing :class:`~repro.core.cache.LRUCache` verdict
caches:

* every **locally computed** verdict is published as a rumor into each
  peer's bounded inbox (:meth:`GossipingVerdictCache.put`),
* a **gossip round** drains a shard's inbox into its cache
  (:meth:`GossipBus.drain` / :meth:`GossipBus.drain_all`); the control
  plane runs one automatically every ``gossip_every`` admissions, which
  bounds staleness: a verdict is at most ``gossip_every`` admissions
  old before every live shard has it,
* an **anti-entropy round** (:meth:`GossipBus.anti_entropy`) does a
  full pairwise sync -- entries dropped from an overflowing inbox or
  missed while a shard was down are reconciled here, the classic
  rumor-mongering + anti-entropy split.

Rumors carry the exact report object, so a warm remote hit is
byte-for-byte the decision the origin shard made (the cross-shard test
asserts this).  This is an in-process bus; a multi-host deployment
would serialize ``(key, report)`` pairs over its message fabric with
the same protocol.
"""

from __future__ import annotations

import itertools
from collections import deque
from typing import Deque, Dict, Hashable, List, Optional, Tuple

from repro.common.errors import ConfigError
from repro.core.cache import CachingSecurityAnalyzer, LRUCache


class GossipBus:
    """The shards' rumor fabric: bounded inboxes + anti-entropy."""

    def __init__(self, obs=None, inbox_limit: int = 4096):
        from repro.obs import NULL_OBSERVABILITY

        if inbox_limit < 1:
            raise ValueError("inbox limit must be positive")
        self.inbox_limit = inbox_limit
        self._members: Dict[str, "GossipingVerdictCache"] = {}
        self._inboxes: Dict[
            str, Deque[Tuple[int, str, Hashable, object]]
        ] = {}
        self._seq = itertools.count(1)
        #: Rumors silently shed per shard by bounded-inbox overflow
        #: (survives a member leaving: the operator can still see who
        #: was losing rumors after a failover).
        self.dropped: Dict[str, int] = {}
        #: Cumulative rumor accounting (available without obs).
        self.published_total = 0
        self.applied_total = 0
        self.duplicate_total = 0
        #: Entries the last / all anti-entropy rounds reconciled back.
        self.last_recovered = 0
        self.recovered_total = 0
        obs = obs if obs is not None else NULL_OBSERVABILITY
        self._c_rumors = obs.metrics.counter(
            "fedctl_gossip_rumors_total",
            "Verdict rumors by event",
            labels=("event",),
        )
        self._c_dropped = obs.metrics.counter(
            "fedctl_gossip_dropped_total",
            "Rumors shed by bounded-inbox overflow, per shard",
            labels=("shard",),
        )
        self._c_rounds = obs.metrics.counter(
            "fedctl_gossip_rounds_total",
            "Gossip rounds by kind",
            labels=("kind",),
        )

    # -- membership ---------------------------------------------------------
    def join(self, shard_id: str, cache: "GossipingVerdictCache") -> None:
        if shard_id in self._members:
            raise ConfigError(
                "shard %r joined the gossip bus twice" % (shard_id,)
            )
        self._members[shard_id] = cache
        self._inboxes[shard_id] = deque()

    def leave(self, shard_id: str) -> None:
        """Drop a dead member: no more rumors are queued for it."""
        self._members.pop(shard_id, None)
        self._inboxes.pop(shard_id, None)

    def members(self) -> List[str]:
        return list(self._members)

    # -- rumor mongering ----------------------------------------------------
    def publish(
        self, origin: str, key: Hashable, value: object
    ) -> None:
        """Queue a locally computed verdict to every peer's inbox."""
        seq = next(self._seq)
        self.published_total += 1
        self._c_rumors.labels("published").inc()
        for shard_id, inbox in self._inboxes.items():
            if shard_id == origin:
                continue
            inbox.append((seq, origin, key, value))
            if len(inbox) > self.inbox_limit:
                # Overflow drops the *oldest* rumor; anti-entropy is
                # the backstop that reconciles what rumor-mongering
                # lost.  The loss is counted per shard, never silent.
                inbox.popleft()
                self.dropped[shard_id] = self.dropped.get(shard_id, 0) + 1
                self._c_rumors.labels("dropped").inc()
                self._c_dropped.labels(shard_id).inc()

    def pending(self, shard_id: str) -> int:
        """Rumors queued for a shard and not yet applied."""
        return len(self._inboxes.get(shard_id, ()))

    def drain(self, shard_id: str) -> int:
        """Apply a shard's queued rumors to its cache; returns how many
        were newly applied (duplicates are counted separately)."""
        inbox = self._inboxes.get(shard_id)
        cache = self._members.get(shard_id)
        if inbox is None or cache is None:
            raise ConfigError("unknown gossip member %r" % (shard_id,))
        applied = 0
        while inbox:
            _seq, _origin, key, value = inbox.popleft()
            if cache.apply_remote(key, value):
                applied += 1
                self.applied_total += 1
                self._c_rumors.labels("applied").inc()
            else:
                self.duplicate_total += 1
                self._c_rumors.labels("duplicate").inc()
        return applied

    def drain_all(self) -> int:
        """One gossip round: every shard applies its queued rumors."""
        self._c_rounds.labels("gossip").inc()
        return sum(self.drain(shard_id) for shard_id in self._members)

    # -- anti-entropy -------------------------------------------------------
    def anti_entropy(self) -> int:
        """Full pairwise sync: every cache learns every entry any peer
        holds (inboxes are drained first).

        Returns how many entries reconciliation recovered -- verdicts a
        member was missing because an overflowing inbox shed them or
        because the member (re)joined after they were rumored.  The
        count is also kept on :attr:`last_recovered` /
        :attr:`recovered_total` and surfaces in :meth:`stats`.
        """
        self._c_rounds.labels("anti-entropy").inc()
        for shard_id in self._members:
            self.drain(shard_id)
        union: Dict[Hashable, object] = {}
        for cache in self._members.values():
            union.update(cache.entries())
        copied = 0
        for cache in self._members.values():
            for key, value in union.items():
                if cache.apply_remote(key, value):
                    copied += 1
                    self.applied_total += 1
                    self._c_rumors.labels("applied").inc()
        self.last_recovered = copied
        self.recovered_total += copied
        return copied

    # -- accounting ---------------------------------------------------------
    def stats(self) -> dict:
        """Operator-facing rumor accounting (works without obs).

        ``dropped`` is per shard and includes shards that have since
        left the bus; ``pending`` covers current members only.
        """
        return {
            "members": list(self._members),
            "pending": {
                shard_id: len(inbox)
                for shard_id, inbox in self._inboxes.items()
            },
            "dropped": dict(self.dropped),
            "published": self.published_total,
            "applied": self.applied_total,
            "duplicates": self.duplicate_total,
            "anti_entropy_last_recovered": self.last_recovered,
            "anti_entropy_recovered": self.recovered_total,
        }


class GossipingVerdictCache(LRUCache):
    """An :class:`LRUCache` that publishes local inserts to the bus.

    Drop-in replacement for a
    :class:`~repro.core.cache.CachingSecurityAnalyzer`'s ``cache``
    attribute: the analyzer's probe/compute/store logic is reused
    unchanged, and the pub/sub rides on ``put`` (local computation ->
    publish) vs. :meth:`apply_remote` (gossip -> silent insert).
    """

    def __init__(
        self, bus: GossipBus, shard_id: str, capacity: int = 4096
    ):
        super().__init__(capacity)
        self.bus = bus
        self.shard_id = shard_id
        #: Keys whose cached value arrived via gossip (vs. computed
        #: here); a hit on one is a verification this shard never ran.
        self._remote_keys = set()
        #: Hits served from gossiped entries (the cross-shard win).
        self.remote_hits = 0
        bus.join(shard_id, self)

    def get(self, key: Hashable):
        value = super().get(key)
        if value is not None and key in self._remote_keys:
            self.remote_hits += 1
        return value

    def put(self, key: Hashable, value) -> None:
        """A locally computed verdict: cache it and tell the peers."""
        self._remote_keys.discard(key)
        super().put(key, value)
        self.bus.publish(self.shard_id, key, value)

    def apply_remote(self, key: Hashable, value) -> bool:
        """Insert a gossiped verdict without re-publishing it.

        Returns False for duplicates (the key is already cached --
        keeping the incumbent preserves determinism: both copies
        decide identically, by construction of the cache key).
        """
        if key in self._entries:
            return False
        self._remote_keys.add(key)
        LRUCache.put(self, key, value)
        return True

    def entries(self) -> Dict[Hashable, object]:
        """A snapshot of the cached entries (anti-entropy source)."""
        return dict(self._entries)


def attach_gossip_cache(
    analyzer: CachingSecurityAnalyzer,
    bus: GossipBus,
    shard_id: str,
    capacity: int = 4096,
) -> GossipingVerdictCache:
    """Swap a caching analyzer's LRU for a gossiping one.

    Carries over nothing (fresh shard, fresh cache) but keeps any
    registry instrumentation semantics: callers should re-run
    ``analyzer.instrument(...)`` after attaching if they want the new
    cache's accounting in a metrics registry.
    """
    cache = GossipingVerdictCache(bus, shard_id, capacity=capacity)
    analyzer.cache = cache
    return cache
