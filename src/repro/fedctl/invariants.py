"""Federation-wide safety invariants.

PR 4's :mod:`repro.resilience.invariants` checks one controller against
one network.  A federation adds cross-shard ways to be wrong: two
shards believing they hold the same module, a tenant whose modules live
on a shard the map no longer routes them to, two platforms claiming
overlapping address pools.  This module layers those checks on top of
the per-segment suite:

1. every live segment passes the full single-controller suite;
2. **placement bijection, federation-wide** -- the front-end's
   ``placements`` map and the union of segment ``deployed`` maps are
   the same set, and no module id appears in two segments;
3. **tenant routing consistency** -- for every deployed module, the
   shard map routes its owner to the shard actually holding it (so a
   tenant's next request lands where its state lives);
4. **address-pool disjointness** -- platform pools across all live
   segments never overlap, and the front-end's address index agrees
   about who owns each pool;
5. dead shards hold nothing;
6. **segment custody** -- every live shard holds its own home
   segment, and every adopted segment belongs to a *dead* shard whose
   delegation chain resolves to exactly the holder (so a revival
   knows unambiguously what to reclaim).

:func:`reshard_movement_violations` checks the consistent-hash
minimal-movement bound across a live reshard: adding a shard may move
tenants only *onto* it, removing one only *off* it.

:func:`federation_digest` extends PR 4's state digest across the
federation, keyed by *segment* id -- segment identity survives
failover, so digests taken before a shard death and after its heir's
journal replay are directly comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.addr import format_ip, prefix_range
from repro.resilience.invariants import (
    InvariantViolation,
    collect_violations,
    controller_state_digest,
)


def collect_federation_violations(
    plane, external_addresses: Optional[Dict[str, Set[int]]] = None
) -> List[str]:
    """Every broken federation invariant, as human-readable strings."""
    problems: List[str] = []

    # 5. Dead shards hold nothing (their segments moved to the heir).
    for shard_id, shard in plane.shards.items():
        if not shard.alive and shard.segments:
            problems.append(
                "dead shard %s still holds segments %s"
                % (shard_id, sorted(shard.segments))
            )

    # 1. Per-segment single-controller suite.
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for problem in collect_violations(
                segment.controller, external_addresses
            ):
                problems.append(
                    "%s/%s: %s" % (shard.shard_id, segment_id, problem)
                )

    # 2. Placement bijection across the federation.
    seen: Dict[str, Tuple[str, str]] = {}
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for module_id in segment.controller.deployed:
                if module_id in seen:
                    problems.append(
                        "module %s deployed on both %s/%s and %s/%s"
                        % (module_id, *seen[module_id],
                           shard.shard_id, segment_id)
                    )
                    continue
                seen[module_id] = (shard.shard_id, segment_id)
    for module_id, placed in sorted(plane.placements.items()):
        if module_id not in seen:
            problems.append(
                "placement %s -> %s/%s has no deployed module"
                % (module_id, placed[0], placed[1])
            )
        elif seen[module_id] != tuple(placed):
            problems.append(
                "placement says %s runs on %s/%s but it is deployed "
                "on %s/%s" % (module_id, placed[0], placed[1],
                              *seen[module_id])
            )
    for module_id, holder in sorted(seen.items()):
        if module_id not in plane.placements:
            problems.append(
                "module %s deployed on %s/%s is missing from the "
                "front-end placements" % (module_id, *holder)
            )

    # 3. Tenant routing consistency: state lives where the map routes.
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for module_id, record in segment.controller.deployed.items():
                routed = plane.shard_map.route(record.client_id)
                if routed != shard.shard_id:
                    problems.append(
                        "tenant %s routes to %s but its module %s "
                        "lives on %s/%s"
                        % (record.client_id, routed, module_id,
                           shard.shard_id, segment_id)
                    )

    # 6. Segment custody: homes held, adoptions resolve to the holder.
    from repro.common.errors import ConfigError

    for shard in plane.live_shards():
        if shard.shard_id not in shard.segments:
            problems.append(
                "live shard %s does not hold its home segment"
                % (shard.shard_id,)
            )
        for segment_id in shard.segments:
            if segment_id == shard.shard_id:
                continue
            if plane.shard_map.is_live(segment_id):
                problems.append(
                    "shard %s holds segment %s although %s is alive"
                    % (shard.shard_id, segment_id, segment_id)
                )
                continue
            try:
                holder = plane.shard_map.resolve(segment_id)
            except ConfigError as exc:
                problems.append(
                    "adopted segment %s on %s has no live holder in "
                    "the shard map: %s"
                    % (segment_id, shard.shard_id, exc)
                )
                continue
            if holder != shard.shard_id:
                problems.append(
                    "segment %s is held by %s but the shard map "
                    "delegates it to %s"
                    % (segment_id, shard.shard_id, holder)
                )

    # 4. Address-pool disjointness + index agreement.
    pools: List[Tuple[int, int, str, str]] = []
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for platform in segment.network.platforms():
                low, high = prefix_range(
                    platform.pool_network, platform.pool_plen
                )
                pools.append(
                    (low, high, shard.shard_id, platform.name)
                )
    pools.sort()
    for (low, high, shard_id, name), nxt in zip(pools, pools[1:]):
        if nxt[0] <= high:
            problems.append(
                "platform pools overlap: %s on %s and %s on %s both "
                "cover %s" % (name, shard_id, nxt[3], nxt[2],
                              format_ip(nxt[0]))
            )
    for low, high, shard_id, name in pools:
        indexed = plane.address_index.owner_of(low)
        if indexed != shard_id:
            problems.append(
                "address index says %s owns %s's pool (platform %s, "
                "held by %s)"
                % (indexed, format_ip(low), name, shard_id)
            )

    return problems


def check_federation_invariants(
    plane, external_addresses: Optional[Dict[str, Set[int]]] = None
) -> None:
    """Raise :class:`InvariantViolation` listing every broken invariant."""
    problems = collect_federation_violations(plane, external_addresses)
    if problems:
        raise InvariantViolation(
            "federation invariants violated:\n  "
            + "\n  ".join(problems)
        )


def reshard_movement_violations(
    routes_before: Dict[str, str],
    routes_after: Dict[str, str],
    added: Optional[str] = None,
    removed: Optional[str] = None,
) -> List[str]:
    """Broken minimal-movement guarantees across one reshard.

    Consistent hashing promises that growing the ring by one shard
    moves tenants only *onto* the new shard, and shrinking it moves
    only the removed shard's tenants, each to its new successor --
    never a third shard's tenants, never a shuffle between survivors.
    The plane snapshots every stateful tenant's route before and
    after the ring change and feeds both maps here; any violation is
    a bug in the ring (or a non-deterministic hash), not an expected
    outcome.
    """
    problems: List[str] = []
    for tenant in sorted(routes_before):
        before = routes_before[tenant]
        after = routes_after.get(tenant)
        if after is None:
            problems.append(
                "tenant %s lost its route entirely" % (tenant,)
            )
            continue
        if before == after:
            continue
        if added is not None and after != added:
            problems.append(
                "tenant %s moved %s -> %s although only the new "
                "shard %s may gain tenants"
                % (tenant, before, after, added)
            )
        if removed is not None and before != removed:
            problems.append(
                "tenant %s moved %s -> %s although only the removed "
                "shard %s may lose tenants"
                % (tenant, before, after, removed)
            )
        if added is None and removed is None:
            problems.append(
                "tenant %s moved %s -> %s with no ring change"
                % (tenant, before, after)
            )
    return problems


def federation_digest(plane) -> Dict[str, dict]:
    """Canonical state digest per live segment (pre/post-failover
    comparable: segments keep their identity across adoption)."""
    return {
        segment.segment_id:
            controller_state_digest(segment.controller)
        for segment in plane.segments()
    }
