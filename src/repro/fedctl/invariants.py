"""Federation-wide safety invariants.

PR 4's :mod:`repro.resilience.invariants` checks one controller against
one network.  A federation adds cross-shard ways to be wrong: two
shards believing they hold the same module, a tenant whose modules live
on a shard the map no longer routes them to, two platforms claiming
overlapping address pools.  This module layers those checks on top of
the per-segment suite:

1. every live segment passes the full single-controller suite;
2. **placement bijection, federation-wide** -- the front-end's
   ``placements`` map and the union of segment ``deployed`` maps are
   the same set, and no module id appears in two segments;
3. **tenant routing consistency** -- for every deployed module, the
   shard map routes its owner to the shard actually holding it (so a
   tenant's next request lands where its state lives);
4. **address-pool disjointness** -- platform pools across all live
   segments never overlap, and the front-end's address index agrees
   about who owns each pool;
5. dead shards hold nothing.

:func:`federation_digest` extends PR 4's state digest across the
federation, keyed by *segment* id -- segment identity survives
failover, so digests taken before a shard death and after its heir's
journal replay are directly comparable.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.common.addr import format_ip, prefix_range
from repro.resilience.invariants import (
    InvariantViolation,
    collect_violations,
    controller_state_digest,
)


def collect_federation_violations(
    plane, external_addresses: Optional[Dict[str, Set[int]]] = None
) -> List[str]:
    """Every broken federation invariant, as human-readable strings."""
    problems: List[str] = []

    # 5. Dead shards hold nothing (their segments moved to the heir).
    for shard_id, shard in plane.shards.items():
        if not shard.alive and shard.segments:
            problems.append(
                "dead shard %s still holds segments %s"
                % (shard_id, sorted(shard.segments))
            )

    # 1. Per-segment single-controller suite.
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for problem in collect_violations(
                segment.controller, external_addresses
            ):
                problems.append(
                    "%s/%s: %s" % (shard.shard_id, segment_id, problem)
                )

    # 2. Placement bijection across the federation.
    seen: Dict[str, Tuple[str, str]] = {}
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for module_id in segment.controller.deployed:
                if module_id in seen:
                    problems.append(
                        "module %s deployed on both %s/%s and %s/%s"
                        % (module_id, *seen[module_id],
                           shard.shard_id, segment_id)
                    )
                    continue
                seen[module_id] = (shard.shard_id, segment_id)
    for module_id, placed in sorted(plane.placements.items()):
        if module_id not in seen:
            problems.append(
                "placement %s -> %s/%s has no deployed module"
                % (module_id, placed[0], placed[1])
            )
        elif seen[module_id] != tuple(placed):
            problems.append(
                "placement says %s runs on %s/%s but it is deployed "
                "on %s/%s" % (module_id, placed[0], placed[1],
                              *seen[module_id])
            )
    for module_id, holder in sorted(seen.items()):
        if module_id not in plane.placements:
            problems.append(
                "module %s deployed on %s/%s is missing from the "
                "front-end placements" % (module_id, *holder)
            )

    # 3. Tenant routing consistency: state lives where the map routes.
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for module_id, record in segment.controller.deployed.items():
                routed = plane.shard_map.route(record.client_id)
                if routed != shard.shard_id:
                    problems.append(
                        "tenant %s routes to %s but its module %s "
                        "lives on %s/%s"
                        % (record.client_id, routed, module_id,
                           shard.shard_id, segment_id)
                    )

    # 4. Address-pool disjointness + index agreement.
    pools: List[Tuple[int, int, str, str]] = []
    for shard in plane.live_shards():
        for segment_id, segment in shard.segments.items():
            for platform in segment.network.platforms():
                low, high = prefix_range(
                    platform.pool_network, platform.pool_plen
                )
                pools.append(
                    (low, high, shard.shard_id, platform.name)
                )
    pools.sort()
    for (low, high, shard_id, name), nxt in zip(pools, pools[1:]):
        if nxt[0] <= high:
            problems.append(
                "platform pools overlap: %s on %s and %s on %s both "
                "cover %s" % (name, shard_id, nxt[3], nxt[2],
                              format_ip(nxt[0]))
            )
    for low, high, shard_id, name in pools:
        indexed = plane.address_index.owner_of(low)
        if indexed != shard_id:
            problems.append(
                "address index says %s owns %s's pool (platform %s, "
                "held by %s)"
                % (indexed, format_ip(low), name, shard_id)
            )

    return problems


def check_federation_invariants(
    plane, external_addresses: Optional[Dict[str, Set[int]]] = None
) -> None:
    """Raise :class:`InvariantViolation` listing every broken invariant."""
    problems = collect_federation_violations(plane, external_addresses)
    if problems:
        raise InvariantViolation(
            "federation invariants violated:\n  "
            + "\n  ".join(problems)
        )


def federation_digest(plane) -> Dict[str, dict]:
    """Canonical state digest per live segment (pre/post-failover
    comparable: segments keep their identity across adoption)."""
    return {
        segment.segment_id:
            controller_state_digest(segment.controller)
        for segment in plane.segments()
    }
