"""The federated control plane: sharded controllers behind one front-end.

The paper's controller (Section 4.3) is one machine verifying every
request; Figure 10 shows its per-request cost growing with resident
state.  :class:`FederatedControlPlane` is the production shape hinted
at in "Scaling the controller": N :class:`~repro.core.controller.Controller`
shards, each owning a slice of the operator's platforms and tenants,
behind a deterministic admission front-end.

* **Routing** -- a consistent-hash :class:`~repro.fedctl.shardmap.ShardMap`
  over tenant ids (per-tenant ordering: one tenant always talks to one
  shard), plus an :class:`~repro.fedctl.shardmap.AddressRangeIndex`
  over platform pools for cross-domain requests that name an address.
* **Verdict sharing** -- each shard's
  :class:`~repro.core.cache.CachingSecurityAnalyzer` gets a
  :class:`~repro.fedctl.gossip.GossipingVerdictCache`, so a config
  fingerprint verified anywhere is a warm hit everywhere (bounded
  staleness: a gossip round runs every ``gossip_every`` admissions).
* **Failover** -- every shard journals to its own write-ahead
  :class:`~repro.resilience.journal.DeploymentJournal`; when a shard
  dies, the deterministic heir (ring successor) replays the journal
  with :meth:`Controller.recover`, adopts the dead shard's platforms,
  address ranges, and tenants as a **segment**, and the shard map
  delegates the dead shard's ring range to the heir.
* **Federation seam** -- :meth:`frontend` returns a Controller-like
  facade (``request``/``kill``/``ledger``), so the existing
  :class:`repro.core.federation.Federation` (and the CDN/DoS usecases
  on top of it) can treat the whole federation as one operator.

Instrumentation: per-shard admission latency and outcome counters,
gossip hit/miss accounting, failover MTTR, and a ``fedctl`` span tree
(``fedctl.submit`` > ``admit`` > ``compile``/``security``/``check``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.addr import prefix_range
from repro.common.errors import ConfigError, DeploymentError
from repro.core.controller import Controller, DeploymentResult
from repro.core.requests import ClientRequest
from repro.fedctl.gossip import GossipBus, attach_gossip_cache
from repro.fedctl.shardmap import AddressRangeIndex, ShardMap
from repro.netmodel.topology import Network
from repro.resilience.invariants import (
    InvariantViolation, controller_state_digest,
)
from repro.resilience.journal import DeploymentJournal


def shard_network(
    index: int,
    capacity: int = 8,
    resident_capacity: int = 0,
) -> Network:
    """The default per-shard operator view.

    Every shard sees the shared client subnet and the internet, and
    owns two platforms with federation-wide disjoint pools.  With
    ``resident_capacity`` set, a third platform with a /14 pool holds
    pre-seeded resident modules (benchmark rigs); its pool octets are
    disjoint across shards too.

    ::

        internet -- r1 -- p<i>-a / p<i>-b [/ res<i>]
                     |
                    r2 -- clients (172.16/16)
    """
    net = Network("shard-%d" % index)
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_platform(
        "p%d-a" % index, "10.%d.0.0/24" % (1 + 2 * index),
        capacity=capacity,
    )
    net.add_platform(
        "p%d-b" % index, "10.%d.0.0/24" % (2 + 2 * index),
        capacity=capacity,
    )
    net.link("internet", "r1")
    net.link("r1", "p%d-a" % index)
    net.link("r1", "p%d-b" % index)
    if resident_capacity:
        net.add_platform(
            "res%d" % index, "10.%d.0.0/14" % (64 + 4 * index),
            capacity=resident_capacity,
        )
        net.link("r1", "res%d" % index)
    net.link("r1", "r2")
    net.link("r2", "clients")
    net.compute_routes()
    return net


@dataclass
class ShardSegment:
    """One journaled controller domain: a shard's unit of failover.

    A healthy shard holds exactly its *home* segment.  After adopting a
    dead peer, the heir additionally holds the victim's segment(s) --
    same ``segment_id``, same network and journal objects, a freshly
    recovered controller.  Keeping segments separate (instead of
    merging state into the heir's own controller) is what makes a
    later hand-back, and per-segment digest comparison, possible.
    """

    segment_id: str
    network: Network
    journal: DeploymentJournal
    controller: Controller
    #: Tenants with state in this segment.
    tenants: Set[str] = field(default_factory=set)


@dataclass
class ControllerShard:
    """One member of the federation: a shard id plus its segments."""

    shard_id: str
    alive: bool = True
    #: segment id -> segment; the home segment's id == shard_id.
    segments: Dict[str, ShardSegment] = field(default_factory=dict)

    @property
    def home(self) -> ShardSegment:
        return self.segments[self.shard_id]

    def segment_for(self, client_id: str) -> ShardSegment:
        """The segment holding a tenant (adopted segments first)."""
        for segment in self.segments.values():
            if segment.segment_id != self.shard_id and (
                client_id in segment.tenants
            ):
                return segment
        return self.segments[self.shard_id]

    def deployed_count(self) -> int:
        return sum(
            len(s.controller.deployed) for s in self.segments.values()
        )


@dataclass
class FederatedDecision:
    """What the front-end returns for one submitted request."""

    shard: str
    segment: str
    result: DeploymentResult

    def __bool__(self) -> bool:
        return bool(self.result)


@dataclass
class FailoverOutcome:
    """Report of one shard failover."""

    victim: str
    heir: str
    adopted_segments: List[str] = field(default_factory=list)
    adopted_modules: int = 0
    adopted_tenants: int = 0
    #: Detection latency + journal replay, the federation's MTTR.
    mttr_s: float = 0.0


@dataclass
class HandbackOutcome:
    """Report of one shard revival: segments handed back to it."""

    revived: str
    #: segment id -> the heir it was reclaimed from.
    handed_back: Dict[str, str] = field(default_factory=dict)
    modules: int = 0
    tenants: int = 0
    #: Per-segment replay proved byte-for-byte state equality with the
    #: heir's copy (the hand-back loses nothing).
    digest_equal: bool = True
    #: Detection latency + replay + adoption, the hand-back MTTR.
    mttr_s: float = 0.0


@dataclass
class ReshardOutcome:
    """Report of one live reshard (shard added or removed)."""

    kind: str                     # "add" | "remove"
    shard: str
    moved_tenants: List[str] = field(default_factory=list)
    moved_modules: int = 0
    #: (module id, reason) for moves that failed re-verification.
    failures: List[Tuple[str, str]] = field(default_factory=list)
    duration_s: float = 0.0


class _AggregateInvoice:
    """Sum of a client's invoices across every segment."""

    __slots__ = ("total", "parts")

    def __init__(self, parts):
        self.parts = list(parts)
        self.total = sum(p.total for p in self.parts)


class _FederatedLedger:
    """Ledger facade over every live segment (the Federation seam only
    needs ``invoice(client_id, now).total``)."""

    def __init__(self, plane: "FederatedControlPlane"):
        self._plane = plane

    def invoice(self, client_id: str, now: float) -> _AggregateInvoice:
        return _AggregateInvoice(
            segment.controller.ledger.invoice(client_id, now)
            for segment in self._plane.segments()
        )


class FederationFrontend:
    """Controller-like adapter: the whole federation as one operator.

    Implements the slice of the :class:`Controller` API the
    :class:`repro.core.federation.Federation` seam uses --
    ``request``, ``kill``, and ``ledger`` -- so CDN/DoS usecases run
    unchanged on top of a sharded control plane.
    """

    def __init__(self, plane: "FederatedControlPlane"):
        self._plane = plane
        self.ledger = _FederatedLedger(plane)

    def request(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str] = None,
        dry_run: bool = False,
    ) -> DeploymentResult:
        return self._plane.submit(
            request, pinned_platform=pinned_platform, dry_run=dry_run
        ).result

    def kill(self, module_id: str) -> bool:
        return self._plane.kill(module_id)

    @property
    def deployed(self) -> Dict[str, object]:
        """module id -> deployment record, across every live segment
        (Federation-side placement pruning reads this)."""
        out: Dict[str, object] = {}
        for segment in self._plane.segments():
            out.update(segment.controller.deployed)
        return out


class FederatedControlPlane:
    """N controller shards, one deterministic admission front-end."""

    def __init__(
        self,
        shard_count: int = 4,
        network_factory: Optional[Callable[[int], Network]] = None,
        operator_requirements: str = "",
        obs=None,
        clock=None,
        gossip_every: int = 8,
        verdict_capacity: int = 4096,
        vnodes: int = 64,
    ):
        from repro.obs import NULL_OBSERVABILITY

        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.operator_requirements = operator_requirements
        self.gossip_every = gossip_every
        self.verdict_capacity = verdict_capacity
        self._clock = clock if clock is not None else time.time
        self._obs_arg = obs
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        self._tracer = self._obs.tracer
        metrics = self._obs.metrics
        self._h_admission = metrics.histogram(
            "fedctl_admission_seconds",
            "Front-end wall-clock seconds per admission",
            labels=("shard",),
        )
        self._c_requests = metrics.counter(
            "fedctl_requests_total",
            "Admissions through the front-end by shard and outcome",
            labels=("shard", "outcome"),
        )
        self._c_failovers = metrics.counter(
            "fedctl_failovers_total",
            "Shard failovers by outcome", labels=("outcome",),
        )
        self._h_failover = metrics.histogram(
            "fedctl_failover_seconds",
            "Shard failover MTTR (detection + journal replay)",
        )
        self._c_handbacks = metrics.counter(
            "fedctl_handbacks_total",
            "Shard revivals handing segments back, by outcome",
            labels=("outcome",),
        )
        self._h_handback = metrics.histogram(
            "fedctl_handback_seconds",
            "Shard revival hand-back MTTR "
            "(detection + replay + adoption)",
        )
        self._c_reshards = metrics.counter(
            "fedctl_reshards_total",
            "Live reshard operations by kind", labels=("kind",),
        )
        self._c_reshard_moves = metrics.counter(
            "fedctl_reshard_moves_total",
            "Cross-shard module moves during resharding, by outcome",
            labels=("outcome",),
        )
        network_factory = (
            network_factory if network_factory is not None
            else shard_network
        )
        self._network_factory = network_factory
        #: Next network index for shards added at runtime; also keeps
        #: pool octets disjoint from every shard ever built.
        self._next_index = shard_count
        shard_ids = ["shard-%d" % i for i in range(shard_count)]
        self.shard_map = ShardMap(shard_ids, vnodes=vnodes)
        self.bus = GossipBus(obs=obs)
        self.address_index = AddressRangeIndex()
        self.shards: Dict[str, ControllerShard] = {}
        for index, shard_id in enumerate(shard_ids):
            network = network_factory(index)
            segment = self._make_segment(shard_id, network)
            self.shards[shard_id] = ControllerShard(
                shard_id=shard_id,
                segments={shard_id: segment},
            )
            for platform in network.platforms():
                low, high = prefix_range(
                    platform.pool_network, platform.pool_plen
                )
                self.address_index.register(low, high, shard_id)
        #: module id -> (holding shard id, segment id); federation-wide
        #: module ids are unique (the front-end enforces it).
        self.placements: Dict[str, Tuple[str, str]] = {}
        self.failovers: List[FailoverOutcome] = []
        self.handbacks: List[HandbackOutcome] = []
        self.reshards: List[ReshardOutcome] = []
        self._admissions = 0
        if self._obs.enabled:
            metrics.register_collector(
                self._collect_gauges, key=("fedctl", id(self)),
            )

    # -- construction helpers -----------------------------------------------
    def _make_segment(
        self,
        segment_id: str,
        network: Network,
        journal: Optional[DeploymentJournal] = None,
        recover: bool = False,
        cache_member: Optional[str] = None,
    ) -> ShardSegment:
        journal = (
            journal if journal is not None
            else DeploymentJournal(obs=self._obs_arg)
        )
        if recover:
            controller = Controller.recover(
                network, journal,
                operator_requirements=self.operator_requirements,
                clock=self._clock, obs=self._obs_arg,
            )
        else:
            controller = Controller(
                network,
                operator_requirements=self.operator_requirements,
                clock=self._clock, obs=self._obs_arg, journal=journal,
            )
        member = cache_member if cache_member is not None else segment_id
        attach_gossip_cache(
            controller.analyzer, self.bus, member,
            capacity=self.verdict_capacity,
        )
        if self._obs.enabled:
            controller.analyzer.instrument(
                self._obs.metrics, "verdict:%s" % member
            )
        tenants: Set[str] = set()
        if recover:
            tenants.update(
                record.client_id
                for record in journal.live_state().values()
            )
            tenants.update(journal.registered_addresses())
        return ShardSegment(
            segment_id=segment_id, network=network,
            journal=journal, controller=controller, tenants=tenants,
        )

    # -- admission front-end ------------------------------------------------
    def submit(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str] = None,
        dry_run: bool = False,
    ) -> FederatedDecision:
        """Route one request to its shard and admit it there.

        Per-tenant ordering holds by construction: a tenant's requests
        always resolve to the same live shard (via delegation after a
        failover), and each shard serializes its own admissions.
        """
        started = time.perf_counter()
        with self._tracer.span(
            "fedctl.submit",
            client_id=request.client_id, dry_run=dry_run,
        ) as span:
            shard_id = self.shard_map.route(request.client_id)
            span.set("shard", shard_id)
            shard = self.shards[shard_id]
            segment = shard.segment_for(request.client_id)
            span.set("segment", segment.segment_id)
            result = self._admit_on(
                segment, request, pinned_platform, dry_run
            )
            span.set("accepted", result.accepted)
        self._h_admission.labels(shard_id).observe(
            time.perf_counter() - started
        )
        self._c_requests.labels(
            shard_id, "accepted" if result.accepted else "rejected"
        ).inc()
        if result.accepted and not dry_run:
            self.placements[result.module_id] = (
                shard_id, segment.segment_id
            )
            segment.tenants.add(request.client_id)
        self._admissions += 1
        if self.gossip_every and (
            self._admissions % self.gossip_every == 0
        ):
            self.gossip_round()
        return FederatedDecision(
            shard=shard_id, segment=segment.segment_id, result=result
        )

    def _admit_on(
        self,
        segment: ShardSegment,
        request: ClientRequest,
        pinned_platform: Optional[str],
        dry_run: bool,
    ) -> DeploymentResult:
        # Module ids are federation-wide handles (kill/migrate route by
        # them), so enforce global uniqueness before the shard's local
        # check.
        if request.module_name and (
            request.module_name in self.placements
        ):
            holder, _segment = self.placements[request.module_name]
            return DeploymentResult(
                accepted=False,
                reason="module name %r already in use on %s"
                       % (request.module_name, holder),
            )
        return segment.controller.request(
            request, pinned_platform=pinned_platform, dry_run=dry_run
        )

    def kill(self, module_id: str) -> bool:
        """Tear a module down wherever it runs in the federation."""
        placed = self.placements.get(module_id)
        if placed is None:
            return False
        shard_id, segment_id = placed
        segment = self.shards[shard_id].segments[segment_id]
        killed = segment.controller.kill(module_id)
        if killed:
            self.placements.pop(module_id, None)
        return killed

    def resolve_address(self, address: int) -> Optional[str]:
        """The shard whose platforms own an address (cross-domain
        requests that name a target address instead of a tenant)."""
        return self.address_index.owner_of(address)

    # -- gossip -------------------------------------------------------------
    def gossip_round(self) -> int:
        """Drain every shard's rumor inbox (bounded-staleness tick)."""
        with self._tracer.span("fedctl.gossip", kind="round"):
            return self.bus.drain_all()

    def anti_entropy_round(self) -> int:
        """Full pairwise verdict sync (reconciles dropped rumors)."""
        with self._tracer.span("fedctl.gossip", kind="anti-entropy"):
            return self.bus.anti_entropy()

    # -- failover -----------------------------------------------------------
    def fail_shard(
        self,
        shard_id: str,
        heir_id: Optional[str] = None,
        failed_at: Optional[float] = None,
    ) -> FailoverOutcome:
        """A whole controller shard died: the heir adopts its tenants.

        For every segment the victim held (its home, plus anything it
        had itself adopted), the heir replays the segment's write-ahead
        journal with :meth:`Controller.recover` -- reconciling trial
        placements orphaned mid-deploy -- and takes over the segment's
        platforms, address ranges, and tenants.  The shard map then
        delegates the victim's ring range to the heir, so the victim's
        tenants keep their per-tenant ordering on a single live shard.

        ``failed_at`` (on the plane's clock) models detection latency;
        MTTR = detection + replay.
        """
        victim = self.shards.get(shard_id)
        if victim is None:
            raise ConfigError("unknown shard %r" % (shard_id,))
        if not victim.alive:
            raise ConfigError("shard %r is already down" % (shard_id,))
        detection = 0.0
        if failed_at is not None:
            detection = max(0.0, self._clock() - failed_at)
        victim.alive = False
        heir_id = (
            heir_id if heir_id is not None
            else self.shard_map.successor(shard_id)
        )
        heir = self.shards[heir_id]
        if not heir.alive:
            raise ConfigError(
                "heir shard %r is not alive" % (heir_id,)
            )
        started = time.perf_counter()
        outcome = FailoverOutcome(victim=shard_id, heir=heir_id)
        with self._tracer.span(
            "fedctl.failover", victim=shard_id, heir=heir_id,
        ):
            self.shard_map.delegate(shard_id, heir_id)
            # The dead shard's caches stop receiving rumors.
            for segment in victim.segments.values():
                self.bus.leave(
                    segment.controller.analyzer.cache.shard_id
                )
            # Stale placements (e.g. an intent that never committed)
            # are rebuilt from the journals below.
            for module_id in [
                m for m, (holder, _s) in self.placements.items()
                if holder == shard_id
            ]:
                del self.placements[module_id]
            for segment_id, segment in sorted(victim.segments.items()):
                with self._tracer.span(
                    "fedctl.replay", segment=segment_id,
                ):
                    adopted = self._make_segment(
                        segment_id, segment.network,
                        journal=segment.journal, recover=True,
                        cache_member="%s@%s" % (segment_id, heir_id),
                    )
                heir.segments[segment_id] = adopted
                outcome.adopted_segments.append(segment_id)
                outcome.adopted_modules += len(
                    adopted.controller.deployed
                )
                outcome.adopted_tenants += len(adopted.tenants)
                for module_id in adopted.controller.deployed:
                    self.placements[module_id] = (heir_id, segment_id)
            victim.segments = {}
            self.address_index.reassign(shard_id, heir_id)
            # Catch-up: the recovered segments joined the bus with
            # empty caches; one anti-entropy round re-warms them with
            # every verdict the federation already holds.
            self.bus.anti_entropy()
        outcome.mttr_s = detection + (time.perf_counter() - started)
        self._c_failovers.labels("adopted").inc()
        self._h_failover.observe(outcome.mttr_s)
        self.failovers.append(outcome)
        return outcome

    # -- revival hand-back ---------------------------------------------------
    def revive_shard(
        self,
        shard_id: str,
        strict: bool = True,
        repaired_at: Optional[float] = None,
    ) -> HandbackOutcome:
        """A repaired shard rejoins: its heir hands the state back.

        The inverse of :meth:`fail_shard`.  The shard map drops the
        delegation (the revived shard resumes ownership of its ring
        range), and every segment whose range the revived shard now
        serves again -- its own home segment, plus any segment whose
        delegation *chain* ends at it (reviving B after A->B, B->C
        reclaims both "A" and "B" from C) -- is replayed from its
        write-ahead journal into a fresh controller on the revived
        shard.  The heir's copy and the replayed copy must agree
        byte-for-byte (``controller_state_digest``); with ``strict``
        a mismatch raises instead of just being reported.

        The replayed segments join the gossip bus with cold caches;
        one anti-entropy round re-warms them with every verdict the
        federation already holds, so nothing is re-verified.

        ``repaired_at`` (on the plane's clock) models how long the
        health monitor took to notice the repair; hand-back MTTR =
        detection + replay + adoption.
        """
        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigError("unknown shard %r" % (shard_id,))
        if shard.alive:
            raise ConfigError(
                "shard %r is already alive" % (shard_id,)
            )
        detection = 0.0
        if repaired_at is not None:
            detection = max(0.0, self._clock() - repaired_at)
        started = time.perf_counter()
        self.shard_map.revive(shard_id)
        shard.alive = True
        outcome = HandbackOutcome(revived=shard_id)
        reclaim: List[Tuple[str, ControllerShard]] = []
        for holder in self.live_shards():
            if holder.shard_id == shard_id:
                continue
            for segment_id in list(holder.segments):
                if segment_id == holder.shard_id:
                    continue
                if self.shard_map.resolve(segment_id) == shard_id:
                    reclaim.append((segment_id, holder))
        with self._tracer.span(
            "fedctl.handback", revived=shard_id,
        ):
            for segment_id, holder in sorted(
                reclaim, key=lambda entry: entry[0]
            ):
                segment = holder.segments[segment_id]
                before = controller_state_digest(segment.controller)
                self.bus.leave(
                    segment.controller.analyzer.cache.shard_id
                )
                member = (
                    segment_id if segment_id == shard_id
                    else "%s@%s" % (segment_id, shard_id)
                )
                with self._tracer.span(
                    "fedctl.replay", segment=segment_id,
                ):
                    reclaimed = self._make_segment(
                        segment_id, segment.network,
                        journal=segment.journal, recover=True,
                        cache_member=member,
                    )
                after = controller_state_digest(reclaimed.controller)
                if before != after:
                    outcome.digest_equal = False
                    if strict:
                        self._c_handbacks.labels(
                            "digest-mismatch"
                        ).inc()
                        raise InvariantViolation(
                            "hand-back of segment %r to %r diverged "
                            "from the heir %r's copy (journal replay "
                            "is not exact)"
                            % (segment_id, shard_id, holder.shard_id)
                        )
                del holder.segments[segment_id]
                shard.segments[segment_id] = reclaimed
                for module_id in [
                    m for m, placed in self.placements.items()
                    if placed == (holder.shard_id, segment_id)
                ]:
                    del self.placements[module_id]
                for module_id in reclaimed.controller.deployed:
                    self.placements[module_id] = (shard_id, segment_id)
                for platform in segment.network.platforms():
                    low, high = prefix_range(
                        platform.pool_network, platform.pool_plen
                    )
                    self.address_index.reassign_exact(
                        low, high, shard_id
                    )
                outcome.handed_back[segment_id] = holder.shard_id
                outcome.modules += len(reclaimed.controller.deployed)
                outcome.tenants += len(reclaimed.tenants)
            # Cold caches re-warm from the federation's verdicts; no
            # configuration is re-verified because of the revival.
            self.bus.anti_entropy()
        outcome.mttr_s = detection + (time.perf_counter() - started)
        self._c_handbacks.labels(
            "ok" if outcome.digest_equal else "digest-mismatch"
        ).inc()
        self._h_handback.observe(outcome.mttr_s)
        self.handbacks.append(outcome)
        return outcome

    # -- live resharding -----------------------------------------------------
    def add_shard(
        self,
        shard_id: Optional[str] = None,
        network: Optional[Network] = None,
    ) -> ReshardOutcome:
        """Grow the federation by one shard, live.

        The new shard's virtual nodes claim ~1/N of the ring; exactly
        the tenants whose route changed -- and, by the consistent-hash
        movement bound, *only* tenants that now route to the new shard
        (checked, violations raise) -- have their modules migrated
        over through the journaled adopt fast path
        (:meth:`Controller.adopt_module`): each move writes a deploy
        intent on the destination before the trial placement, so a
        crash mid-reshard leaves an orphan the next recovery
        reconciles away.
        """
        from repro.fedctl.invariants import (
            reshard_movement_violations,
        )

        index = self._next_index
        shard_id = (
            shard_id if shard_id is not None else "shard-%d" % index
        )
        if shard_id in self.shards:
            raise ConfigError(
                "shard %r already exists" % (shard_id,)
            )
        started = time.perf_counter()
        routes_before = self._tenant_routes()
        self.shard_map.add_shard(shard_id)
        self._next_index = index + 1
        network = (
            network if network is not None
            else self._network_factory(index)
        )
        segment = self._make_segment(shard_id, network)
        self.shards[shard_id] = ControllerShard(
            shard_id=shard_id, segments={shard_id: segment},
        )
        for platform in network.platforms():
            low, high = prefix_range(
                platform.pool_network, platform.pool_plen
            )
            self.address_index.register(low, high, shard_id)
        routes_after = {
            tenant: self.shard_map.route(tenant)
            for tenant in routes_before
        }
        problems = reshard_movement_violations(
            routes_before, routes_after, added=shard_id
        )
        if problems:
            raise InvariantViolation(
                "adding %r broke the movement bound:\n  %s"
                % (shard_id, "\n  ".join(problems))
            )
        outcome = ReshardOutcome(kind="add", shard=shard_id)
        moved = sorted(
            tenant for tenant in routes_before
            if routes_after[tenant] != routes_before[tenant]
        )
        with self._tracer.span(
            "fedctl.reshard", kind="add", shard=shard_id,
        ):
            for tenant in moved:
                self._move_tenant(
                    tenant, routes_before[tenant], shard_id, outcome
                )
            # Warm the new shard's cold verdict cache.
            self.bus.anti_entropy()
        outcome.duration_s = time.perf_counter() - started
        self._c_reshards.labels("add").inc()
        self.reshards.append(outcome)
        return outcome

    def remove_shard(self, shard_id: str) -> ReshardOutcome:
        """Gracefully decommission a live shard.

        The shard's virtual nodes leave the ring, so exactly its own
        tenants move -- each to the live shard that now serves its
        key (checked against the movement bound).  Their modules
        migrate out through the journaled adopt fast path before the
        shard's gossip membership, address ranges, and controller are
        retired.  A shard still holding adopted segments cannot be
        removed (revive their owners first), and the shard map
        refuses to remove a delegation heir or the last live shard.

        A module move that fails re-verification aborts the
        decommission with :class:`InvariantViolation`; the shard is
        retired from routing but retained (with its remaining
        modules) for the operator to inspect.
        """
        from repro.fedctl.invariants import (
            reshard_movement_violations,
        )

        shard = self.shards.get(shard_id)
        if shard is None:
            raise ConfigError("unknown shard %r" % (shard_id,))
        if not shard.alive:
            raise ConfigError(
                "shard %r is dead; revive it (hand its state back) "
                "before removing it" % (shard_id,)
            )
        adopted = sorted(
            s for s in shard.segments if s != shard_id
        )
        if adopted:
            raise ConfigError(
                "shard %r still holds adopted segment(s) %s; revive "
                "their owners before removing it"
                % (shard_id, ", ".join(adopted))
            )
        started = time.perf_counter()
        routes_before = self._tenant_routes()
        self.shard_map.remove_shard(shard_id)
        routes_after = {
            tenant: self.shard_map.route(tenant)
            for tenant in routes_before
        }
        problems = reshard_movement_violations(
            routes_before, routes_after, removed=shard_id
        )
        if problems:
            raise InvariantViolation(
                "removing %r broke the movement bound:\n  %s"
                % (shard_id, "\n  ".join(problems))
            )
        outcome = ReshardOutcome(kind="remove", shard=shard_id)
        moved = sorted(
            tenant for tenant in routes_before
            if routes_after[tenant] != routes_before[tenant]
        )
        with self._tracer.span(
            "fedctl.reshard", kind="remove", shard=shard_id,
        ):
            for tenant in moved:
                self._move_tenant(
                    tenant, shard_id, routes_after[tenant], outcome
                )
        if outcome.failures:
            self.reshards.append(outcome)
            raise InvariantViolation(
                "decommission of %r stranded modules:\n  "
                % (shard_id,)
                + "\n  ".join(
                    "%s: %s" % (module_id, reason)
                    for module_id, reason in outcome.failures
                )
            )
        self.bus.leave(shard.home.controller.analyzer.cache.shard_id)
        self.address_index.unregister_shard(shard_id)
        del self.shards[shard_id]
        outcome.duration_s = time.perf_counter() - started
        self._c_reshards.labels("remove").inc()
        self.reshards.append(outcome)
        return outcome

    def _tenant_routes(self) -> Dict[str, str]:
        """tenant -> serving live shard, for every tenant with state."""
        routes: Dict[str, str] = {}
        for shard in self.live_shards():
            for segment in shard.segments.values():
                for tenant in segment.tenants:
                    routes[tenant] = self.shard_map.route(tenant)
        return routes

    def _move_tenant(
        self,
        tenant: str,
        src_shard_id: str,
        dst_shard_id: str,
        outcome: ReshardOutcome,
    ) -> None:
        """Move one tenant's modules (and membership) between shards."""
        src_segment = self.shards[src_shard_id].segment_for(tenant)
        dst_segment = self.shards[dst_shard_id].home
        module_ids = sorted(
            module_id
            for module_id, record in
            src_segment.controller.deployed.items()
            if record.client_id == tenant
        )
        all_moved = True
        for module_id in module_ids:
            if not self._migrate_module_across(
                module_id, src_segment, dst_shard_id, outcome
            ):
                all_moved = False
        if all_moved:
            src_segment.tenants.discard(tenant)
            dst_segment.tenants.add(tenant)
            outcome.moved_tenants.append(tenant)
        elif module_ids != sorted(
            module_id
            for module_id, record in
            src_segment.controller.deployed.items()
            if record.client_id == tenant
        ):
            # Partial move: the tenant has state on both sides.
            dst_segment.tenants.add(tenant)

    def _migrate_module_across(
        self,
        module_id: str,
        src_segment: ShardSegment,
        dst_shard_id: str,
        outcome: ReshardOutcome,
    ) -> bool:
        """One cross-shard module move through the adopt fast path."""
        dst_segment = self.shards[dst_shard_id].home
        record = src_segment.controller.export_module(module_id)
        result = dst_segment.controller.adopt_module(
            record, origin="reshard:%s" % src_segment.segment_id,
        )
        if not result:
            outcome.failures.append((module_id, result.reason))
            self._c_reshard_moves.labels("failed").inc()
            return False
        src_segment.controller.kill(module_id)
        self.placements[module_id] = (
            dst_shard_id, dst_segment.segment_id
        )
        outcome.moved_modules += 1
        self._c_reshard_moves.labels("moved").inc()
        return True

    # -- views --------------------------------------------------------------
    def frontend(self) -> FederationFrontend:
        """The Controller-like facade for the Federation seam."""
        return FederationFrontend(self)

    def segments(self) -> List[ShardSegment]:
        """Every live segment, in shard order."""
        return [
            segment
            for shard in self.shards.values() if shard.alive
            for segment in shard.segments.values()
        ]

    def live_shards(self) -> List[ControllerShard]:
        return [s for s in self.shards.values() if s.alive]

    def stats(self) -> dict:
        """Operator-facing counters (available without observability)."""
        shards = {}
        for shard_id, shard in self.shards.items():
            shards[shard_id] = {
                "alive": shard.alive,
                "segments": {
                    segment_id: {
                        "deployed": len(segment.controller.deployed),
                        "tenants": len(segment.tenants),
                        "journal_records": len(segment.journal),
                    }
                    for segment_id, segment in shard.segments.items()
                },
            }
        remote_hits = sum(
            getattr(s.controller.analyzer.cache, "remote_hits", 0)
            for s in self.segments()
        )
        return {
            "admissions": self._admissions,
            "placements": len(self.placements),
            "failovers": len(self.failovers),
            "handbacks": len(self.handbacks),
            "reshards": len(self.reshards),
            "gossip_remote_hits": remote_hits,
            "gossip": self.bus.stats(),
            "shards": shards,
        }

    def _collect_gauges(self) -> None:
        metrics = self._obs.metrics
        g_live = metrics.gauge(
            "fedctl_live_shards", "Shards currently alive",
        )
        g_live.set(len(self.live_shards()))
        g_modules = metrics.gauge(
            "fedctl_deployed_modules",
            "Deployed modules by holding shard", labels=("shard",),
        )
        g_tenants = metrics.gauge(
            "fedctl_tenants",
            "Tenants with state by holding shard", labels=("shard",),
        )
        g_remote = metrics.gauge(
            "fedctl_gossip_remote_hits",
            "Verdict-cache hits served from gossiped entries",
            labels=("shard",),
        )
        for shard_id, shard in self.shards.items():
            g_modules.labels(shard_id).set(shard.deployed_count())
            g_tenants.labels(shard_id).set(sum(
                len(s.tenants) for s in shard.segments.values()
            ))
            g_remote.labels(shard_id).set(sum(
                getattr(s.controller.analyzer.cache, "remote_hits", 0)
                for s in shard.segments.values()
            ))
