"""The federated control plane: sharded controllers behind one front-end.

The paper's controller (Section 4.3) is one machine verifying every
request; Figure 10 shows its per-request cost growing with resident
state.  :class:`FederatedControlPlane` is the production shape hinted
at in "Scaling the controller": N :class:`~repro.core.controller.Controller`
shards, each owning a slice of the operator's platforms and tenants,
behind a deterministic admission front-end.

* **Routing** -- a consistent-hash :class:`~repro.fedctl.shardmap.ShardMap`
  over tenant ids (per-tenant ordering: one tenant always talks to one
  shard), plus an :class:`~repro.fedctl.shardmap.AddressRangeIndex`
  over platform pools for cross-domain requests that name an address.
* **Verdict sharing** -- each shard's
  :class:`~repro.core.cache.CachingSecurityAnalyzer` gets a
  :class:`~repro.fedctl.gossip.GossipingVerdictCache`, so a config
  fingerprint verified anywhere is a warm hit everywhere (bounded
  staleness: a gossip round runs every ``gossip_every`` admissions).
* **Failover** -- every shard journals to its own write-ahead
  :class:`~repro.resilience.journal.DeploymentJournal`; when a shard
  dies, the deterministic heir (ring successor) replays the journal
  with :meth:`Controller.recover`, adopts the dead shard's platforms,
  address ranges, and tenants as a **segment**, and the shard map
  delegates the dead shard's ring range to the heir.
* **Federation seam** -- :meth:`frontend` returns a Controller-like
  facade (``request``/``kill``/``ledger``), so the existing
  :class:`repro.core.federation.Federation` (and the CDN/DoS usecases
  on top of it) can treat the whole federation as one operator.

Instrumentation: per-shard admission latency and outcome counters,
gossip hit/miss accounting, failover MTTR, and a ``fedctl`` span tree
(``fedctl.submit`` > ``admit`` > ``compile``/``security``/``check``).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Set, Tuple

from repro.common.addr import prefix_range
from repro.common.errors import ConfigError, DeploymentError
from repro.core.controller import Controller, DeploymentResult
from repro.core.requests import ClientRequest
from repro.fedctl.gossip import GossipBus, attach_gossip_cache
from repro.fedctl.shardmap import AddressRangeIndex, ShardMap
from repro.netmodel.topology import Network
from repro.resilience.journal import DeploymentJournal


def shard_network(
    index: int,
    capacity: int = 8,
    resident_capacity: int = 0,
) -> Network:
    """The default per-shard operator view.

    Every shard sees the shared client subnet and the internet, and
    owns two platforms with federation-wide disjoint pools.  With
    ``resident_capacity`` set, a third platform with a /14 pool holds
    pre-seeded resident modules (benchmark rigs); its pool octets are
    disjoint across shards too.

    ::

        internet -- r1 -- p<i>-a / p<i>-b [/ res<i>]
                     |
                    r2 -- clients (172.16/16)
    """
    net = Network("shard-%d" % index)
    net.add_internet()
    net.add_router("r1")
    net.add_router("r2")
    net.add_client_subnet("clients", "172.16.0.0/16")
    net.add_platform(
        "p%d-a" % index, "10.%d.0.0/24" % (1 + 2 * index),
        capacity=capacity,
    )
    net.add_platform(
        "p%d-b" % index, "10.%d.0.0/24" % (2 + 2 * index),
        capacity=capacity,
    )
    net.link("internet", "r1")
    net.link("r1", "p%d-a" % index)
    net.link("r1", "p%d-b" % index)
    if resident_capacity:
        net.add_platform(
            "res%d" % index, "10.%d.0.0/14" % (64 + 4 * index),
            capacity=resident_capacity,
        )
        net.link("r1", "res%d" % index)
    net.link("r1", "r2")
    net.link("r2", "clients")
    net.compute_routes()
    return net


@dataclass
class ShardSegment:
    """One journaled controller domain: a shard's unit of failover.

    A healthy shard holds exactly its *home* segment.  After adopting a
    dead peer, the heir additionally holds the victim's segment(s) --
    same ``segment_id``, same network and journal objects, a freshly
    recovered controller.  Keeping segments separate (instead of
    merging state into the heir's own controller) is what makes a
    later hand-back, and per-segment digest comparison, possible.
    """

    segment_id: str
    network: Network
    journal: DeploymentJournal
    controller: Controller
    #: Tenants with state in this segment.
    tenants: Set[str] = field(default_factory=set)


@dataclass
class ControllerShard:
    """One member of the federation: a shard id plus its segments."""

    shard_id: str
    alive: bool = True
    #: segment id -> segment; the home segment's id == shard_id.
    segments: Dict[str, ShardSegment] = field(default_factory=dict)

    @property
    def home(self) -> ShardSegment:
        return self.segments[self.shard_id]

    def segment_for(self, client_id: str) -> ShardSegment:
        """The segment holding a tenant (adopted segments first)."""
        for segment in self.segments.values():
            if segment.segment_id != self.shard_id and (
                client_id in segment.tenants
            ):
                return segment
        return self.segments[self.shard_id]

    def deployed_count(self) -> int:
        return sum(
            len(s.controller.deployed) for s in self.segments.values()
        )


@dataclass
class FederatedDecision:
    """What the front-end returns for one submitted request."""

    shard: str
    segment: str
    result: DeploymentResult

    def __bool__(self) -> bool:
        return bool(self.result)


@dataclass
class FailoverOutcome:
    """Report of one shard failover."""

    victim: str
    heir: str
    adopted_segments: List[str] = field(default_factory=list)
    adopted_modules: int = 0
    adopted_tenants: int = 0
    #: Detection latency + journal replay, the federation's MTTR.
    mttr_s: float = 0.0


class _AggregateInvoice:
    """Sum of a client's invoices across every segment."""

    __slots__ = ("total", "parts")

    def __init__(self, parts):
        self.parts = list(parts)
        self.total = sum(p.total for p in self.parts)


class _FederatedLedger:
    """Ledger facade over every live segment (the Federation seam only
    needs ``invoice(client_id, now).total``)."""

    def __init__(self, plane: "FederatedControlPlane"):
        self._plane = plane

    def invoice(self, client_id: str, now: float) -> _AggregateInvoice:
        return _AggregateInvoice(
            segment.controller.ledger.invoice(client_id, now)
            for segment in self._plane.segments()
        )


class FederationFrontend:
    """Controller-like adapter: the whole federation as one operator.

    Implements the slice of the :class:`Controller` API the
    :class:`repro.core.federation.Federation` seam uses --
    ``request``, ``kill``, and ``ledger`` -- so CDN/DoS usecases run
    unchanged on top of a sharded control plane.
    """

    def __init__(self, plane: "FederatedControlPlane"):
        self._plane = plane
        self.ledger = _FederatedLedger(plane)

    def request(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str] = None,
        dry_run: bool = False,
    ) -> DeploymentResult:
        return self._plane.submit(
            request, pinned_platform=pinned_platform, dry_run=dry_run
        ).result

    def kill(self, module_id: str) -> bool:
        return self._plane.kill(module_id)

    @property
    def deployed(self) -> Dict[str, object]:
        """module id -> deployment record, across every live segment
        (Federation-side placement pruning reads this)."""
        out: Dict[str, object] = {}
        for segment in self._plane.segments():
            out.update(segment.controller.deployed)
        return out


class FederatedControlPlane:
    """N controller shards, one deterministic admission front-end."""

    def __init__(
        self,
        shard_count: int = 4,
        network_factory: Optional[Callable[[int], Network]] = None,
        operator_requirements: str = "",
        obs=None,
        clock=None,
        gossip_every: int = 8,
        verdict_capacity: int = 4096,
        vnodes: int = 64,
    ):
        from repro.obs import NULL_OBSERVABILITY

        if shard_count < 1:
            raise ValueError("need at least one shard")
        self.operator_requirements = operator_requirements
        self.gossip_every = gossip_every
        self.verdict_capacity = verdict_capacity
        self._clock = clock if clock is not None else time.time
        self._obs_arg = obs
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        self._tracer = self._obs.tracer
        metrics = self._obs.metrics
        self._h_admission = metrics.histogram(
            "fedctl_admission_seconds",
            "Front-end wall-clock seconds per admission",
            labels=("shard",),
        )
        self._c_requests = metrics.counter(
            "fedctl_requests_total",
            "Admissions through the front-end by shard and outcome",
            labels=("shard", "outcome"),
        )
        self._c_failovers = metrics.counter(
            "fedctl_failovers_total",
            "Shard failovers by outcome", labels=("outcome",),
        )
        self._h_failover = metrics.histogram(
            "fedctl_failover_seconds",
            "Shard failover MTTR (detection + journal replay)",
        )
        network_factory = (
            network_factory if network_factory is not None
            else shard_network
        )
        shard_ids = ["shard-%d" % i for i in range(shard_count)]
        self.shard_map = ShardMap(shard_ids, vnodes=vnodes)
        self.bus = GossipBus(obs=obs)
        self.address_index = AddressRangeIndex()
        self.shards: Dict[str, ControllerShard] = {}
        for index, shard_id in enumerate(shard_ids):
            network = network_factory(index)
            segment = self._make_segment(shard_id, network)
            self.shards[shard_id] = ControllerShard(
                shard_id=shard_id,
                segments={shard_id: segment},
            )
            for platform in network.platforms():
                low, high = prefix_range(
                    platform.pool_network, platform.pool_plen
                )
                self.address_index.register(low, high, shard_id)
        #: module id -> (holding shard id, segment id); federation-wide
        #: module ids are unique (the front-end enforces it).
        self.placements: Dict[str, Tuple[str, str]] = {}
        self.failovers: List[FailoverOutcome] = []
        self._admissions = 0
        if self._obs.enabled:
            metrics.register_collector(
                self._collect_gauges, key=("fedctl", id(self)),
            )

    # -- construction helpers -----------------------------------------------
    def _make_segment(
        self,
        segment_id: str,
        network: Network,
        journal: Optional[DeploymentJournal] = None,
        recover: bool = False,
        cache_member: Optional[str] = None,
    ) -> ShardSegment:
        journal = (
            journal if journal is not None
            else DeploymentJournal(obs=self._obs_arg)
        )
        if recover:
            controller = Controller.recover(
                network, journal,
                operator_requirements=self.operator_requirements,
                clock=self._clock, obs=self._obs_arg,
            )
        else:
            controller = Controller(
                network,
                operator_requirements=self.operator_requirements,
                clock=self._clock, obs=self._obs_arg, journal=journal,
            )
        member = cache_member if cache_member is not None else segment_id
        attach_gossip_cache(
            controller.analyzer, self.bus, member,
            capacity=self.verdict_capacity,
        )
        if self._obs.enabled:
            controller.analyzer.instrument(
                self._obs.metrics, "verdict:%s" % member
            )
        tenants: Set[str] = set()
        if recover:
            tenants.update(
                record.client_id
                for record in journal.live_state().values()
            )
            tenants.update(journal.registered_addresses())
        return ShardSegment(
            segment_id=segment_id, network=network,
            journal=journal, controller=controller, tenants=tenants,
        )

    # -- admission front-end ------------------------------------------------
    def submit(
        self,
        request: ClientRequest,
        pinned_platform: Optional[str] = None,
        dry_run: bool = False,
    ) -> FederatedDecision:
        """Route one request to its shard and admit it there.

        Per-tenant ordering holds by construction: a tenant's requests
        always resolve to the same live shard (via delegation after a
        failover), and each shard serializes its own admissions.
        """
        started = time.perf_counter()
        with self._tracer.span(
            "fedctl.submit",
            client_id=request.client_id, dry_run=dry_run,
        ) as span:
            shard_id = self.shard_map.route(request.client_id)
            span.set("shard", shard_id)
            shard = self.shards[shard_id]
            segment = shard.segment_for(request.client_id)
            span.set("segment", segment.segment_id)
            result = self._admit_on(
                segment, request, pinned_platform, dry_run
            )
            span.set("accepted", result.accepted)
        self._h_admission.labels(shard_id).observe(
            time.perf_counter() - started
        )
        self._c_requests.labels(
            shard_id, "accepted" if result.accepted else "rejected"
        ).inc()
        if result.accepted and not dry_run:
            self.placements[result.module_id] = (
                shard_id, segment.segment_id
            )
            segment.tenants.add(request.client_id)
        self._admissions += 1
        if self.gossip_every and (
            self._admissions % self.gossip_every == 0
        ):
            self.gossip_round()
        return FederatedDecision(
            shard=shard_id, segment=segment.segment_id, result=result
        )

    def _admit_on(
        self,
        segment: ShardSegment,
        request: ClientRequest,
        pinned_platform: Optional[str],
        dry_run: bool,
    ) -> DeploymentResult:
        # Module ids are federation-wide handles (kill/migrate route by
        # them), so enforce global uniqueness before the shard's local
        # check.
        if request.module_name and (
            request.module_name in self.placements
        ):
            holder, _segment = self.placements[request.module_name]
            return DeploymentResult(
                accepted=False,
                reason="module name %r already in use on %s"
                       % (request.module_name, holder),
            )
        return segment.controller.request(
            request, pinned_platform=pinned_platform, dry_run=dry_run
        )

    def kill(self, module_id: str) -> bool:
        """Tear a module down wherever it runs in the federation."""
        placed = self.placements.get(module_id)
        if placed is None:
            return False
        shard_id, segment_id = placed
        segment = self.shards[shard_id].segments[segment_id]
        killed = segment.controller.kill(module_id)
        if killed:
            self.placements.pop(module_id, None)
        return killed

    def resolve_address(self, address: int) -> Optional[str]:
        """The shard whose platforms own an address (cross-domain
        requests that name a target address instead of a tenant)."""
        return self.address_index.owner_of(address)

    # -- gossip -------------------------------------------------------------
    def gossip_round(self) -> int:
        """Drain every shard's rumor inbox (bounded-staleness tick)."""
        with self._tracer.span("fedctl.gossip", kind="round"):
            return self.bus.drain_all()

    def anti_entropy_round(self) -> int:
        """Full pairwise verdict sync (reconciles dropped rumors)."""
        with self._tracer.span("fedctl.gossip", kind="anti-entropy"):
            return self.bus.anti_entropy()

    # -- failover -----------------------------------------------------------
    def fail_shard(
        self,
        shard_id: str,
        heir_id: Optional[str] = None,
        failed_at: Optional[float] = None,
    ) -> FailoverOutcome:
        """A whole controller shard died: the heir adopts its tenants.

        For every segment the victim held (its home, plus anything it
        had itself adopted), the heir replays the segment's write-ahead
        journal with :meth:`Controller.recover` -- reconciling trial
        placements orphaned mid-deploy -- and takes over the segment's
        platforms, address ranges, and tenants.  The shard map then
        delegates the victim's ring range to the heir, so the victim's
        tenants keep their per-tenant ordering on a single live shard.

        ``failed_at`` (on the plane's clock) models detection latency;
        MTTR = detection + replay.
        """
        victim = self.shards.get(shard_id)
        if victim is None:
            raise ConfigError("unknown shard %r" % (shard_id,))
        if not victim.alive:
            raise ConfigError("shard %r is already down" % (shard_id,))
        detection = 0.0
        if failed_at is not None:
            detection = max(0.0, self._clock() - failed_at)
        victim.alive = False
        heir_id = (
            heir_id if heir_id is not None
            else self.shard_map.successor(shard_id)
        )
        heir = self.shards[heir_id]
        if not heir.alive:
            raise ConfigError(
                "heir shard %r is not alive" % (heir_id,)
            )
        started = time.perf_counter()
        outcome = FailoverOutcome(victim=shard_id, heir=heir_id)
        with self._tracer.span(
            "fedctl.failover", victim=shard_id, heir=heir_id,
        ):
            self.shard_map.delegate(shard_id, heir_id)
            # The dead shard's caches stop receiving rumors.
            for segment in victim.segments.values():
                self.bus.leave(
                    segment.controller.analyzer.cache.shard_id
                )
            # Stale placements (e.g. an intent that never committed)
            # are rebuilt from the journals below.
            for module_id in [
                m for m, (holder, _s) in self.placements.items()
                if holder == shard_id
            ]:
                del self.placements[module_id]
            for segment_id, segment in sorted(victim.segments.items()):
                with self._tracer.span(
                    "fedctl.replay", segment=segment_id,
                ):
                    adopted = self._make_segment(
                        segment_id, segment.network,
                        journal=segment.journal, recover=True,
                        cache_member="%s@%s" % (segment_id, heir_id),
                    )
                heir.segments[segment_id] = adopted
                outcome.adopted_segments.append(segment_id)
                outcome.adopted_modules += len(
                    adopted.controller.deployed
                )
                outcome.adopted_tenants += len(adopted.tenants)
                for module_id in adopted.controller.deployed:
                    self.placements[module_id] = (heir_id, segment_id)
            victim.segments = {}
            self.address_index.reassign(shard_id, heir_id)
            # Catch-up: the recovered segments joined the bus with
            # empty caches; one anti-entropy round re-warms them with
            # every verdict the federation already holds.
            self.bus.anti_entropy()
        outcome.mttr_s = detection + (time.perf_counter() - started)
        self._c_failovers.labels("adopted").inc()
        self._h_failover.observe(outcome.mttr_s)
        self.failovers.append(outcome)
        return outcome

    # -- views --------------------------------------------------------------
    def frontend(self) -> FederationFrontend:
        """The Controller-like facade for the Federation seam."""
        return FederationFrontend(self)

    def segments(self) -> List[ShardSegment]:
        """Every live segment, in shard order."""
        return [
            segment
            for shard in self.shards.values() if shard.alive
            for segment in shard.segments.values()
        ]

    def live_shards(self) -> List[ControllerShard]:
        return [s for s in self.shards.values() if s.alive]

    def stats(self) -> dict:
        """Operator-facing counters (available without observability)."""
        shards = {}
        for shard_id, shard in self.shards.items():
            shards[shard_id] = {
                "alive": shard.alive,
                "segments": {
                    segment_id: {
                        "deployed": len(segment.controller.deployed),
                        "tenants": len(segment.tenants),
                        "journal_records": len(segment.journal),
                    }
                    for segment_id, segment in shard.segments.items()
                },
            }
        remote_hits = sum(
            getattr(s.controller.analyzer.cache, "remote_hits", 0)
            for s in self.segments()
        )
        return {
            "admissions": self._admissions,
            "placements": len(self.placements),
            "failovers": len(self.failovers),
            "gossip_remote_hits": remote_hits,
            "shards": shards,
        }

    def _collect_gauges(self) -> None:
        metrics = self._obs.metrics
        g_live = metrics.gauge(
            "fedctl_live_shards", "Shards currently alive",
        )
        g_live.set(len(self.live_shards()))
        g_modules = metrics.gauge(
            "fedctl_deployed_modules",
            "Deployed modules by holding shard", labels=("shard",),
        )
        g_tenants = metrics.gauge(
            "fedctl_tenants",
            "Tenants with state by holding shard", labels=("shard",),
        )
        g_remote = metrics.gauge(
            "fedctl_gossip_remote_hits",
            "Verdict-cache hits served from gossiped entries",
            labels=("shard",),
        )
        for shard_id, shard in self.shards.items():
            g_modules.labels(shard_id).set(shard.deployed_count())
            g_tenants.labels(shard_id).set(sum(
                len(s.tenants) for s in shard.segments.values()
            ))
            g_remote.labels(shard_id).set(sum(
                getattr(s.controller.analyzer.cache, "remote_hits", 0)
                for s in shard.segments.values()
            ))
