"""The federated control plane (``fedctl``).

The paper's single controller, scaled out: N controller shards behind
one deterministic admission front-end, a gossip-shared security-verdict
cache, and journal-replay failover when a whole shard dies -- plus the
recovery half: revival hand-back, live resharding, and health-driven
failover.  See ``docs/federation.md`` for the shard-map contract,
gossip semantics, and the full failure lifecycle.
"""

from repro.fedctl.gossip import (
    GossipBus,
    GossipingVerdictCache,
    attach_gossip_cache,
)
from repro.fedctl.health import ShardHealthManager
from repro.fedctl.invariants import (
    check_federation_invariants,
    collect_federation_violations,
    federation_digest,
    reshard_movement_violations,
)
from repro.fedctl.plane import (
    ControllerShard,
    FederatedControlPlane,
    FederatedDecision,
    FederationFrontend,
    FailoverOutcome,
    HandbackOutcome,
    ReshardOutcome,
    ShardSegment,
    shard_network,
)
from repro.fedctl.seeding import seed_residents, tenant_ids_for_shard
from repro.fedctl.shardmap import AddressRangeIndex, ShardMap

__all__ = [
    "AddressRangeIndex",
    "ControllerShard",
    "FederatedControlPlane",
    "FederatedDecision",
    "FederationFrontend",
    "FailoverOutcome",
    "GossipBus",
    "GossipingVerdictCache",
    "HandbackOutcome",
    "ReshardOutcome",
    "ShardHealthManager",
    "ShardMap",
    "ShardSegment",
    "attach_gossip_cache",
    "check_federation_invariants",
    "collect_federation_violations",
    "federation_digest",
    "reshard_movement_violations",
    "seed_residents",
    "shard_network",
    "tenant_ids_for_shard",
]
