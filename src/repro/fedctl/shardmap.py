"""Deterministic tenant/address sharding for the federated control plane.

The paper scales one controller (Figure 10); a production operator runs
many.  Two routing questions then need deterministic, replicable
answers on every front-end instance:

* **which shard owns a tenant?** -- :class:`ShardMap`, consistent
  hashing over tenant ids with virtual nodes.  Adding a shard moves
  only ~1/N of the tenants; every front-end computes the same
  assignment from the shard list alone, no coordination.
* **which shard owns an address?** -- :class:`AddressRangeIndex`, an
  interval map over the platform address pools each shard manages.
  Cross-domain requests ("filter traffic to 10.66.0.9") resolve to the
  shard whose platforms own that range.

A dead shard is never removed from the ring -- its tokens stay, and a
**delegation** (dead shard -> heir) is layered on top.  That keeps the
map total (every tenant id still resolves) while preserving the
per-tenant ordering guarantee: *all* of a dead shard's tenants follow
its journal to the single heir that replayed it, instead of being
re-scattered over the ring.
"""

from __future__ import annotations

import hashlib
from typing import Dict, Iterable, List, Optional, Tuple

from repro.common.errors import ConfigError


def _token(text: str) -> int:
    """A stable 64-bit ring position for a string."""
    return int.from_bytes(
        hashlib.sha256(text.encode()).digest()[:8], "big"
    )


class ShardMap:
    """Consistent-hash ring mapping tenant keys to controller shards."""

    def __init__(self, shard_ids: Iterable[str], vnodes: int = 64):
        if vnodes < 1:
            raise ValueError("need at least one virtual node per shard")
        self.vnodes = vnodes
        self._shards: Dict[str, bool] = {}   # shard id -> alive
        #: (token, shard id), token-sorted.  Tokens of dead shards stay.
        self._ring: List[Tuple[int, str]] = []
        #: dead shard -> heir that adopted its tenants.
        self.delegations: Dict[str, str] = {}
        for shard_id in shard_ids:
            self.add_shard(shard_id)
        if not self._shards:
            raise ValueError("shard map needs at least one shard")

    # -- membership ---------------------------------------------------------
    def add_shard(self, shard_id: str) -> None:
        """Add a shard's virtual nodes to the ring."""
        if shard_id in self._shards:
            raise ConfigError("shard %r added twice" % (shard_id,))
        self._shards[shard_id] = True
        for replica in range(self.vnodes):
            self._ring.append(
                (_token("%s/%d" % (shard_id, replica)), shard_id)
            )
        self._ring.sort()

    def remove_shard(self, shard_id: str) -> None:
        """Permanently retire a live shard (graceful decommission).

        Unlike death (which keeps the tokens and delegates), removal
        erases the shard's virtual nodes: each of its keys moves to the
        clockwise successor token -- only keys the removed shard owned
        move, the other direction of the minimal-movement bound.

        A shard still named as an heir by a delegation cannot be
        removed (the delegation chain would dangle); revive or re-home
        the dead shard first.  Neither can a dead shard (its tenants
        live on its heir -- revive it, hand back, then remove) nor the
        last live shard.
        """
        if shard_id not in self._shards:
            raise ConfigError("unknown shard %r" % (shard_id,))
        if not self._shards[shard_id]:
            raise ConfigError(
                "shard %r is dead; revive it (hand its state back) "
                "before removing it" % (shard_id,)
            )
        for dead, heir in sorted(self.delegations.items()):
            if heir == shard_id:
                raise ConfigError(
                    "shard %r is the heir of dead shard %r and cannot "
                    "be removed" % (shard_id, dead)
                )
        if len(self.live_shards()) == 1:
            raise ConfigError(
                "cannot remove the last live shard %r" % (shard_id,)
            )
        del self._shards[shard_id]
        self._ring = [
            entry for entry in self._ring if entry[1] != shard_id
        ]

    def shard_ids(self) -> List[str]:
        """Every shard ever added, in insertion order."""
        return list(self._shards)

    def live_shards(self) -> List[str]:
        return [s for s, alive in self._shards.items() if alive]

    def is_live(self, shard_id: str) -> bool:
        return self._shards.get(shard_id, False)

    # -- failover -----------------------------------------------------------
    def delegate(self, dead: str, heir: str) -> None:
        """Route a dead shard's tenants to the heir that adopted them.

        The dead shard's ring tokens are kept: every key that hashed to
        it still does, and the delegation redirects the whole set to
        one heir -- matching the failover protocol, where exactly one
        peer replays the dead shard's journal.
        """
        if dead not in self._shards:
            raise ConfigError("unknown shard %r" % (dead,))
        if heir not in self._shards:
            raise ConfigError("unknown heir %r" % (heir,))
        if dead == heir:
            raise ConfigError("shard %r cannot inherit itself" % (dead,))
        if not self._shards.get(heir, False):
            raise ConfigError(
                "heir %r is not alive; a dead shard cannot adopt "
                "tenants" % (heir,)
            )
        self._shards[dead] = False
        self.delegations[dead] = heir

    def revive(self, shard_id: str) -> None:
        """Bring a shard back; it resumes ownership of its ring range."""
        if shard_id not in self._shards:
            raise ConfigError("unknown shard %r" % (shard_id,))
        self._shards[shard_id] = True
        self.delegations.pop(shard_id, None)

    def resolve(self, shard_id: str) -> str:
        """The live shard currently serving a shard's ring range.

        A live shard resolves to itself; a dead shard follows its
        delegation chain (dead -> heir -> ...) to the live holder of
        its tenants.  This is the segment-level analogue of
        :meth:`route`: segment ids are shard ids, so the live holder
        of segment ``s`` is ``resolve(s)``.
        """
        if shard_id not in self._shards:
            raise ConfigError("unknown shard %r" % (shard_id,))
        seen = {shard_id}
        current = shard_id
        while not self._shards.get(current, False):
            heir = self.delegations.get(current)
            if heir is None or heir in seen:
                raise ConfigError(
                    "no live holder for shard %r's range (%r is down "
                    "with no heir)" % (shard_id, current)
                )
            seen.add(heir)
            current = heir
        return current

    # -- routing ------------------------------------------------------------
    def owner(self, key: str) -> str:
        """The ring owner of a tenant key, dead or alive."""
        token = _token(key)
        # First ring entry clockwise of the key's token (binary search
        # is overkill at vnodes*shards entries, but keeps routing
        # O(log n) for large federations).
        lo, hi = 0, len(self._ring)
        while lo < hi:
            mid = (lo + hi) // 2
            if self._ring[mid][0] < token:
                lo = mid + 1
            else:
                hi = mid
        if lo == len(self._ring):
            lo = 0
        return self._ring[lo][1]

    def route(self, key: str) -> str:
        """The live shard serving a tenant key (delegations applied)."""
        shard = self.owner(key)
        seen = {shard}
        while not self._shards.get(shard, False):
            heir = self.delegations.get(shard)
            if heir is None or heir in seen:
                raise ConfigError(
                    "no live shard for key %r (owner %r is down with "
                    "no heir)" % (key, shard)
                )
            seen.add(heir)
            shard = heir
        return shard

    def successor(self, shard_id: str) -> str:
        """The deterministic heir for a shard: the next *live* distinct
        shard clockwise from its first virtual node."""
        if shard_id not in self._shards:
            raise ConfigError("unknown shard %r" % (shard_id,))
        start = _token("%s/0" % (shard_id,))
        ordered = sorted(self._ring)
        n = len(ordered)
        lo = 0
        while lo < n and ordered[lo][0] <= start:
            lo += 1
        for step in range(n):
            candidate = ordered[(lo + step) % n][1]
            if candidate != shard_id and self._shards.get(candidate):
                return candidate
        raise ConfigError(
            "no live successor for shard %r" % (shard_id,)
        )

    def assignments(self, keys: Iterable[str]) -> Dict[str, List[str]]:
        """shard id -> keys routed there (diagnostics and tests)."""
        out: Dict[str, List[str]] = {s: [] for s in self._shards}
        for key in keys:
            out[self.route(key)].append(key)
        return out


class AddressRangeIndex:
    """Interval map: address range -> owning shard.

    The front-end registers every platform pool a shard manages;
    cross-domain requests that name an address instead of a tenant
    resolve through here.  Ranges must not overlap -- overlapping pools
    would make "who owns this address" ambiguous, which is exactly the
    federation invariant (pool disjointness) the chaos harness checks.
    """

    def __init__(self):
        #: (low, high, shard id), low-sorted.
        self._ranges: List[Tuple[int, int, str]] = []

    def register(self, low: int, high: int, shard_id: str) -> None:
        if low > high:
            raise ConfigError("empty address range")
        for rlow, rhigh, owner in self._ranges:
            if low <= rhigh and rlow <= high:
                raise ConfigError(
                    "address range [%d, %d] overlaps shard %r's "
                    "[%d, %d]" % (low, high, owner, rlow, rhigh)
                )
        self._ranges.append((low, high, shard_id))
        self._ranges.sort()

    def reassign(self, old_shard: str, new_shard: str) -> int:
        """Move every range of one shard to another (failover adoption);
        returns how many ranges moved."""
        moved = 0
        for index, (low, high, owner) in enumerate(self._ranges):
            if owner == old_shard:
                self._ranges[index] = (low, high, new_shard)
                moved += 1
        return moved

    def reassign_exact(
        self, low: int, high: int, new_shard: str
    ) -> bool:
        """Move one exact registered range to another shard.

        The per-segment counterpart of :meth:`reassign`: a hand-back
        moves only the revived segment's platform pools off the heir,
        while the heir keeps its own.  Returns whether the range was
        found.
        """
        for index, (rlow, rhigh, _owner) in enumerate(self._ranges):
            if rlow == low and rhigh == high:
                self._ranges[index] = (low, high, new_shard)
                return True
        return False

    def unregister_shard(self, shard_id: str) -> int:
        """Drop every range a shard owns (graceful decommission, after
        its tenants moved away); returns how many ranges were dropped."""
        before = len(self._ranges)
        self._ranges = [
            entry for entry in self._ranges if entry[2] != shard_id
        ]
        return before - len(self._ranges)

    def owner_of(self, address: int) -> Optional[str]:
        """The shard owning an address, or None if unmanaged."""
        for low, high, shard_id in self._ranges:
            if low <= address <= high:
                return shard_id
            if low > address:
                break
        return None

    def ranges(self) -> List[Tuple[int, int, str]]:
        return list(self._ranges)
