"""Chaos scenario: a whole controller shard dies mid-deploy.

PR 4's harness killed platforms and controllers under a *single*
control plane; the federated analogue kills an entire controller shard
-- journal, trial placements, verdict cache and all -- while the rest
of the federation keeps serving.  The scenario asserts the full
failover contract:

* the deterministic heir (ring successor) adopts every one of the
  victim's tenants by journal replay;
* an admission orphaned between its intent and commit records is
  reconciled away (the trial placement is removed, the pending intent
  survives in the journal for audit);
* the per-segment state digests are *equal* before the crash and after
  adoption -- replay reconstructs exactly the committed state;
* the victim's tenants keep working: their next request routes to the
  heir (shard-map delegation) and is admitted against their adopted
  state, and their modules can be killed through the front-end;
* the heir's recovered verdict cache is re-warmed by anti-entropy, so
  the victim's configs stay warm hits federation-wide;
* :mod:`repro.fedctl.invariants` holds across the whole federation
  after every step.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fedctl.invariants import (
    collect_federation_violations,
    federation_digest,
)
from repro.fedctl.plane import FederatedControlPlane
from repro.resilience.chaos import ChaosReport, _module_request
from repro.resilience.journal import OP_DEPLOY, PHASE_INTENT

#: Per-shard module floor before the crash: the victim must die with
#: real tenant state to adopt.
MODULES_PER_SHARD = 2

SCENARIO = "shard-death"


def run_shard_death(
    seed: int = 0, obs=None, victim: str = "shard-0"
) -> ChaosReport:
    """One shard-death failover run; returns a chaos report."""
    report = ChaosReport(scenario=SCENARIO, seed=seed)
    # gossip_every=1: a verdict is rumored to every peer before the
    # next admission, so later shards take warm remote hits during
    # setup (asserted below).
    plane = FederatedControlPlane(
        shard_count=3, gossip_every=1, obs=obs
    )

    # -- populate every shard with tenant modules ---------------------------
    per_shard = {shard_id: 0 for shard_id in plane.shards}
    probe = 0
    while min(per_shard.values()) < MODULES_PER_SHARD:
        if probe >= 500:
            report.failures.append(
                "could not spread %d modules per shard over the ring"
                % MODULES_PER_SHARD
            )
            return report
        client = "tenant-%d-%d" % (seed, probe)
        probe += 1
        shard_id = plane.shard_map.route(client)
        if per_shard[shard_id] >= MODULES_PER_SHARD:
            continue
        module = "m-%d-%d" % (seed, probe)
        decision = plane.submit(_module_request(client, module))
        if not decision:
            report.failures.append(
                "setup deploy %s failed: %s"
                % (module, decision.result.reason)
            )
            return report
        if decision.shard != shard_id:
            report.failures.append(
                "front-end routed %s to %s, map says %s"
                % (client, decision.shard, shard_id)
            )
        per_shard[shard_id] += 1
        report.events.append(
            "deployed %s for %s on %s" % (module, client, shard_id)
        )
    report.failures.extend(collect_federation_violations(plane))
    # Every tenant ships the same config: only the first shard to see
    # it may verify it; everyone else must be served by gossip.
    if plane.stats()["gossip_remote_hits"] == 0:
        report.failures.append(
            "no shard took a warm remote verdict hit during setup"
        )

    victim_shard = plane.shards[victim]
    victim_segment = victim_shard.segments[victim]
    victim_tenants = sorted(victim_segment.tenants)
    victim_modules = sorted(victim_segment.controller.deployed)
    expected_heir = plane.shard_map.successor(victim)
    digest_before = federation_digest(plane)

    # -- the shard dies between a deploy's intent and its commit ------------
    platform_name = sorted(
        p.name for p in victim_segment.network.platforms()
    )[0]
    platform = victim_segment.network.node(platform_name)
    orphan_request = _module_request("tenant-orphan", "orphan")
    orphan_config = orphan_request.parse_click_config()
    orphan_address = platform.allocate_address()
    victim_segment.journal.append(
        OP_DEPLOY, PHASE_INTENT,
        module_id="orphan", client_id="tenant-orphan",
        platform=platform_name, address=orphan_address,
        sandboxed=False, proto=17, port=1500,
        timestamp=plane._clock(), config=orphan_config,
    )
    platform.deploy(
        "orphan", orphan_address, orphan_config, proto=17, port=1500
    )
    report.events.append(
        "%s crashed mid-deploy of 'orphan' on %s"
        % (victim, platform_name)
    )

    # -- failover -----------------------------------------------------------
    outcome = plane.fail_shard(victim, failed_at=plane._clock())
    report.mttr_s = outcome.mttr_s
    report.evacuated = victim_modules
    report.events.append(
        "heir %s adopted %d modules / %d tenants (mttr %.4fs)"
        % (outcome.heir, outcome.adopted_modules,
           outcome.adopted_tenants, outcome.mttr_s)
    )
    if outcome.heir != expected_heir:
        report.failures.append(
            "heir was %s, ring successor is %s"
            % (outcome.heir, expected_heir)
        )
    digest_after = federation_digest(plane)
    report.digest_equal = (digest_before == digest_after)
    if not report.digest_equal:
        report.failures.append(
            "journal replay did not reconstruct the pre-crash "
            "federation state"
        )
    if "orphan" in platform.modules:
        report.failures.append(
            "orphan trial placement was not reconciled"
        )
    pending = [
        r.module_id for r in victim_segment.journal.pending_intents()
    ]
    if pending != ["orphan"]:
        report.failures.append(
            "expected one pending intent for 'orphan', got %s"
            % (pending,)
        )
    report.failures.extend(
        "post-failover: %s" % p
        for p in collect_federation_violations(plane)
    )

    # -- the victim's tenants keep working on the heir ----------------------
    for client in victim_tenants:
        if plane.shard_map.route(client) != outcome.heir:
            report.failures.append(
                "tenant %s no longer routes to the heir" % client
            )
    survivor = victim_tenants[0]
    decision = plane.submit(
        _module_request(survivor, "post-failover-%d" % seed)
    )
    if not decision:
        report.failures.append(
            "post-failover admission for %s denied: %s"
            % (survivor, decision.result.reason)
        )
    elif decision.shard != outcome.heir:
        report.failures.append(
            "post-failover admission landed on %s, not the heir %s"
            % (decision.shard, outcome.heir)
        )
    elif decision.segment != victim:
        report.failures.append(
            "post-failover admission used segment %s, not the "
            "adopted %s" % (decision.segment, victim)
        )
    # The crash wiped the victim's verdict cache; the failover's
    # anti-entropy round must have re-warmed the recovered copy with
    # every verdict its live peers hold.
    heir_shard = plane.shards[outcome.heir]
    adopted_cache = (
        heir_shard.segments[victim].controller.analyzer.cache
    )
    home_cache = (
        heir_shard.segments[outcome.heir].controller.analyzer.cache
    )
    missing = [
        key for key in home_cache.entries()
        if key not in adopted_cache.entries()
    ]
    if missing:
        report.failures.append(
            "anti-entropy left %d verdicts missing from the "
            "recovered cache" % len(missing)
        )
    if victim_modules and not plane.kill(victim_modules[0]):
        report.failures.append(
            "could not kill adopted module %s through the front-end"
            % victim_modules[0]
        )
    report.failures.extend(
        "post-ops: %s" % p
        for p in collect_federation_violations(plane)
    )
    return report


def run_all(seeds=(1, 2, 3), obs=None) -> List[ChaosReport]:
    """The shard-death scenario across seeds, in a stable order."""
    return [run_shard_death(seed=seed, obs=obs) for seed in seeds]
