"""Chaos scenarios for the federated control plane.

PR 4's harness killed platforms and controllers under a *single*
control plane; the federated analogues kill entire controller shards
-- journal, trial placements, verdict cache and all -- while the rest
of the federation keeps serving.

:func:`run_shard_death` is the adoption half: one shard dies
mid-deploy and the scenario asserts the full failover contract.
:func:`run_failure_lifecycle` drives the *whole* lifecycle with no
manual ``fail_shard``/``revive_shard`` calls at all -- a
:class:`~repro.fedctl.health.ShardHealthManager` watches the shards,
the scenario only crashes and repairs simulated processes: crash ->
probe-driven failover -> repair -> probe-driven revival hand-back
(byte-for-byte digest equality with a never-failed federation) ->
live reshard (``add_shard``, movement bound checked) -> crash again.
Federation invariants are asserted after every event.

The shard-death scenario asserts:

* the deterministic heir (ring successor) adopts every one of the
  victim's tenants by journal replay;
* an admission orphaned between its intent and commit records is
  reconciled away (the trial placement is removed, the pending intent
  survives in the journal for audit);
* the per-segment state digests are *equal* before the crash and after
  adoption -- replay reconstructs exactly the committed state;
* the victim's tenants keep working: their next request routes to the
  heir (shard-map delegation) and is admitted against their adopted
  state, and their modules can be killed through the front-end;
* the heir's recovered verdict cache is re-warmed by anti-entropy, so
  the victim's configs stay warm hits federation-wide;
* :mod:`repro.fedctl.invariants` holds across the whole federation
  after every step.
"""

from __future__ import annotations

from typing import List, Optional

from repro.fedctl.health import ShardHealthManager
from repro.fedctl.invariants import (
    collect_federation_violations,
    federation_digest,
)
from repro.fedctl.plane import FederatedControlPlane
from repro.resilience.chaos import ChaosReport, _module_request
from repro.resilience.journal import OP_DEPLOY, PHASE_INTENT
from repro.sim.events import EventLoop

#: Per-shard module floor before the crash: the victim must die with
#: real tenant state to adopt.
MODULES_PER_SHARD = 2

SCENARIO = "shard-death"
LIFECYCLE_SCENARIO = "failure-lifecycle"


def _populate(
    plane: FederatedControlPlane, report: ChaosReport, seed: int
) -> bool:
    """Spread ``MODULES_PER_SHARD`` tenant modules onto every shard."""
    per_shard = {shard_id: 0 for shard_id in plane.shards}
    probe = 0
    while min(per_shard.values()) < MODULES_PER_SHARD:
        if probe >= 500:
            report.failures.append(
                "could not spread %d modules per shard over the ring"
                % MODULES_PER_SHARD
            )
            return False
        client = "tenant-%d-%d" % (seed, probe)
        probe += 1
        shard_id = plane.shard_map.route(client)
        if per_shard[shard_id] >= MODULES_PER_SHARD:
            continue
        module = "m-%d-%d" % (seed, probe)
        decision = plane.submit(_module_request(client, module))
        if not decision:
            report.failures.append(
                "setup deploy %s failed: %s"
                % (module, decision.result.reason)
            )
            return False
        if decision.shard != shard_id:
            report.failures.append(
                "front-end routed %s to %s, map says %s"
                % (client, decision.shard, shard_id)
            )
        per_shard[shard_id] += 1
        report.events.append(
            "deployed %s for %s on %s" % (module, client, shard_id)
        )
    return True


def _plant_orphan(
    plane: FederatedControlPlane, victim: str, report: ChaosReport
):
    """Leave a deploy stuck between intent and commit on the victim.

    Returns the platform holding the orphan trial placement (recovery
    must reconcile it away).
    """
    victim_segment = plane.shards[victim].segments[victim]
    platform_name = sorted(
        p.name for p in victim_segment.network.platforms()
    )[0]
    platform = victim_segment.network.node(platform_name)
    orphan_request = _module_request("tenant-orphan", "orphan")
    orphan_config = orphan_request.parse_click_config()
    orphan_address = platform.allocate_address()
    victim_segment.journal.append(
        OP_DEPLOY, PHASE_INTENT,
        module_id="orphan", client_id="tenant-orphan",
        platform=platform_name, address=orphan_address,
        sandboxed=False, proto=17, port=1500,
        timestamp=plane._clock(), config=orphan_config,
    )
    platform.deploy(
        "orphan", orphan_address, orphan_config, proto=17, port=1500
    )
    report.events.append(
        "%s crashed mid-deploy of 'orphan' on %s"
        % (victim, platform_name)
    )
    return platform


def run_shard_death(
    seed: int = 0, obs=None, victim: str = "shard-0"
) -> ChaosReport:
    """One shard-death failover run; returns a chaos report."""
    report = ChaosReport(scenario=SCENARIO, seed=seed)
    # gossip_every=1: a verdict is rumored to every peer before the
    # next admission, so later shards take warm remote hits during
    # setup (asserted below).
    plane = FederatedControlPlane(
        shard_count=3, gossip_every=1, obs=obs
    )

    # -- populate every shard with tenant modules ---------------------------
    if not _populate(plane, report, seed):
        return report
    report.failures.extend(collect_federation_violations(plane))
    # Every tenant ships the same config: only the first shard to see
    # it may verify it; everyone else must be served by gossip.
    if plane.stats()["gossip_remote_hits"] == 0:
        report.failures.append(
            "no shard took a warm remote verdict hit during setup"
        )

    victim_shard = plane.shards[victim]
    victim_segment = victim_shard.segments[victim]
    victim_tenants = sorted(victim_segment.tenants)
    victim_modules = sorted(victim_segment.controller.deployed)
    expected_heir = plane.shard_map.successor(victim)
    digest_before = federation_digest(plane)

    # -- the shard dies between a deploy's intent and its commit ------------
    platform = _plant_orphan(plane, victim, report)

    # -- failover -----------------------------------------------------------
    outcome = plane.fail_shard(victim, failed_at=plane._clock())
    report.mttr_s = outcome.mttr_s
    report.evacuated = victim_modules
    report.events.append(
        "heir %s adopted %d modules / %d tenants (mttr %.4fs)"
        % (outcome.heir, outcome.adopted_modules,
           outcome.adopted_tenants, outcome.mttr_s)
    )
    if outcome.heir != expected_heir:
        report.failures.append(
            "heir was %s, ring successor is %s"
            % (outcome.heir, expected_heir)
        )
    digest_after = federation_digest(plane)
    report.digest_equal = (digest_before == digest_after)
    if not report.digest_equal:
        report.failures.append(
            "journal replay did not reconstruct the pre-crash "
            "federation state"
        )
    if "orphan" in platform.modules:
        report.failures.append(
            "orphan trial placement was not reconciled"
        )
    pending = [
        r.module_id for r in victim_segment.journal.pending_intents()
    ]
    if pending != ["orphan"]:
        report.failures.append(
            "expected one pending intent for 'orphan', got %s"
            % (pending,)
        )
    report.failures.extend(
        "post-failover: %s" % p
        for p in collect_federation_violations(plane)
    )

    # -- the victim's tenants keep working on the heir ----------------------
    for client in victim_tenants:
        if plane.shard_map.route(client) != outcome.heir:
            report.failures.append(
                "tenant %s no longer routes to the heir" % client
            )
    survivor = victim_tenants[0]
    decision = plane.submit(
        _module_request(survivor, "post-failover-%d" % seed)
    )
    if not decision:
        report.failures.append(
            "post-failover admission for %s denied: %s"
            % (survivor, decision.result.reason)
        )
    elif decision.shard != outcome.heir:
        report.failures.append(
            "post-failover admission landed on %s, not the heir %s"
            % (decision.shard, outcome.heir)
        )
    elif decision.segment != victim:
        report.failures.append(
            "post-failover admission used segment %s, not the "
            "adopted %s" % (decision.segment, victim)
        )
    # The crash wiped the victim's verdict cache; the failover's
    # anti-entropy round must have re-warmed the recovered copy with
    # every verdict its live peers hold.
    heir_shard = plane.shards[outcome.heir]
    adopted_cache = (
        heir_shard.segments[victim].controller.analyzer.cache
    )
    home_cache = (
        heir_shard.segments[outcome.heir].controller.analyzer.cache
    )
    missing = [
        key for key in home_cache.entries()
        if key not in adopted_cache.entries()
    ]
    if missing:
        report.failures.append(
            "anti-entropy left %d verdicts missing from the "
            "recovered cache" % len(missing)
        )
    if victim_modules and not plane.kill(victim_modules[0]):
        report.failures.append(
            "could not kill adopted module %s through the front-end"
            % victim_modules[0]
        )
    report.failures.extend(
        "post-ops: %s" % p
        for p in collect_federation_violations(plane)
    )
    return report


def run_failure_lifecycle(
    seed: int = 0, obs=None, victim: str = "shard-0"
) -> ChaosReport:
    """One full health-driven failure lifecycle; returns a report.

    The scenario never calls ``fail_shard``/``revive_shard`` itself:
    it only crashes and repairs simulated shard processes and lets the
    :class:`ShardHealthManager`'s probes drive the plane --
    crash -> declared failover -> repair -> declared revival
    (hand-back) -> live ``add_shard`` reshard -> crash again.
    """
    report = ChaosReport(scenario=LIFECYCLE_SCENARIO, seed=seed)
    loop = EventLoop()
    plane = FederatedControlPlane(
        shard_count=3, gossip_every=1, obs=obs, clock=lambda: loop.now
    )
    manager = ShardHealthManager(
        plane, loop,
        check_interval_s=0.5, miss_threshold=2,
        auto_revive=True, obs=obs,
    )
    manager.start()
    if not _populate(plane, report, seed):
        return report
    report.failures.extend(collect_federation_violations(plane))
    baseline = federation_digest(plane)
    victim_modules = sorted(
        plane.shards[victim].segments[victim].controller.deployed
    )

    # -- crash: the probes, not the scenario, declare the failover ----------
    platform = _plant_orphan(plane, victim, report)
    manager.mark_crashed(victim)
    report.faults_injected += 1
    loop.run_until(loop.now + 5.0)
    if not manager.failures:
        report.failures.append(
            "health monitor never declared %s dead" % victim
        )
        return report
    outcome = manager.failures[-1]
    report.evacuated = victim_modules
    report.events.append(
        "probes declared %s dead; heir %s adopted %d modules "
        "(mttr %.4fs)" % (victim, outcome.heir,
                          outcome.adopted_modules, outcome.mttr_s)
    )
    # Detection latency is part of the MTTR: miss_threshold probes at
    # check_interval_s each must elapse before the declaration.
    min_detect = (
        manager.monitor.miss_threshold
        * manager.monitor.check_interval_s
    )
    if outcome.mttr_s < min_detect:
        report.failures.append(
            "failover MTTR %.4fs is below the %.1fs probe-detection "
            "floor" % (outcome.mttr_s, min_detect)
        )
    if "orphan" in platform.modules:
        report.failures.append(
            "orphan trial placement was not reconciled"
        )
    if federation_digest(plane) != baseline:
        report.failures.append(
            "journal replay did not reconstruct the pre-crash "
            "federation state"
        )
    report.failures.extend(
        "post-failover: %s" % p
        for p in collect_federation_violations(plane)
    )

    # -- repair: the probes declare the revival, state comes home -----------
    manager.mark_repaired(victim)
    loop.run_until(loop.now + 5.0)
    if not manager.revivals:
        report.failures.append(
            "health monitor never revived the repaired %s" % victim
        )
        return report
    handback = manager.revivals[-1]
    report.mttr_s = handback.mttr_s
    report.events.append(
        "probes revived %s; segments %s handed back (mttr %.4fs)"
        % (victim, sorted(handback.handed_back), handback.mttr_s)
    )
    if not handback.digest_equal:
        report.failures.append(
            "hand-back replay diverged from the heir's copy"
        )
    post_handback = federation_digest(plane)
    report.digest_equal = (post_handback == baseline)
    if not report.digest_equal:
        report.failures.append(
            "post-hand-back digest differs from the never-failed "
            "federation"
        )
    report.failures.extend(
        "post-hand-back: %s" % p
        for p in collect_federation_violations(plane)
    )
    # The revived caches must hold every verdict their peers hold
    # (anti-entropy re-warmed them; nothing is re-verified).
    revived_cache = (
        plane.shards[victim].segments[victim].controller.analyzer.cache
    )
    heir_cache = (
        plane.shards[outcome.heir]
        .segments[outcome.heir].controller.analyzer.cache
    )
    missing = [
        key for key in heir_cache.entries()
        if key not in revived_cache.entries()
    ]
    if missing:
        report.failures.append(
            "anti-entropy left %d verdicts missing from the revived "
            "cache" % len(missing)
        )

    # -- live reshard: grow the federation under the same tenants -----------
    reshard = plane.add_shard()
    manager.watch(reshard.shard)
    report.events.append(
        "added %s live: %d tenants / %d modules moved"
        % (reshard.shard, len(reshard.moved_tenants),
           reshard.moved_modules)
    )
    if reshard.failures:
        report.failures.extend(
            "reshard move %s failed: %s" % (module_id, reason)
            for module_id, reason in reshard.failures
        )
    for tenant in reshard.moved_tenants:
        if plane.shard_map.route(tenant) != reshard.shard:
            report.failures.append(
                "moved tenant %s does not route to the new shard"
                % tenant
            )
    report.failures.extend(
        "post-reshard: %s" % p
        for p in collect_federation_violations(plane)
    )
    # A tenant keyed to the new shard is admitted there.
    probe = 0
    newcomer = None
    while probe < 500:
        candidate = "lifecycle-%d-%d" % (seed, probe)
        probe += 1
        if plane.shard_map.route(candidate) == reshard.shard:
            newcomer = candidate
            break
    if newcomer is None:
        report.failures.append(
            "no tenant key routes to the new shard %s" % reshard.shard
        )
    else:
        decision = plane.submit(
            _module_request(newcomer, "post-reshard-%d" % seed)
        )
        if not decision:
            report.failures.append(
                "post-reshard admission denied: %s"
                % decision.result.reason
            )
        elif decision.shard != reshard.shard:
            report.failures.append(
                "post-reshard admission landed on %s, not %s"
                % (decision.shard, reshard.shard)
            )

    # -- crash again: the grown federation still fails over -----------------
    manager.mark_crashed(reshard.shard)
    report.faults_injected += 1
    loop.run_until(loop.now + 5.0)
    if len(manager.failures) < 2:
        report.failures.append(
            "health monitor never declared the new shard %s dead"
            % reshard.shard
        )
    else:
        again = manager.failures[-1]
        report.events.append(
            "probes declared %s dead; heir %s adopted %d modules"
            % (reshard.shard, again.heir, again.adopted_modules)
        )
    report.failures.extend(
        "post-second-failover: %s" % p
        for p in collect_federation_violations(plane)
    )
    manager.stop()
    return report


def run_all(seeds=(1, 2, 3), obs=None) -> List[ChaosReport]:
    """The shard-death scenario across seeds, in a stable order."""
    return [run_shard_death(seed=seed, obs=obs) for seed in seeds]


def run_lifecycle_all(seeds=(1, 2, 3), obs=None) -> List[ChaosReport]:
    """The failure-lifecycle scenario across seeds, in a stable order."""
    return [
        run_failure_lifecycle(seed=seed, obs=obs) for seed in seeds
    ]
