"""Health-driven shard failover and revival for the federation.

PR 7's :meth:`FederatedControlPlane.fail_shard
<repro.fedctl.plane.FederatedControlPlane.fail_shard>` is a verb an
operator (or a chaos harness) has to *call*; a production federation
notices deaths itself.  :class:`ShardHealthManager` closes that loop
by reusing the controller-side
:class:`~repro.resilience.health.HealthMonitor` machinery at the
shard level:

* every shard gets a liveness probe checked every
  ``check_interval_s`` on the event loop (in the simulator the probe
  reads a crash flag; a real deployment would heartbeat the shard's
  admission endpoint);
* ``miss_threshold`` consecutive missed probes declare the shard dead
  and fire :meth:`~repro.fedctl.plane.FederatedControlPlane.fail_shard`
  automatically -- the heir adopts, and the failover's MTTR includes
  the *detection* latency (crash time to declaration, on the plane's
  clock);
* a probe that starts succeeding again fires
  :meth:`~repro.fedctl.plane.FederatedControlPlane.revive_shard` when
  ``auto_revive`` is set -- the full hand-back, with detection
  latency folded into the hand-back MTTR the same way.

The manager never *invents* failures: it only reacts to what the
probes report, so operators keep manual ``fail_shard`` /
``revive_shard`` for drills and planned maintenance.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.common.errors import ConfigError
from repro.resilience.health import HealthMonitor


class ShardHealthManager:
    """Wires shard liveness probes to automatic failover/hand-back."""

    def __init__(
        self,
        plane,
        loop,
        check_interval_s: float = 0.5,
        miss_threshold: int = 2,
        auto_revive: bool = False,
        obs=None,
    ):
        self.plane = plane
        self.loop = loop
        self.auto_revive = auto_revive
        self.monitor = HealthMonitor(
            loop,
            check_interval_s=check_interval_s,
            miss_threshold=miss_threshold,
            obs=obs,
        )
        self.monitor.on_failure(self._declare_failed)
        self.monitor.on_recovery(self._declare_recovered)
        #: Shards whose simulated process is currently crashed
        #: (shard id -> crash time on the plane's clock).
        self._crashed: Dict[str, float] = {}
        #: shard id -> repair time (detection base for hand-back MTTR).
        self._repaired_at: Dict[str, float] = {}
        #: Failovers / revivals this manager triggered.
        self.failures: List[object] = []
        self.revivals: List[object] = []
        #: (shard id, error) for declarations the plane refused
        #: (e.g. a probe flapped after a manual fail_shard).
        self.errors: List[tuple] = []
        for shard_id in plane.shards:
            self.watch(shard_id)

    # -- probes --------------------------------------------------------------
    def watch(self, shard_id: str) -> None:
        """Probe a shard (idempotent; call for shards added later)."""
        self.monitor.watch(
            shard_id,
            lambda shard_id=shard_id: shard_id not in self._crashed,
        )

    def unwatch(self, shard_id: str) -> None:
        """Stop probing a shard (graceful decommission)."""
        self.monitor.unwatch(shard_id)
        self._crashed.pop(shard_id, None)

    def mark_crashed(self, shard_id: str) -> None:
        """The shard's process died (simulation hook): probes start
        missing *now*; declaration follows after ``miss_threshold``
        missed checks, and that gap is the measured detection latency."""
        self._crashed.setdefault(shard_id, self.plane._clock())

    def mark_repaired(self, shard_id: str) -> None:
        """The operator fixed the box: probes start succeeding."""
        if shard_id in self._crashed:
            del self._crashed[shard_id]
            self._repaired_at[shard_id] = self.plane._clock()

    # -- lifecycle -----------------------------------------------------------
    def start(self) -> None:
        self.monitor.start()

    def stop(self) -> None:
        self.monitor.stop()

    def check_now(self) -> None:
        """One probe sweep outside the periodic schedule."""
        self.monitor.check_now()

    # -- declarations --------------------------------------------------------
    def _declare_failed(self, shard_id: str, detected_at: float) -> None:
        shard = self.plane.shards.get(shard_id)
        if shard is None or not shard.alive:
            return
        try:
            outcome = self.plane.fail_shard(
                shard_id, failed_at=self._crashed.get(shard_id),
            )
        except ConfigError as exc:
            self.errors.append((shard_id, str(exc)))
            return
        self.failures.append(outcome)

    def _declare_recovered(self, shard_id: str, at: float) -> None:
        shard = self.plane.shards.get(shard_id)
        if shard is None or shard.alive or not self.auto_revive:
            return
        repaired_at = self._repaired_at.get(shard_id)
        try:
            outcome = self.plane.revive_shard(
                shard_id, repaired_at=repaired_at,
            )
        except ConfigError as exc:
            self.errors.append((shard_id, str(exc)))
            return
        self.revivals.append(outcome)
