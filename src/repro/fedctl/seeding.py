"""Bulk-seed resident modules into a federation (benchmark rigs).

Figure 10's controller-scaling experiment needs a control plane that
*already* carries 10^5 resident modules before the measured admissions
start.  Admitting them one by one through the front-end would spend
hours re-verifying a trivial config; this helper writes the steady
state those admissions would have produced -- platform deployment +
steering rule, controller bookkeeping, ledger entry, journal
intent/commit pair, shard placement -- directly, in O(N).

The seeded state is *honest*: it passes the federation invariant suite
(placement bijection, address/ledger balance, journal live-state
match), the seeded client ids really route to the shard that holds
them, and every subsequent admission pays the full O(N) model-signature
+ graft + verification cost against it.
"""

from __future__ import annotations

from typing import List

from repro.common.addr import prefix_range
from repro.common.errors import DeploymentError
from repro.core.controller import _DeployedModule
from repro.click.config import parse_config
from repro.resilience.journal import OP_DEPLOY, PHASE_COMMIT, PHASE_INTENT

#: The resident workload: a minimal pass-through module, the cheapest
#: thing a platform can host (mirrors the paper's "simple forwarding"
#: baseline modules).
RESIDENT_CONFIG = "FromNetfront() -> ToNetfront();"


def tenant_ids_for_shard(plane, shard_id: str, count: int,
                         tag: str = "resident") -> List[str]:
    """``count`` client ids that the shard map routes to ``shard_id``.

    Rejection sampling over a deterministic id sequence: the ids are
    real tenants of the shard (consistent hash and all), so seeded
    state satisfies the tenant-routing invariant.
    """
    out: List[str] = []
    probe = 0
    while len(out) < count:
        candidate = "%s-%s-%d" % (tag, shard_id, probe)
        probe += 1
        if plane.shard_map.route(candidate) == shard_id:
            out.append(candidate)
    return out


def seed_residents(
    plane,
    shard_id: str,
    platform_name: str,
    count: int,
    config_source: str = RESIDENT_CONFIG,
    proto: int = 17,
    port: int = 1500,
    journal: bool = True,
) -> List[str]:
    """Install ``count`` resident modules on one shard's platform.

    Returns the module ids.  Addresses are assigned arithmetically from
    the platform pool (``allocate_address`` scans outstanding state and
    would make seeding quadratic); ``adopt_address`` records each one
    in O(1), exactly as journal replay does.
    """
    shard = plane.shards[shard_id]
    segment = shard.segments[shard_id]
    network, controller = segment.network, segment.controller
    platform = network.node(platform_name)
    low, high = prefix_range(platform.pool_network, platform.pool_plen)
    if count > min(high - low - 1, platform.capacity):
        raise DeploymentError(
            "platform %r cannot hold %d residents"
            % (platform_name, count)
        )
    config = parse_config(config_source)
    tenants = tenant_ids_for_shard(
        plane, shard_id, count, tag="resident"
    )
    now = plane._clock()
    module_ids: List[str] = []
    for index in range(count):
        address = low + 1 + index
        client_id = tenants[index]
        module_id = "seed-%s-%d" % (platform_name, index)
        platform.adopt_address(address)
        platform.deploy(
            module_id, address, config, proto=proto, port=port
        )
        if journal:
            journal_fields = dict(
                module_id=module_id, client_id=client_id,
                platform=platform_name, address=address,
                sandboxed=False, proto=proto, port=port,
                timestamp=now, config=config, requirements=(),
            )
            segment.journal.append(
                OP_DEPLOY, PHASE_INTENT, **journal_fields
            )
            segment.journal.append(
                OP_DEPLOY, PHASE_COMMIT, **journal_fields
            )
        controller.deployed[module_id] = _DeployedModule(
            module_id=module_id, client_id=client_id,
            platform=platform_name, address=address, config=config,
            sandboxed=False, requirements=[], proto=proto, port=port,
        )
        controller.ledger.record_deployment(
            module_id, client_id, False, now
        )
        controller.flow_rules[(platform_name, address)] = module_id
        controller.client_addresses.setdefault(
            client_id, set()
        ).add(address)
        segment.tenants.add(client_id)
        plane.placements[module_id] = (shard_id, shard_id)
        module_ids.append(module_id)
    # The residents are permanent state: start a new model epoch so any
    # cached compiled network picks them up.
    network.bump_epoch()
    return module_ids
