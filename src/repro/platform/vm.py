"""Virtual machine objects and lifecycle state.

A :class:`VM` is the unit the platform boots, suspends, and resumes.
ClickOS VMs hold one or more client configurations (more than one when
the consolidation manager merged them); Linux VMs hold a single opaque
stock appliance.
"""

from __future__ import annotations

import itertools
from typing import List, Optional

from repro.common.errors import SimulationError
from repro.platform.specs import VM_CLICKOS

VM_STOPPED = "stopped"
VM_BOOTING = "booting"
VM_RUNNING = "running"
VM_SUSPENDING = "suspending"
VM_SUSPENDED = "suspended"
VM_RESUMING = "resuming"

_vm_ids = itertools.count(1)


class VM:
    """One virtual machine on a platform."""

    def __init__(
        self,
        kind: str = VM_CLICKOS,
        name: Optional[str] = None,
        stateful: bool = False,
    ):
        self.vm_id = next(_vm_ids)
        self.kind = kind
        self.name = name or "vm%d" % self.vm_id
        self.state = VM_STOPPED
        #: Client configurations hosted by this VM (consolidation).
        self.clients: List[str] = []
        self.stateful = stateful
        self.boot_count = 0
        self.suspend_count = 0
        self.resume_count = 0
        #: Simulated time the VM last became RUNNING.
        self.running_since: Optional[float] = None
        #: Optional ``repro.obs`` counter family with a ``state`` label
        #: (``platform_vm_transitions_total``); the owning platform
        #: binds it so finished transitions are counted.  ``None``
        #: keeps every transition a plain attribute check.
        self.transitions = None

    def _count_transition(self) -> None:
        if self.transitions is not None:
            self.transitions.labels(self.state).inc()

    # -- state transitions -------------------------------------------------
    def begin_boot(self) -> None:
        if self.state != VM_STOPPED:
            raise SimulationError(
                "cannot boot VM %s in state %s" % (self.name, self.state)
            )
        self.state = VM_BOOTING

    def finish_boot(self, now: float) -> None:
        if self.state != VM_BOOTING:
            raise SimulationError(
                "VM %s finished boot from state %s"
                % (self.name, self.state)
            )
        self.state = VM_RUNNING
        self.boot_count += 1
        self.running_since = now
        self._count_transition()

    def begin_suspend(self) -> None:
        if self.state != VM_RUNNING:
            raise SimulationError(
                "cannot suspend VM %s in state %s" % (self.name, self.state)
            )
        self.state = VM_SUSPENDING

    def finish_suspend(self) -> None:
        if self.state != VM_SUSPENDING:
            raise SimulationError(
                "VM %s finished suspend from state %s"
                % (self.name, self.state)
            )
        self.state = VM_SUSPENDED
        self.suspend_count += 1
        self.running_since = None
        self._count_transition()

    def begin_resume(self) -> None:
        if self.state != VM_SUSPENDED:
            raise SimulationError(
                "cannot resume VM %s in state %s" % (self.name, self.state)
            )
        self.state = VM_RESUMING

    def finish_resume(self, now: float) -> None:
        if self.state != VM_RESUMING:
            raise SimulationError(
                "VM %s finished resume from state %s"
                % (self.name, self.state)
            )
        self.state = VM_RUNNING
        self.resume_count += 1
        self.running_since = now
        self._count_transition()

    def abort_resume(self) -> None:
        """A resume attempt failed: back to SUSPENDED.

        Unlike a failed boot (where the half-created domain is
        destroyed), the suspended image on disk is untouched, so the
        VM can simply be resumed again.
        """
        if self.state != VM_RESUMING:
            raise SimulationError(
                "VM %s aborted resume from state %s"
                % (self.name, self.state)
            )
        self.state = VM_SUSPENDED

    def terminate(self) -> None:
        """Destroy the VM (valid from any state)."""
        self.state = VM_STOPPED
        self.running_since = None
        self._count_transition()

    # -- queries -----------------------------------------------------------
    @property
    def is_running(self) -> bool:
        return self.state == VM_RUNNING

    @property
    def is_resident(self) -> bool:
        """Whether the VM occupies memory (anything but stopped)."""
        return self.state != VM_STOPPED

    def add_client(self, client_id: str) -> None:
        """Attach a client configuration to this VM."""
        self.clients.append(client_id)

    def __repr__(self) -> str:
        return "VM(%s, %s, %s, %d clients)" % (
            self.name, self.kind, self.state, len(self.clients),
        )
