"""The per-core dataplane cost model (Figures 8, 9, 11, 12).

The model charges every packet a CPU cost in microseconds::

    cost = rx_fixed + rx_per_byte * size          (netfront copies)
         + demux_per_config * consolidated        (IPClassifier scan)
         + element_unit * sum(element cycle_cost) (the Click path)
         + sched_per_vm * (resident VMs - 1)      (core sharing)
         + sandbox tax                            (Figure 11)

and a core can spend 1e6 microseconds per second.  Throughput is the
minimum of the CPU capacity and the NIC line rate for the packet size.
The constants live in :class:`~repro.platform.specs.PlatformSpec` and
were fitted to the paper's measured curves; the *shapes* -- where the
consolidation knee falls, how sandboxing hurts only small packets --
follow from the structure, not the constants.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.platform.specs import PlatformSpec

#: Sandbox placement modes (Figure 11).
SANDBOX_NONE = "none"
SANDBOX_INLINE = "inline"       # ChangeEnforcer inside the config
SANDBOX_SEPARATE_VM = "vm"      # enforcer in its own VM


def line_rate_pps(spec: PlatformSpec, packet_bytes: int) -> float:
    """NIC line rate in packets/second for a packet size."""
    if packet_bytes <= 0:
        raise ValueError("packet size must be positive")
    wire_bits = (packet_bytes + spec.wire_overhead_bytes) * 8
    return spec.nic_bps / wire_bits


class ThroughputModel:
    """Computes per-core packet capacity for a platform spec."""

    def __init__(self, spec: PlatformSpec):
        self.spec = spec

    # -- cost -----------------------------------------------------------------
    def per_packet_cost_us(
        self,
        packet_bytes: int,
        element_cost: float = 0.0,
        consolidated_configs: int = 1,
        resident_vms: int = 1,
        sandbox: str = SANDBOX_NONE,
    ) -> float:
        """CPU microseconds charged to one packet."""
        spec = self.spec
        cost = (
            spec.rx_cost_fixed_us
            + spec.rx_cost_per_byte_us * packet_bytes
            + spec.demux_per_config_us * max(0, consolidated_configs - 1)
            + spec.element_unit_us * element_cost
            + spec.sched_per_vm_us * max(0, resident_vms - 1)
        )
        if sandbox == SANDBOX_INLINE:
            cost += spec.sandbox_inline_us
        elif sandbox == SANDBOX_SEPARATE_VM:
            cost += spec.sandbox_vm_us
        elif sandbox != SANDBOX_NONE:
            raise ValueError("unknown sandbox mode %r" % (sandbox,))
        return cost

    def config_element_cost(self, config) -> float:
        """Total element cost units along one Click configuration.

        Sums ``cycle_cost`` over the declared elements -- the dominant
        path cost for the linear configurations tenants deploy.
        """
        from repro.click.element import lookup_element

        return sum(
            lookup_element(decl.class_name).cycle_cost
            for decl in config.elements.values()
        )

    # -- capacity ---------------------------------------------------------------
    def capacity_pps(
        self,
        packet_bytes: int,
        element_cost: float = 0.0,
        consolidated_configs: int = 1,
        resident_vms: int = 1,
        sandbox: str = SANDBOX_NONE,
        cores: int = 1,
    ) -> float:
        """Deliverable packets/second: min(CPU capacity, line rate)."""
        cost = self.per_packet_cost_us(
            packet_bytes,
            element_cost=element_cost,
            consolidated_configs=consolidated_configs,
            resident_vms=resident_vms,
            sandbox=sandbox,
        )
        cpu_pps = cores * 1e6 / cost
        return min(cpu_pps, line_rate_pps(self.spec, packet_bytes))

    def capacity_bps(
        self,
        packet_bytes: int,
        **kwargs,
    ) -> float:
        """Deliverable goodput in bits/second (payload bits only)."""
        return self.capacity_pps(packet_bytes, **kwargs) * packet_bytes * 8

    def aggregate_throughput_bps(
        self,
        packet_bytes: int,
        demands_bps: Iterable[float],
        element_cost: float = 0.0,
        consolidated_configs: Optional[int] = None,
        resident_vms: int = 1,
        sandbox: str = SANDBOX_NONE,
        cores: int = 1,
    ) -> float:
        """Total delivered rate for a set of per-client demands.

        Clients share the core fairly; the aggregate is capped by the
        platform's capacity at this packet size (Figures 8, 9, 12).
        """
        demands = list(demands_bps)
        if consolidated_configs is None:
            consolidated_configs = max(1, len(demands))
        capacity = self.capacity_bps(
            packet_bytes,
            element_cost=element_cost,
            consolidated_configs=consolidated_configs,
            resident_vms=resident_vms,
            sandbox=sandbox,
            cores=cores,
        )
        demand = sum(demands)
        return min(demand, capacity)
