"""The platform's backend switch with on-the-fly VM instantiation.

Section 5: "we modify ClickOS' back-end software switch to include a
switch controller connected to one of its ports.  The controller
monitors incoming traffic and identifies new flows, where a new flow
consists of a TCP SYN or UDP packet going to an In-Net client.  When
one such flow is detected, a new VM is instantiated for it, and, once
ready, the flow's traffic is re-routed through it."

This module is that machinery on the event loop: packets arriving for a
client whose VM is not running trigger a boot (or a resume, for
suspended stateful modules); packets that arrive while the VM comes up
are buffered and released when it is ready.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import SimulationError
from repro.platform.lifecycle import boot_time, resume_time
from repro.platform.specs import PlatformSpec, VM_CLICKOS
from repro.platform.vm import (
    VM,
    VM_BOOTING,
    VM_RESUMING,
    VM_RUNNING,
    VM_STOPPED,
    VM_SUSPENDED,
)
from repro.sim.events import EventLoop


class SwitchController:
    """Flow table + VM-on-demand controller for one platform."""

    def __init__(self, spec: PlatformSpec, loop: EventLoop):
        self.spec = spec
        self.loop = loop
        #: client id -> VM handling that client's traffic.
        self.client_vms: Dict[str, VM] = {}
        #: Packets waiting for a VM to come up: vm id -> callbacks.
        self._waiting: Dict[int, List[Callable[[], None]]] = {}
        self.flows_seen = 0
        self.vms_booted_on_demand = 0
        #: vm id -> last traffic timestamp (for the idle reaper).
        self.last_activity: Dict[int, float] = {}
        #: Failure injection: vm id -> boots left to fail.
        self._boot_failures: Dict[int, int] = {}
        self.boot_failures_seen = 0
        self.boot_retries = 0
        #: Boot attempts per VM before giving up.
        self.max_boot_attempts = 3

    # -- provisioning --------------------------------------------------------
    def register_client(
        self, client_id: str, vm: Optional[VM] = None,
        stateful: bool = False,
    ) -> VM:
        """Associate a client configuration with a (possibly shared) VM.

        The VM is *not* booted: it comes up on the first packet.
        """
        if client_id in self.client_vms:
            raise SimulationError(
                "client %r already registered" % (client_id,)
            )
        if vm is None:
            vm = VM(kind=VM_CLICKOS, stateful=stateful)
        vm.add_client(client_id)
        self.client_vms[client_id] = vm
        return vm

    def resident_vms(self) -> int:
        """Distinct VMs currently occupying memory."""
        return sum(
            1 for vm in set(self.client_vms.values()) if vm.is_resident
        )

    def running_vms(self) -> int:
        """Distinct VMs currently running."""
        return sum(
            1 for vm in set(self.client_vms.values()) if vm.is_running
        )

    # -- dataplane events ----------------------------------------------------
    def packet_for(
        self,
        client_id: str,
        deliver: Callable[[], None],
    ) -> None:
        """A packet arrived for ``client_id``; call ``deliver()`` once
        the client's VM can process it (immediately if running)."""
        vm = self.client_vms.get(client_id)
        if vm is None:
            raise SimulationError("unknown client %r" % (client_id,))
        self.last_activity[vm.vm_id] = self.loop.now
        if vm.state == VM_RUNNING:
            deliver()
            return
        if vm.state in (VM_BOOTING, VM_RESUMING):
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            return
        if vm.state == VM_STOPPED:
            self.flows_seen += 1
            self.vms_booted_on_demand += 1
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            self._start_boot(vm)
            return
        if vm.state == VM_SUSPENDED:
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            self._start_resume(vm)
            return
        raise SimulationError(
            "VM %s in unexpected state %s" % (vm.name, vm.state)
        )

    def suspend_idle(self, vm: VM,
                     done: Optional[Callable[[], None]] = None) -> float:
        """Suspend a running VM; returns the operation's latency."""
        latency = suspend_latency(self.spec, self.resident_vms())
        vm.begin_suspend()

        def finish():
            vm.finish_suspend()
            if done is not None:
                done()

        self.loop.schedule(latency, finish)
        return latency

    # -- failure injection ----------------------------------------------------
    def inject_boot_failure(self, client_id: str, times: int = 1) -> None:
        """Make the next ``times`` boot attempts of a client's VM fail
        (toolstack flakiness); the switch retries up to
        :attr:`max_boot_attempts` before dropping the waiting traffic."""
        vm = self.client_vms.get(client_id)
        if vm is None:
            raise SimulationError("unknown client %r" % (client_id,))
        self._boot_failures[vm.vm_id] = (
            self._boot_failures.get(vm.vm_id, 0) + times
        )

    # -- internals ----------------------------------------------------------
    def _start_boot(self, vm: VM, attempt: int = 1) -> None:
        residents = self.resident_vms()
        latency = self.spec.flow_detect_s + boot_time(
            self.spec, vm.kind, residents
        )
        vm.begin_boot()
        self.loop.schedule(
            latency, lambda: self._boot_finished(vm, attempt)
        )

    def _boot_finished(self, vm: VM, attempt: int) -> None:
        if self._boot_failures.get(vm.vm_id, 0) > 0:
            self._boot_failures[vm.vm_id] -= 1
            self.boot_failures_seen += 1
            vm.terminate()  # the failed domain is destroyed
            if attempt >= self.max_boot_attempts:
                # Give up: drop whatever was waiting.
                self._waiting.pop(vm.vm_id, None)
                return
            self.boot_retries += 1
            self._start_boot(vm, attempt + 1)
            return
        self._vm_ready(vm, "boot")

    def _start_resume(self, vm: VM) -> None:
        latency = resume_time(self.spec, self.resident_vms())
        vm.begin_resume()
        self.loop.schedule(latency, lambda: self._vm_ready(vm, "resume"))

    def _vm_ready(self, vm: VM, how: str) -> None:
        if how == "boot":
            vm.finish_boot(self.loop.now)
        else:
            vm.finish_resume(self.loop.now)
        for deliver in self._waiting.pop(vm.vm_id, []):
            deliver()


def suspend_latency(spec: PlatformSpec, resident_vms: int) -> float:
    """Suspend latency re-exported for symmetry with boot/resume."""
    from repro.platform.lifecycle import suspend_time

    return suspend_time(spec, resident_vms)
