"""The platform's backend switch with on-the-fly VM instantiation.

Section 5: "we modify ClickOS' back-end software switch to include a
switch controller connected to one of its ports.  The controller
monitors incoming traffic and identifies new flows, where a new flow
consists of a TCP SYN or UDP packet going to an In-Net client.  When
one such flow is detected, a new VM is instantiated for it, and, once
ready, the flow's traffic is re-routed through it."

This module is that machinery on the event loop: packets arriving for a
client whose VM is not running trigger a boot (or a resume, for
suspended stateful modules); packets that arrive while the VM comes up
are buffered and released when it is ready.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Tuple

from repro.common.errors import PlatformDownError, SimulationError
from repro.platform.lifecycle import (
    LIFECYCLE_BOOT,
    LIFECYCLE_RESUME,
    LIFECYCLE_SUSPEND,
    boot_time,
    observe_lifecycle,
    resume_time,
)
from repro.platform.specs import PlatformSpec, VM_CLICKOS
from repro.platform.vm import (
    VM,
    VM_BOOTING,
    VM_RESUMING,
    VM_RUNNING,
    VM_STOPPED,
    VM_SUSPENDED,
)
from repro.sim.events import EventLoop


class SwitchController:
    """Flow table + VM-on-demand controller for one platform."""

    def __init__(
        self,
        spec: PlatformSpec,
        loop: EventLoop,
        obs=None,
        platform_name: str = "platform",
        injector=None,
        retry_policy=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        self.spec = spec
        self.loop = loop
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        self.platform_name = platform_name
        #: Fault injection + retry policy (repro.resilience).  With no
        #: policy, failed boots retry immediately up to
        #: :attr:`max_boot_attempts` (the historical behavior); with
        #: one, retries are spaced by its exponential backoff and
        #: bounded by its ``max_attempts``.
        self._injector = injector
        self._retry_policy = retry_policy
        #: Whole-platform crash state (see :meth:`crash`).
        self.crashed = False
        metrics = self._obs.metrics
        self._c_boots = metrics.counter(
            "platform_boots_total", "VM boots completed",
            labels=("platform",),
        ).labels(platform_name)
        self._c_boot_failures = metrics.counter(
            "platform_boot_failures_total",
            "VM boot attempts that failed", labels=("platform",),
        ).labels(platform_name)
        self._c_resumes = metrics.counter(
            "platform_resumes_total", "VM resumes completed",
            labels=("platform",),
        ).labels(platform_name)
        self._c_suspends = metrics.counter(
            "platform_suspends_total", "VM suspends completed",
            labels=("platform",),
        ).labels(platform_name)
        self._vm_transitions = (
            metrics.counter(
                "platform_vm_transitions_total",
                "Finished VM state transitions", labels=("state",),
            )
            if self._obs.enabled else None
        )
        if self._obs.enabled:
            metrics.gauge(
                "platform_resident_vms",
                "VMs occupying memory", labels=("platform",),
            )
            metrics.gauge(
                "platform_running_vms",
                "VMs currently running", labels=("platform",),
            )
            metrics.register_collector(
                self._collect_vm_gauges,
                key=("platform_vm_gauges", platform_name),
            )
        #: client id -> VM handling that client's traffic.
        self.client_vms: Dict[str, VM] = {}
        #: Packets waiting for a VM to come up: vm id -> callbacks.
        self._waiting: Dict[int, List[Callable[[], None]]] = {}
        self.flows_seen = 0
        self.vms_booted_on_demand = 0
        #: vm id -> last traffic timestamp (for the idle reaper).
        self.last_activity: Dict[int, float] = {}
        #: Failure injection: vm id -> boots left to fail.
        self._boot_failures: Dict[int, int] = {}
        self.boot_failures_seen = 0
        self.boot_retries = 0
        self.resume_failures_seen = 0
        #: Boot attempts per VM before giving up (policy-less mode;
        #: with a retry policy its ``max_attempts`` governs instead).
        self.max_boot_attempts = 3
        self._c_retries = metrics.counter(
            "resilience_retries_total",
            "Retries of faulted lifecycle operations", labels=("op",),
        )
        self._c_exhausted = metrics.counter(
            "resilience_retry_exhausted_total",
            "Operations abandoned after the retry budget", labels=("op",),
        )

    # -- provisioning --------------------------------------------------------
    def register_client(
        self, client_id: str, vm: Optional[VM] = None,
        stateful: bool = False,
    ) -> VM:
        """Associate a client configuration with a (possibly shared) VM.

        The VM is *not* booted: it comes up on the first packet.
        """
        if client_id in self.client_vms:
            raise SimulationError(
                "client %r already registered" % (client_id,)
            )
        if vm is None:
            vm = VM(kind=VM_CLICKOS, stateful=stateful)
        if vm.transitions is None:
            vm.transitions = self._vm_transitions
        vm.add_client(client_id)
        self.client_vms[client_id] = vm
        return vm

    def _collect_vm_gauges(self) -> None:
        metrics = self._obs.metrics
        metrics.gauge(
            "platform_resident_vms", labels=("platform",),
        ).labels(self.platform_name).set(self.resident_vms())
        metrics.gauge(
            "platform_running_vms", labels=("platform",),
        ).labels(self.platform_name).set(self.running_vms())

    def resident_vms(self) -> int:
        """Distinct VMs currently occupying memory."""
        return sum(
            1 for vm in set(self.client_vms.values()) if vm.is_resident
        )

    def running_vms(self) -> int:
        """Distinct VMs currently running."""
        return sum(
            1 for vm in set(self.client_vms.values()) if vm.is_running
        )

    # -- dataplane events ----------------------------------------------------
    def packet_for(
        self,
        client_id: str,
        deliver: Callable[[], None],
    ) -> None:
        """A packet arrived for ``client_id``; call ``deliver()`` once
        the client's VM can process it (immediately if running)."""
        if self.crashed:
            raise PlatformDownError(
                "platform %r is down" % (self.platform_name,)
            )
        vm = self.client_vms.get(client_id)
        if vm is None:
            raise SimulationError("unknown client %r" % (client_id,))
        self.last_activity[vm.vm_id] = self.loop.now
        if vm.state == VM_RUNNING:
            deliver()
            return
        if vm.state in (VM_BOOTING, VM_RESUMING):
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            return
        if vm.state == VM_STOPPED:
            self.flows_seen += 1
            self.vms_booted_on_demand += 1
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            self._start_boot(vm)
            return
        if vm.state == VM_SUSPENDED:
            self._waiting.setdefault(vm.vm_id, []).append(deliver)
            self._start_resume(vm)
            return
        raise SimulationError(
            "VM %s in unexpected state %s" % (vm.name, vm.state)
        )

    def suspend_idle(self, vm: VM,
                     done: Optional[Callable[[], None]] = None) -> float:
        """Suspend a running VM; returns the operation's latency."""
        latency = suspend_latency(self.spec, self.resident_vms())
        vm.begin_suspend()
        observe_lifecycle(
            self._obs.metrics, LIFECYCLE_SUSPEND, latency
        )

        def finish():
            vm.finish_suspend()
            self._c_suspends.inc()
            if done is not None:
                done()

        self.loop.schedule(latency, finish)
        return latency

    # -- external lifecycle accounting -----------------------------------------
    def note_suspend(self) -> None:
        """Count a suspend completed outside the switch's own path
        (e.g. an explicit :meth:`PlatformSim.suspend_resume_cycle`)."""
        self._c_suspends.inc()

    def note_resume(self) -> None:
        """Count a resume completed outside the switch's own path."""
        self._c_resumes.inc()

    # -- whole-platform failure ------------------------------------------------
    def crash(self) -> None:
        """The platform dies: every VM is destroyed, every parked
        packet is dropped, and new traffic raises
        :class:`PlatformDownError` until :meth:`restore`."""
        self.crashed = True
        for vm in set(self.client_vms.values()):
            vm.terminate()
        self._waiting.clear()
        self._boot_failures.clear()

    def restore(self) -> None:
        """Bring the platform back (VMs re-boot on demand)."""
        self.crashed = False

    # -- failure injection ----------------------------------------------------
    def inject_boot_failure(self, client_id: str, times: int = 1) -> None:
        """Make the next ``times`` boot attempts of a client's VM fail
        (toolstack flakiness); the switch retries up to
        :attr:`max_boot_attempts` before dropping the waiting traffic."""
        vm = self.client_vms.get(client_id)
        if vm is None:
            raise SimulationError("unknown client %r" % (client_id,))
        self._boot_failures[vm.vm_id] = (
            self._boot_failures.get(vm.vm_id, 0) + times
        )

    # -- internals ----------------------------------------------------------
    @property
    def _max_attempts(self) -> int:
        if self._retry_policy is not None:
            return self._retry_policy.max_attempts
        return self.max_boot_attempts

    def _start_boot(self, vm: VM, attempt: int = 1) -> None:
        residents = self.resident_vms()
        latency = self.spec.flow_detect_s + boot_time(
            self.spec, vm.kind, residents
        )
        fault = (
            self._injector.draw("boot", self.platform_name)
            if self._injector is not None else None
        )
        vm.begin_boot()
        observe_lifecycle(self._obs.metrics, LIFECYCLE_BOOT, latency)
        if fault is not None:
            # A crash fault fails after the natural latency; a timeout
            # fault stalls delay_s longer (the toolstack hung until
            # the watchdog expired).
            self.loop.schedule(
                latency + fault.delay_s,
                lambda: self._boot_failed(vm, attempt),
            )
            return
        self.loop.schedule(
            latency, lambda: self._boot_finished(vm, attempt)
        )

    def _boot_failed(self, vm: VM, attempt: int) -> None:
        self.boot_failures_seen += 1
        self._c_boot_failures.inc()
        vm.terminate()  # the failed domain is destroyed
        self._retry_boot(vm, attempt)

    def _boot_finished(self, vm: VM, attempt: int) -> None:
        if self._boot_failures.get(vm.vm_id, 0) > 0:
            self._boot_failures[vm.vm_id] -= 1
            self._boot_failed(vm, attempt)
            return
        self._vm_ready(vm, "boot")

    def _retry_boot(self, vm: VM, attempt: int) -> None:
        if attempt >= self._max_attempts:
            # Give up: drop whatever was waiting.
            self._waiting.pop(vm.vm_id, None)
            self._c_exhausted.labels("boot").inc()
            return
        self.boot_retries += 1
        if self._retry_policy is None:
            self._start_boot(vm, attempt + 1)
            return
        self._c_retries.labels("boot").inc()
        rng = self._injector.rng if self._injector is not None else None
        delay = self._retry_policy.backoff_s(attempt, rng=rng)

        def retry() -> None:
            # During the backoff window a fresh packet may have kicked
            # off its own boot (the VM looks plain STOPPED); only the
            # winner proceeds.
            if not self.crashed and vm.state == VM_STOPPED:
                self._start_boot(vm, attempt + 1)

        self.loop.schedule(delay, retry)

    def _start_resume(self, vm: VM, attempt: int = 1) -> None:
        latency = resume_time(self.spec, self.resident_vms())
        fault = (
            self._injector.draw("resume", self.platform_name)
            if self._injector is not None else None
        )
        vm.begin_resume()
        observe_lifecycle(self._obs.metrics, LIFECYCLE_RESUME, latency)
        if fault is not None:
            self.loop.schedule(
                latency + fault.delay_s,
                lambda: self._resume_failed(vm, attempt),
            )
            return
        self.loop.schedule(latency, lambda: self._vm_ready(vm, "resume"))

    def _resume_failed(self, vm: VM, attempt: int) -> None:
        self.resume_failures_seen += 1
        vm.abort_resume()  # spooled state intact, back to SUSPENDED
        if attempt >= self._max_attempts:
            self._waiting.pop(vm.vm_id, None)
            self._c_exhausted.labels("resume").inc()
            return
        self._c_retries.labels("resume").inc()
        policy = self._retry_policy
        rng = self._injector.rng if self._injector is not None else None
        delay = policy.backoff_s(attempt, rng=rng) if policy else 0.0

        def retry() -> None:
            if not self.crashed and vm.state == VM_SUSPENDED:
                self._start_resume(vm, attempt + 1)

        self.loop.schedule(delay, retry)

    def _vm_ready(self, vm: VM, how: str) -> None:
        if how == "boot":
            vm.finish_boot(self.loop.now)
            self._c_boots.inc()
        else:
            vm.finish_resume(self.loop.now)
            self._c_resumes.inc()
        for deliver in self._waiting.pop(vm.vm_id, []):
            deliver()


def suspend_latency(spec: PlatformSpec, resident_vms: int) -> float:
    """Suspend latency re-exported for symmetry with boot/resume."""
    from repro.platform.lifecycle import suspend_time

    return suspend_time(spec, resident_vms)
