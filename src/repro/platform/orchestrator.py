"""Bridging the control plane to the platform substrate.

The controller (:mod:`repro.core.controller`) decides *where* modules
run; this module provisions them *onto* a simulated ClickOS box: every
module deployed on a :class:`~repro.netmodel.topology.Platform` becomes
a client of a :class:`~repro.platform.clickos.PlatformSim`, with
statically-safe stateless tenants consolidated into shared VMs
(Section 5) and stateful or sandboxed tenants given dedicated ones.

This closes the loop: request -> verification -> placement ->
provisioning -> capacity, all in one pipeline (see
``tests/platform/test_orchestrator.py`` and the capacity benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.common.errors import SimulationError
from repro.netmodel.topology import Network, Platform
from repro.platform.clickos import PlatformSim
from repro.platform.consolidation import (
    ConsolidationManager,
    is_consolidation_safe,
)
from repro.platform.specs import CHEAP_SERVER_SPEC, PlatformSpec, VM_CLICKOS
from repro.platform.throughput import ThroughputModel
from repro.platform.vm import VM


@dataclass
class ProvisionReport:
    """What provisioning one platform produced."""

    platform: str
    modules: int = 0
    vms: int = 0
    consolidated_modules: int = 0
    dedicated_modules: int = 0
    memory_mb: float = 0.0


class PlatformOrchestrator:
    """Provisions a network's deployed modules onto simulated boxes."""

    def __init__(
        self,
        network: Network,
        spec: PlatformSpec = CHEAP_SERVER_SPEC,
        clients_per_vm: int = 100,
        obs=None,
        injector=None,
        retry_policy=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        self.network = network
        self.spec = spec
        self.clients_per_vm = clients_per_vm
        #: Shared fault injection/retry knobs handed to every
        #: provisioned :class:`PlatformSim` (repro.resilience).
        self._injector = injector
        self._retry_policy = retry_policy
        self.sims: Dict[str, PlatformSim] = {}
        self.managers: Dict[str, ConsolidationManager] = {}
        #: module id -> (platform name, VM).
        self.placements: Dict[str, tuple] = {}
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        metrics = self._obs.metrics
        self._g_density = metrics.gauge(
            "platform_vm_density",
            "Deployed modules per VM after provisioning",
            labels=("platform",),
        )
        self._g_vms = metrics.gauge(
            "platform_provisioned_vms",
            "VMs the current placement requires", labels=("platform",),
        )
        self._g_memory = metrics.gauge(
            "platform_provisioned_memory_mb",
            "Memory footprint of the provisioned VMs",
            labels=("platform",),
        )

    def provision_all(self) -> List[ProvisionReport]:
        """(Re)provision every platform from the network snapshot."""
        reports = []
        for platform in self.network.platforms():
            reports.append(self.provision(platform))
        return reports

    def provision(self, platform: Platform) -> ProvisionReport:
        """Provision one platform's deployed modules."""
        sim = PlatformSim(
            spec=self.spec, obs=self._obs, name=platform.name,
            injector=self._injector, retry_policy=self._retry_policy,
        )
        manager = ConsolidationManager(
            self.clients_per_vm, obs=self._obs,
            platform_name=platform.name,
        )
        self.sims[platform.name] = sim
        self.managers[platform.name] = manager
        report = ProvisionReport(platform=platform.name)
        group_vms: Dict[int, VM] = {}
        for module_name, (address, config) in sorted(
            platform.modules.items()
        ):
            report.modules += 1
            group, is_new = manager.place(module_name, address, config)
            shared = group_vms.get(group)
            safe = is_consolidation_safe(config)
            vm = sim.register_client(
                module_name,
                config=config,
                stateful=not safe,
                kind=VM_CLICKOS,
                shared_vm=shared,
            )
            group_vms[group] = vm
            self.placements[module_name] = (platform.name, vm)
            if safe and not is_new:
                report.consolidated_modules += 1
            elif safe:
                report.consolidated_modules += 1
            else:
                report.dedicated_modules += 1
        report.vms = manager.vm_count
        report.memory_mb = report.vms * self.spec.clickos_memory_mb
        self._g_vms.labels(platform.name).set(report.vms)
        self._g_memory.labels(platform.name).set(report.memory_mb)
        self._g_density.labels(platform.name).set(
            report.modules / report.vms if report.vms else 0.0
        )
        return report

    # -- queries -----------------------------------------------------------
    def sim_for(self, platform_name: str) -> PlatformSim:
        """The simulator for a platform (provision first)."""
        try:
            return self.sims[platform_name]
        except KeyError:
            raise SimulationError(
                "platform %r not provisioned" % (platform_name,)
            )

    def vm_of(self, module_name: str) -> VM:
        """The VM hosting a module."""
        try:
            return self.placements[module_name][1]
        except KeyError:
            raise SimulationError(
                "module %r not provisioned" % (module_name,)
            )

    def capacity_estimate_bps(
        self, platform_name: str, packet_bytes: int = 1500
    ) -> float:
        """Modeled dataplane capacity given the current provisioning."""
        manager = self.managers.get(platform_name)
        if manager is None:
            raise SimulationError(
                "platform %r not provisioned" % (platform_name,)
            )
        model = ThroughputModel(self.spec)
        biggest_group = max(
            (len(g) for g in manager.groups), default=1
        )
        return model.capacity_bps(
            packet_bytes,
            element_cost=2.4,
            consolidated_configs=biggest_group,
            resident_vms=max(1, manager.vm_count),
        )
