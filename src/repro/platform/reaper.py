"""The idle-VM reaper (Section 5's capacity argument in action).

"Since ClickOS VMs boot quickly, we only have to ensure that the
platform copes with the maximum number of *concurrent* clients at any
given instant."  The flip side: idle VMs must get out of the way.
The reaper periodically

* **terminates** idle *stateless* VMs (the next packet re-boots them in
  ~30 ms -- terminate/boot is the stateless lifecycle),
* **suspends** idle *stateful* VMs (terminating them would destroy flow
  state and kill end-to-end connections; suspend/resume keeps them
  intact at 8 MB of spooled state instead of resident memory).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.platform.switch import SwitchController
from repro.platform.vm import VM, VM_RUNNING
from repro.sim.events import EventLoop


@dataclass
class ReaperStats:
    """What the reaper has done so far."""

    terminated: int = 0
    suspended: int = 0
    sweeps: int = 0
    #: Reclaim attempts that raised (suspend refused, VM vanished
    #: mid-sweep, injected toolstack fault).  A failed VM is skipped,
    #: the sweep continues, and future sweeps still run.
    errors: int = 0


class IdleReaper:
    """Periodically reclaims idle VMs on one platform."""

    def __init__(
        self,
        switch: SwitchController,
        loop: EventLoop,
        idle_timeout_s: float = 60.0,
        sweep_interval_s: float = 10.0,
    ):
        self.switch = switch
        self.loop = loop
        self.idle_timeout_s = idle_timeout_s
        self.sweep_interval_s = sweep_interval_s
        self.stats = ReaperStats()
        self._running = False

    def start(self) -> None:
        """Begin periodic sweeps on the event loop."""
        if self._running:
            return
        self._running = True
        self.loop.schedule(self.sweep_interval_s, self._tick)

    def stop(self) -> None:
        """Stop after the current sweep (no new ones are scheduled)."""
        self._running = False

    def _tick(self) -> None:
        if not self._running:
            return
        try:
            self.sweep()
        finally:
            # Whatever a sweep did, the reaper keeps running: a single
            # bad sweep must not silently disable idle reclamation.
            self.loop.schedule(self.sweep_interval_s, self._tick)

    def sweep(self) -> List[VM]:
        """Reclaim every idle running VM once; returns those reaped.

        A reclaim that raises (a VM vanished between the candidate
        scan and the suspend, a flaky toolstack) is counted in
        :attr:`ReaperStats.errors` and skipped; the rest of the sweep
        proceeds.
        """
        self.stats.sweeps += 1
        now = self.loop.now
        reaped: List[VM] = []
        for vm in set(self.switch.client_vms.values()):
            if vm.state != VM_RUNNING:
                continue
            last = self.switch.last_activity.get(vm.vm_id)
            if last is None or now - last < self.idle_timeout_s:
                continue
            try:
                if vm.stateful:
                    self.switch.suspend_idle(vm)
                    self.stats.suspended += 1
                else:
                    vm.terminate()
                    self.stats.terminated += 1
            except Exception:
                self.stats.errors += 1
                continue
            reaped.append(vm)
        return reaped
