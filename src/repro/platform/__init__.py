"""The In-Net processing platform simulator (Section 5).

The paper's platforms are Xen hosts running ClickOS -- tiny VMs booting
in ~30 ms -- with three scaling mechanisms layered on top:

* **on-the-fly middleboxes**: the backend switch detects new flows
  (TCP SYN / first UDP packet) and boots the client's VM on demand,
* **suspend/resume** for stateful modules instead of terminate/boot,
* **consolidation**: many stateless clients' configurations merged into
  one VM behind an ``IPClassifier`` demux, proven safe by static
  analysis.

We do not have Xen; we have a calibrated simulator.  Every scaling
quantity the paper measures -- memory per VM, boot/suspend/resume
latency as a function of resident VMs, the per-core packet budget split
across configurations, the sandboxing tax -- is an explicit model in
:mod:`repro.platform.specs`, :mod:`repro.platform.lifecycle`, and
:mod:`repro.platform.throughput`, with constants taken from the paper's
own measurements.  The benchmark harness regenerates Figures 5-9, 11
and 12 from these models plus the event-driven machinery in
:mod:`repro.platform.clickos`.
"""

from repro.platform.clickos import PlatformSim
from repro.platform.consolidation import (
    ConsolidationManager,
    consolidate_configs,
    is_consolidation_safe,
)
from repro.platform.lifecycle import boot_time, resume_time, suspend_time
from repro.platform.orchestrator import PlatformOrchestrator
from repro.platform.reaper import IdleReaper
from repro.platform.specs import (
    BIG_SERVER_SPEC,
    CHEAP_SERVER_SPEC,
    VM_CLICKOS,
    VM_LINUX,
    PlatformSpec,
)
from repro.platform.throughput import ThroughputModel, line_rate_pps
from repro.platform.vm import VM, VM_RUNNING, VM_STOPPED, VM_SUSPENDED

__all__ = [
    "PlatformSim",
    "PlatformOrchestrator",
    "IdleReaper",
    "PlatformSpec",
    "CHEAP_SERVER_SPEC",
    "BIG_SERVER_SPEC",
    "VM_CLICKOS",
    "VM_LINUX",
    "VM",
    "VM_STOPPED",
    "VM_RUNNING",
    "VM_SUSPENDED",
    "boot_time",
    "suspend_time",
    "resume_time",
    "ThroughputModel",
    "line_rate_pps",
    "ConsolidationManager",
    "consolidate_configs",
    "is_consolidation_safe",
]
