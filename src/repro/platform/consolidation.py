"""Consolidating multiple tenants into one ClickOS VM (Section 5).

Static analysis is what makes this safe: standard Click elements do not
share memory and only communicate via packets, explicit addressing
guarantees a client's module only sees its own traffic, and the security
rules exclude spoofing -- so verifying configurations *individually*
suffices to merge them.  The one exception is per-flow state: a tenant
could balloon its memory and DoS its VM-mates, so (like the paper's
prototype) stateful configurations are never consolidated.

``consolidate_configs`` builds the merged configuration: an
``IPClassifier`` demultiplexes on destination address into each client's
namespaced subgraph, and all egress is re-multiplexed onto the shared
``ToNetfront``.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.click.config import ClickConfig
from repro.click.element import lookup_element
from repro.common.addr import format_ip
from repro.common.errors import ConfigError


def is_consolidation_safe(config: ClickConfig) -> bool:
    """Whether a configuration may share a VM with other tenants.

    True iff no element keeps per-flow state.  Element statefulness is
    class-level except for ``IPRewriter``, whose patterns decide it, so
    the check instantiates elements.
    """
    from repro.click.element import create_element

    for name, decl in config.elements.items():
        element = create_element(decl.class_name, name, decl.args)
        if element.stateful:
            return False
    return True


def consolidate_configs(
    clients: Sequence[Tuple[str, int, ClickConfig]],
) -> ClickConfig:
    """Merge client configurations into one VM-wide configuration.

    ``clients`` is ``[(client_id, assigned_address, config), ...]``.
    Every config must be stateless (:func:`is_consolidation_safe`) and
    shaped as one FromNetfront source and at least one ToNetfront sink.

    Returns the merged config::

        shared_in -> demux(dst==addr_i -> client_i subgraph) -> shared_out
    """
    if not clients:
        raise ConfigError("nothing to consolidate")
    merged = ClickConfig()
    merged.declare("shared_in", "FromNetfront")
    merged.declare("shared_out", "ToNetfront")
    patterns = []
    for _client_id, address, config in clients:
        patterns.append("dst host %s" % format_ip(address))
    merged.declare("demux", "IPClassifier", tuple(patterns))
    merged.connect("shared_in", "demux")
    for index, (client_id, _address, config) in enumerate(clients):
        if not is_consolidation_safe(config):
            raise ConfigError(
                "client %r keeps per-flow state and cannot be "
                "consolidated" % (client_id,)
            )
        sources = config.sources()
        sinks = config.sinks()
        if len(sources) != 1:
            raise ConfigError(
                "client %r config needs exactly one source to be "
                "consolidated" % (client_id,)
            )
        prefix = client_id
        entry_successors: List[Tuple[str, int]] = []
        for name, decl in config.elements.items():
            if name == sources[0] or name in sinks:
                continue  # shared endpoints replace per-client ones
            merged.declare(
                "%s/%s" % (prefix, name), decl.class_name, decl.args
            )
        for edge in config.edges:
            src_is_entry = edge.src == sources[0]
            dst_is_exit = edge.dst in sinks
            src = "demux" if src_is_entry else "%s/%s" % (prefix, edge.src)
            src_port = index if src_is_entry else edge.src_port
            dst = "shared_out" if dst_is_exit \
                else "%s/%s" % (prefix, edge.dst)
            dst_port = 0 if dst_is_exit else edge.dst_port
            if src_is_entry and dst_is_exit:
                raise ConfigError(
                    "client %r config is a bare passthrough" % (client_id,)
                )
            merged.edges.append(
                type(config.edges[0])(src, src_port, dst, dst_port)
            )
            if src_is_entry:
                entry_successors.append((dst, dst_port))
        if len(entry_successors) > 1:
            raise ConfigError(
                "client %r source feeds multiple elements; consolidation "
                "expects a single entry edge" % (client_id,)
            )
    return merged


class ConsolidationManager:
    """Groups incoming stateless clients into shared VMs.

    ``clients_per_vm`` bounds how many tenants share one VM -- the
    knob Figure 9 sweeps (50/100/200 per VM).
    """

    def __init__(
        self,
        clients_per_vm: int = 100,
        obs=None,
        platform_name: str = "platform",
    ):
        from repro.obs import NULL_OBSERVABILITY

        if clients_per_vm < 1:
            raise ConfigError("clients_per_vm must be >= 1")
        self.clients_per_vm = clients_per_vm
        #: Each group: list of (client_id, address, config).
        self.groups: List[List[Tuple[str, int, ClickConfig]]] = []
        self._client_group: Dict[str, int] = {}
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        placements = self._obs.metrics.counter(
            "consolidation_placements_total",
            "Tenant placements by kind (shared VM, new shared VM, "
            "dedicated VM)",
            labels=("platform", "kind"),
        )
        self._c_shared = placements.labels(platform_name, "shared")
        self._c_new_group = placements.labels(platform_name, "new-group")
        self._c_dedicated = placements.labels(platform_name, "dedicated")

    def place(
        self, client_id: str, address: int, config: ClickConfig
    ) -> Tuple[int, bool]:
        """Assign a client to a group.

        Returns ``(group_index, is_new_group)``; a new group means the
        platform must boot one more VM.
        """
        if client_id in self._client_group:
            raise ConfigError("client %r already placed" % (client_id,))
        if not is_consolidation_safe(config):
            # Stateful clients get a dedicated group (their own VM).
            self.groups.append([(client_id, address, config)])
            self._client_group[client_id] = len(self.groups) - 1
            self._c_dedicated.inc()
            return len(self.groups) - 1, True
        for idx, group in enumerate(self.groups):
            if len(group) < self.clients_per_vm and all(
                is_consolidation_safe(cfg) for _c, _a, cfg in group
            ) and len(group) >= 1 and self._group_is_shared(idx):
                group.append((client_id, address, config))
                self._client_group[client_id] = idx
                self._c_shared.inc()
                return idx, False
        self.groups.append([(client_id, address, config)])
        self._client_group[client_id] = len(self.groups) - 1
        self._c_new_group.inc()
        return len(self.groups) - 1, True

    def _group_is_shared(self, index: int) -> bool:
        group = self.groups[index]
        return all(is_consolidation_safe(cfg) for _c, _a, cfg in group)

    def group_of(self, client_id: str) -> Optional[int]:
        """The group index of a placed client (None if unknown)."""
        return self._client_group.get(client_id)

    def merged_config(self, index: int) -> ClickConfig:
        """The consolidated configuration for one group."""
        return consolidate_configs(self.groups[index])

    @property
    def vm_count(self) -> int:
        """Number of VMs the current placement requires."""
        return len(self.groups)
