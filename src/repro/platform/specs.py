"""Calibrated platform constants.

Every number here is taken from (or fitted to) a measurement the paper
reports; the table below maps constants to their source so deviations
are auditable.

====================  =======================================================
constant              paper source
====================  =======================================================
clickos_memory_mb     Section 6: "the memory footprint of a ClickOS VM is
                      almost two orders of magnitude smaller (around 8MB)"
linux_memory_mb       Section 2/6: stripped-down Linux VM, 512 MB footprint
clickos_boot_*        Section 5: boot "in about 30 milliseconds"; Figure 5:
                      first-packet RTT ~50 ms on average, ~100 ms for the
                      100th concurrent VM (linear growth with resident VMs)
linux_boot_base_s     Section 6: Linux first-packet RTT around 700 ms
suspend_*/resume_*    Figure 7: 30-100 ms, growing with resident VM count;
                      "possible to suspend and resume in 100ms in total"
max_clickos_vms       Section 6: 10,000 ClickOS instances on the 128 GB box
max_linux_vms         Section 6: up to 200 stripped-down Linux VMs
cpu_budget            Figure 8: ~10 Gb/s of 1500-byte HTTP traffic through
                      one core up to ~150 consolidated configs
rx_cost_*             Figure 11: 64B RX ~4.3 Mpps unsandboxed; sandboxing
                      costs 1/3 at 64B; separate-VM sandboxing drops 64B
                      throughput to 1.5 Mpps
====================  =======================================================
"""

from __future__ import annotations

from dataclasses import dataclass, replace

VM_CLICKOS = "clickos"
VM_LINUX = "linux"


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware + hypervisor model of one In-Net platform."""

    name: str
    cores: int
    memory_mb: int
    #: Memory the hypervisor/dom0 keeps for itself.
    reserved_memory_mb: int = 1024

    # -- per-VM memory footprints -------------------------------------------
    clickos_memory_mb: float = 8.0
    linux_memory_mb: float = 512.0
    #: Hypervisor caps beyond memory (xenstore, event channels...).
    max_clickos_vms: int = 10_000
    max_linux_vms: int = 200

    # -- lifecycle latency models (seconds), linear in resident VMs --------
    clickos_boot_base_s: float = 0.030
    clickos_boot_per_vm_s: float = 0.0007
    linux_boot_base_s: float = 0.700
    linux_boot_per_vm_s: float = 0.004
    suspend_base_s: float = 0.040
    suspend_per_vm_s: float = 0.00015
    resume_base_s: float = 0.050
    resume_per_vm_s: float = 0.00020
    #: Switch-controller flow-detection overhead before a boot starts.
    flow_detect_s: float = 0.0005
    #: Base packet RTT through an already-running ClickOS VM.
    base_rtt_s: float = 0.0002
    #: RTT growth per additional resident VM (scheduler pressure).
    rtt_per_vm_s: float = 0.000004

    # -- dataplane cost model ------------------------------------------------
    #: NIC line rate in bits/second.
    nic_bps: float = 10e9
    #: Per-packet framing overhead on the wire (preamble+IFG+CRC), bytes.
    wire_overhead_bytes: int = 24
    #: Fixed per-packet CPU cost of the RX/switch path (microseconds).
    #: 1/(0.207+64*0.0004) us = 4.3 Mpps at 64B, Figure 11's baseline.
    rx_cost_fixed_us: float = 0.207
    #: Per-byte CPU cost (netfront grant copies), microseconds/byte.
    #: Places the Figure 8 consolidation knee at ~150 configurations and
    #: makes MTU-sized traffic line-rate bound.
    rx_cost_per_byte_us: float = 0.0004
    #: Extra per-packet cost of an in-configuration ChangeEnforcer:
    #: costs exactly 1/3 of 64B throughput (Figure 11).
    sandbox_inline_us: float = 0.1163
    #: Extra per-packet cost of a separate sandbox VM (context switches
    #: between module VM and sandbox VM): 1.5 Mpps at 64B (Figure 11).
    sandbox_vm_us: float = 0.445
    #: Per-packet cost of one Click element cost unit (element.cycle_cost
    #: multiplies this), microseconds.
    element_unit_us: float = 0.035
    #: Per-packet demux cost per consolidated configuration (IPClassifier
    #: linear match), microseconds.
    demux_per_config_us: float = 0.0022
    #: Per-packet scheduling cost per additional resident VM sharing the
    #: core (context switching), microseconds.
    sched_per_vm_us: float = 0.004

    def usable_memory_mb(self) -> int:
        """Memory available for guest VMs."""
        return max(0, self.memory_mb - self.reserved_memory_mb)

    def vm_memory_mb(self, kind: str) -> float:
        """Per-VM memory footprint for a VM kind."""
        if kind == VM_CLICKOS:
            return self.clickos_memory_mb
        if kind == VM_LINUX:
            return self.linux_memory_mb
        raise ValueError("unknown VM kind %r" % (kind,))

    def max_vms(self, kind: str) -> int:
        """Upper bound on resident VMs of a kind (memory + hypervisor)."""
        by_memory = int(self.usable_memory_mb() // self.vm_memory_mb(kind))
        cap = (
            self.max_clickos_vms if kind == VM_CLICKOS else self.max_linux_vms
        )
        return min(by_memory, cap)

    def scaled(self, **overrides) -> "PlatformSpec":
        """A copy with some constants replaced (for ablations)."""
        return replace(self, **overrides)


#: The ~$1,000 single-socket Xeon E3-1220 (4 cores, 16 GB) used for the
#: platform scalability experiments (Section 6).
CHEAP_SERVER_SPEC = PlatformSpec(
    name="xeon-e3-1220",
    cores=4,
    memory_mb=16 * 1024,
)

#: The 4x AMD Opteron 6376 (64 cores, 128 GB) used for the VM-density
#: upper-bound experiment (Section 6).
BIG_SERVER_SPEC = PlatformSpec(
    name="amd-opteron-6376",
    cores=64,
    memory_mb=128 * 1024,
    reserved_memory_mb=2048,
)
