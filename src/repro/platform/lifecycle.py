"""VM lifecycle latency models (Figures 5 and 7).

All three operations scale linearly with the number of VMs already
resident on the host -- the xenstore/toolstack bookkeeping the paper's
measurements exhibit -- with coefficients calibrated in
:mod:`repro.platform.specs`.
"""

from __future__ import annotations

from repro.platform.specs import PlatformSpec, VM_CLICKOS, VM_LINUX

#: Operation labels for the shared lifecycle-duration histogram.
LIFECYCLE_BOOT = "boot"
LIFECYCLE_SUSPEND = "suspend"
LIFECYCLE_RESUME = "resume"


def observe_lifecycle(metrics, op: str, seconds: float) -> None:
    """Record one VM lifecycle operation's duration.

    Central helper so every caller (the backend switch, the platform
    facade, the reaper) lands in the same
    ``platform_lifecycle_seconds{op=...}`` histogram.  ``metrics`` is a
    :class:`repro.obs.MetricsRegistry`; a disabled registry makes this
    a no-op.
    """
    metrics.histogram(
        "platform_lifecycle_seconds",
        "Simulated seconds per VM lifecycle operation",
        labels=("op",),
    ).labels(op).observe(seconds)


def boot_time(spec: PlatformSpec, kind: str, resident_vms: int) -> float:
    """Seconds to boot one more VM with ``resident_vms`` already there."""
    if resident_vms < 0:
        raise ValueError("resident_vms must be >= 0")
    if kind == VM_CLICKOS:
        return (
            spec.clickos_boot_base_s
            + spec.clickos_boot_per_vm_s * resident_vms
        )
    if kind == VM_LINUX:
        return (
            spec.linux_boot_base_s + spec.linux_boot_per_vm_s * resident_vms
        )
    raise ValueError("unknown VM kind %r" % (kind,))


def suspend_time(spec: PlatformSpec, resident_vms: int) -> float:
    """Seconds to suspend one VM (Figure 7, `suspend` series)."""
    if resident_vms < 0:
        raise ValueError("resident_vms must be >= 0")
    return spec.suspend_base_s + spec.suspend_per_vm_s * resident_vms


def resume_time(spec: PlatformSpec, resident_vms: int) -> float:
    """Seconds to resume one VM (Figure 7, `resume` series)."""
    if resident_vms < 0:
        raise ValueError("resident_vms must be >= 0")
    return spec.resume_base_s + spec.resume_per_vm_s * resident_vms


def packet_rtt(spec: PlatformSpec, resident_vms: int) -> float:
    """Steady-state RTT through a running ClickOS VM (Figure 5 tail)."""
    if resident_vms < 0:
        raise ValueError("resident_vms must be >= 0")
    return spec.base_rtt_s + spec.rtt_per_vm_s * resident_vms
