"""The platform simulator facade.

:class:`PlatformSim` ties the pieces together -- spec, event loop,
switch controller, consolidation manager, throughput model -- and
exposes the operations the paper's platform experiments perform:

* ``ping(...)``        -- Figure 5 (reaction time of on-the-fly VMs),
* ``http_request(...)``-- Figure 6 (concurrent HTTP through the box),
* ``suspend_resume_cycle`` -- Figure 7,
* consolidated-capacity queries -- Figures 8/9/12 via
  :class:`~repro.platform.throughput.ThroughputModel`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.click.config import ClickConfig
from repro.common.errors import SimulationError
from repro.platform.consolidation import ConsolidationManager
from repro.platform.lifecycle import (
    LIFECYCLE_RESUME,
    LIFECYCLE_SUSPEND,
    observe_lifecycle,
    packet_rtt,
    resume_time,
    suspend_time,
)
from repro.platform.specs import (
    CHEAP_SERVER_SPEC,
    PlatformSpec,
    VM_CLICKOS,
)
from repro.platform.switch import SwitchController
from repro.platform.throughput import ThroughputModel
from repro.platform.vm import VM
from repro.sim.events import EventLoop


@dataclass
class PingResult:
    """RTTs of one ping train through the platform."""

    client_id: str
    rtts: List[float] = field(default_factory=list)


@dataclass
class HttpResult:
    """Timing of one HTTP download through the platform."""

    client_id: str
    connection_time: float = 0.0
    transfer_time: float = 0.0
    completed_at: float = 0.0


class PlatformSim:
    """Event-driven simulator of one In-Net platform."""

    def __init__(
        self,
        spec: PlatformSpec = CHEAP_SERVER_SPEC,
        loop: Optional[EventLoop] = None,
        #: Base one-way network latency between the traffic endpoints
        #: and the platform (the three-servers-in-a-row testbed).
        wire_latency_s: float = 0.0001,
        obs=None,
        name: str = "platform",
        injector=None,
        retry_policy=None,
    ):
        from repro.obs import NULL_OBSERVABILITY

        self.spec = spec
        self.loop = loop or EventLoop()
        self._obs = obs if obs is not None else NULL_OBSERVABILITY
        self.name = name
        #: Shared fault injector + retry policy (repro.resilience);
        #: both flow through to the switch's lifecycle paths.
        self._injector = injector
        self._retry_policy = retry_policy
        self.switch = SwitchController(
            spec, self.loop, obs=self._obs, platform_name=name,
            injector=injector, retry_policy=retry_policy,
        )
        self.throughput = ThroughputModel(spec)
        self.wire_latency_s = wire_latency_s
        self._active_transfers = 0

    # -- whole-platform failure --------------------------------------------------
    @property
    def crashed(self) -> bool:
        """Whether the platform is down (health probes read this)."""
        return self.switch.crashed

    def crash(self) -> None:
        """The box dies: VMs destroyed, parked traffic dropped."""
        self.switch.crash()

    def restore(self) -> None:
        """The box comes back; VMs boot again on demand."""
        self.switch.restore()

    # -- provisioning -----------------------------------------------------------
    def register_client(
        self,
        client_id: str,
        config: Optional[ClickConfig] = None,
        stateful: bool = False,
        kind: str = VM_CLICKOS,
        shared_vm: Optional[VM] = None,
    ) -> VM:
        """Install a client configuration (VM boots on first packet)."""
        if shared_vm is None and not self.can_admit(kind):
            raise SimulationError(
                "platform out of memory for another %s VM" % (kind,)
            )
        vm = self.switch.register_client(
            client_id, vm=shared_vm, stateful=stateful
        )
        vm.kind = kind
        return vm

    def can_admit(self, kind: str = VM_CLICKOS) -> bool:
        """Whether one more VM of ``kind`` fits in memory."""
        return self.switch.resident_vms() + 1 <= self.spec.max_vms(kind)

    def memory_in_use_mb(self) -> float:
        """Memory consumed by resident VMs."""
        return sum(
            self.spec.vm_memory_mb(vm.kind)
            for vm in set(self.switch.client_vms.values())
            if vm.is_resident
        )

    # -- Figure 5: ping through on-the-fly VMs ---------------------------------
    def ping(
        self,
        client_id: str,
        start: float,
        count: int = 15,
        interval: float = 1.0,
    ) -> PingResult:
        """Schedule a ping train; RTTs are filled in as events fire."""
        result = PingResult(client_id=client_id)

        def send(probe_index: int) -> None:
            sent_at = self.loop.now

            def deliver() -> None:
                # VM is up: one RTT through the running middlebox.
                rtt = (
                    (self.loop.now - sent_at)
                    + 2 * self.wire_latency_s
                    + packet_rtt(self.spec, self.switch.running_vms())
                )
                result.rtts.append(rtt)

            self.switch.packet_for(client_id, deliver)

        for index in range(count):
            self.loop.schedule_at(
                start + index * interval, lambda i=index: send(i)
            )
        return result

    # -- Figure 6: HTTP transfers ------------------------------------------------
    def http_request(
        self,
        client_id: str,
        start: float,
        size_bytes: int,
        rate_bps: float,
        packet_bytes: int = 1500,
    ) -> HttpResult:
        """Schedule an HTTP download through the client's middlebox."""
        result = HttpResult(client_id=client_id)

        def syn() -> None:
            sent_at = self.loop.now

            def established() -> None:
                # SYN waited for the VM; the handshake then costs one
                # round trip through the running platform.
                handshake = (
                    2 * self.wire_latency_s
                    + packet_rtt(self.spec, self.switch.running_vms())
                )
                result.connection_time = (
                    (self.loop.now - sent_at) + handshake
                )
                capacity = self.throughput.capacity_bps(
                    packet_bytes,
                    consolidated_configs=max(
                        1, len(self.switch.client_vms)
                    ),
                    resident_vms=max(1, self.switch.resident_vms()),
                )
                self._active_transfers += 1
                share = capacity / self._active_transfers
                rate = min(rate_bps, share)
                duration = size_bytes * 8.0 / rate

                def done() -> None:
                    self._active_transfers -= 1
                    result.transfer_time = duration
                    result.completed_at = self.loop.now

                self.loop.schedule(duration, done)

            self.switch.packet_for(client_id, established)

        self.loop.schedule_at(start, syn)
        return result

    # -- Figure 7: suspend/resume --------------------------------------------------
    def suspend_resume_cycle(self, client_id: str) -> Tuple[float, float]:
        """Suspend then resume a client's (running) VM.

        Returns ``(suspend_seconds, resume_seconds)`` under the current
        resident-VM count.  The VM must be running; the cycle completes
        synchronously on the event loop.  With a fault injector
        attached, injected ``suspend-resume`` faults are absorbed by
        the retry policy (backoff advances the simulated clock);
        exhausted retries surface as
        :class:`~repro.common.errors.RetryExhaustedError`.
        """
        if self._injector is None:
            return self._suspend_resume_once(client_id)
        from repro.resilience.retry import call_with_retries

        return call_with_retries(
            lambda: self._suspend_resume_once(client_id),
            op="suspend-resume",
            policy=self._retry_policy,
            injector=self._injector,
            target=self.name,
            clock=lambda: self.loop.now,
            sleep=lambda d: self.loop.run_until(self.loop.now + d),
            obs=self._obs,
        )

    def _suspend_resume_once(self, client_id: str) -> Tuple[float, float]:
        vm = self.switch.client_vms.get(client_id)
        if vm is None:
            raise SimulationError("unknown client %r" % (client_id,))
        residents = self.switch.resident_vms()
        s_time = suspend_time(self.spec, residents)
        r_time = resume_time(self.spec, residents)
        metrics = self._obs.metrics
        observe_lifecycle(metrics, LIFECYCLE_SUSPEND, s_time)
        observe_lifecycle(metrics, LIFECYCLE_RESUME, r_time)
        vm.begin_suspend()

        def finish_suspend():
            vm.finish_suspend()
            self.switch.note_suspend()

        self.loop.schedule(s_time, finish_suspend)
        self.loop.run_until(self.loop.now + s_time)
        vm.begin_resume()
        when = self.loop.now

        def finish_resume():
            vm.finish_resume(when + r_time)
            self.switch.note_resume()

        self.loop.schedule(r_time, finish_resume)
        self.loop.run_until(self.loop.now + r_time)
        return s_time, r_time

    # -- warm-up helper -----------------------------------------------------------
    def force_boot(self, client_id: str) -> None:
        """Boot a client's VM immediately (outside any measurement)."""
        done: List[bool] = []
        self.switch.packet_for(client_id, lambda: done.append(True))
        self.loop.run()
        if not done:
            raise SimulationError(
                "VM for %r did not come up" % (client_id,)
            )
