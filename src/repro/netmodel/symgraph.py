"""Compiling a network snapshot into a symbolic graph.

The controller verifies requests by "pretending it has instantiated the
client processing" (Section 4.3): it compiles the topology *plus* the
trial-deployed modules into one :class:`~repro.symexec.engine.SymGraph`
and runs reachability checks on it.  This module is that compiler.

Conventions:

* topology nodes keep their names; a module's elements become
  ``<module>/<element>`` vertices;
* a platform vertex demuxes arriving traffic to the module whose
  assigned address matches the destination (the OpenFlow rules the
  real controller installs on Open vSwitch), and forwards module egress
  out its uplink;
* endpoint vertices (hosts, client subnets, internet) are sinks.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.common import fields as F
from repro.common.errors import VerificationError
from repro.common.intervals import IntervalSet
from repro.netmodel.topology import (
    ClientSubnet,
    Host,
    Internet,
    Middlebox,
    Network,
    Platform,
    Router,
)
from repro.policy.flowspec import FlowSpec, parse_flowspec
from repro.policy.grammar import (
    KIND_ADDRESS,
    KIND_CLIENT,
    KIND_ELEMENT,
    KIND_INTERNET,
    KIND_NAME,
    NodeRef,
)
from repro.symexec.engine import (
    Exploration,
    SymbolicEngine,
    SymFlow,
    SymGraph,
    TraceEntry,
)
from repro.symexec.models import flows_matching, model_for
from repro.symexec.tuning import OPT

#: Platform pseudo-port bases (topology uplink ports stay below these).
MODULE_INGRESS_BASE = 1000
MODULE_EGRESS_BASE = 2000


def _endpoint_model(ctx, node, port, flow):
    # Endpoints are sinks; the engine never calls their model.
    return []


def _router_model(ctx, node, port, flow):
    table = ctx.graph.payloads[node]
    results = []
    if OPT.enabled:
        # Inline symbolic_split's memo-hit path: this runs for every
        # symbolic arrival at every router, and the extra call is
        # measurable on large topologies.
        cached = table._split_cache
        if cached is not None and cached[0] == table._version:
            OPT.memo_hits += 1
            branches = cached[1]
        else:
            branches = table.symbolic_split()
        variable = flow.packet.var(F.IP_DST)
        if variable is not None:
            # Prune fork branches whose destination set cannot overlap
            # the flow's current ip_dst domain: the seed engine forks
            # them and immediately kills the fork inside this model,
            # which is invisible.  Only fork branches (all but the
            # last) are prunable -- the last branch reuses the
            # in-place flow, and the seed's in-place constrain,
            # including the dead-flow state it leaves behind when the
            # branch is infeasible, must be reproduced exactly.  The
            # precheck intersect is reused by ``constrain`` through
            # the interval result cache.
            current = flow.domain(variable)
            last = len(branches) - 1
            for index, (out_port, allowed) in enumerate(branches):
                if index < last and (
                    current.intersect(allowed).is_empty()
                ):
                    OPT.prunes += 1
                    continue
                target = flow if index == last else flow.fork()
                if target.constrain(variable, allowed):
                    results.append((out_port, target))
            return results
        # ip_dst untracked: fall through so constrain_field raises the
        # same VerificationError the seed engine raises.
    else:
        branches = table.symbolic_split()
    last = len(branches) - 1
    for index, (out_port, allowed) in enumerate(branches):
        fork = flow if index == last else flow.fork()
        if fork.constrain_field(F.IP_DST, allowed):
            results.append((out_port, fork))
    return results


def _middlebox_model_factory(element) -> Callable:
    inner_model = model_for(element.class_name)
    two_sided = element.n_inputs == 2

    def middlebox_model(ctx, node, port, flow):
        element_port = port if two_sided else 0
        # The inner model reads its element instance via the payload.
        outputs = inner_model(ctx, node, element_port, flow)
        results = []
        for out_port, out_flow in outputs:
            if two_sided:
                # Directional elements (StatefulFirewall, IngressFilter,
                # ChangeEnforcer): port number = traffic direction.
                # Direction d enters on interface d and leaves on the
                # opposite interface.
                iface = 1 - out_port if out_port in (0, 1) else out_port
            else:
                # Single-port elements placed on-path forward each
                # direction to the opposite interface.
                iface = 1 - port if port in (0, 1) else 0
            results.append((iface, out_flow))
        return results

    # Marks the wrapper for the summary compiler, which rebuilds the
    # same iface mapping around the element's transfer function.
    middlebox_model.summary_kind = "middlebox"
    return middlebox_model


class _PlatformState:
    """Payload of a platform vertex."""

    def __init__(self, platform: Platform, uplink_port: int,
                 module_order: List[str]):
        self.platform = platform
        self.uplink_port = uplink_port
        self.module_order = module_order  # deterministic pseudo-ports
        #: Memoized (raw branches identity, module order, result) for
        #: :meth:`module_branches`.
        self._demux_cache: Optional[tuple] = None
        #: Memoized (module snapshot, complement set) for
        #: :meth:`egress_complement`.
        self._egress_cache: Optional[tuple] = None

    def module_branches(
        self,
    ) -> List[Tuple[int, Dict[str, IntervalSet]]]:
        """(ingress pseudo-port, residual match) per steering rule.

        Read from the platform's OpenFlow-style table, so the symbolic
        demux follows exactly the rules the controller installed.
        Memoized under the fast path: valid while the flow table hands
        back the same (memoized) branch list and the module order is
        unchanged -- any install/remove or (un)graft invalidates it.
        """
        from repro.netmodel.flowtable import ACTION_TO_MODULE

        raw = self.platform.flow_table.symbolic_branches()
        order = self.module_order
        if OPT.enabled:
            cached = self._demux_cache
            if (
                cached is not None
                and cached[0] is raw
                and cached[1] == order
            ):
                OPT.memo_hits += 1
                return cached[2]
        branches = []
        for action, residual in raw:
            if action.kind != ACTION_TO_MODULE:
                continue
            if action.target not in order:
                continue
            index = order.index(action.target)
            branches.append((MODULE_INGRESS_BASE + index, residual))
        if OPT.enabled:
            self._demux_cache = (raw, list(order), branches)
        return branches

    def egress_complement(self) -> IntervalSet:
        """Destinations that leave via the uplink (not a co-located
        module's address); memoized per module-address set."""
        modules = self.platform.modules
        key = tuple(sorted(
            (name, addr) for name, (addr, _cfg) in modules.items()
        ))
        if OPT.enabled:
            cached = self._egress_cache
            if cached is not None and cached[0] == key:
                OPT.memo_hits += 1
                return cached[1]
        complement = IntervalSet.from_interval(
            0, (1 << 32) - 1
        ).subtract(IntervalSet.from_values(addr for _name, addr in key))
        if OPT.enabled:
            self._egress_cache = (key, complement)
        return complement


def _platform_model(ctx, node, port, flow):
    state: _PlatformState = ctx.graph.payloads[node]
    results = []
    branches = state.module_branches()
    remaining = flow
    from_module = port >= MODULE_EGRESS_BASE
    opt = OPT.enabled
    for ingress_port, residual in branches:
        if from_module and ingress_port == (
            port - MODULE_EGRESS_BASE + MODULE_INGRESS_BASE
        ):
            continue  # no self-hairpin: a module never feeds itself
        if opt:
            # Demux branches are always forks, so an infeasible
            # residual can be pruned before forking (the seed engine
            # forked, constrained to death, and dropped it here).
            infeasible = False
            for field_name, allowed in residual.items():
                variable = remaining.packet.var(field_name)
                if variable is None:
                    break  # fork path raises, exactly like seed
                if remaining.domain(variable).intersect(
                    allowed
                ).is_empty():
                    infeasible = True
                    break
            if infeasible:
                OPT.prunes += 1
                continue
        fork = remaining.fork()
        alive = True
        for field_name, allowed in residual.items():
            if not fork.constrain_field(field_name, allowed):
                alive = False
                break
        if alive:
            results.append((ingress_port, fork))
    if from_module:
        # Module egress not destined to a co-located module leaves via
        # the uplink; the upstream router takes over.
        if remaining.constrain_field(
            F.IP_DST, state.egress_complement()
        ):
            results.append((state.uplink_port, remaining))
    # Traffic arriving on the uplink that matches no module is dropped
    # (the platform only accepts module-addressed traffic).
    return results


class CompiledNetwork:
    """A symbolic graph for one network snapshot, plus its resolvers."""

    def __init__(self, network: Network, graph: SymGraph):
        self.network = network
        self.graph = graph
        #: The network epoch this model was compiled at; the owner
        #: (the controller) compares it against ``network.epoch`` to
        #: decide whether the model is still current.
        self.epoch = network.epoch
        #: module name -> (platform name, assigned address, ClickConfig).
        self.modules: Dict[str, Tuple[str, int, object]] = {}
        for platform in network.platforms():
            for name, (address, config) in platform.modules.items():
                self.modules[name] = (platform.name, address, config)

    # -- incremental updates ------------------------------------------------
    @property
    def is_current(self) -> bool:
        """Whether the underlying network is still at our epoch."""
        return self.epoch == self.network.epoch

    @contextmanager
    def with_trial_module(
        self, platform_name: str, module_id: str, address: int, config
    ) -> Iterator["CompiledNetwork"]:
        """Temporarily graft one module's branch onto the compiled graph.

        The admission fast path: instead of recompiling every node
        model for each candidate placement, the already-compiled
        operator network is reused and only the platform-local module
        subgraph (its elements, internal wiring, and the two splice
        edges into the platform's demux) is added -- and removed again
        on exit, leaving the shared model untouched.  The platform's
        steering rules are read live from its flow table, so the caller
        must have trial-deployed the module on the platform
        (``platform.deploy``) before entering, and undeploy after.

        Exploration over the grafted graph is equivalent to a full
        recompile of the trial snapshot (module pseudo-port numbering
        may differ; it is internal to the platform demux).
        """
        if module_id in self.graph.models or module_id in self.modules:
            raise VerificationError(
                "trial module %r already present in the model"
                % (module_id,)
            )
        state: _PlatformState = self.graph.payloads[platform_name]
        index = len(state.module_order)
        state.module_order.append(module_id)
        added_nodes: List[str] = []
        added_edges: List[Tuple[str, int]] = []
        try:
            _splice_module(
                self.graph, platform_name, module_id, config, index,
                added_nodes=added_nodes, added_edges=added_edges,
            )
            self.modules[module_id] = (platform_name, address, config)
            yield self
        finally:
            self.modules.pop(module_id, None)
            for key in added_edges:
                self.graph.edges.pop(key, None)
            self.graph.version += 1  # direct edge surgery above
            for name in added_nodes:
                self.graph.remove_node(name)
            state.module_order.remove(module_id)

    # -- engine -----------------------------------------------------------
    def engine(self, **kwargs) -> SymbolicEngine:
        """A fresh symbolic engine over the compiled graph."""
        return SymbolicEngine(self.graph, **kwargs)

    # -- resolver ----------------------------------------------------------
    def resolver(self, ref: NodeRef) -> Callable[[TraceEntry], bool]:
        """Map a requirement node reference to a trace-entry matcher."""
        if ref.kind == KIND_INTERNET:
            names = {n.name for n in self.network.internet_nodes()}
            return lambda entry: entry.node in names
        if ref.kind == KIND_CLIENT:
            names = {n.name for n in self.network.client_subnets()}
            return lambda entry: entry.node in names
        if ref.kind == KIND_NAME:
            if ref.name not in self.network.nodes:
                raise VerificationError(
                    "requirement references unknown node %r" % (ref.name,)
                )
            return lambda entry: entry.node == ref.name
        if ref.kind == KIND_ELEMENT:
            wanted = "%s/%s" % (ref.name, ref.element)
            port = ref.port
            return (
                lambda entry: entry.node == wanted and entry.port == port
            )
        if ref.kind == KIND_ADDRESS:
            return self._address_matcher(ref)
        raise VerificationError("unresolvable node reference %r" % (ref,))

    def _address_matcher(self, ref: NodeRef):
        network_addr, plen = ref.prefix
        from repro.common.addr import prefix_range

        low, high = prefix_range(network_addr, plen)
        wanted = IntervalSet.from_interval(low, high)
        names = set()
        # Module addresses match the module's entry element.
        for module_name, (_platform, address, config) in \
                self.modules.items():
            if address in wanted:
                for element in config.sources():
                    names.add("%s/%s" % (module_name, element))
        for node in self.network.nodes.values():
            if isinstance(node, (Host, ClientSubnet)):
                if node.owned_addresses().overlaps(wanted):
                    names.add(node.name)
        if not names:
            # Fall back to any platform owning part of the range.
            for platform in self.network.platforms():
                if platform.owned_addresses().overlaps(wanted):
                    names.add(platform.name)
        return lambda entry: entry.node in names

    # -- injection -----------------------------------------------------------
    def internal_addresses(self) -> IntervalSet:
        """Every address owned inside the operator's network."""
        owned = IntervalSet.empty()
        for node in self.network.nodes.values():
            owned = owned.union(node.owned_addresses())
        return owned

    def injection_points(
        self, ref: NodeRef
    ) -> List[Tuple[str, Optional[IntervalSet]]]:
        """Graph nodes where an origin hop's traffic departs, plus the
        source-address constraint that node kind implies.

        Internet-origin traffic is constrained to sources *outside* the
        operator's address space: the operator applies ingress filtering
        on its Internet links (Section 7), so spoofed internal sources
        never enter from outside.
        """
        points: List[Tuple[str, Optional[IntervalSet]]] = []
        if ref.kind == KIND_INTERNET:
            outside = IntervalSet.from_interval(
                0, (1 << 32) - 1
            ).subtract(self.internal_addresses())
            points = [
                (n.name, outside) for n in self.network.internet_nodes()
            ]
        elif ref.kind == KIND_CLIENT:
            points = [
                (n.name, n.owned_addresses())
                for n in self.network.client_subnets()
            ]
        elif ref.kind == KIND_ADDRESS:
            network_addr, plen = ref.prefix
            from repro.common.addr import prefix_range

            low, high = prefix_range(network_addr, plen)
            wanted = IntervalSet.from_interval(low, high)
            for node in self.network.nodes.values():
                if isinstance(node, (Host, ClientSubnet)):
                    if node.owned_addresses().overlaps(wanted):
                        points.append((node.name, wanted))
            if not points:
                # Unowned addresses originate in the internet.
                points = [
                    (n.name, wanted)
                    for n in self.network.internet_nodes()
                ]
        elif ref.kind == KIND_NAME:
            points = [(ref.name, None)]
        elif ref.kind == KIND_ELEMENT:
            points = [("%s/%s" % (ref.name, ref.element), None)]
        if not points:
            raise VerificationError(
                "no injection point for origin %r" % (ref,)
            )
        return points

    def explore_from(
        self,
        ref: NodeRef,
        flow_spec: Optional[FlowSpec] = None,
        engine: Optional[SymbolicEngine] = None,
    ) -> Exploration:
        """Inject symbolic traffic departing an origin node and explore.

        One injection per (origin node, origin clause) pair; the merged
        exploration covers every case.
        """
        engine = engine or self.engine()
        merged = Exploration()
        for node_name, source_set in self.injection_points(ref):
            base = SymFlow(engine.fresh_packet())
            if source_set is not None and not base.constrain_field(
                F.IP_SRC, source_set
            ):
                continue
            if flow_spec is not None:
                seeds = flows_matching(base, flow_spec)
            else:
                seeds = [base]
            for seed in seeds:
                part = engine.inject_departure(node_name, seed)
                merge_explorations(merged, part)
        return merged


def merge_explorations(target: Exploration, part: Exploration) -> None:
    """Accumulate ``part`` into ``target`` (in place)."""
    for key, flows in part.arrivals.items():
        target.arrivals.setdefault(key, []).extend(flows)
    target.delivered.extend(part.delivered)
    target.dropped.extend(part.dropped)
    target.steps += part.steps
    target.forks += part.forks
    target.pruned += part.pruned
    target.memo_hits += part.memo_hits
    target.cow_copies += part.cow_copies


class NetworkCompiler:
    """Builds the :class:`CompiledNetwork` for a snapshot."""

    def __init__(self, network: Network):
        self.network = network

    def compile(self) -> CompiledNetwork:
        """Compile topology + deployed modules into one graph.

        Routers' tables must already be computed
        (:meth:`Network.compute_routes`).
        """
        graph = SymGraph()
        # 1. Topology vertices.
        for node in self.network.nodes.values():
            if isinstance(node, Router):
                graph.add_node(node.name, _router_model,
                               payload=node.table)
            elif isinstance(node, (Host, ClientSubnet, Internet)):
                graph.add_node(node.name, _endpoint_model, is_sink=True)
            elif isinstance(node, Middlebox):
                element = node.make_element()
                graph.add_node(
                    node.name,
                    _middlebox_model_factory(element),
                    payload=element,
                )
            elif isinstance(node, Platform):
                uplink = min(node.ports) if node.ports else 0
                state = _PlatformState(
                    node, uplink, sorted(node.modules)
                )
                graph.add_node(node.name, _platform_model, payload=state)
            else:
                raise VerificationError(
                    "cannot compile node %r of kind %r"
                    % (node.name, node.kind)
                )
        # 2. Topology links (both directions).
        for link in self.network.links:
            graph.connect(link.a, link.a_port, link.b, link.b_port)
            graph.connect(link.b, link.b_port, link.a, link.a_port)
        # 3. Deployed modules, spliced behind their platform's demux.
        for platform in self.network.platforms():
            state: _PlatformState = graph.payloads[platform.name]
            for index, module_name in enumerate(state.module_order):
                _address, config = platform.modules[module_name]
                _splice_module(graph, platform.name, module_name,
                               config, index)
        return CompiledNetwork(self.network, graph)


def _splice_module(
    graph: SymGraph,
    platform_name: str,
    module_name: str,
    config,
    index: int,
    added_nodes: Optional[List[str]] = None,
    added_edges: Optional[List[Tuple[str, int]]] = None,
) -> None:
    """Add one module's elements behind its platform's demux.

    Used both by the full compiler and by incremental grafting
    (:meth:`CompiledNetwork.with_trial_module`); the optional
    ``added_nodes``/``added_edges`` lists collect what was created so a
    graft can be undone exactly.
    """
    from repro.click.element import create_element

    def _connect(src, src_port, dst, dst_port):
        graph.connect(src, src_port, dst, dst_port)
        if added_edges is not None:
            added_edges.append((src, src_port))

    prefix = module_name + "/"
    for name, decl in config.elements.items():
        element = create_element(decl.class_name, name, decl.args)
        graph.add_node(
            prefix + name,
            model_for(decl.class_name),
            payload=element,
            is_sink=False,  # egress re-enters the platform
        )
        if added_nodes is not None:
            added_nodes.append(prefix + name)
    for edge in config.edges:
        _connect(prefix + edge.src, edge.src_port,
                 prefix + edge.dst, edge.dst_port)
    entry_classes = ("FromNetfront", "FromDevice")
    exit_classes = ("ToNetfront", "ToDevice")
    sources = [
        name for name in config.sources()
        if config.elements[name].class_name in entry_classes
    ]
    sinks = [
        name for name in config.sinks()
        if config.elements[name].class_name in exit_classes
    ]
    if not sources or not sinks:
        raise VerificationError(
            "module %r needs a FromNetfront source and a ToNetfront "
            "sink to be spliced" % (module_name,)
        )
    _connect(
        platform_name, MODULE_INGRESS_BASE + index,
        prefix + sources[0], 0,
    )
    for sink in sinks:
        _connect(
            prefix + sink, 0,
            platform_name, MODULE_EGRESS_BASE + index,
        )
