"""The operator network model.

The In-Net controller verifies client requests on a *snapshot* of the
network: routing and switch tables, middlebox configurations, tunnels
(Section 4.3).  This package is that snapshot:

* :mod:`repro.netmodel.topology` -- the network graph: routers, links,
  operator middleboxes, processing platforms, client subnets, hosts and
  the internet, with automatic shortest-path route computation,
* :mod:`repro.netmodel.routing` -- longest-prefix-match routing tables
  (with a symbolic split used by router models),
* :mod:`repro.netmodel.symgraph` -- the compiler that turns a topology
  plus a set of trial-deployed processing modules into a
  :class:`~repro.symexec.engine.SymGraph`, and the node resolver that
  maps requirement node references (``client``, ``internet``, addresses,
  ``module:element:port``) onto graph vertices.
"""

from repro.netmodel.examples import (
    figure3_network,
    linear_network,
    star_network,
)
from repro.netmodel.routing import Route, RoutingTable
from repro.netmodel.symgraph import CompiledNetwork, NetworkCompiler
from repro.netmodel.topology import (
    ClientSubnet,
    Host,
    Internet,
    Link,
    Middlebox,
    Network,
    Platform,
    Router,
)

__all__ = [
    "Network",
    "Router",
    "Host",
    "ClientSubnet",
    "Internet",
    "Middlebox",
    "Platform",
    "Link",
    "Route",
    "RoutingTable",
    "NetworkCompiler",
    "CompiledNetwork",
    "figure3_network",
    "linear_network",
    "star_network",
]
