"""Longest-prefix-match routing tables.

Used concretely (``lookup``) by the platform simulator and symbolically
(``symbolic_split``) by router models: with a symbolic destination, a
router splits the flow per route entry, constraining each branch to the
entry's prefix *minus* every more-specific prefix -- the standard LPM
semantics expressed as interval arithmetic.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.common.addr import format_prefix, prefix_range
from repro.common.intervals import IntervalSet


class Route(NamedTuple):
    """One routing entry: prefix -> output interface."""

    network: int
    plen: int
    out_port: int

    def __str__(self) -> str:
        return "%s -> port %d" % (
            format_prefix(self.network, self.plen),
            self.out_port,
        )


class RoutingTable:
    """An ordered set of routes with LPM lookup."""

    def __init__(self, routes: Optional[List[Route]] = None):
        self.routes: List[Route] = []
        for route in routes or []:
            self.add(route.network, route.plen, route.out_port)

    def add(self, network: int, plen: int, out_port: int) -> None:
        """Insert a route, keeping the table sorted most-specific-first."""
        low, _ = prefix_range(network, plen)
        self.routes.append(Route(low, plen, out_port))
        self.routes.sort(key=lambda r: (-r.plen, r.network))

    def remove_port(self, out_port: int) -> None:
        """Drop every route pointing at ``out_port``."""
        self.routes = [r for r in self.routes if r.out_port != out_port]

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match: the output port, or None (no route)."""
        for route in self.routes:
            low, high = prefix_range(route.network, route.plen)
            if low <= address <= high:
                return route.out_port
        return None

    def symbolic_split(self) -> List[Tuple[int, IntervalSet]]:
        """The table as disjoint (out_port, destination set) branches.

        Branch sets are mutually disjoint and respect LPM: an address
        covered by a /24 and a /16 appears only in the /24's branch.
        Empty branches (fully shadowed routes) are omitted.
        """
        covered = IntervalSet.empty()
        branches: List[Tuple[int, IntervalSet]] = []
        for route in self.routes:  # most-specific first
            low, high = prefix_range(route.network, route.plen)
            allowed = IntervalSet.from_interval(low, high).subtract(covered)
            covered = covered.union(
                IntervalSet.from_interval(low, high)
            )
            if not allowed.is_empty():
                branches.append((route.out_port, allowed))
        return branches

    def __len__(self) -> int:
        return len(self.routes)

    def __repr__(self) -> str:
        return "RoutingTable(%d routes)" % len(self.routes)
