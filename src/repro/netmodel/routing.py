"""Longest-prefix-match routing tables.

Used concretely (``lookup``) by the platform simulator and symbolically
(``symbolic_split``) by router models: with a symbolic destination, a
router splits the flow per route entry, constraining each branch to the
entry's prefix *minus* every more-specific prefix -- the standard LPM
semantics expressed as interval arithmetic.
"""

from __future__ import annotations

from typing import List, NamedTuple, Optional, Tuple

from repro.common.addr import format_prefix, prefix_range
from repro.common.intervals import IntervalSet
from repro.symexec.tuning import OPT


class Route(NamedTuple):
    """One routing entry: prefix -> output interface."""

    network: int
    plen: int
    out_port: int

    def __str__(self) -> str:
        return "%s -> port %d" % (
            format_prefix(self.network, self.plen),
            self.out_port,
        )


class RoutingTable:
    """An ordered set of routes with LPM lookup."""

    def __init__(self, routes: Optional[List[Route]] = None):
        self.routes: List[Route] = []
        #: Bumped by every mutation; validates ``_split_cache``.
        self._version = 0
        #: Memoized ``symbolic_split`` result for ``_version``.
        self._split_cache: Optional[
            Tuple[int, List[Tuple[int, IntervalSet]]]
        ] = None
        for route in routes or []:
            self.add(route.network, route.plen, route.out_port)

    def add(self, network: int, plen: int, out_port: int) -> None:
        """Insert a route, keeping the table sorted most-specific-first."""
        low, _ = prefix_range(network, plen)
        self.routes.append(Route(low, plen, out_port))
        self.routes.sort(key=lambda r: (-r.plen, r.network))
        self._version += 1

    def remove_port(self, out_port: int) -> None:
        """Drop every route pointing at ``out_port``."""
        self.routes = [r for r in self.routes if r.out_port != out_port]
        self._version += 1

    def lookup(self, address: int) -> Optional[int]:
        """Longest-prefix-match: the output port, or None (no route)."""
        for route in self.routes:
            low, high = prefix_range(route.network, route.plen)
            if low <= address <= high:
                return route.out_port
        return None

    def symbolic_split(self) -> List[Tuple[int, IntervalSet]]:
        """The table as disjoint (out_port, destination set) branches.

        Branch sets are mutually disjoint and respect LPM: an address
        covered by a /24 and a /16 appears only in the /24's branch.
        Empty branches (fully shadowed routes) are omitted.

        The split is a pure function of the route list, and router
        models recompute it per symbolic arrival, so with the fast path
        on the result is memoized; the cache is validated against a
        version counter bumped by every ``add``/``remove_port``.
        Callers must treat the returned list as read-only.
        """
        if OPT.enabled:
            cached = self._split_cache
            if cached is not None and cached[0] == self._version:
                OPT.memo_hits += 1
                return cached[1]
        covered = IntervalSet.empty()
        branches: List[Tuple[int, IntervalSet]] = []
        for route in self.routes:  # most-specific first
            low, high = prefix_range(route.network, route.plen)
            allowed = IntervalSet.from_interval(low, high).subtract(covered)
            covered = covered.union(
                IntervalSet.from_interval(low, high)
            )
            if not allowed.is_empty():
                branches.append((route.out_port, allowed))
        if OPT.enabled:
            self._split_cache = (self._version, branches)
        return branches

    def __len__(self) -> int:
        return len(self.routes)

    def __repr__(self) -> str:
        return "RoutingTable(%d routes)" % len(self.routes)
