"""An OpenFlow-style match/action flow table.

Section 4.3: "at the very least, [the controller] will install
forwarding rules on the target platform to ensure that the processing
module receives traffic destined for the IP address/protocol/port
combination.  In our implementation, we use Openflow rules to configure
Openvswitch running on each platform."

This is that switch table: prioritized rules whose matches are
per-field interval sets (so the *same* rule drives both the concrete
lookup and the symbolic split) and whose actions steer traffic to a
module, out a port, or to the floor.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.common import fields as F
from repro.common.errors import ConfigError
from repro.common.intervals import IntervalSet
from repro.symexec.tuning import OPT

# Action kinds.
ACTION_TO_MODULE = "to-module"
ACTION_OUTPUT = "output"
ACTION_DROP = "drop"

#: Fields a rule may match on, with their universes.
MATCH_FIELDS: Dict[str, IntervalSet] = {
    F.IP_SRC: IntervalSet.from_interval(0, (1 << 32) - 1),
    F.IP_DST: IntervalSet.from_interval(0, (1 << 32) - 1),
    F.IP_PROTO: IntervalSet.from_interval(0, 255),
    F.TP_SRC: IntervalSet.from_interval(0, 65535),
    F.TP_DST: IntervalSet.from_interval(0, 65535),
}


@dataclass(frozen=True)
class Action:
    """What to do with a matching packet."""

    kind: str
    #: Module name for ACTION_TO_MODULE; port number for ACTION_OUTPUT.
    target: Optional[object] = None

    @classmethod
    def to_module(cls, module: str) -> "Action":
        return cls(ACTION_TO_MODULE, module)

    @classmethod
    def output(cls, port: int) -> "Action":
        return cls(ACTION_OUTPUT, port)

    @classmethod
    def drop(cls) -> "Action":
        return cls(ACTION_DROP)


@dataclass(frozen=True)
class FlowRule:
    """One prioritized match/action rule."""

    priority: int
    match: Tuple[Tuple[str, IntervalSet], ...]
    action: Action
    cookie: str = ""

    def matches(self, packet) -> bool:
        """Whether a concrete packet satisfies every match field."""
        for field_name, allowed in self.match:
            if packet.get(field_name, 0) not in allowed:
                return False
        return True

    def match_dict(self) -> Dict[str, IntervalSet]:
        return dict(self.match)


def _normalize_match(
    match: Dict[str, IntervalSet]
) -> Tuple[Tuple[str, IntervalSet], ...]:
    items = []
    for field_name, allowed in sorted(match.items()):
        if field_name not in MATCH_FIELDS:
            raise ConfigError(
                "flow rules cannot match on %r" % (field_name,)
            )
        if not isinstance(allowed, IntervalSet):
            raise ConfigError("match values must be IntervalSet")
        items.append((field_name, allowed))
    return tuple(items)


class FlowTable:
    """A prioritized flow table (highest priority wins; ties break by
    insertion order, like OVS)."""

    def __init__(self):
        self._rules: List[FlowRule] = []
        #: Bumped by every mutation; validates ``_branch_cache``.
        self._version = 0
        #: Memoized ``symbolic_branches`` result for ``_version``.
        self._branch_cache: Optional[tuple] = None
        #: Deferred-sort flag: installs only append, and the priority
        #: order is (re)established at the next read.  Python's sort is
        #: stable, so one batched sort yields the same tie order as
        #: sorting after every install -- but bulk-installing N rules
        #: (a controller shard seeding 10^5 residents) costs one
        #: O(N log N) sort instead of N of them.
        self._sorted = True

    def _ensure_sorted(self) -> None:
        if not self._sorted:
            self._rules.sort(key=lambda r: -r.priority)
            self._sorted = True

    # -- management ---------------------------------------------------------
    def install(
        self,
        priority: int,
        match: Dict[str, IntervalSet],
        action: Action,
        cookie: str = "",
    ) -> FlowRule:
        """Install a rule; returns it (useful for later removal)."""
        rule = FlowRule(
            priority=priority,
            match=_normalize_match(match),
            action=action,
            cookie=cookie,
        )
        if self._rules and self._rules[-1].priority < priority:
            self._sorted = False
        self._rules.append(rule)
        self._version += 1
        return rule

    def remove(self, rule: FlowRule) -> bool:
        """Remove one rule; returns whether it was present."""
        try:
            self._rules.remove(rule)
            self._version += 1
            return True
        except ValueError:
            return False

    def remove_by_cookie(self, cookie: str) -> int:
        """Remove every rule with a cookie; returns how many."""
        before = len(self._rules)
        self._rules = [r for r in self._rules if r.cookie != cookie]
        self._version += 1
        return before - len(self._rules)

    @property
    def rules(self) -> List[FlowRule]:
        self._ensure_sorted()
        return list(self._rules)

    def __len__(self) -> int:
        return len(self._rules)

    # -- concrete lookup ------------------------------------------------------
    def lookup(self, packet) -> Optional[FlowRule]:
        """Highest-priority rule matching a concrete packet."""
        self._ensure_sorted()
        for rule in self._rules:
            if rule.matches(packet):
                return rule
        return None

    # -- symbolic split -----------------------------------------------------------
    def symbolic_branches(
        self,
    ) -> List[Tuple[Action, Dict[str, IntervalSet]]]:
        """The table as (action, residual-match) branches.

        Like LPM's symbolic split: a rule's branch is its match minus
        what higher-priority rules already claimed.  Subtraction is
        exact when the shadowing rule matches on a *single* field (the
        controller's steering rules all do); a multi-field shadow is
        not expressible as one conjunction, so those branches are kept
        whole -- a sound over-approximation for may-reachability
        (extra possible flows, never missing ones).
        """
        if OPT.enabled:
            cached = self._branch_cache
            if cached is not None and cached[0] == self._version:
                OPT.memo_hits += 1
                return cached[1]
        self._ensure_sorted()
        branches: List[Tuple[Action, Dict[str, IntervalSet]]] = []
        for index, rule in enumerate(self._rules):
            residual = dict(rule.match)
            dead = False
            for earlier in self._rules[:index]:
                earlier_match = earlier.match_dict()
                if len(earlier_match) != 1:
                    continue  # conservative: keep the branch whole
                (name, shadow), = earlier_match.items()
                if name not in residual:
                    continue  # rule is broader on this field; keep
                residual[name] = residual[name].subtract(shadow)
                if residual[name].is_empty():
                    dead = True
                    break
            if not dead:
                branches.append((rule.action, residual))
        if OPT.enabled:
            self._branch_cache = (self._version, branches)
        return branches


def module_steering_rule(
    table: FlowTable,
    address: int,
    module: str,
    proto: Optional[int] = None,
    port: Optional[int] = None,
) -> FlowRule:
    """Install the controller's steering rule for a module.

    The paper gives clients "an IP address, protocol and port
    combination that can be used to reach that module": with ``proto``
    and/or ``port`` set, only matching traffic is steered (everything
    else to that address is dropped by the table's default).
    """
    match: Dict[str, IntervalSet] = {
        F.IP_DST: IntervalSet.single(address)
    }
    if proto is not None:
        match[F.IP_PROTO] = IntervalSet.single(proto)
    if port is not None:
        match[F.TP_DST] = IntervalSet.single(port)
    return table.install(
        priority=100 + (10 if proto is not None or port is not None
                        else 0),
        match=match,
        action=Action.to_module(module),
        cookie=module,
    )
