"""A concrete forwarding plane over the topology.

The symbolic graph (:mod:`repro.netmodel.symgraph`) answers "what can
happen"; this module makes *actual packets* happen: routers forward by
LPM, operator middleboxes run their real Click elements, platforms
demux module-addressed traffic into per-module Click runtimes (whose
timer-driven elements -- batchers, shapers -- are honored), and module
egress re-enters the network.

Integration tests and the use cases use it to confirm that what static
analysis approved is what the dataplane does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.click.element import Element, create_element
from repro.click.packet import IP_DST, Packet
from repro.click.runtime import Runtime
from repro.common.errors import SimulationError
from repro.netmodel.topology import (
    ClientSubnet,
    Host,
    Internet,
    Middlebox,
    Network,
    Platform,
    Router,
)

#: Safety bound on forwarding hops (loops indicate a broken snapshot).
MAX_HOPS = 64


@dataclass
class Delivery:
    """One packet arriving at an endpoint."""

    node: str
    packet: Packet
    time: float
    path: Tuple[str, ...]


@dataclass
class ForwardingStats:
    """Counters for one plane instance."""

    forwarded: int = 0
    delivered: int = 0
    dropped_no_route: int = 0
    dropped_by_middlebox: int = 0
    dropped_by_platform: int = 0


class _ModuleInstance:
    """A deployed module's live Click runtime on a platform."""

    def __init__(self, name: str, address: int, config,
                 start_time: float):
        self.name = name
        self.address = address
        self.runtime = Runtime(config, start_time=start_time)
        self.entry = config.sources()[0]

    def inject(self, packet: Packet) -> None:
        self.runtime.inject(self.entry, packet)

    def drain(self) -> List[Packet]:
        """Packets emitted by the module since the last drain."""
        return [record.packet for record in self.runtime.take_output()]


class ForwardingPlane:
    """Drives concrete packets across a network snapshot.

    Middlebox elements and module runtimes are instantiated once per
    plane and keep state across packets, so stateful firewalls behave
    like the real thing.  Time advances via :meth:`run_until`, which
    fires module timers (batching!) and forwards whatever they release.
    """

    def __init__(self, network: Network):
        self.network = network
        self.now = 0.0
        self.stats = ForwardingStats()
        self.deliveries: List[Delivery] = []
        self._middlebox_elements: Dict[str, Element] = {}
        self._modules: Dict[str, List[_ModuleInstance]] = {}
        #: (a, b) -> one-way propagation delay, both directions.
        self._latency: Dict[Tuple[str, str], float] = {}
        for wire in network.links:
            self._latency[(wire.a, wire.b)] = wire.latency_s
            self._latency[(wire.b, wire.a)] = wire.latency_s
        for node in network.nodes.values():
            if isinstance(node, Middlebox):
                self._middlebox_elements[node.name] = node.make_element()
            elif isinstance(node, Platform):
                instances = []
                for module_name, (address, config) in sorted(
                    node.modules.items()
                ):
                    instances.append(_ModuleInstance(
                        module_name, address, config, self.now,
                    ))
                self._modules[node.name] = instances

    # -- public API ---------------------------------------------------------
    def send(
        self, from_node: str, packet: Packet, at: Optional[float] = None
    ) -> List[Delivery]:
        """Send ``packet`` from an endpoint; returns *new* deliveries.

        Packets buffered inside modules (batchers) are not delivered
        until :meth:`run_until` advances past their release time.
        """
        if at is not None:
            if at < self.now:
                raise SimulationError("cannot send in the past")
            self.run_until(at)
        origin = self.network.node(from_node)
        if not isinstance(origin, (Host, ClientSubnet, Internet)):
            raise SimulationError(
                "packets originate at endpoints, not %r" % (from_node,)
            )
        if len(origin.ports) != 1:
            raise SimulationError(
                "endpoint %r must have exactly one link" % (from_node,)
            )
        before = len(self.deliveries)
        (peer, peer_port), = origin.ports.values()
        self._forward(
            peer, peer_port, packet, [from_node],
            self._latency.get((from_node, peer), 0.0),
        )
        return self.deliveries[before:]

    def run_until(self, deadline: float) -> List[Delivery]:
        """Advance time, firing module timers; returns new deliveries."""
        if deadline < self.now:
            raise SimulationError("time cannot go backwards")
        before = len(self.deliveries)
        self.now = deadline
        for platform_name, instances in self._modules.items():
            for instance in instances:
                instance.runtime.run(until=deadline)
                self._drain_module(platform_name, instance)
        return self.deliveries[before:]

    # -- internals -------------------------------------------------------------
    def _forward(
        self, node_name: str, in_port: int, packet: Packet,
        path: List[str], latency: float = 0.0,
    ) -> None:
        if len(path) > MAX_HOPS:
            raise SimulationError(
                "forwarding loop: %s" % " -> ".join(path)
            )
        self.stats.forwarded += 1
        node = self.network.node(node_name)
        path = path + [node_name]
        if isinstance(node, (Host, ClientSubnet, Internet)):
            self.stats.delivered += 1
            self.deliveries.append(Delivery(
                node=node_name, packet=packet,
                time=self.now + latency,
                path=tuple(path),
            ))
            return
        if isinstance(node, Router):
            out_port = node.table.lookup(packet[IP_DST])
            if out_port is None or out_port not in node.ports:
                self.stats.dropped_no_route += 1
                return
            peer, peer_port = node.ports[out_port]
            self._forward(
                peer, peer_port, packet, path,
                latency + self._latency.get((node_name, peer), 0.0),
            )
            return
        if isinstance(node, Middlebox):
            self._through_middlebox(node, in_port, packet, path,
                                    latency)
            return
        if isinstance(node, Platform):
            self._into_platform(node, packet, path, latency)
            return
        raise SimulationError("cannot forward through %r" % (node_name,))

    def _through_middlebox(
        self, node: Middlebox, in_port: int, packet: Packet,
        path: List[str], latency: float = 0.0,
    ) -> None:
        element = self._middlebox_elements[node.name]
        element_port = in_port if element.n_inputs == 2 else 0
        outputs = element.push(element_port, packet)
        if not outputs:
            self.stats.dropped_by_middlebox += 1
            return
        for out_port, out_packet in outputs:
            if element.n_inputs == 2:
                # Directional element: direction d enters interface d
                # and leaves the opposite one (see symgraph adapter).
                iface = 1 - out_port if out_port in (0, 1) else out_port
            else:
                iface = 1 - in_port if in_port in (0, 1) else 0
            link = node.ports.get(iface)
            if link is None:
                self.stats.dropped_by_middlebox += 1
                continue
            peer, peer_port = link
            self._forward(
                peer, peer_port, out_packet, path,
                latency + self._latency.get((node.name, peer), 0.0),
            )

    def _into_platform(
        self, node: Platform, packet: Packet, path: List[str],
        latency: float = 0.0,
    ) -> None:
        from repro.netmodel.flowtable import (
            ACTION_DROP,
            ACTION_OUTPUT,
            ACTION_TO_MODULE,
        )

        rule = node.flow_table.lookup(packet)
        if rule is None or rule.action.kind == ACTION_DROP:
            self.stats.dropped_by_platform += 1
            return
        if rule.action.kind == ACTION_OUTPUT:
            link = node.ports.get(rule.action.target)
            if link is None:
                self.stats.dropped_by_platform += 1
                return
            peer, peer_port = link
            self._forward(
                peer, peer_port, packet, path,
                latency + self._latency.get((node.name, peer), 0.0),
            )
            return
        for instance in self._modules.get(node.name, []):
            if instance.name == rule.action.target:
                instance.inject(packet)
                self._drain_module(node.name, instance, path, latency)
                return
        self.stats.dropped_by_platform += 1

    def _drain_module(
        self,
        platform_name: str,
        instance: _ModuleInstance,
        path: Optional[List[str]] = None,
        latency: float = 0.0,
    ) -> None:
        node = self.network.node(platform_name)
        if not node.ports:
            return
        uplink_port = min(node.ports)
        egress_path = (path or [platform_name]) + [
            "%s/%s" % (platform_name, instance.name)
        ]
        for out_packet in instance.drain():
            # Hairpin to a co-located module, else out the uplink.
            for other in self._modules[platform_name]:
                if (
                    other is not instance
                    and out_packet[IP_DST] == other.address
                ):
                    other.inject(out_packet)
                    self._drain_module(platform_name, other,
                                       egress_path, latency)
                    break
            else:
                peer, peer_port = node.ports[uplink_port]
                self._forward(
                    peer, peer_port, out_packet, egress_path,
                    latency + self._latency.get(
                        (platform_name, peer), 0.0
                    ),
                )

    # -- introspection ------------------------------------------------------------
    def module_runtime(self, module_name: str) -> Runtime:
        """The live Click runtime of a deployed module."""
        for instances in self._modules.values():
            for instance in instances:
                if instance.name == module_name:
                    return instance.runtime
        raise SimulationError("unknown module %r" % (module_name,))

    def middlebox_element(self, name: str) -> Element:
        """The live element instance of an operator middlebox."""
        return self._middlebox_elements[name]

    def deliveries_at(self, node: str) -> List[Delivery]:
        """Deliveries recorded at one endpoint."""
        return [d for d in self.deliveries if d.node == node]
